#ifndef SAGDFN_AUTOGRAD_OPS_H_
#define SAGDFN_AUTOGRAD_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace sagdfn::autograd {

// Differentiable operations. Each mirrors its tensor:: counterpart on the
// forward path and records the tape when gradients are enabled and at
// least one input requires them. Broadcasting follows numpy semantics;
// broadcast gradients are reduced back to the input shapes.

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
Variable Neg(const Variable& a);
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
/// s - a per element (no constant tensor materialized).
Variable RSubScalar(const Variable& a, float s);

/// 2-D matrix product.
Variable MatMul(const Variable& a, const Variable& b);
/// Batched matrix product; either operand may be 2-D (shared across the
/// batch), matching tensor::BatchedMatMul.
Variable BatchedMatMul(const Variable& a, const Variable& b);

Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Relu(const Variable& a);
Variable Abs(const Variable& a);
/// Elementwise power with scalar exponent.
Variable Pow(const Variable& a, float p);

Variable Sum(const Variable& a, int64_t axis, bool keepdim = false);
Variable Mean(const Variable& a, int64_t axis, bool keepdim = false);
Variable Max(const Variable& a, int64_t axis, bool keepdim = false);
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

Variable Reshape(const Variable& a, std::vector<int64_t> dims);
Variable Transpose(const Variable& a, int64_t axis0, int64_t axis1);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Stack(const std::vector<Variable>& parts, int64_t axis);
Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t end);
Variable IndexSelect(const Variable& a, int64_t axis,
                     std::vector<int64_t> indices);

/// Broadcasts `a` up to `shape` (backward reduces back down).
Variable Expand(const Variable& a, const tensor::Shape& shape);

/// Numerically stable softmax along `axis` (shift by a detached max).
Variable Softmax(const Variable& a, int64_t axis);

/// Elementwise multiply by a constant mask (used for dropout; the mask
/// receives no gradient).
Variable MulMask(const Variable& a, const tensor::Tensor& mask);

/// Fused GRU cell step (nn::GruCell). `xi` and `hh` are the input and
/// hidden affine projections, [..., 3H] in [r|z|n] layout; `h` is the
/// previous state [..., H]. Computes, per row,
///   r = sigmoid(xi_r + hh_r), z = sigmoid(xi_z + hh_z),
///   n = tanh(xi_n + r * hh_n), h' = z*h + (1-z)*n
/// in a single pass through the dispatched gru_step kernel (one output
/// tensor instead of the ~10 temporaries of the unfused chain), with a
/// fused single-pass backward (gru_step_grad) for all three inputs.
/// Training stores r/z/n for backward; under NoGrad nothing but the
/// output is materialized.
Variable GruStep(const Variable& xi, const Variable& hh, const Variable& h);

/// mean(|pred - target|); the paper's training loss (Eq. 11).
Variable L1Loss(const Variable& pred, const Variable& target);

/// mean((pred - target)^2).
Variable MseLoss(const Variable& pred, const Variable& target);

/// Masked mean(|pred - target| * mask) / mean(mask): ignores entries with
/// mask 0 (the standard treatment of missing sensor readings).
Variable MaskedL1Loss(const Variable& pred, const Variable& target,
                      const tensor::Tensor& mask);

namespace internal {

/// Builds an op node. `backward` receives the output gradient and must
/// accumulate into the parent nodes (checking their requires_grad). When
/// recording is off (or no parent needs gradients), the node is a plain
/// constant and `backward` is dropped.
Variable MakeOp(const char* name, tensor::Tensor value,
                const std::vector<Variable>& inputs,
                std::function<void(const tensor::Tensor&)> backward);

}  // namespace internal

}  // namespace sagdfn::autograd

#endif  // SAGDFN_AUTOGRAD_OPS_H_
