#include "autograd/variable.h"

#include <unordered_set>

#include "tensor/tensor_ops.h"
#include "utils/check.h"

namespace sagdfn::autograd {

namespace internal {

void Node::AccumulateGrad(const tensor::Tensor& g) {
  SAGDFN_CHECK(g.shape() == value.shape())
      << "gradient shape " << g.shape().ToString() << " vs value "
      << value.shape().ToString() << " in op " << op_name;
  if (!grad_defined) {
    grad = g.Clone();
    grad_defined = true;
    return;
  }
  float* pd = grad.data();
  const float* ps = g.data();
  for (int64_t i = 0; i < grad.size(); ++i) pd[i] += ps[i];
}

}  // namespace internal

namespace {

thread_local bool t_grad_enabled = true;

}  // namespace

Variable::Variable() : Variable(tensor::Tensor(), false) {}

Variable::Variable(tensor::Tensor value, bool requires_grad)
    : node_(std::make_shared<internal::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

tensor::Tensor Variable::grad() const {
  if (!node_->grad_defined) {
    return tensor::Tensor::Zeros(node_->value.shape());
  }
  return node_->grad;
}

void Variable::set_requires_grad(bool requires_grad) {
  SAGDFN_CHECK(node_->parents.empty())
      << "set_requires_grad on non-leaf variable";
  node_->requires_grad = requires_grad;
}

void Variable::ZeroGrad() {
  node_->grad_defined = false;
  node_->grad = tensor::Tensor();
}

void Variable::Backward() {
  SAGDFN_CHECK_EQ(size(), 1) << "Backward() requires a scalar output";
  // Topological order via iterative post-order DFS.
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      internal::Node* parent = node->parents[child].get();
      ++child;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->AccumulateGrad(tensor::Tensor::Ones(node_->value.shape()));
  // `order` is post-order (parents before children); walk it reversed so
  // each node's grad is complete before it propagates.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward_fn && node->grad_defined) {
      node->backward_fn(node->grad);
    }
  }
}

Variable Variable::Detach() const {
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

bool GradEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

GradModeGuard::GradModeGuard(bool enabled) : previous_(t_grad_enabled) {
  t_grad_enabled = enabled;
}

GradModeGuard::~GradModeGuard() { t_grad_enabled = previous_; }

}  // namespace sagdfn::autograd
