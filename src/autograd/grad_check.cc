#include "autograd/grad_check.h"

#include <cmath>
#include <sstream>

#include "utils/check.h"

namespace sagdfn::autograd {

bool CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    const std::vector<tensor::Tensor>& inputs, std::string* error,
    const GradCheckOptions& options) {
  // Analytic pass.
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (const auto& t : inputs) {
    vars.emplace_back(t.Clone(), /*requires_grad=*/true);
  }
  Variable out = fn(vars);
  SAGDFN_CHECK_EQ(out.size(), 1) << "CheckGradients requires scalar output";
  out.Backward();

  auto eval = [&](const std::vector<tensor::Tensor>& points) {
    NoGradGuard guard;
    std::vector<Variable> vs;
    vs.reserve(points.size());
    for (const auto& t : points) vs.emplace_back(t, false);
    return static_cast<double>(fn(vs).value().Item());
  };

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    tensor::Tensor analytic = vars[vi].grad();
    for (int64_t e = 0; e < inputs[vi].size(); ++e) {
      // Central difference on element (vi, e).
      std::vector<tensor::Tensor> plus;
      std::vector<tensor::Tensor> minus;
      for (size_t vj = 0; vj < inputs.size(); ++vj) {
        plus.push_back(inputs[vj].Clone());
        minus.push_back(inputs[vj].Clone());
      }
      plus[vi][e] += static_cast<float>(options.epsilon);
      minus[vi][e] -= static_cast<float>(options.epsilon);
      const double numeric =
          (eval(plus) - eval(minus)) / (2.0 * options.epsilon);
      const double got = analytic[e];
      const double denom = std::max(1.0, std::fabs(numeric));
      if (std::fabs(got - numeric) / denom > options.tolerance &&
          std::fabs(got - numeric) > options.absolute_tolerance) {
        if (error != nullptr) {
          std::ostringstream os;
          os << "gradient mismatch at input " << vi << " element " << e
             << ": analytic=" << got << " numeric=" << numeric;
          *error = os.str();
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace sagdfn::autograd
