#ifndef SAGDFN_AUTOGRAD_GRAD_CHECK_H_
#define SAGDFN_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace sagdfn::autograd {

/// Options for finite-difference gradient verification.
struct GradCheckOptions {
  /// Central-difference step.
  double epsilon = 1e-3;
  /// Max allowed |analytic - numeric| / max(1, |numeric|).
  double tolerance = 5e-2;
  /// Absolute slack for near-zero gradients.
  double absolute_tolerance = 1e-3;
};

/// Verifies analytic gradients of `fn` (a scalar-valued function of the
/// given inputs) against central finite differences, elementwise over every
/// input. Returns true on success; on failure fills `*error` with the first
/// offending input/element and the two gradient values.
///
/// `fn` must be deterministic and must treat its inputs as the only
/// trainable leaves.
bool CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    const std::vector<tensor::Tensor>& inputs, std::string* error,
    const GradCheckOptions& options = GradCheckOptions());

}  // namespace sagdfn::autograd

#endif  // SAGDFN_AUTOGRAD_GRAD_CHECK_H_
