#ifndef SAGDFN_AUTOGRAD_VARIABLE_H_
#define SAGDFN_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sagdfn::autograd {

namespace internal {

/// One node of the autograd tape. Users interact with Variable; Node is an
/// implementation detail shared between ops and the backward pass.
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;
  bool requires_grad = false;
  bool grad_defined = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's grad into its parents. Null for leaves.
  std::function<void(const tensor::Tensor&)> backward_fn;
  const char* op_name = "leaf";

  /// Adds `g` into this node's gradient buffer (allocating on first use).
  void AccumulateGrad(const tensor::Tensor& g);
};

}  // namespace internal

/// Differentiable tensor handle.
///
/// A Variable wraps a Tensor plus optional gradient bookkeeping. Ops on
/// Variables (see autograd/ops.h) record a tape when gradients are enabled
/// and any input requires them; Backward() on a scalar result then fills
/// grad() on every contributing leaf.
class Variable {
 public:
  /// Constructs an empty variable (size-0 tensor, no grad).
  Variable();

  /// Wraps `value`. Set `requires_grad` for trainable leaves.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  /// The wrapped tensor (forward value).
  const tensor::Tensor& value() const { return node_->value; }

  /// Mutable access for optimizers / in-place init. Never call on a
  /// non-leaf mid-graph: the tape holds no copy.
  tensor::Tensor& mutable_value() { return node_->value; }

  /// Accumulated gradient; only meaningful after Backward() on a scalar
  /// that depends on this variable. Zero tensor if no gradient flowed.
  tensor::Tensor grad() const;

  bool requires_grad() const { return node_->requires_grad; }

  /// Marks a leaf as trainable (or not). Must not be called on op outputs.
  void set_requires_grad(bool requires_grad);

  /// Clears the stored gradient.
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this (scalar) variable,
  /// accumulating into the grad() of every reachable requires_grad leaf.
  void Backward();

  /// Detaches from the tape: result shares the value but has no history.
  Variable Detach() const;

  const tensor::Shape& shape() const { return node_->value.shape(); }
  int64_t size() const { return node_->value.size(); }
  int64_t dim(int64_t d) const { return node_->value.dim(d); }

  /// Internal: used by ops to stitch the tape together.
  const std::shared_ptr<internal::Node>& node() const { return node_; }

  /// Internal: wraps an op-produced node.
  static Variable FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

/// True when ops should record the tape (default). Thread-local.
bool GradEnabled();

/// RAII guard that disables tape recording in its scope (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// RAII guard that sets tape recording to an explicit value. Needed when
/// dispatching forward work onto pool threads: GradEnabled() is
/// thread-local, so workers must adopt the calling thread's mode instead
/// of their own default.
class GradModeGuard {
 public:
  explicit GradModeGuard(bool enabled);
  ~GradModeGuard();
  GradModeGuard(const GradModeGuard&) = delete;
  GradModeGuard& operator=(const GradModeGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace sagdfn::autograd

#endif  // SAGDFN_AUTOGRAD_VARIABLE_H_
