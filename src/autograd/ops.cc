#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tensor/simd.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace sagdfn::autograd {

using tensor::Shape;
using tensor::Tensor;

namespace internal {

Variable MakeOp(const char* name, Tensor value,
                const std::vector<Variable>& inputs,
                std::function<void(const Tensor&)> backward) {
  bool track = GradEnabled();
  if (track) {
    track = false;
    for (const Variable& v : inputs) {
      if (v.requires_grad()) {
        track = true;
        break;
      }
    }
  }
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  if (track) {
    node->requires_grad = true;
    node->op_name = name;
    node->parents.reserve(inputs.size());
    for (const Variable& v : inputs) node->parents.push_back(v.node());
    node->backward_fn = std::move(backward);
  }
  return Variable::FromNode(std::move(node));
}

namespace {

/// Accumulates `g` into `node` after reducing over broadcast dims.
void AccumulateReduced(const std::shared_ptr<Node>& node, const Tensor& g) {
  if (!node->requires_grad) return;
  node->AccumulateGrad(tensor::ReduceTo(g, node->value.shape()));
}

void Accumulate(const std::shared_ptr<Node>& node, const Tensor& g) {
  if (!node->requires_grad) return;
  node->AccumulateGrad(g);
}

}  // namespace
}  // namespace internal

using internal::Accumulate;
using internal::AccumulateReduced;
using internal::MakeOp;

namespace {

/// Runs a fused two-input elementwise backward kernel (g, aux) -> out in
/// parallel chunks. Tape replay is sequential; only the elementwise work
/// inside one node is parallel (disjoint writes, thread-count
/// independent).
Tensor FusedBackward(const Tensor& g, const Tensor& aux,
                     void (*kernel)(const float*, const float*, float*,
                                    int64_t)) {
  Tensor out(g.shape());
  const float* pg = g.data();
  const float* pa = aux.data();
  float* po = out.data();
  utils::ParallelFor(0, g.size(), utils::kElementwiseGrain,
                     [&](int64_t i0, int64_t i1) {
                       kernel(pg + i0, pa + i0, po + i0, i1 - i0);
                     });
  return out;
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  auto na = a.node();
  auto nb = b.node();
  return MakeOp("Add", tensor::Add(a.value(), b.value()), {a, b},
                [na, nb](const Tensor& g) {
                  AccumulateReduced(na, g);
                  AccumulateReduced(nb, g);
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  auto na = a.node();
  auto nb = b.node();
  return MakeOp("Sub", tensor::Sub(a.value(), b.value()), {a, b},
                [na, nb](const Tensor& g) {
                  AccumulateReduced(na, g);
                  AccumulateReduced(nb, tensor::Neg(g));
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  auto na = a.node();
  auto nb = b.node();
  return MakeOp("Mul", tensor::Mul(a.value(), b.value()), {a, b},
                [na, nb](const Tensor& g) {
                  AccumulateReduced(na, tensor::Mul(g, nb->value));
                  AccumulateReduced(nb, tensor::Mul(g, na->value));
                });
}

Variable Div(const Variable& a, const Variable& b) {
  auto na = a.node();
  auto nb = b.node();
  return MakeOp("Div", tensor::Div(a.value(), b.value()), {a, b},
                [na, nb](const Tensor& g) {
                  AccumulateReduced(na, tensor::Div(g, nb->value));
                  // d/db (a/b) = -a / b^2
                  Tensor gb = tensor::Neg(tensor::Div(
                      tensor::Mul(g, na->value),
                      tensor::Mul(nb->value, nb->value)));
                  AccumulateReduced(nb, gb);
                });
}

Variable Neg(const Variable& a) {
  auto na = a.node();
  return MakeOp("Neg", tensor::Neg(a.value()), {a},
                [na](const Tensor& g) { Accumulate(na, tensor::Neg(g)); });
}

Variable AddScalar(const Variable& a, float s) {
  auto na = a.node();
  return MakeOp("AddScalar", tensor::AddScalar(a.value(), s), {a},
                [na](const Tensor& g) { Accumulate(na, g); });
}

Variable MulScalar(const Variable& a, float s) {
  auto na = a.node();
  return MakeOp("MulScalar", tensor::MulScalar(a.value(), s), {a},
                [na, s](const Tensor& g) {
                  Accumulate(na, tensor::MulScalar(g, s));
                });
}

Variable RSubScalar(const Variable& a, float s) {
  auto na = a.node();
  return MakeOp("RSubScalar", tensor::RSubScalar(a.value(), s), {a},
                [na](const Tensor& g) { Accumulate(na, tensor::Neg(g)); });
}

Variable MatMul(const Variable& a, const Variable& b) {
  auto na = a.node();
  auto nb = b.node();
  return MakeOp(
      "MatMul", tensor::MatMul(a.value(), b.value()), {a, b},
      [na, nb](const Tensor& g) {
        if (na->requires_grad) {
          Accumulate(na, tensor::MatMul(g, tensor::Transpose(nb->value, 0, 1)));
        }
        if (nb->requires_grad) {
          Accumulate(nb, tensor::MatMul(tensor::Transpose(na->value, 0, 1), g));
        }
      });
}

Variable BatchedMatMul(const Variable& a, const Variable& b) {
  auto na = a.node();
  auto nb = b.node();
  return MakeOp(
      "BatchedMatMul", tensor::BatchedMatMul(a.value(), b.value()), {a, b},
      [na, nb](const Tensor& g) {
        const Tensor& av = na->value;
        const Tensor& bv = nb->value;
        // g: [B, m, n].
        if (na->requires_grad) {
          // ga[b] = g[b] @ b[b]^T, reduced over batch when a is 2-D.
          Tensor bt = bv.ndim() == 3 ? tensor::Transpose(bv, 1, 2)
                                     : tensor::Transpose(bv, 0, 1);
          Tensor ga = tensor::BatchedMatMul(g, bt);  // [B, m, k]
          if (av.ndim() == 2) {
            ga = tensor::Sum(ga, 0, /*keepdim=*/false);  // [m, k]
          }
          Accumulate(na, ga);
        }
        if (nb->requires_grad) {
          // gb[b] = a[b]^T @ g[b], reduced over batch when b is 2-D.
          Tensor at = av.ndim() == 3 ? tensor::Transpose(av, 1, 2)
                                     : tensor::Transpose(av, 0, 1);
          Tensor gb = tensor::BatchedMatMul(at, g);  // [B, k, n]
          if (bv.ndim() == 2) {
            gb = tensor::Sum(gb, 0, /*keepdim=*/false);  // [k, n]
          }
          Accumulate(nb, gb);
        }
      });
}

Variable Exp(const Variable& a) {
  auto na = a.node();
  Tensor out = tensor::Exp(a.value());
  return MakeOp("Exp", out, {a}, [na, out](const Tensor& g) {
    Accumulate(na, tensor::Mul(g, out));
  });
}

Variable Log(const Variable& a) {
  auto na = a.node();
  return MakeOp("Log", tensor::Log(a.value()), {a}, [na](const Tensor& g) {
    Accumulate(na, tensor::Div(g, na->value));
  });
}

Variable Sqrt(const Variable& a) {
  auto na = a.node();
  Tensor out = tensor::Sqrt(a.value());
  return MakeOp("Sqrt", out, {a}, [na, out](const Tensor& g) {
    Accumulate(na,
               tensor::Div(tensor::MulScalar(g, 0.5f),
                           tensor::Maximum(out, tensor::Tensor::Full(
                                                    out.shape(), 1e-12f))));
  });
}

Variable Tanh(const Variable& a) {
  auto na = a.node();
  Tensor out = tensor::Tanh(a.value());
  return MakeOp("Tanh", out, {a}, [na, out](const Tensor& g) {
    // g * (1 - out^2), one fused pass
    Accumulate(na, FusedBackward(g, out, tensor::simd::K().tanh_grad));
  });
}

Variable Sigmoid(const Variable& a) {
  auto na = a.node();
  Tensor out = tensor::Sigmoid(a.value());
  return MakeOp("Sigmoid", out, {a}, [na, out](const Tensor& g) {
    // g * out * (1 - out), one fused pass
    Accumulate(na, FusedBackward(g, out, tensor::simd::K().sigmoid_grad));
  });
}

Variable Relu(const Variable& a) {
  auto na = a.node();
  return MakeOp("Relu", tensor::Relu(a.value()), {a}, [na](const Tensor& g) {
    // x > 0 ? g : 0, one fused pass over the forward input
    Accumulate(na, FusedBackward(g, na->value, tensor::simd::K().relu_grad));
  });
}

Variable Abs(const Variable& a) {
  auto na = a.node();
  return MakeOp("Abs", tensor::Abs(a.value()), {a}, [na](const Tensor& g) {
    Accumulate(na, tensor::Mul(g, tensor::Sign(na->value)));
  });
}

Variable Pow(const Variable& a, float p) {
  auto na = a.node();
  return MakeOp("Pow", tensor::Pow(a.value(), p), {a},
                [na, p](const Tensor& g) {
                  Tensor d = tensor::MulScalar(
                      tensor::Pow(na->value, p - 1.0f), p);
                  Accumulate(na, tensor::Mul(g, d));
                });
}

Variable Sum(const Variable& a, int64_t axis, bool keepdim) {
  auto na = a.node();
  const Shape in_shape = a.shape();
  const int64_t canon = in_shape.CanonicalAxis(axis);
  return MakeOp(
      "Sum", tensor::Sum(a.value(), axis, keepdim), {a},
      [na, in_shape, canon, keepdim](const Tensor& g) {
        Tensor gk = g;
        if (!keepdim) {
          std::vector<int64_t> dims = in_shape.dims();
          dims[canon] = 1;
          gk = g.Reshape(dims);
        }
        // Broadcast the kept-dim gradient back to the input shape.
        Accumulate(na,
                   tensor::Add(gk, tensor::Tensor::Zeros(in_shape)));
      });
}

Variable Mean(const Variable& a, int64_t axis, bool keepdim) {
  const int64_t n = a.shape().dim(axis);
  SAGDFN_CHECK_GT(n, 0);
  return MulScalar(Sum(a, axis, keepdim), 1.0f / n);
}

Variable Max(const Variable& a, int64_t axis, bool keepdim) {
  auto na = a.node();
  const Shape in_shape = a.shape();
  const int64_t canon = in_shape.CanonicalAxis(axis);
  Tensor out = tensor::Max(a.value(), axis, keepdim);
  Tensor out_keep = keepdim ? out : tensor::Max(a.value(), axis, true);
  return MakeOp(
      "Max", out, {a},
      [na, in_shape, canon, keepdim, out_keep](const Tensor& g) {
        Tensor gk = g;
        if (!keepdim) {
          std::vector<int64_t> dims = in_shape.dims();
          dims[canon] = 1;
          gk = g.Reshape(dims);
        }
        // Route gradient to the (first) max element per slice.
        Tensor grad_in = tensor::Tensor::Zeros(in_shape);
        const auto strides = in_shape.Strides();
        int64_t outer = 1, inner = 1;
        for (int64_t i = 0; i < canon; ++i) outer *= in_shape.dims()[i];
        for (int64_t i = canon + 1; i < in_shape.ndim(); ++i) {
          inner *= in_shape.dims()[i];
        }
        const int64_t axis_size = in_shape.dims()[canon];
        const float* pv = na->value.data();
        const float* pm = out_keep.data();
        const float* pg = gk.data();
        float* pgi = grad_in.data();
        for (int64_t o = 0; o < outer; ++o) {
          for (int64_t i = 0; i < inner; ++i) {
            const float max_v = pm[o * inner + i];
            for (int64_t x = 0; x < axis_size; ++x) {
              const int64_t off = (o * axis_size + x) * inner + i;
              if (pv[off] == max_v) {
                pgi[off] += pg[o * inner + i];
                break;
              }
            }
          }
        }
        Accumulate(na, grad_in);
      });
}

Variable SumAll(const Variable& a) {
  auto na = a.node();
  const Shape in_shape = a.shape();
  return MakeOp("SumAll", tensor::SumAll(a.value()), {a},
                [na, in_shape](const Tensor& g) {
                  Accumulate(na, tensor::Tensor::Full(in_shape, g.Item()));
                });
}

Variable MeanAll(const Variable& a) {
  SAGDFN_CHECK_GT(a.size(), 0);
  return MulScalar(SumAll(a), 1.0f / a.size());
}

Variable Reshape(const Variable& a, std::vector<int64_t> dims) {
  auto na = a.node();
  const Shape in_shape = a.shape();
  return MakeOp("Reshape", a.value().Reshape(std::move(dims)), {a},
                [na, in_shape](const Tensor& g) {
                  Accumulate(na, g.Reshape(in_shape.dims()));
                });
}

Variable Transpose(const Variable& a, int64_t axis0, int64_t axis1) {
  auto na = a.node();
  return MakeOp("Transpose", tensor::Transpose(a.value(), axis0, axis1),
                {a}, [na, axis0, axis1](const Tensor& g) {
                  Accumulate(na, tensor::Transpose(g, axis0, axis1));
                });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  SAGDFN_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor out = tensor::Concat(values, axis);
  const int64_t canon = parts[0].shape().CanonicalAxis(axis);
  std::vector<std::shared_ptr<internal::Node>> nodes;
  std::vector<int64_t> sizes;
  for (const Variable& p : parts) {
    nodes.push_back(p.node());
    sizes.push_back(p.dim(canon));
  }
  return MakeOp("Concat", out, parts,
                [nodes, sizes, canon](const Tensor& g) {
                  int64_t offset = 0;
                  for (size_t i = 0; i < nodes.size(); ++i) {
                    if (nodes[i]->requires_grad) {
                      Accumulate(nodes[i], tensor::Slice(g, canon, offset,
                                                         offset + sizes[i]));
                    }
                    offset += sizes[i];
                  }
                });
}

Variable Stack(const std::vector<Variable>& parts, int64_t axis) {
  SAGDFN_CHECK(!parts.empty());
  const int64_t rank = parts[0].shape().ndim();
  int64_t canon = axis < 0 ? axis + rank + 1 : axis;
  SAGDFN_CHECK_GE(canon, 0);
  SAGDFN_CHECK_LE(canon, rank);
  std::vector<Variable> expanded;
  expanded.reserve(parts.size());
  for (const Variable& p : parts) {
    std::vector<int64_t> dims = p.shape().dims();
    dims.insert(dims.begin() + canon, 1);
    expanded.push_back(Reshape(p, std::move(dims)));
  }
  return Concat(expanded, canon);
}

Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t end) {
  auto na = a.node();
  const Shape in_shape = a.shape();
  const int64_t canon = in_shape.CanonicalAxis(axis);
  return MakeOp(
      "Slice", tensor::Slice(a.value(), axis, start, end), {a},
      [na, in_shape, canon, start, end](const Tensor& g) {
        Tensor grad_in = tensor::Tensor::Zeros(in_shape);
        std::vector<int64_t> indices(end - start);
        for (int64_t i = start; i < end; ++i) indices[i - start] = i;
        tensor::IndexAddInto(grad_in, canon, indices, g);
        Accumulate(na, grad_in);
      });
}

Variable IndexSelect(const Variable& a, int64_t axis,
                     std::vector<int64_t> indices) {
  auto na = a.node();
  const Shape in_shape = a.shape();
  const int64_t canon = in_shape.CanonicalAxis(axis);
  Tensor out = tensor::IndexSelect(a.value(), axis, indices);
  return MakeOp("IndexSelect", out, {a},
                [na, in_shape, canon,
                 indices = std::move(indices)](const Tensor& g) {
                  Tensor grad_in = tensor::Tensor::Zeros(in_shape);
                  tensor::IndexAddInto(grad_in, canon, indices, g);
                  Accumulate(na, grad_in);
                });
}

Variable Expand(const Variable& a, const Shape& shape) {
  Variable zeros(Tensor::Zeros(shape), /*requires_grad=*/false);
  return Add(a, zeros);
}

Variable Softmax(const Variable& a, int64_t axis) {
  // Shift by a detached max: softmax is shift-invariant, so the gradient
  // is unaffected and the exp stays bounded.
  Tensor max_const = tensor::Max(a.value(), axis, /*keepdim=*/true);
  Variable shifted = Sub(a, Variable(max_const));
  Variable e = Exp(shifted);
  return Div(e, Sum(e, axis, /*keepdim=*/true));
}

Variable MulMask(const Variable& a, const Tensor& mask) {
  return Mul(a, Variable(mask));
}

Variable GruStep(const Variable& xi, const Variable& hh, const Variable& h) {
  const int64_t hd = h.shape().dim(-1);
  SAGDFN_CHECK_GT(hd, 0);
  SAGDFN_CHECK_EQ(xi.shape().dim(-1), 3 * hd);
  SAGDFN_CHECK_EQ(hh.shape().dim(-1), 3 * hd);
  SAGDFN_CHECK_EQ(xi.size(), 3 * h.size());
  SAGDFN_CHECK_EQ(hh.size(), 3 * h.size());
  const int64_t rows = h.size() / hd;
  const int64_t row_grain =
      std::max<int64_t>(1, utils::kElementwiseGrain /
                               std::max<int64_t>(1, hd));

  // Decide up front whether backward will run: only then are the r/z/n
  // gate tensors worth materializing.
  const bool track =
      GradEnabled() &&
      (xi.requires_grad() || hh.requires_grad() || h.requires_grad());

  Tensor out(h.shape());
  Tensor r, z, nc;
  float* pr = nullptr;
  float* pz = nullptr;
  float* pn = nullptr;
  if (track) {
    r = Tensor(h.shape());
    z = Tensor(h.shape());
    nc = Tensor(h.shape());
    pr = r.data();
    pz = z.data();
    pn = nc.data();
  }
  const float* pxi = xi.value().data();
  const float* phh = hh.value().data();
  const float* ph = h.value().data();
  float* po = out.data();
  utils::ParallelFor(0, rows, row_grain, [&](int64_t r0, int64_t r1) {
    const tensor::simd::Kernels& kern = tensor::simd::K();
    for (int64_t row = r0; row < r1; ++row) {
      kern.gru_step(pxi + row * 3 * hd, phh + row * 3 * hd, ph + row * hd,
                    po + row * hd, pr == nullptr ? nullptr : pr + row * hd,
                    pz == nullptr ? nullptr : pz + row * hd,
                    pn == nullptr ? nullptr : pn + row * hd, hd);
    }
  });

  auto nxi = xi.node();
  auto nhh = hh.node();
  auto nh = h.node();
  return MakeOp(
      "GruStep", out, {xi, hh, h},
      [nxi, nhh, nh, r, z, nc, hd, rows, row_grain](const Tensor& g) {
        Tensor dxi(nxi->value.shape());
        Tensor dhh(nhh->value.shape());
        Tensor dh(nh->value.shape());
        const float* pg = g.data();
        const float* pr = r.data();
        const float* pz = z.data();
        const float* pn = nc.data();
        const float* ph = nh->value.data();
        const float* phh = nhh->value.data();
        float* pdxi = dxi.data();
        float* pdhh = dhh.data();
        float* pdh = dh.data();
        utils::ParallelFor(0, rows, row_grain, [&](int64_t r0, int64_t r1) {
          const tensor::simd::Kernels& kern = tensor::simd::K();
          for (int64_t row = r0; row < r1; ++row) {
            kern.gru_step_grad(pg + row * hd, pr + row * hd, pz + row * hd,
                               pn + row * hd, ph + row * hd,
                               phh + row * 3 * hd + 2 * hd,
                               pdxi + row * 3 * hd, pdhh + row * 3 * hd,
                               pdh + row * hd, hd);
          }
        });
        Accumulate(nxi, dxi);
        Accumulate(nhh, dhh);
        Accumulate(nh, dh);
      });
}

Variable L1Loss(const Variable& pred, const Variable& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

Variable MseLoss(const Variable& pred, const Variable& target) {
  Variable diff = Sub(pred, target);
  return MeanAll(Mul(diff, diff));
}

Variable MaskedL1Loss(const Variable& pred, const Variable& target,
                      const Tensor& mask) {
  float mask_mean = tensor::MeanAll(mask).Item();
  SAGDFN_CHECK_GT(mask_mean, 0.0f) << "all-zero mask in MaskedL1Loss";
  Variable masked = Mul(Abs(Sub(pred, target)), Variable(mask));
  return MulScalar(MeanAll(masked), 1.0f / mask_mean);
}

}  // namespace sagdfn::autograd
