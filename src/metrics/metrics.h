#ifndef SAGDFN_METRICS_METRICS_H_
#define SAGDFN_METRICS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sagdfn::metrics {

/// The paper's three evaluation metrics at one horizon.
struct Scores {
  double mae = 0.0;
  double rmse = 0.0;
  /// Fraction (not percent); multiply by 100 for the paper's format.
  double mape = 0.0;

  /// "MAE RMSE MAPE%" with the paper's typical precision.
  std::string ToString() const;
};

/// Masked MAE: mean |pred - truth| over entries where truth != 0 (the
/// METR-LA convention treating 0 as a missing reading).
double MaskedMae(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// Masked RMSE.
double MaskedRmse(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// Masked MAPE (fraction).
double MaskedMape(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// All three at once.
Scores Evaluate(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// Per-horizon evaluation. `pred` and `truth` are [S, f, N] (S evaluation
/// windows); `horizons` lists 1-based horizon steps (e.g. {3, 6, 12}).
/// Each returned entry aggregates that single horizon step, matching the
/// paper's "Horizon 3 / 6 / 12" columns.
std::vector<Scores> EvaluateHorizons(const tensor::Tensor& pred,
                                     const tensor::Tensor& truth,
                                     const std::vector<int64_t>& horizons);

}  // namespace sagdfn::metrics

#endif  // SAGDFN_METRICS_METRICS_H_
