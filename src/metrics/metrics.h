#ifndef SAGDFN_METRICS_METRICS_H_
#define SAGDFN_METRICS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sagdfn::metrics {

/// Readings with 0 < |truth| below this floor are excluded from MAPE (but
/// still score MAE/RMSE): dividing by a near-zero truth would report
/// million-percent errors that say nothing about forecast quality. The
/// value is far below any physical reading in the paper's datasets
/// (speeds in km/h, occupancy counts) yet far above float noise.
inline constexpr double kMapeTruthFloor = 1e-3;

/// The paper's three evaluation metrics at one horizon.
///
/// NaN contract: when every entry of a window is masked (truth == 0, the
/// METR-LA missing-reading convention) there is no signal to score, and
/// each affected metric is NaN — never 0.0, which would read as a perfect
/// forecast. MAPE is additionally NaN when every unmasked truth is below
/// kMapeTruthFloor. Consumers (Trainer early stopping, benches) must
/// treat NaN as "no signal", not as an improvement.
struct Scores {
  double mae = 0.0;
  double rmse = 0.0;
  /// Fraction (not percent); multiply by 100 for the paper's format.
  double mape = 0.0;

  /// True when MAE/RMSE carry signal (at least one unmasked entry).
  bool IsSignal() const;

  /// "MAE RMSE MAPE%" with the paper's typical precision.
  std::string ToString() const;
};

/// Masked MAE: mean |pred - truth| over entries where truth != 0 (the
/// METR-LA convention treating 0 as a missing reading); NaN when every
/// entry is masked.
///
/// Each of the three single-metric helpers runs the same full Evaluate()
/// pass — callers needing more than one metric should call Evaluate()
/// once instead of paying the scan per metric.
double MaskedMae(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// Masked RMSE; NaN when every entry is masked.
double MaskedRmse(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// Masked MAPE (fraction); NaN when no entry has |truth| >=
/// kMapeTruthFloor.
double MaskedMape(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// All three at once, in a single parallel pass over the tensors
/// (deterministic fixed-block reduction; see utils/parallel.h).
Scores Evaluate(const tensor::Tensor& pred, const tensor::Tensor& truth);

/// Per-horizon evaluation. `pred` and `truth` are [S, f, N] (S evaluation
/// windows); `horizons` lists 1-based horizon steps (e.g. {3, 6, 12}).
/// Each returned entry aggregates that single horizon step, matching the
/// paper's "Horizon 3 / 6 / 12" columns.
std::vector<Scores> EvaluateHorizons(const tensor::Tensor& pred,
                                     const tensor::Tensor& truth,
                                     const std::vector<int64_t>& horizons);

}  // namespace sagdfn::metrics

#endif  // SAGDFN_METRICS_METRICS_H_
