#include "metrics/metrics.h"

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "utils/block_reduce.h"
#include "utils/check.h"
#include "utils/parallel.h"
#include "utils/string_util.h"

namespace sagdfn::metrics {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Per-block partials for |err|, err^2, |err|/|truth| over non-missing
/// entries. MAPE keeps its own count: entries with 0 < |truth| <
/// kMapeTruthFloor still score MAE/RMSE but are excluded from the
/// percentage error, so a near-zero reading cannot blow the ratio up by
/// orders of magnitude. The per-element semantics live in the dispatched
/// masked_err kernel (tensor/simd.h); the block structure is the shared
/// DeterministicBlockReduce contract, so the result is bit-identical for
/// any pool size at a fixed SIMD level.
using Accumulator = tensor::simd::MaskedErrAcc;

Accumulator Accumulate(const tensor::Tensor& pred,
                       const tensor::Tensor& truth) {
  SAGDFN_CHECK(pred.shape() == truth.shape())
      << pred.shape().ToString() << " vs " << truth.shape().ToString();
  const float* pp = pred.data();
  const float* pt = truth.data();
  const auto masked_err = tensor::simd::K().masked_err;

  return utils::DeterministicBlockReduce<Accumulator>(
      pred.size(), Accumulator{},
      [&](int64_t lo, int64_t hi) {
        return masked_err(pp + lo, pt + lo, hi - lo, kMapeTruthFloor);
      },
      [](Accumulator& total, const Accumulator& acc) {
        total.abs += acc.abs;
        total.sq += acc.sq;
        total.ape += acc.ape;
        total.count += acc.count;
        total.ape_count += acc.ape_count;
      });
}

Scores ScoresOf(const Accumulator& acc) {
  Scores s;
  s.mae = acc.count > 0 ? acc.abs / acc.count : kNan;
  s.rmse = acc.count > 0 ? std::sqrt(acc.sq / acc.count) : kNan;
  s.mape = acc.ape_count > 0 ? acc.ape / acc.ape_count : kNan;
  return s;
}

}  // namespace

bool Scores::IsSignal() const {
  return std::isfinite(mae) && std::isfinite(rmse);
}

std::string Scores::ToString() const {
  return utils::FormatDouble(mae, 2) + " " + utils::FormatDouble(rmse, 2) +
         " " + utils::FormatDouble(mape * 100.0, 1) + "%";
}

double MaskedMae(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return Evaluate(pred, truth).mae;
}

double MaskedRmse(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return Evaluate(pred, truth).rmse;
}

double MaskedMape(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return Evaluate(pred, truth).mape;
}

Scores Evaluate(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return ScoresOf(Accumulate(pred, truth));
}

std::vector<Scores> EvaluateHorizons(const tensor::Tensor& pred,
                                     const tensor::Tensor& truth,
                                     const std::vector<int64_t>& horizons) {
  SAGDFN_CHECK_EQ(pred.ndim(), 3);
  SAGDFN_CHECK(pred.shape() == truth.shape());
  const int64_t f = pred.dim(1);
  std::vector<Scores> result;
  result.reserve(horizons.size());
  for (int64_t h : horizons) {
    SAGDFN_CHECK_GE(h, 1);
    SAGDFN_CHECK_LE(h, f);
    tensor::Tensor ph = tensor::Slice(pred, 1, h - 1, h);
    tensor::Tensor th = tensor::Slice(truth, 1, h - 1, h);
    result.push_back(Evaluate(ph, th));
  }
  return result;
}

}  // namespace sagdfn::metrics
