#include "metrics/metrics.h"

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/tensor_ops.h"
#include "utils/check.h"
#include "utils/parallel.h"
#include "utils/string_util.h"

namespace sagdfn::metrics {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Accumulates |err|, err^2, |err|/|truth| over non-missing entries.
/// MAPE keeps its own count: entries with 0 < |truth| < kMapeTruthFloor
/// still score MAE/RMSE but are excluded from the percentage error, so a
/// near-zero reading cannot blow the ratio up by orders of magnitude.
struct Accumulator {
  double abs = 0.0;
  double sq = 0.0;
  double ape = 0.0;
  int64_t count = 0;
  int64_t ape_count = 0;

  void Merge(const Accumulator& other) {
    abs += other.abs;
    sq += other.sq;
    ape += other.ape;
    count += other.count;
    ape_count += other.ape_count;
  }
};

Accumulator Accumulate(const tensor::Tensor& pred,
                       const tensor::Tensor& truth) {
  SAGDFN_CHECK(pred.shape() == truth.shape())
      << pred.shape().ToString() << " vs " << truth.shape().ToString();
  const float* pp = pred.data();
  const float* pt = truth.data();
  const int64_t size = pred.size();

  // Deterministic parallel reduction: fixed-size blocks (independent of
  // the thread count) accumulated sequentially inside, then combined in
  // block order — bit-identical for any pool size (see utils/parallel.h).
  const int64_t block = utils::kReduceBlock;
  const int64_t num_blocks = (size + block - 1) / block;
  std::vector<Accumulator> partials(num_blocks);
  utils::ParallelFor(0, num_blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      Accumulator acc;
      const int64_t end = std::min(size, (b + 1) * block);
      for (int64_t i = b * block; i < end; ++i) {
        if (pt[i] == 0.0f) continue;  // missing-reading convention
        const double truth_i = pt[i];
        const double err = static_cast<double>(pp[i]) - truth_i;
        acc.abs += std::fabs(err);
        acc.sq += err * err;
        if (std::fabs(truth_i) >= kMapeTruthFloor) {
          acc.ape += std::fabs(err) / std::fabs(truth_i);
          ++acc.ape_count;
        }
        ++acc.count;
      }
      partials[b] = acc;
    }
  });

  Accumulator total;
  for (const Accumulator& acc : partials) total.Merge(acc);
  return total;
}

Scores ScoresOf(const Accumulator& acc) {
  Scores s;
  s.mae = acc.count > 0 ? acc.abs / acc.count : kNan;
  s.rmse = acc.count > 0 ? std::sqrt(acc.sq / acc.count) : kNan;
  s.mape = acc.ape_count > 0 ? acc.ape / acc.ape_count : kNan;
  return s;
}

}  // namespace

bool Scores::IsSignal() const {
  return std::isfinite(mae) && std::isfinite(rmse);
}

std::string Scores::ToString() const {
  return utils::FormatDouble(mae, 2) + " " + utils::FormatDouble(rmse, 2) +
         " " + utils::FormatDouble(mape * 100.0, 1) + "%";
}

double MaskedMae(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return Evaluate(pred, truth).mae;
}

double MaskedRmse(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return Evaluate(pred, truth).rmse;
}

double MaskedMape(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return Evaluate(pred, truth).mape;
}

Scores Evaluate(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  return ScoresOf(Accumulate(pred, truth));
}

std::vector<Scores> EvaluateHorizons(const tensor::Tensor& pred,
                                     const tensor::Tensor& truth,
                                     const std::vector<int64_t>& horizons) {
  SAGDFN_CHECK_EQ(pred.ndim(), 3);
  SAGDFN_CHECK(pred.shape() == truth.shape());
  const int64_t f = pred.dim(1);
  std::vector<Scores> result;
  result.reserve(horizons.size());
  for (int64_t h : horizons) {
    SAGDFN_CHECK_GE(h, 1);
    SAGDFN_CHECK_LE(h, f);
    tensor::Tensor ph = tensor::Slice(pred, 1, h - 1, h);
    tensor::Tensor th = tensor::Slice(truth, 1, h - 1, h);
    result.push_back(Evaluate(ph, th));
  }
  return result;
}

}  // namespace sagdfn::metrics
