#include "metrics/metrics.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "utils/check.h"
#include "utils/string_util.h"

namespace sagdfn::metrics {
namespace {

/// Accumulates |err|, err^2, |err|/|truth| over non-missing entries.
struct Accumulator {
  double abs = 0.0;
  double sq = 0.0;
  double ape = 0.0;
  int64_t count = 0;
};

Accumulator Accumulate(const tensor::Tensor& pred,
                       const tensor::Tensor& truth) {
  SAGDFN_CHECK(pred.shape() == truth.shape())
      << pred.shape().ToString() << " vs " << truth.shape().ToString();
  Accumulator acc;
  const float* pp = pred.data();
  const float* pt = truth.data();
  for (int64_t i = 0; i < pred.size(); ++i) {
    if (pt[i] == 0.0f) continue;  // missing-reading convention
    const double err = static_cast<double>(pp[i]) - pt[i];
    acc.abs += std::fabs(err);
    acc.sq += err * err;
    acc.ape += std::fabs(err) / std::fabs(pt[i]);
    ++acc.count;
  }
  return acc;
}

}  // namespace

std::string Scores::ToString() const {
  return utils::FormatDouble(mae, 2) + " " + utils::FormatDouble(rmse, 2) +
         " " + utils::FormatDouble(mape * 100.0, 1) + "%";
}

double MaskedMae(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  Accumulator acc = Accumulate(pred, truth);
  return acc.count > 0 ? acc.abs / acc.count : 0.0;
}

double MaskedRmse(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  Accumulator acc = Accumulate(pred, truth);
  return acc.count > 0 ? std::sqrt(acc.sq / acc.count) : 0.0;
}

double MaskedMape(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  Accumulator acc = Accumulate(pred, truth);
  return acc.count > 0 ? acc.ape / acc.count : 0.0;
}

Scores Evaluate(const tensor::Tensor& pred, const tensor::Tensor& truth) {
  Accumulator acc = Accumulate(pred, truth);
  Scores s;
  if (acc.count > 0) {
    s.mae = acc.abs / acc.count;
    s.rmse = std::sqrt(acc.sq / acc.count);
    s.mape = acc.ape / acc.count;
  }
  return s;
}

std::vector<Scores> EvaluateHorizons(const tensor::Tensor& pred,
                                     const tensor::Tensor& truth,
                                     const std::vector<int64_t>& horizons) {
  SAGDFN_CHECK_EQ(pred.ndim(), 3);
  SAGDFN_CHECK(pred.shape() == truth.shape());
  const int64_t f = pred.dim(1);
  std::vector<Scores> result;
  result.reserve(horizons.size());
  for (int64_t h : horizons) {
    SAGDFN_CHECK_GE(h, 1);
    SAGDFN_CHECK_LE(h, f);
    tensor::Tensor ph = tensor::Slice(pred, 1, h - 1, h);
    tensor::Tensor th = tensor::Slice(truth, 1, h - 1, h);
    result.push_back(Evaluate(ph, th));
  }
  return result;
}

}  // namespace sagdfn::metrics
