#ifndef SAGDFN_SERVE_FORECAST_CACHE_H_
#define SAGDFN_SERVE_FORECAST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <version>

#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"

namespace sagdfn::serve {

/// One published tick forecast: immutable once constructed, shared
/// read-only by every concurrent reader. The (model, window_id) pair is
/// the cache key: a forecast is valid exactly as long as no newer tick
/// has arrived for its scenario AND the model it was computed on is
/// still the live one.
struct TickForecast {
  /// The snapshot this forecast was computed on; pins it alive for as
  /// long as any reader holds the forecast.
  std::shared_ptr<const FrozenModel> model;
  /// Monotonic per-scenario tick counter (frames received - 1).
  int64_t window_id = 0;
  /// Scaled predictions [horizon, N].
  tensor::Tensor prediction;
  /// True when this tick ran the O(1) incremental encoder; false for a
  /// full re-encode (warmup, drift guard, or model swap).
  bool incremental = false;
};

/// Lock-free single-slot forecast cache for one scenario.
///
/// The production access pattern for forecasting is millions of readers
/// of ONE distinct per-tick forecast per scenario: a tick's forecast is
/// computed once by the scenario's writer (TickStreamer) and then only
/// read until the next tick. So the cache is a single atomic
/// shared_ptr slot: Read() is a lock-free atomic load (plus refcount) —
/// memory speed, no mutex, no writer starvation — and readers never
/// observe a torn or stale-for-a-new-window value because Publish()
/// replaces the whole immutable TickForecast in one atomic store.
///
/// Invalidation rules (enforced by the writer):
///   - new tick arrives       → Publish() replaces the slot (readers in
///     flight finish on the old forecast they already pinned — that
///     forecast was the newest at the instant they read, which is the
///     strongest guarantee any reader of an asynchronous feed can get);
///   - live model swaps       → Invalidate() clears the slot so no
///     reader is served a forecast from the retired snapshot; the slot
///     stays empty until the writer republishes on the new model.
///
/// Telemetry: read/hit counts are relaxed atomics aggregated into
/// serve.cache.{reads,hits} by whoever snapshots stats();
/// publishes/invalidations bump serve.cache.* counters directly (they
/// are per-tick rare).
class ForecastCache {
 public:
  ForecastCache() = default;
  ForecastCache(const ForecastCache&) = delete;
  ForecastCache& operator=(const ForecastCache&) = delete;

  /// Lock-free: the current forecast, or nullptr when the slot is empty
  /// (pre-warmup, or invalidated by a model swap and not yet
  /// republished). Callers fall back to the engine path on nullptr.
  std::shared_ptr<const TickForecast> Read() const;

  /// Writer side: atomically replaces the slot. `forecast` must be
  /// non-null (use Invalidate() to clear).
  void Publish(std::shared_ptr<const TickForecast> forecast);

  /// Writer side: atomically clears the slot (model swap, scenario
  /// teardown). Readers holding the old forecast keep it alive.
  void Invalidate();

  struct Stats {
    int64_t reads = 0;      ///< Read() calls
    int64_t hits = 0;       ///< Read() calls that returned a forecast
    int64_t publishes = 0;  ///< Publish() calls
    int64_t invalidations = 0;
  };
  Stats stats() const;

 private:
// Under ThreadSanitizer, force the atomic_load/atomic_store free-function
// path: libstdc++'s _Sp_atomic guards its plain pointer with a lock bit
// whose reader-side unlock is a RELAXED fetch_sub, a protocol TSan cannot
// see a happens-before edge through (correct on hardware, reported as a
// race). The free functions use ordinary TSan-instrumented mutexes, so
// TSan still fully checks the cache's publish/read protocol.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAGDFN_FORECAST_CACHE_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SAGDFN_FORECAST_CACHE_TSAN 1
#endif
#if defined(__cpp_lib_atomic_shared_ptr) && \
    !defined(SAGDFN_FORECAST_CACHE_TSAN)
#define SAGDFN_FORECAST_CACHE_ATOMIC_SLOT 1
  std::atomic<std::shared_ptr<const TickForecast>> slot_;
#else
  /// Fallback (pre-C++20 library, or TSan builds): the
  /// atomic_load/atomic_store free functions on shared_ptr.
  std::shared_ptr<const TickForecast> slot_;
#endif
  mutable std::atomic<int64_t> reads_{0};
  mutable std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> publishes_{0};
  std::atomic<int64_t> invalidations_{0};
};

/// Knobs of the per-scenario tick writer.
struct TickStreamerOptions {
  /// Run a FULL re-encode of the retained h-frame window every this many
  /// ticks (0 = never). The incremental chain conditions the hidden
  /// state on EVERY frame since warmup; a periodic full re-encode
  /// restores the paper's h-window conditioning (and bounds any drift
  /// between the streamed distribution and the training windows). This
  /// is a semantic reset, not a numeric repair: incremental ticks are
  /// bit-identical to eagerly re-encoding the accumulated sequence (the
  /// differential test memcmp-verifies it).
  int64_t full_reencode_every = 0;
};

/// The single writer of one scenario's ForecastCache: consumes the
/// scenario's frame stream one tick at a time, computes the new
/// forecast through the precompiled rollout plans, and publishes it.
///
/// Tick cost is O(1) in history length: the GRU encoder hidden state is
/// carried forward across ticks (the TickState), so each tick replays a
/// PlanKind::kIncremental plan — ONE encoder step + the decoder —
/// instead of re-encoding all h frames. The carry contract:
///
///   - warmup: the first h frames buffer; on frame h-1 a kFull replay
///     encodes them from zero init and exports the post-encoder state;
///   - steady state: each tick imports the previous tick's exported
///     state, encodes only the new frame, exports the new state;
///   - the exported state is a byte copy of the plan's hidden slab
///     region, so chaining k incremental ticks is bit-identical to one
///     eager re-encode of all h+k frames received since warmup;
///   - full re-encode (drift guard per full_reencode_every, or model
///     swap): the retained last-h-frame ring replays the kFull plan,
///     restarting the chain.
///
/// Threading: OnTick / SetModel / Invalidate may be called from
/// different threads (the swap observer fires from the swapping
/// thread); they serialize on an internal mutex. Cache readers never
/// take that mutex.
class TickStreamer {
 public:
  /// `cache` must outlive the streamer; `model` is the initial serving
  /// snapshot.
  TickStreamer(std::shared_ptr<const FrozenModel> model, ForecastCache* cache,
               const TickStreamerOptions& options = {});

  /// Feeds the next frame (`frame` [N, C]) and the forecast-window
  /// time-of-day covariates (`future_tod` [horizon]). Computes and
  /// publishes the tick's forecast; returns it, or nullptr while still
  /// warming up (fewer than h frames seen).
  std::shared_ptr<const TickForecast> OnTick(const tensor::Tensor& frame,
                                             const tensor::Tensor& future_tod);

  /// Installs a new serving snapshot: invalidates the cache NOW (no
  /// reader may see a retired model's forecast) and forces a full
  /// re-encode on the next tick. No-op if `model` is the current one.
  void SetModel(std::shared_ptr<const FrozenModel> model);

  /// Hooks `engine`'s swap observer so a registry publish/rollback
  /// invalidates the cache immediately and redirects the streamer to
  /// the new snapshot. The streamer must outlive the engine's use of
  /// the observer (clear it or destroy the engine first).
  void BindEngine(InferenceEngine* engine);

  /// Ticks fed so far minus one; -1 before the first tick.
  int64_t window_id() const;
  /// True when the most recent published tick used the incremental path.
  bool last_tick_incremental() const;

 private:
  std::shared_ptr<const TickForecast> ComputeLocked(
      const tensor::Tensor& future_tod);

  const TickStreamerOptions options_;
  ForecastCache* const cache_;

  mutable std::mutex mu_;
  std::shared_ptr<const FrozenModel> model_;  // guarded by mu_
  /// Last h frames, oldest first (the full-re-encode window and the
  /// warmup buffer). Guarded by mu_.
  std::deque<tensor::Tensor> frames_;
  /// Carried encoder state [state_floats] — valid iff state_valid_.
  tensor::Tensor state_;
  bool state_valid_ = false;  // guarded by mu_
  int64_t window_id_ = -1;    // guarded by mu_
  int64_t ticks_since_full_ = 0;
  bool last_incremental_ = false;
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_FORECAST_CACHE_H_
