#include "serve/registry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <utility>

#include "metrics/metrics.h"
#include "obs/telemetry.h"
#include "utils/check.h"
#include "utils/fault.h"
#include "utils/logging.h"

namespace sagdfn::serve {

namespace fs = ::std::filesystem;

namespace {

/// Bound on both compute-time rings: enough samples for a stable p99,
/// small enough that OnBatch stays O(1)-ish.
constexpr size_t kComputeRingCapacity = 256;

bool AllFinite(const float* data, int64_t size) {
  for (int64_t i = 0; i < size; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

}  // namespace

void ModelRegistry::EmitDecision(const char* event, const std::string& path,
                                 const std::string& detail) const {
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  if (!telemetry.sink_open()) return;
  obs::Event record(event);
  if (!options_.tenant.empty()) record.Str("tenant", options_.tenant);
  record.Str("path", path);
  if (!detail.empty()) record.Str("detail", detail);
  telemetry.Emit(record);
}

ModelRegistry::ModelRegistry(InferenceEngine* engine, RegistryOptions options)
    : engine_(engine), options_(std::move(options)) {
  SAGDFN_CHECK(engine_ != nullptr);
  const std::string prefix = options_.tenant.empty()
                                 ? "registry."
                                 : "registry." + options_.tenant + ".";
  names_.published = prefix + "published";
  names_.rejected = prefix + "rejected";
  names_.rollbacks = prefix + "rollbacks";
  names_.health_passes = prefix + "health_passes";
  SAGDFN_CHECK_GE(options_.health_window, 0);
  SAGDFN_CHECK_GE(options_.max_nonfinite, 0);
  SAGDFN_CHECK_GE(options_.max_batch_compute_us, 0);
  SAGDFN_CHECK_GE(options_.min_health_batches, 1);
  if (options_.eval_x.size() > 0) {
    SAGDFN_CHECK_EQ(options_.eval_x.ndim(), 4);
    SAGDFN_CHECK_EQ(options_.eval_tod.ndim(), 2);
    SAGDFN_CHECK_EQ(options_.eval_y.ndim(), 3);
    SAGDFN_CHECK_EQ(options_.eval_x.dim(0), options_.eval_tod.dim(0));
    SAGDFN_CHECK_EQ(options_.eval_x.dim(0), options_.eval_y.dim(0));
  }
  live_ = engine_->model_snapshot();
  engine_->SetBatchObserver(
      [this](const BatchReport& report) { OnBatch(report); });
}

ModelRegistry::~ModelRegistry() {
  StopWatching();
  engine_->SetBatchObserver(nullptr);
}

utils::Status ModelRegistry::Publish(const std::string& path) {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);

  std::shared_ptr<const FrozenModel> candidate;
  utils::Status gate = ValidateCandidate(path, &candidate);
  if (!gate.ok()) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++stats_.rejected;
    }
    obs::Telemetry::Global().AddCounter(names_.rejected);
    EmitDecision("registry.reject", path, gate.ToString());
    SAGDFN_LOG(Warning) << "ModelRegistry: rejected candidate '" << path
                        << "': " << gate.ToString();
    return gate;
  }

  // Every gate passed: swap is the first (and only) step that touches the
  // live model. Armed probation starts counting with the next batch that
  // runs on the candidate.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    utils::Status swapped = engine_->SwapModel(candidate, SwapKind::kPublish);
    if (!swapped.ok()) {
      ++stats_.rejected;
      return swapped;
    }
    previous_ = std::move(live_);
    live_ = candidate;
    ++stats_.published;
    if (options_.health_window > 0) {
      probation_model_ = candidate.get();
      probation_requests_ = 0;
      probation_nonfinite_ = 0;
      probation_compute_us_.clear();
      baseline_p99_us_ = P99Us(live_compute_us_);
      live_compute_us_.clear();
    } else {
      previous_.reset();  // no probation: nothing to roll back to
    }
  }
  obs::Telemetry::Global().AddCounter(names_.published);
  EmitDecision("registry.publish", path, "");
  SAGDFN_LOG(Info) << "ModelRegistry: published candidate '" << path << "'";
  return utils::Status::Ok();
}

utils::Status ModelRegistry::ValidateCandidate(
    const std::string& path, std::shared_ptr<const FrozenModel>* out) {
  // Gate 0: deterministic fault hook, so tests and drills can fail a
  // publish without crafting a broken file.
  if (utils::FaultInjector::Global().FireCounted(
          utils::FaultSite::kBadCandidate, options_.tenant)) {
    return utils::Status::Internal(
        "fault injection: bad_candidate gate failure");
  }

  std::shared_ptr<const FrozenModel> live;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    live = live_;
  }

  // Gate 1: the hardened loader. Truncated, bit-flipped, or
  // architecture-mismatched checkpoints die here with a clean status.
  std::unique_ptr<FrozenModel> loaded;
  utils::Status status =
      FrozenModel::Load(live->config(), path, &loaded);
  if (!status.ok()) return status;
  std::shared_ptr<const FrozenModel> candidate(std::move(loaded));

  // Gate 2: finite-weights audit over every parameter and buffer. A
  // checkpoint whose payload bytes decode to NaN/Inf passes the loader's
  // structural checks but can never serve a finite forecast.
  for (const auto& [name, param] : candidate->model().NamedParameters()) {
    const tensor::Tensor& value = param.value();
    if (!AllFinite(value.data(), value.size())) {
      return utils::Status::FailedPrecondition(
          "candidate rejected: non-finite values in parameter '" + name +
          "'");
    }
  }
  for (const auto& [name, buffer] : candidate->model().NamedBuffers()) {
    if (!AllFinite(buffer.data(), buffer.size())) {
      return utils::Status::FailedPrecondition(
          "candidate rejected: non-finite values in buffer '" + name + "'");
    }
  }

  // Gate 3: plan dry-run. Compiling the rollout plan and replaying one
  // window proves the candidate can actually execute on the serve path
  // (plan build, arena sizing, adjacency freeze) before it sees traffic.
  const core::SagdfnConfig& config = candidate->config();
  tensor::Tensor dry_x(tensor::Shape(
      {1, config.history, config.num_nodes, config.input_dim}));
  tensor::Tensor dry_tod(tensor::Shape({1, config.horizon}));
  if (options_.eval_x.size() > 0) {
    std::memcpy(dry_x.data(), options_.eval_x.data(),
                dry_x.size() * sizeof(float));
    std::memcpy(dry_tod.data(), options_.eval_tod.data(),
                dry_tod.size() * sizeof(float));
  }
  tensor::Tensor dry_run = candidate->Predict(dry_x, dry_tod);
  if (!AllFinite(dry_run.data(), dry_run.size())) {
    return utils::Status::FailedPrecondition(
        "candidate rejected: dry-run forecast contained non-finite values");
  }

  // Gate 4: held-out metric threshold vs the live model.
  if (options_.eval_x.size() > 0) {
    const double candidate_mae = HeldOutMae(*candidate);
    if (!std::isfinite(candidate_mae)) {
      return utils::Status::FailedPrecondition(
          "candidate rejected: held-out MAE carries no signal");
    }
    const double live_mae = HeldOutMae(*live);
    if (std::isfinite(live_mae) &&
        candidate_mae > live_mae * (1.0 + options_.max_mae_regression)) {
      return utils::Status::FailedPrecondition(
          "candidate rejected: held-out MAE " +
          std::to_string(candidate_mae) + " exceeds live MAE " +
          std::to_string(live_mae) + " by more than " +
          std::to_string(options_.max_mae_regression * 100.0) + "%");
    }
  }

  *out = std::move(candidate);
  return utils::Status::Ok();
}

double ModelRegistry::HeldOutMae(const FrozenModel& model) const {
  if (options_.eval_x.size() == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  tensor::Tensor predictions =
      model.Predict(options_.eval_x, options_.eval_tod);
  return metrics::Evaluate(predictions, options_.eval_y).mae;
}

int64_t ModelRegistry::ScanOnce() {
  // One scan at a time; Publish below takes publish_mu_ per candidate so
  // explicit publishes still interleave with a long scan.
  std::lock_guard<std::mutex> scan_lock(scan_mu_);
  std::vector<std::pair<std::string, CandidateVersion>> found;
  {
    if (options_.watch_dir.empty()) return 0;
    std::error_code ec;
    fs::directory_iterator it(options_.watch_dir, ec);
    if (ec) return 0;
    for (const fs::directory_entry& entry : it) {
      if (!entry.is_regular_file(ec) || ec) continue;
      const std::string name = entry.path().string();
      if (name.size() < 5 || name.substr(name.size() - 5) != ".ckpt") {
        continue;
      }
      CandidateVersion version;
      version.size = entry.file_size(ec);
      if (ec) continue;
      version.mtime = entry.last_write_time(ec).time_since_epoch().count();
      if (ec) continue;
      // Content fingerprint: (size, mtime) alone misses a same-size
      // rewrite landing within the mtime granularity. Only computed per
      // scan for files that survive the cheap checks above.
      version.fingerprint = Fingerprint(name);
      found.emplace_back(name, version);
    }
  }
  std::sort(found.begin(), found.end());

  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.scans;
  }
  int64_t accepted = 0;
  for (const auto& [name, version] : found) {
    const auto it = processed_.find(name);
    if (it != processed_.end() && it->second == version) continue;
    processed_[name] = version;
    if (Publish(name).ok()) ++accepted;
  }
  return accepted;
}

void ModelRegistry::StartWatching(int64_t interval_ms) {
  if (options_.watch_dir.empty()) return;
  SAGDFN_CHECK_GE(interval_ms, 1);
  std::lock_guard<std::mutex> lock(watch_mu_);
  if (watcher_.joinable()) return;
  watch_stop_ = false;
  watcher_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(watch_mu_);
    while (!watch_stop_) {
      lock.unlock();
      ScanOnce();
      lock.lock();
      watch_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return watch_stop_; });
    }
  });
}

void ModelRegistry::StopWatching() {
  std::thread watcher;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = true;
    watcher = std::move(watcher_);
  }
  watch_cv_.notify_all();
  if (watcher.joinable()) watcher.join();
}

void ModelRegistry::OnBatch(const BatchReport& report) {
  std::lock_guard<std::mutex> lock(state_mu_);
  const double compute_us = report.compute_seconds * 1e6;

  if (probation_model_ == nullptr || report.model != probation_model_) {
    // Steady-state (or an in-flight batch still on the old snapshot):
    // feed the baseline ring for the next swap's relative p99 probe.
    if (report.model == live_.get()) {
      live_compute_us_.push_back(compute_us);
      if (live_compute_us_.size() > kComputeRingCapacity) {
        live_compute_us_.pop_front();
      }
    }
    return;
  }

  // Probation accounting for the freshly swapped model.
  probation_requests_ += report.batch_size;
  probation_nonfinite_ += report.nonfinite_requests;
  probation_compute_us_.push_back(compute_us);
  if (probation_compute_us_.size() > kComputeRingCapacity) {
    probation_compute_us_.pop_front();
  }

  if (probation_nonfinite_ > options_.max_nonfinite) {
    RollbackLocked("non-finite forecasts: " +
                   std::to_string(probation_nonfinite_) + " > " +
                   std::to_string(options_.max_nonfinite));
    return;
  }
  if (options_.max_batch_compute_us > 0 &&
      compute_us > static_cast<double>(options_.max_batch_compute_us)) {
    RollbackLocked(
        "batch compute " + std::to_string(static_cast<int64_t>(compute_us)) +
        " us exceeded the absolute limit " +
        std::to_string(options_.max_batch_compute_us) + " us");
    return;
  }
  if (options_.p99_regression_factor > 0.0 && baseline_p99_us_ > 0.0 &&
      static_cast<int64_t>(probation_compute_us_.size()) >=
          options_.min_health_batches) {
    const double p99 = P99Us(probation_compute_us_);
    if (p99 > baseline_p99_us_ * options_.p99_regression_factor) {
      RollbackLocked("batch compute p99 " +
                     std::to_string(static_cast<int64_t>(p99)) +
                     " us exceeded baseline p99 " +
                     std::to_string(static_cast<int64_t>(baseline_p99_us_)) +
                     " us x " +
                     std::to_string(options_.p99_regression_factor));
      return;
    }
  }

  if (probation_requests_ >= options_.health_window) {
    // Probation passed: the candidate is now the trusted live model and
    // its compute samples seed the next baseline.
    probation_model_ = nullptr;
    previous_.reset();
    live_compute_us_ = std::move(probation_compute_us_);
    probation_compute_us_.clear();
    ++stats_.health_passes;
    obs::Telemetry::Global().AddCounter(names_.health_passes);
  }
}

void ModelRegistry::RollbackLocked(const std::string& reason) {
  SAGDFN_CHECK(previous_ != nullptr);
  utils::Status status = engine_->SwapModel(previous_, SwapKind::kRollback);
  // previous_ came through the same gate as every live model; the only
  // way this fails is a programming error, not a runtime condition.
  SAGDFN_CHECK(status.ok()) << status.ToString();
  SAGDFN_LOG(Warning) << "ModelRegistry: health probe tripped (" << reason
                      << "); rolled back to the previous snapshot";
  live_ = std::move(previous_);
  probation_model_ = nullptr;
  probation_requests_ = 0;
  probation_nonfinite_ = 0;
  probation_compute_us_.clear();
  ++stats_.rollbacks;
  obs::Telemetry::Global().AddCounter(names_.rollbacks);
  EmitDecision("registry.rollback", "", reason);
}

uint64_t ModelRegistry::Fingerprint(const std::string& path) {
  // FNV-1a over the file size plus the first and last 4 KiB of content:
  // cheap (two reads regardless of checkpoint size) and sensitive to
  // both the header (format/meta records live up front) and the payload
  // tail (trained weights land late in the file).
  constexpr size_t kBlock = 4096;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&hash](const unsigned char* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      hash ^= data[i];
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  if (file_size < 0) {
    std::fclose(f);
    return 0;
  }
  const auto usize = static_cast<uint64_t>(file_size);
  mix(reinterpret_cast<const unsigned char*>(&usize), sizeof(usize));
  unsigned char block[kBlock];
  std::fseek(f, 0, SEEK_SET);
  mix(block, std::fread(block, 1, kBlock, f));
  if (usize > kBlock) {
    std::fseek(f, -static_cast<long>(std::min<uint64_t>(kBlock, usize)),
               SEEK_END);
    mix(block, std::fread(block, 1, kBlock, f));
  }
  std::fclose(f);
  return hash;
}

double ModelRegistry::P99Us(const std::deque<double>& samples_us) {
  if (samples_us.empty()) return 0.0;
  std::vector<double> sorted(samples_us.begin(), samples_us.end());
  std::sort(sorted.begin(), sorted.end());
  // Unbiased linear interpolation at rank 0.99 * (n-1) — the same
  // estimator as bench::PercentileSorted. The former +0.5 index bias
  // returned the sample max for small probation windows, making the
  // relative-p99 health probe trip on a single outlier batch.
  const double rank = 0.99 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

RegistryStats ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

std::shared_ptr<const FrozenModel> ModelRegistry::live() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return live_;
}

bool ModelRegistry::on_probation() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return probation_model_ != nullptr;
}

}  // namespace sagdfn::serve
