#ifndef SAGDFN_SERVE_FROZEN_MODEL_H_
#define SAGDFN_SERVE_FROZEN_MODEL_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/rollout_plan.h"
#include "core/sagdfn.h"
#include "utils/status.h"

namespace sagdfn::serve {

/// An immutable model snapshot prepared for serving: a SagdfnModel in
/// eval mode (dropout off, SNS exploration disabled) plus the frozen
/// adjacency snapshot (slim A_s + inverse degrees + index set) computed
/// exactly once. After Freeze()/Load() nothing in here mutates, so one
/// FrozenModel is shared read-only by every InferenceEngine worker.
class FrozenModel {
 public:
  /// Default bound on cached rollout plans (see plan_cache_capacity).
  static constexpr int64_t kDefaultPlanCacheCapacity = 16;

  /// Takes ownership of an already-built (trained or restored) model,
  /// switches it to eval mode, and freezes the adjacency.
  /// `plan_cache_capacity` bounds the per-model rollout-plan cache:
  /// plans (and their pre-sized arena slabs) are built per distinct
  /// (batch size, plan kind), and a client sweeping batch sizes must
  /// not grow the map without limit. Least-recently-used entries are
  /// evicted past the cap (in-flight replays keep their plan alive
  /// through the returned shared_ptr).
  static std::unique_ptr<FrozenModel> Freeze(
      std::unique_ptr<core::SagdfnModel> model,
      int64_t plan_cache_capacity = kDefaultPlanCacheCapacity);

  /// Builds a model from `config`, restores it from a v2 checkpoint
  /// written by nn::SaveModule (parameters, buffers, and the trained
  /// index set), and freezes it. Fails cleanly — never returns a
  /// partially populated model — on any checkpoint mismatch.
  static utils::Status Load(const core::SagdfnConfig& config,
                            const std::string& checkpoint_path,
                            std::unique_ptr<FrozenModel>* out,
                            int64_t plan_cache_capacity =
                                kDefaultPlanCacheCapacity);

  /// Writes this frozen model as a memory-mapped weight file (the "SAGM"
  /// format, nn::SaveMappedCheckpoint): all parameters and buffers plus
  /// the frozen adjacency snapshot (a_s, inverse degrees, index set) and
  /// a config fingerprint. Written atomically (verify-before-publish).
  utils::Status Save(const std::string& path) const;

  /// Opens a weight file written by Save() via mmap and builds a frozen
  /// model around it with ZERO parameter copies: parameter storage and
  /// the adjacency snapshot alias the mapped pages (read-only; shared
  /// physically with every other process serving the same file), so load
  /// time is O(index + CSR build) — milliseconds at N=100k — instead of
  /// the heap Load() path's full-checkpoint copy plus attention/entmax
  /// snapshot recomputation. Forecasts are memcmp-identical to Load().
  /// Fails cleanly on a corrupt file or a config mismatch.
  static utils::Status LoadMapped(const core::SagdfnConfig& config,
                                  const std::string& path,
                                  std::unique_ptr<FrozenModel>* out,
                                  int64_t plan_cache_capacity =
                                      kDefaultPlanCacheCapacity);

  /// Thread-safe batched inference: `x` [B, h, N, C], `future_tod`
  /// [B, f] -> scaled predictions [B, f, N]. Per batch row the result is
  /// bit-identical however the rows are batched. Replays the precompiled
  /// rollout plan for the request's batch size (built lazily on first
  /// sight of a batch size, then cached); bit-identical to PredictEager.
  tensor::Tensor Predict(const tensor::Tensor& x,
                         const tensor::Tensor& future_tod) const;

  /// The original autograd-walking eval path (SagdfnModel::Predict with
  /// no plan). Kept for differential tests and benchmarks against the
  /// plan replay.
  tensor::Tensor PredictEager(const tensor::Tensor& x,
                              const tensor::Tensor& future_tod) const;

  /// The cached full-rollout execution plan for `batch`-sized requests,
  /// building it if this batch size has not been seen yet. Thread-safe;
  /// the returned plan is immutable and replayable concurrently.
  std::shared_ptr<const core::RolloutPlan> PlanFor(int64_t batch) const;

  /// Same cache, explicit plan kind: kIncremental plans power the
  /// streaming tick path (see serve::TickStreamer). Each (batch, kind)
  /// pair is one cache entry.
  std::shared_ptr<const core::RolloutPlan> PlanFor(
      int64_t batch, core::PlanKind kind) const;

  /// Current number of cached plans (≤ plan_cache_capacity()). Also
  /// exported as the `serve.plan_cache_size` telemetry gauge on every
  /// insert/evict.
  int64_t plan_cache_size() const;
  int64_t plan_cache_capacity() const { return plan_capacity_; }
  /// Plans evicted over this model's lifetime (LRU past the cap).
  int64_t plan_cache_evictions() const;

  const core::SagdfnModel& model() const { return *model_; }
  const core::AdjacencySnapshot& snapshot() const { return snapshot_; }
  const core::SagdfnConfig& config() const { return model_->config(); }

 private:
  using PlanKey = std::pair<int64_t, core::PlanKind>;

  FrozenModel(std::unique_ptr<core::SagdfnModel> model,
              core::AdjacencySnapshot snapshot, int64_t plan_capacity);

  std::unique_ptr<core::SagdfnModel> model_;
  core::AdjacencySnapshot snapshot_;
  const int64_t plan_capacity_;
  /// Bounded LRU over (batch, kind) → plan. Serving sees a handful of
  /// batch sizes (bounded by the engine's max_batch); the cap defends
  /// against unbounded sweeps. lru_ is most-recent-first; each map
  /// value carries its list position for O(log n) touch. Guarded by
  /// plans_mu_.
  mutable std::mutex plans_mu_;
  mutable std::list<PlanKey> lru_;
  mutable std::map<PlanKey,
                   std::pair<std::shared_ptr<const core::RolloutPlan>,
                             std::list<PlanKey>::iterator>>
      plans_;
  mutable int64_t plan_evictions_ = 0;
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_FROZEN_MODEL_H_
