#ifndef SAGDFN_SERVE_FROZEN_MODEL_H_
#define SAGDFN_SERVE_FROZEN_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/rollout_plan.h"
#include "core/sagdfn.h"
#include "utils/status.h"

namespace sagdfn::serve {

/// An immutable model snapshot prepared for serving: a SagdfnModel in
/// eval mode (dropout off, SNS exploration disabled) plus the frozen
/// adjacency snapshot (slim A_s + inverse degrees + index set) computed
/// exactly once. After Freeze()/Load() nothing in here mutates, so one
/// FrozenModel is shared read-only by every InferenceEngine worker.
class FrozenModel {
 public:
  /// Takes ownership of an already-built (trained or restored) model,
  /// switches it to eval mode, and freezes the adjacency.
  static std::unique_ptr<FrozenModel> Freeze(
      std::unique_ptr<core::SagdfnModel> model);

  /// Builds a model from `config`, restores it from a v2 checkpoint
  /// written by nn::SaveModule (parameters, buffers, and the trained
  /// index set), and freezes it. Fails cleanly — never returns a
  /// partially populated model — on any checkpoint mismatch.
  static utils::Status Load(const core::SagdfnConfig& config,
                            const std::string& checkpoint_path,
                            std::unique_ptr<FrozenModel>* out);

  /// Thread-safe batched inference: `x` [B, h, N, C], `future_tod`
  /// [B, f] -> scaled predictions [B, f, N]. Per batch row the result is
  /// bit-identical however the rows are batched. Replays the precompiled
  /// rollout plan for the request's batch size (built lazily on first
  /// sight of a batch size, then cached); bit-identical to PredictEager.
  tensor::Tensor Predict(const tensor::Tensor& x,
                         const tensor::Tensor& future_tod) const;

  /// The original autograd-walking eval path (SagdfnModel::Predict with
  /// no plan). Kept for differential tests and benchmarks against the
  /// plan replay.
  tensor::Tensor PredictEager(const tensor::Tensor& x,
                              const tensor::Tensor& future_tod) const;

  /// The cached execution plan for `batch`-sized requests, building it if
  /// this batch size has not been seen yet. Thread-safe; the returned
  /// plan is immutable and replayable concurrently.
  std::shared_ptr<const core::RolloutPlan> PlanFor(int64_t batch) const;

  const core::SagdfnModel& model() const { return *model_; }
  const core::AdjacencySnapshot& snapshot() const { return snapshot_; }
  const core::SagdfnConfig& config() const { return model_->config(); }

 private:
  FrozenModel(std::unique_ptr<core::SagdfnModel> model,
              core::AdjacencySnapshot snapshot);

  std::unique_ptr<core::SagdfnModel> model_;
  core::AdjacencySnapshot snapshot_;
  /// Plans are shape-specific; serving sees a handful of batch sizes
  /// (bounded by the engine's max_batch), so a small map per model is
  /// enough. Guarded by plans_mu_.
  mutable std::mutex plans_mu_;
  mutable std::map<int64_t, std::shared_ptr<const core::RolloutPlan>> plans_;
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_FROZEN_MODEL_H_
