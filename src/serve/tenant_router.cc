#include "serve/tenant_router.h"

#include <algorithm>
#include <utility>

namespace sagdfn::serve {

TenantRouter::TenantRouter(TenantRouterOptions options)
    : options_(options) {}

TenantRouter::~TenantRouter() {
  // Drop every tenant reference the router holds. Any requester still
  // inside Submit keeps its pinned tenant alive until the call returns;
  // the stack then tears down in registry -> engine -> streamer order.
  std::map<std::string, std::shared_ptr<Tenant>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(tenants_);
  }
}

utils::Status TenantRouter::AddTenant(
    const std::string& id, std::shared_ptr<const FrozenModel> model,
    TenantConfig config) {
  if (id.empty()) {
    return utils::Status::InvalidArgument("tenant id must be non-empty");
  }
  if (model == nullptr) {
    return utils::Status::InvalidArgument("tenant model must be non-null");
  }

  // Reserve the worker grant under the lock, but build the stack (thread
  // spawns, observer hookup) outside it so a slow tenant bring-up never
  // blocks routing for the tenants already serving.
  int64_t granted = std::max<int64_t>(1, config.engine.num_workers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(id) > 0) {
      return utils::Status::InvalidArgument("duplicate tenant id: " + id);
    }
    if (options_.worker_budget > 0) {
      const int64_t remaining = options_.worker_budget - workers_in_use_;
      granted = std::max<int64_t>(1, std::min(granted, remaining));
    }
    workers_in_use_ += granted;
    // Placeholder reserves the id so a concurrent duplicate AddTenant
    // fails instead of double-building.
    tenants_[id] = nullptr;
  }

  config.engine.tenant = id;
  config.engine.num_workers = granted;
  config.registry.tenant = id;

  auto tenant = std::make_shared<Tenant>();
  tenant->id = id;
  tenant->workers = granted;
  if (config.enable_streaming) {
    tenant->cache = std::make_unique<ForecastCache>();
    tenant->streamer = std::make_unique<TickStreamer>(
        model, tenant->cache.get(), config.streamer);
  }
  tenant->engine =
      std::make_unique<InferenceEngine>(std::move(model), config.engine);
  if (tenant->streamer != nullptr) {
    tenant->streamer->BindEngine(tenant->engine.get());
  }
  tenant->registry = std::make_unique<ModelRegistry>(tenant->engine.get(),
                                                     config.registry);

  std::lock_guard<std::mutex> lock(mu_);
  tenants_[id] = std::move(tenant);
  return utils::Status::Ok();
}

utils::Status TenantRouter::RemoveTenant(const std::string& id) {
  std::shared_ptr<Tenant> tenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(id);
    if (it == tenants_.end() || it->second == nullptr) {
      return utils::Status::NotFound("unknown tenant: " + id);
    }
    tenant = std::move(it->second);
    tenants_.erase(it);
    workers_in_use_ -= tenant->workers;
  }
  // Drain outside the router lock: in-flight futures complete per the
  // tenant's drain_on_shutdown policy without stalling other tenants'
  // routing. Submitters that pinned this tenant before the erase finish
  // against the shutting-down engine (their futures are satisfied with
  // FailedPrecondition at worst, never left dangling).
  tenant->engine->Shutdown();
  tenant.reset();
  return utils::Status::Ok();
}

std::shared_ptr<TenantRouter::Tenant> TenantRouter::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return nullptr;
  return it->second;  // nullptr while a concurrent AddTenant is building
}

namespace {

std::future<Forecast> UnknownTenantFuture(const std::string& id) {
  std::promise<Forecast> promise;
  promise.set_value(
      Forecast{utils::Status::NotFound("unknown tenant: " + id), {}});
  return promise.get_future();
}

}  // namespace

std::future<Forecast> TenantRouter::Submit(const std::string& tenant,
                                           tensor::Tensor x,
                                           tensor::Tensor future_tod) {
  std::shared_ptr<Tenant> t = Find(tenant);
  if (t == nullptr) return UnknownTenantFuture(tenant);
  return t->engine->Submit(std::move(x), std::move(future_tod));
}

std::future<Forecast> TenantRouter::Submit(const std::string& tenant,
                                           tensor::Tensor x,
                                           tensor::Tensor future_tod,
                                           std::chrono::microseconds timeout) {
  std::shared_ptr<Tenant> t = Find(tenant);
  if (t == nullptr) return UnknownTenantFuture(tenant);
  return t->engine->Submit(std::move(x), std::move(future_tod), timeout);
}

utils::Status TenantRouter::Publish(const std::string& tenant,
                                    const std::string& path) {
  std::shared_ptr<Tenant> t = Find(tenant);
  if (t == nullptr) {
    return utils::Status::NotFound("unknown tenant: " + tenant);
  }
  return t->registry->Publish(path);
}

std::shared_ptr<const TickForecast> TenantRouter::OnTick(
    const std::string& tenant, const tensor::Tensor& frame,
    const tensor::Tensor& future_tod) {
  std::shared_ptr<Tenant> t = Find(tenant);
  if (t == nullptr || t->streamer == nullptr) return nullptr;
  return t->streamer->OnTick(frame, future_tod);
}

std::shared_ptr<const TickForecast> TenantRouter::ReadCached(
    const std::string& tenant) const {
  std::shared_ptr<Tenant> t = Find(tenant);
  if (t == nullptr || t->cache == nullptr) return nullptr;
  return t->cache->Read();
}

std::shared_ptr<const FrozenModel> TenantRouter::live(
    const std::string& tenant) const {
  std::shared_ptr<Tenant> t = Find(tenant);
  if (t == nullptr) return nullptr;
  return t->engine->model_snapshot();
}

bool TenantRouter::on_probation(const std::string& tenant) const {
  std::shared_ptr<Tenant> t = Find(tenant);
  return t != nullptr && t->registry->on_probation();
}

std::vector<std::string> TenantRouter::Tenants() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(mu_);
  ids.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    if (tenant != nullptr) ids.push_back(id);
  }
  return ids;
}

std::vector<TenantStats> TenantRouter::Stats() const {
  std::vector<std::shared_ptr<Tenant>> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinned.reserve(tenants_.size());
    for (const auto& [id, tenant] : tenants_) {
      if (tenant != nullptr) pinned.push_back(tenant);
    }
  }
  std::vector<TenantStats> out;
  out.reserve(pinned.size());
  for (const auto& t : pinned) {
    TenantStats stats;
    stats.id = t->id;
    stats.workers = t->workers;
    stats.engine = t->engine->stats();
    stats.registry = t->registry->stats();
    if (t->cache != nullptr) stats.cache = t->cache->stats();
    out.push_back(std::move(stats));
  }
  return out;
}

utils::Status TenantRouter::StatsFor(const std::string& tenant,
                                     TenantStats* out) const {
  std::shared_ptr<Tenant> t = Find(tenant);
  if (t == nullptr) {
    return utils::Status::NotFound("unknown tenant: " + tenant);
  }
  out->id = t->id;
  out->workers = t->workers;
  out->engine = t->engine->stats();
  out->registry = t->registry->stats();
  if (t->cache != nullptr) out->cache = t->cache->stats();
  return utils::Status::Ok();
}

int64_t TenantRouter::WorkersGranted(const std::string& tenant) const {
  std::shared_ptr<Tenant> t = Find(tenant);
  return t == nullptr ? -1 : t->workers;
}

}  // namespace sagdfn::serve
