#ifndef SAGDFN_SERVE_REGISTRY_H_
#define SAGDFN_SERVE_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/status.h"

namespace sagdfn::serve {

/// Quality-gate and health-probe knobs of the ModelRegistry.
struct RegistryOptions {
  // -- Quality gate (pre-swap) ----------------------------------------------

  /// Held-out evaluation windows for the metric gate and the plan
  /// dry-run: `eval_x` [S, h, N, C], `eval_tod` [S, f], `eval_y`
  /// [S, f, N] in the same space as FrozenModel::Predict's output
  /// (callers typically pass scaled targets). Empty tensors disable the
  /// metric gate; the dry-run then uses a zero window.
  tensor::Tensor eval_x;
  tensor::Tensor eval_tod;
  tensor::Tensor eval_y;
  /// A candidate passes the metric gate when its held-out MAE is at most
  /// live_mae * (1 + max_mae_regression). A candidate whose MAE is NaN
  /// (no signal) always fails; a live model without signal disables the
  /// relative comparison for that publish.
  double max_mae_regression = 0.05;

  // -- Health probes (post-swap probation) ----------------------------------

  /// A freshly swapped-in model is on probation until this many requests
  /// have completed on it; any tripped probe inside the window rolls the
  /// engine back to the previous snapshot. 0 disables probation.
  int64_t health_window = 64;
  /// Non-finite forecasts tolerated inside the probation window before
  /// rollback (the engine already fails those requests individually).
  int64_t max_nonfinite = 0;
  /// Relative latency probe: rollback when the probation model's p99
  /// batch-compute time exceeds the pre-swap baseline p99 times this
  /// factor. Needs `min_health_batches` probation samples and a recorded
  /// baseline; <= 0 disables.
  double p99_regression_factor = 3.0;
  /// Absolute latency probe: rollback as soon as one probation batch's
  /// compute time exceeds this many microseconds. 0 disables.
  int64_t max_batch_compute_us = 0;
  /// Minimum probation batches before the relative p99 probe can fire
  /// (a single cold-cache batch should not trigger a rollback).
  int64_t min_health_batches = 4;

  // -- Candidate intake -----------------------------------------------------

  /// Directory scanned for candidate checkpoints (*.ckpt). Empty disables
  /// scanning; Publish() still works.
  std::string watch_dir;

  /// Tenant id owning this registry in a multi-tenant process. Empty
  /// keeps the legacy process-global names (registry.*); when set,
  /// counters are namespaced registry.<tenant>.*, every JSONL decision
  /// event carries a "tenant" field, and the bad_candidate fault probe
  /// carries the tenant id so a `@tenant=ID`-qualified spec fails only
  /// this registry's publishes. Without this, two registries watching
  /// different directories would interleave indistinguishable
  /// registry.publish/reject records into one sink.
  std::string tenant;
};

/// Counters of one registry's lifetime (all monotonic).
struct RegistryStats {
  /// Candidates that passed the gate and were swapped into the engine.
  int64_t published = 0;
  /// Candidates rejected by the quality gate (load failure, non-finite
  /// weights, dry-run failure, metric regression, injected bad_candidate).
  int64_t rejected = 0;
  /// Health-probe rollbacks to the previous snapshot.
  int64_t rollbacks = 0;
  /// Probation windows completed without a tripped probe.
  int64_t health_passes = 0;
  /// ScanOnce() passes (manual or from the watcher thread).
  int64_t scans = 0;
};

/// Hot-swap model registry: the glue between verify-before-publish v2
/// checkpoints and the serving engine.
///
/// Lifecycle of a candidate (Publish or watched-directory pickup):
///   1. gate: load through the hardened checkpoint loader (any corrupt /
///      truncated / mismatched file is rejected here),
///   2. gate: finite-weights audit over every parameter and buffer,
///   3. gate: plan dry-run — compile the rollout plan and run one window,
///      rejecting a candidate whose forecast is non-finite,
///   4. gate: held-out metric threshold vs the live model (when eval
///      windows are configured),
///   5. swap: InferenceEngine::SwapModel — atomic, in-flight batches
///      finish on the old snapshot,
///   6. probation: for the next health_window requests the registry
///      watches batch reports (installed as the engine's BatchObserver);
///      a tripped probe (non-finite forecasts, absolute or relative
///      latency regression) swaps the previous snapshot back in.
///
/// A rejected candidate never changes the engine's live pointer — the
/// swap is the last step, after every gate has passed.
///
/// Telemetry: counters registry.{published,rejected,rollbacks,
/// health_passes} (registry.<tenant>.* when RegistryOptions::tenant is
/// set), plus one "registry.publish" / "registry.reject" /
/// "registry.rollback" event per decision when a JSONL sink is open;
/// multi-tenant decisions carry a "tenant" field.
///
/// Thread safety: Publish/ScanOnce may be called from any thread
/// (publishes are serialized); the health probe runs on engine worker
/// threads via the batch observer. The registry must outlive nothing —
/// it unhooks its observer from the engine on destruction, and the
/// engine must outlive the registry.
class ModelRegistry {
 public:
  /// `engine` must outlive the registry. Installs the registry as the
  /// engine's batch observer.
  ModelRegistry(InferenceEngine* engine, RegistryOptions options);

  /// Stops the watcher thread and unhooks the batch observer.
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Runs the full quality gate on the checkpoint at `path` and, on
  /// success, swaps it into the engine and arms the probation window.
  /// On failure the live model is untouched and the status says which
  /// gate tripped.
  utils::Status Publish(const std::string& path);

  /// Scans watch_dir once for new or modified *.ckpt files (processed in
  /// name order; a file is retried when its size or mtime changes) and
  /// publishes each. Returns the number of accepted candidates.
  int64_t ScanOnce();

  /// Starts a background thread calling ScanOnce() every `interval_ms`.
  /// No-op when watch_dir is empty or a watcher is already running.
  void StartWatching(int64_t interval_ms);

  /// Stops and joins the watcher thread (idempotent).
  void StopWatching();

  RegistryStats stats() const;

  /// The snapshot the registry believes is live (== the engine's, except
  /// transiently while a swap is being applied).
  std::shared_ptr<const FrozenModel> live() const;

  /// True while a swapped-in model is still inside its probation window.
  bool on_probation() const;

 private:
  /// Loads + gates a candidate; fills `out` only when every gate passes.
  utils::Status ValidateCandidate(const std::string& path,
                                  std::shared_ptr<const FrozenModel>* out);

  /// Held-out MAE of `model` over the configured eval windows (NaN when
  /// no eval windows are configured).
  double HeldOutMae(const FrozenModel& model) const;

  /// The engine's per-batch callback (runs on worker threads).
  void OnBatch(const BatchReport& report);

  /// Emits one tenant-tagged JSONL decision record (no-op without a
  /// sink).
  void EmitDecision(const char* event, const std::string& path,
                    const std::string& detail) const;

  /// Rolls the engine back to previous_ (caller holds state_mu_).
  void RollbackLocked(const std::string& reason);

  static double P99Us(const std::deque<double>& samples_us);

  /// Identity of one candidate file version for watch-dir dedup.
  /// (size, mtime) alone misses a candidate rewritten with identical
  /// size within the filesystem's mtime granularity — exactly what a
  /// fixed-architecture re-publish produces — so the content
  /// fingerprint (FNV-1a over the size plus the first and last 4 KiB
  /// of payload) is part of the key.
  struct CandidateVersion {
    uint64_t size = 0;
    int64_t mtime = 0;
    uint64_t fingerprint = 0;
    bool operator==(const CandidateVersion&) const = default;
    bool operator<(const CandidateVersion& o) const {
      return std::tie(size, mtime, fingerprint) <
             std::tie(o.size, o.mtime, o.fingerprint);
    }
  };

  /// The content fingerprint of `path` (0 on read failure — treated as
  /// a distinct version so an unreadable-then-fixed file is retried).
  static uint64_t Fingerprint(const std::string& path);

  InferenceEngine* engine_;
  RegistryOptions options_;

  /// Counter names, prefixed with the tenant id once at construction.
  struct TelemetryNames {
    std::string published;
    std::string rejected;
    std::string rollbacks;
    std::string health_passes;
  };
  TelemetryNames names_;

  /// Serializes Publish() callers.
  std::mutex publish_mu_;

  /// Serializes ScanOnce() callers; guards processed_.
  std::mutex scan_mu_;

  /// Guards live_/previous_/probation state, stats_, and the compute-time
  /// rings. Taken by OnBatch on every micro-batch — keep hold times short.
  mutable std::mutex state_mu_;
  std::shared_ptr<const FrozenModel> live_;
  std::shared_ptr<const FrozenModel> previous_;
  RegistryStats stats_;

  // Probation window state (valid while probation_model_ != nullptr).
  const FrozenModel* probation_model_ = nullptr;
  int64_t probation_requests_ = 0;
  int64_t probation_nonfinite_ = 0;
  std::deque<double> probation_compute_us_;
  double baseline_p99_us_ = 0.0;

  /// Recent batch-compute times of the live (non-probation) model, the
  /// baseline for the relative p99 probe. Bounded ring.
  std::deque<double> live_compute_us_;

  /// Watched-directory bookkeeping: path -> (size, mtime ticks, content
  /// fingerprint) of the last version processed (accepted or rejected).
  std::map<std::string, CandidateVersion> processed_;

  // Watcher thread machinery.
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool watch_stop_ = false;
  std::thread watcher_;
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_REGISTRY_H_
