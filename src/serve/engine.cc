#include "serve/engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/telemetry.h"
#include "utils/check.h"

namespace sagdfn::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - start)
      .count();
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<const FrozenModel> model,
                                 const EngineOptions& options)
    : model_(std::move(model)), options_(options) {
  SAGDFN_CHECK(model_ != nullptr);
  SAGDFN_CHECK_GE(options_.num_workers, 1);
  SAGDFN_CHECK_GE(options_.max_batch, 1);
  SAGDFN_CHECK_GE(options_.max_wait_us, 0);
  SAGDFN_CHECK_GE(options_.max_queue_depth, 1);
  workers_.reserve(options_.num_workers);
  for (int64_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceEngine::~InferenceEngine() { Shutdown(); }

std::future<Forecast> InferenceEngine::RejectedFuture(utils::Status status) {
  std::promise<Forecast> promise;
  std::future<Forecast> future = promise.get_future();
  promise.set_value(Forecast{std::move(status), tensor::Tensor()});
  return future;
}

std::future<Forecast> InferenceEngine::Submit(tensor::Tensor x,
                                              tensor::Tensor future_tod) {
  const auto reject = [this](utils::Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
    obs::Telemetry::Global().AddCounter("serve.requests.rejected");
    return RejectedFuture(std::move(status));
  };

  const core::SagdfnConfig& config = model_->config();
  if (x.ndim() != 3 || x.dim(0) != config.history ||
      x.dim(1) != config.num_nodes || x.dim(2) != config.input_dim) {
    return reject(utils::Status::InvalidArgument(
        "request x must be [h, N, C] = [" +
        std::to_string(config.history) + ", " +
        std::to_string(config.num_nodes) + ", " +
        std::to_string(config.input_dim) + "], got " +
        x.shape().ToString()));
  }
  if (future_tod.ndim() != 1 || future_tod.dim(0) != config.horizon) {
    return reject(utils::Status::InvalidArgument(
        "request future_tod must be [f] = [" +
        std::to_string(config.horizon) + "], got " +
        future_tod.shape().ToString()));
  }

  Request request;
  request.x = std::move(x);
  request.future_tod = std::move(future_tod);
  request.enqueued = Clock::now();
  std::future<Forecast> future = request.promise.get_future();

  utils::Status reject_status;
  int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject_status = utils::Status::FailedPrecondition(
          "inference engine is shutting down");
    } else if (static_cast<int64_t>(queue_.size()) >=
               options_.max_queue_depth) {
      reject_status = utils::Status::ResourceExhausted(
          "inference queue full (" +
          std::to_string(options_.max_queue_depth) + " requests)");
    } else {
      queue_.push_back(std::move(request));
      ++stats_.submitted;
      depth = static_cast<int64_t>(queue_.size());
    }
  }
  if (!reject_status.ok()) return reject(std::move(reject_status));
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  telemetry.AddCounter("serve.requests.submitted");
  telemetry.SetGauge("serve.queue_depth", static_cast<double>(depth));
  queue_cv_.notify_one();
  return future;
}

void InferenceEngine::WorkerLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (queue_.empty()) {
          if (stopping_) return;
          queue_cv_.wait(lock);
          continue;
        }
        // A batch is ready when it is full, its oldest request has waited
        // max_wait_us, or the engine is draining (no point waiting for
        // arrivals that can no longer come).
        if (stopping_ ||
            static_cast<int64_t>(queue_.size()) >= options_.max_batch ||
            options_.max_wait_us == 0) {
          break;
        }
        const auto deadline = queue_.front().enqueued + max_wait;
        if (Clock::now() >= deadline) break;
        queue_cv_.wait_until(lock, deadline);
      }
      const int64_t take = std::min<int64_t>(
          options_.max_batch, static_cast<int64_t>(queue_.size()));
      batch.reserve(take);
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      obs::Telemetry::Global().SetGauge(
          "serve.queue_depth", static_cast<double>(queue_.size()));
    }
    // Wake siblings: more requests may remain for another batch, and
    // drain-mode shutdown needs every worker to re-check the queue.
    queue_cv_.notify_all();
    RunBatch(std::move(batch));
  }
}

void InferenceEngine::RunBatch(std::vector<Request> batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  SAGDFN_CHECK_GT(b, 0);
  const core::SagdfnConfig& config = model_->config();
  const int64_t sample = config.history * config.num_nodes *
                         config.input_dim;
  const int64_t f = config.horizon;
  const int64_t n = config.num_nodes;

  // Stack along the batch dimension. Predict() is batch-row independent,
  // so this composition does not change any request's bytes.
  tensor::Tensor x(tensor::Shape(
      {b, config.history, config.num_nodes, config.input_dim}));
  tensor::Tensor tod(tensor::Shape({b, f}));
  for (int64_t i = 0; i < b; ++i) {
    std::memcpy(x.data() + i * sample, batch[i].x.data(),
                sample * sizeof(float));
    std::memcpy(tod.data() + i * f, batch[i].future_tod.data(),
                f * sizeof(float));
  }

  tensor::Tensor predictions;
  {
    SAGDFN_SCOPED_TIMER("serve.batch.compute");
    predictions = model_->Predict(x, tod);  // [B, f, N]
  }

  obs::Telemetry& telemetry = obs::Telemetry::Global();
  for (int64_t i = 0; i < b; ++i) {
    tensor::Tensor forecast(tensor::Shape({f, n}));
    std::memcpy(forecast.data(), predictions.data() + i * f * n,
                f * n * sizeof(float));
    telemetry.RecordDuration("serve.request.latency",
                             SecondsSince(batch[i].enqueued));
    batch[i].promise.set_value(
        Forecast{utils::Status::Ok(), std::move(forecast)});
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed += b;
    ++stats_.batches;
  }
  telemetry.AddCounter("serve.requests.completed", b);
  telemetry.AddCounter("serve.batches");
  telemetry.SetGauge("serve.last_batch_size", static_cast<double>(b));
}

void InferenceEngine::Shutdown() {
  // Serializes concurrent Shutdown()/destructor calls; workers never call
  // Shutdown, so holding this across the join cannot deadlock.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);

  std::vector<Request> rejected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!options_.drain_on_shutdown) {
      while (!queue_.empty()) {
        rejected.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.rejected += static_cast<int64_t>(rejected.size());
    }
  }
  queue_cv_.notify_all();
  for (Request& request : rejected) {
    request.promise.set_value(Forecast{
        utils::Status::FailedPrecondition(
            "inference engine shut down before this request ran"),
        tensor::Tensor()});
    obs::Telemetry::Global().AddCounter("serve.requests.rejected");
  }

  if (!joined_) {
    for (std::thread& worker : workers_) worker.join();
    joined_ = true;
  }
  // Drain mode leaves nothing behind by construction; double-check so a
  // future can never dangle even if a policy bug slipped through.
  std::vector<Request> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!queue_.empty()) {
      leftovers.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  for (Request& request : leftovers) {
    request.promise.set_value(Forecast{
        utils::Status::Internal("request missed by shutdown drain"),
        tensor::Tensor()});
  }
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats snapshot = stats_;
  snapshot.queue_depth = static_cast<int64_t>(queue_.size());
  return snapshot;
}

}  // namespace sagdfn::serve
