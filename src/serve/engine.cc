#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/telemetry.h"
#include "utils/check.h"
#include "utils/fault.h"

namespace sagdfn::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - start)
      .count();
}

/// Request-shape compatibility between two snapshots: everything a queued
/// request was validated against must agree, or a swap would strand it.
bool RequestCompatible(const core::SagdfnConfig& a,
                       const core::SagdfnConfig& b) {
  return a.history == b.history && a.num_nodes == b.num_nodes &&
         a.input_dim == b.input_dim && a.horizon == b.horizon;
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<const FrozenModel> model,
                                 const EngineOptions& options)
    : options_(options), model_(std::move(model)) {
  SAGDFN_CHECK(model_ != nullptr);
  // serve.* for the legacy single-tenant process, serve.<tenant>.* when
  // this engine is one lane of a multi-tenant router.
  const std::string prefix =
      options_.tenant.empty() ? "serve." : "serve." + options_.tenant + ".";
  names_.submitted = prefix + "requests.submitted";
  names_.completed = prefix + "requests.completed";
  names_.rejected = prefix + "requests.rejected";
  names_.timed_out = prefix + "requests.timed_out";
  names_.shed = prefix + "requests.shed";
  names_.nonfinite = prefix + "requests.nonfinite";
  names_.batches = prefix + "batches";
  names_.swaps = prefix + "swaps";
  names_.rollbacks = prefix + "rollbacks";
  names_.queue_depth = prefix + "queue_depth";
  names_.last_batch_size = prefix + "last_batch_size";
  names_.batch_compute = prefix + "batch.compute";
  names_.request_latency = prefix + "request.latency";
  SAGDFN_CHECK_GE(options_.num_workers, 1);
  SAGDFN_CHECK_GE(options_.max_batch, 1);
  SAGDFN_CHECK_GE(options_.max_wait_us, 0);
  SAGDFN_CHECK_GE(options_.max_queue_depth, 1);
  SAGDFN_CHECK_GE(options_.shed_queue_depth, 0);
  SAGDFN_CHECK_GE(options_.default_deadline_us, 0);
  workers_.reserve(options_.num_workers);
  for (int64_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceEngine::~InferenceEngine() { Shutdown(); }

std::future<Forecast> InferenceEngine::RejectedFuture(utils::Status status) {
  std::promise<Forecast> promise;
  std::future<Forecast> future = promise.get_future();
  promise.set_value(Forecast{std::move(status), tensor::Tensor()});
  return future;
}

std::future<Forecast> InferenceEngine::Submit(tensor::Tensor x,
                                              tensor::Tensor future_tod) {
  const Clock::time_point deadline =
      options_.default_deadline_us > 0
          ? Clock::now() + std::chrono::microseconds(options_.default_deadline_us)
          : Clock::time_point::max();
  return SubmitInternal(std::move(x), std::move(future_tod), deadline);
}

std::future<Forecast> InferenceEngine::Submit(
    tensor::Tensor x, tensor::Tensor future_tod,
    std::chrono::microseconds timeout) {
  const Clock::time_point deadline = timeout.count() > 0
                                         ? Clock::now() + timeout
                                         : Clock::time_point::max();
  return SubmitInternal(std::move(x), std::move(future_tod), deadline);
}

std::future<Forecast> InferenceEngine::SubmitInternal(
    tensor::Tensor x, tensor::Tensor future_tod,
    Clock::time_point deadline) {
  const auto reject = [this](utils::Status status, int64_t EngineStats::*slot,
                             const std::string& counter) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++(stats_.*slot);
    }
    obs::Telemetry::Global().AddCounter(counter);
    return RejectedFuture(std::move(status));
  };

  core::SagdfnConfig config;
  {
    std::lock_guard<std::mutex> lock(mu_);
    config = model_->config();
  }
  if (x.ndim() != 3 || x.dim(0) != config.history ||
      x.dim(1) != config.num_nodes || x.dim(2) != config.input_dim) {
    return reject(utils::Status::InvalidArgument(
                      "request x must be [h, N, C] = [" +
                      std::to_string(config.history) + ", " +
                      std::to_string(config.num_nodes) + ", " +
                      std::to_string(config.input_dim) + "], got " +
                      x.shape().ToString()),
                  &EngineStats::rejected, names_.rejected);
  }
  if (future_tod.ndim() != 1 || future_tod.dim(0) != config.horizon) {
    return reject(utils::Status::InvalidArgument(
                      "request future_tod must be [f] = [" +
                      std::to_string(config.horizon) + "], got " +
                      future_tod.shape().ToString()),
                  &EngineStats::rejected, names_.rejected);
  }
  if (deadline != Clock::time_point::max() && Clock::now() >= deadline) {
    return reject(
        utils::Status::DeadlineExceeded("request deadline already expired"),
        &EngineStats::timed_out, names_.timed_out);
  }

  Request request;
  request.x = std::move(x);
  request.future_tod = std::move(future_tod);
  request.enqueued = Clock::now();
  request.deadline = deadline;
  std::future<Forecast> future = request.promise.get_future();

  utils::Status reject_status;
  int64_t EngineStats::*reject_slot = &EngineStats::rejected;
  const std::string* reject_counter = &names_.rejected;
  int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject_status = utils::Status::FailedPrecondition(
          "inference engine is shutting down");
    } else if (static_cast<int64_t>(queue_.size()) >=
               options_.max_queue_depth) {
      reject_status = utils::Status::ResourceExhausted(
          "inference queue full (" +
          std::to_string(options_.max_queue_depth) + " requests)");
    } else if (options_.shed_queue_depth > 0 &&
               static_cast<int64_t>(queue_.size()) >=
                   options_.shed_queue_depth) {
      reject_status = utils::Status::Unavailable(
          "shedding load: " + std::to_string(queue_.size()) +
          " requests already queued (watermark " +
          std::to_string(options_.shed_queue_depth) + ")");
      reject_slot = &EngineStats::shed;
      reject_counter = &names_.shed;
    } else {
      queue_.push_back(std::move(request));
      ++stats_.submitted;
      depth = static_cast<int64_t>(queue_.size());
    }
  }
  if (!reject_status.ok()) {
    return reject(std::move(reject_status), reject_slot, *reject_counter);
  }
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  telemetry.AddCounter(names_.submitted);
  telemetry.SetGauge(names_.queue_depth, static_cast<double>(depth));
  queue_cv_.notify_one();
  return future;
}

utils::Status InferenceEngine::SwapModel(
    std::shared_ptr<const FrozenModel> model, SwapKind kind) {
  if (model == nullptr) {
    return utils::Status::InvalidArgument("SwapModel: model is null");
  }
  std::shared_ptr<const FrozenModel> installed = model;
  std::shared_ptr<const SwapObserver> swap_observer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!RequestCompatible(model_->config(), model->config())) {
      return utils::Status::InvalidArgument(
          "SwapModel: candidate config is not request-compatible with the "
          "live model (history/nodes/channels/horizon must match)");
    }
    // The old snapshot's shared_ptr is released here; batches that pinned
    // it keep it alive until they retire.
    model_ = std::move(model);
    ++stats_.swaps;
    if (kind == SwapKind::kRollback) ++stats_.rollbacks;
    swap_observer = swap_observer_;
  }
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  telemetry.AddCounter(names_.swaps);
  if (kind == SwapKind::kRollback) telemetry.AddCounter(names_.rollbacks);
  // Outside the lock: the observer may take its own locks (the forecast
  // cache does) and must not deadlock against Submit/RunBatch.
  if (swap_observer != nullptr) (*swap_observer)(installed, kind);
  return utils::Status::Ok();
}

std::shared_ptr<const FrozenModel> InferenceEngine::model_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

void InferenceEngine::SetBatchObserver(BatchObserver observer) {
  auto shared = observer
                    ? std::make_shared<const BatchObserver>(std::move(observer))
                    : std::shared_ptr<const BatchObserver>();
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(shared);
}

void InferenceEngine::SetSwapObserver(SwapObserver observer) {
  auto shared = observer
                    ? std::make_shared<const SwapObserver>(std::move(observer))
                    : std::shared_ptr<const SwapObserver>();
  std::lock_guard<std::mutex> lock(mu_);
  swap_observer_ = std::move(shared);
}

void InferenceEngine::WorkerLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  for (;;) {
    std::vector<Request> batch;
    std::vector<Request> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (queue_.empty()) {
          if (stopping_) return;
          queue_cv_.wait(lock);
          continue;
        }
        // A batch is ready when it is full, its oldest request has waited
        // max_wait_us, or the engine is draining (no point waiting for
        // arrivals that can no longer come).
        if (stopping_ ||
            static_cast<int64_t>(queue_.size()) >= options_.max_batch ||
            options_.max_wait_us == 0) {
          break;
        }
        const auto deadline = queue_.front().enqueued + max_wait;
        if (Clock::now() >= deadline) break;
        queue_cv_.wait_until(lock, deadline);
      }
      // Assemble up to max_batch live requests, skipping (and failing)
      // entries whose deadline expired in the queue — dead work is never
      // executed, and it never displaces live requests from the batch.
      const auto now = Clock::now();
      while (!queue_.empty() &&
             static_cast<int64_t>(batch.size()) < options_.max_batch) {
        Request request = std::move(queue_.front());
        queue_.pop_front();
        if (now >= request.deadline) {
          expired.push_back(std::move(request));
        } else {
          batch.push_back(std::move(request));
        }
      }
      stats_.timed_out += static_cast<int64_t>(expired.size());
      obs::Telemetry::Global().SetGauge(
          names_.queue_depth, static_cast<double>(queue_.size()));
    }
    // Wake siblings: more requests may remain for another batch, and
    // drain-mode shutdown needs every worker to re-check the queue.
    queue_cv_.notify_all();
    if (!expired.empty()) RejectExpired(std::move(expired));
    if (!batch.empty()) RunBatch(std::move(batch));
  }
}

void InferenceEngine::RejectExpired(std::vector<Request> expired) {
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  for (Request& request : expired) {
    request.promise.set_value(Forecast{
        utils::Status::DeadlineExceeded(
            "request deadline expired while queued"),
        tensor::Tensor()});
    telemetry.AddCounter(names_.timed_out);
  }
}

void InferenceEngine::RunBatch(std::vector<Request> batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  SAGDFN_CHECK_GT(b, 0);

  // Pin the serving snapshot (and observer): this batch runs to
  // completion on `model` even if SwapModel replaces the engine's
  // pointer mid-compute.
  std::shared_ptr<const FrozenModel> model;
  std::shared_ptr<const BatchObserver> observer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    model = model_;
    observer = observer_;
  }
  utils::FaultInjector& injector = utils::FaultInjector::Global();
  int64_t race_us = 0;
  if (injector.FireParam(utils::FaultSite::kSwapRace, options_.tenant,
                         &race_us)) {
    // Deterministically widen the window between snapshot pin and
    // compute so swap-under-load tests can land a swap inside it.
    std::this_thread::sleep_for(std::chrono::microseconds(race_us));
  }

  const core::SagdfnConfig& config = model->config();
  const int64_t sample = config.history * config.num_nodes *
                         config.input_dim;
  const int64_t f = config.horizon;
  const int64_t n = config.num_nodes;

  // Stack along the batch dimension. Predict() is batch-row independent,
  // so this composition does not change any request's bytes.
  tensor::Tensor x(tensor::Shape(
      {b, config.history, config.num_nodes, config.input_dim}));
  tensor::Tensor tod(tensor::Shape({b, f}));
  for (int64_t i = 0; i < b; ++i) {
    std::memcpy(x.data() + i * sample, batch[i].x.data(),
                sample * sizeof(float));
    std::memcpy(tod.data() + i * f, batch[i].future_tod.data(),
                f * sizeof(float));
  }

  tensor::Tensor predictions;
  const auto compute_start = Clock::now();
  {
    predictions = model->Predict(x, tod);  // [B, f, N]
    int64_t slow_us = 0;
    if (injector.FireParam(utils::FaultSite::kSlowBatch, options_.tenant,
                           &slow_us)) {
      std::this_thread::sleep_for(std::chrono::microseconds(slow_us));
    }
  }
  const double compute_seconds = SecondsSince(compute_start);
  if (injector.FireCounted(utils::FaultSite::kNanForecast,
                           options_.tenant)) {
    // Poison the whole batch output: the audit below must catch it.
    std::fill(predictions.data(), predictions.data() + predictions.size(),
              std::numeric_limits<float>::quiet_NaN());
  }

  // Audit the whole batch BEFORE fulfilling any promise: stats() and
  // telemetry must already reflect this batch by the time a caller's
  // future.get() returns.
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  std::vector<char> finite(b, 1);
  int64_t nonfinite = 0;
  for (int64_t i = 0; i < b; ++i) {
    const float* row = predictions.data() + i * f * n;
    for (int64_t j = 0; j < f * n; ++j) {
      if (!std::isfinite(row[j])) {
        finite[i] = 0;
        ++nonfinite;
        break;
      }
    }
  }
  const int64_t completed = b - nonfinite;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed += completed;
    stats_.nonfinite += nonfinite;
    ++stats_.batches;
  }
  telemetry.AddCounter(names_.completed, completed);
  if (nonfinite > 0) {
    telemetry.AddCounter(names_.nonfinite, nonfinite);
  }
  telemetry.AddCounter(names_.batches);
  telemetry.SetGauge(names_.last_batch_size, static_cast<double>(b));
  telemetry.RecordDuration(names_.batch_compute, compute_seconds);

  // Observer before fulfillment for the same reason: a health-probe
  // rollback triggered by this batch is already applied when the caller's
  // future becomes ready, which bounds rollback latency in requests.
  if (observer != nullptr && *observer) {
    BatchReport report;
    report.model = model.get();
    report.batch_size = b;
    report.compute_seconds = compute_seconds;
    report.nonfinite_requests = nonfinite;
    (*observer)(report);
  }

  for (int64_t i = 0; i < b; ++i) {
    telemetry.RecordDuration(names_.request_latency,
                             SecondsSince(batch[i].enqueued));
    if (!finite[i]) {
      batch[i].promise.set_value(Forecast{
          utils::Status::Internal("forecast contained non-finite values"),
          tensor::Tensor()});
      continue;
    }
    const float* row = predictions.data() + i * f * n;
    tensor::Tensor forecast(tensor::Shape({f, n}));
    std::memcpy(forecast.data(), row, f * n * sizeof(float));
    batch[i].promise.set_value(
        Forecast{utils::Status::Ok(), std::move(forecast)});
  }
}

void InferenceEngine::Shutdown() {
  // Serializes concurrent Shutdown()/destructor calls; workers never call
  // Shutdown, so holding this across the join cannot deadlock.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);

  std::vector<Request> rejected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!options_.drain_on_shutdown) {
      while (!queue_.empty()) {
        rejected.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.rejected += static_cast<int64_t>(rejected.size());
    }
  }
  queue_cv_.notify_all();
  for (Request& request : rejected) {
    request.promise.set_value(Forecast{
        utils::Status::FailedPrecondition(
            "inference engine shut down before this request ran"),
        tensor::Tensor()});
    obs::Telemetry::Global().AddCounter(names_.rejected);
  }

  if (!joined_) {
    for (std::thread& worker : workers_) worker.join();
    joined_ = true;
  }
  // Drain mode leaves nothing behind by construction; double-check so a
  // future can never dangle even if a policy bug slipped through.
  std::vector<Request> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!queue_.empty()) {
      leftovers.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  for (Request& request : leftovers) {
    request.promise.set_value(Forecast{
        utils::Status::Internal("request missed by shutdown drain"),
        tensor::Tensor()});
  }
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats snapshot = stats_;
  snapshot.queue_depth = static_cast<int64_t>(queue_.size());
  return snapshot;
}

}  // namespace sagdfn::serve
