#ifndef SAGDFN_SERVE_ENGINE_H_
#define SAGDFN_SERVE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/status.h"

namespace sagdfn::serve {

/// Batching / concurrency knobs of the InferenceEngine.
struct EngineOptions {
  /// Worker threads draining the submission queue. Each worker runs one
  /// micro-batch at a time through the shared FrozenModel.
  int64_t num_workers = 1;
  /// A micro-batch flushes as soon as this many requests are pending...
  int64_t max_batch = 8;
  /// ...or this long after its oldest request arrived, whichever comes
  /// first (0 = never wait: each worker takes whatever is queued).
  int64_t max_wait_us = 1000;
  /// Submission backpressure: Submit() rejects (ResourceExhausted) when
  /// this many requests are already queued.
  int64_t max_queue_depth = 4096;
  /// Shutdown policy for queued-but-unstarted requests: true runs them to
  /// completion, false rejects them (FailedPrecondition). Either way every
  /// outstanding future is satisfied before the destructor returns — no
  /// future is ever left dangling.
  bool drain_on_shutdown = true;
};

/// Result of one request: `prediction` is the scaled forecast [f, N] when
/// `status.ok()`, empty otherwise.
struct Forecast {
  utils::Status status;
  tensor::Tensor prediction;
};

/// Point-in-time engine counters (all monotonic except queue_depth).
struct EngineStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t batches = 0;
  int64_t queue_depth = 0;
};

/// Concurrent batched inference engine over one FrozenModel.
///
/// Requests enter a submission queue; worker threads assemble dynamic
/// micro-batches along the batch dimension (flush on max_batch or
/// max_wait_us), run the shared frozen model (whose kernels in turn use
/// the global ParallelFor/SIMD backend), split the [B, f, N] output back
/// into per-request forecasts, and fulfill the promises.
///
/// Determinism contract: every kernel in the rollout treats batch rows
/// independently, so a request's forecast is byte-identical whether it
/// ran alone, in any micro-batch composition, serially, or under any
/// worker count or arrival interleaving (tests/serve_engine_test.cc
/// memcmp-verifies this).
///
/// Telemetry (src/obs): counters serve.requests.{submitted,completed,
/// rejected} and serve.batches, gauges serve.queue_depth and
/// serve.last_batch_size, timer serve.batch.compute, and per-request
/// end-to-end latency under serve.request.latency.
class InferenceEngine {
 public:
  /// `model` must outlive the engine; it is shared read-only.
  InferenceEngine(std::shared_ptr<const FrozenModel> model,
                  const EngineOptions& options);

  /// Calls Shutdown(): all outstanding futures are satisfied first.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one request. `x` is [h, N, C], `future_tod` [f]. The
  /// returned future always becomes ready: with the forecast, or with a
  /// non-ok status when the request is malformed (InvalidArgument, checked
  /// here so workers can never abort on bad input), the queue is full
  /// (ResourceExhausted), or the engine is shutting down
  /// (FailedPrecondition).
  std::future<Forecast> Submit(tensor::Tensor x, tensor::Tensor future_tod);

  /// Stops intake, then drains or rejects the queue per
  /// EngineOptions::drain_on_shutdown and joins the workers. Idempotent;
  /// after it returns no future is pending.
  void Shutdown();

  EngineStats stats() const;
  const EngineOptions& options() const { return options_; }
  const FrozenModel& model() const { return *model_; }

 private:
  struct Request {
    tensor::Tensor x;           // [h, N, C]
    tensor::Tensor future_tod;  // [f]
    std::promise<Forecast> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Rejects immediately with `status` (never touches the queue).
  static std::future<Forecast> RejectedFuture(utils::Status status);

  void WorkerLoop();

  /// Stacks `batch`, runs the frozen model, splits the output, and
  /// fulfills every promise in the batch.
  void RunBatch(std::vector<Request> batch);

  std::shared_ptr<const FrozenModel> model_;
  EngineOptions options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // workers wait here
  std::deque<Request> queue_;         // guarded by mu_
  bool stopping_ = false;             // guarded by mu_

  /// Serializes Shutdown() callers (never taken by workers); `joined_` is
  /// guarded by it.
  std::mutex shutdown_mu_;
  bool joined_ = false;

  // Counters (guarded by mu_; cheap enough at request granularity).
  EngineStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_ENGINE_H_
