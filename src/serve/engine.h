#ifndef SAGDFN_SERVE_ENGINE_H_
#define SAGDFN_SERVE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/status.h"

namespace sagdfn::serve {

/// Batching / concurrency knobs of the InferenceEngine.
struct EngineOptions {
  /// Worker threads draining the submission queue. Each worker runs one
  /// micro-batch at a time through the shared FrozenModel.
  int64_t num_workers = 1;
  /// A micro-batch flushes as soon as this many requests are pending...
  int64_t max_batch = 8;
  /// ...or this long after its oldest request arrived, whichever comes
  /// first (0 = never wait: each worker takes whatever is queued).
  int64_t max_wait_us = 1000;
  /// Submission backpressure: Submit() rejects (ResourceExhausted) when
  /// this many requests are already queued.
  int64_t max_queue_depth = 4096;
  /// Graceful load shedding: when > 0 and the queue already holds this
  /// many requests, Submit() sheds the request (Unavailable) instead of
  /// letting it queue up toward the hard max_queue_depth wall. A soft
  /// watermark below max_queue_depth keeps latency bounded under
  /// sustained overload: work that would only expire in the queue is
  /// turned away at the door. 0 disables shedding.
  int64_t shed_queue_depth = 0;
  /// Default per-request deadline applied by Submit(x, tod) when the
  /// caller does not pass an explicit one. 0 = requests never expire.
  int64_t default_deadline_us = 0;
  /// Shutdown policy for queued-but-unstarted requests: true runs them to
  /// completion, false rejects them (FailedPrecondition). Either way every
  /// outstanding future is satisfied before the destructor returns — no
  /// future is ever left dangling.
  bool drain_on_shutdown = true;
  /// Tenant id owning this engine in a multi-tenant process. Empty keeps
  /// the legacy process-global telemetry names (serve.requests.*); when
  /// set, every counter/gauge/timer is namespaced as
  /// serve.<tenant>.requests.* etc., and serve-side fault probes
  /// (nan_forecast / slow_batch / swap_race) carry the tenant id so a
  /// `@tenant=ID`-qualified fault spec hits only this engine.
  std::string tenant;
};

/// Result of one request: `prediction` is the scaled forecast [f, N] when
/// `status.ok()`, empty otherwise.
struct Forecast {
  utils::Status status;
  tensor::Tensor prediction;
};

/// Point-in-time engine counters (all monotonic except queue_depth).
struct EngineStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  /// Requests whose deadline expired before they ran (DeadlineExceeded).
  int64_t timed_out = 0;
  /// Requests shed at the soft overload watermark (Unavailable).
  int64_t shed = 0;
  /// Requests whose forecast failed the non-finite audit (Internal).
  int64_t nonfinite = 0;
  /// Model swaps applied via SwapModel (rollbacks included).
  int64_t swaps = 0;
  /// Swaps that were rollbacks to a previous snapshot.
  int64_t rollbacks = 0;
  int64_t batches = 0;
  int64_t queue_depth = 0;
};

/// Why a model swap happened; distinguishes the counters and telemetry a
/// registry publish bumps from the ones a health-probe rollback bumps.
enum class SwapKind { kPublish, kRollback };

/// Per-micro-batch report handed to the batch observer after the batch's
/// output audit but BEFORE its promises are fulfilled: by the time any
/// caller's future from this batch is ready, counters reflect the batch
/// and any rollback the observer decided on has been applied — rollback
/// latency is bounded in requests, not wall clock. `model` identifies the
/// batch actually ran on (in-flight batches keep running on the old
/// snapshot across a swap), so an observer can attribute health signals
/// to the correct model.
struct BatchReport {
  const FrozenModel* model = nullptr;
  int64_t batch_size = 0;
  /// Wall-clock seconds spent in FrozenModel::Predict for this batch
  /// (includes injected slow_batch stalls — that is the point).
  double compute_seconds = 0.0;
  /// Requests in this batch whose forecast contained a non-finite value
  /// (each was completed with an Internal status, never served).
  int64_t nonfinite_requests = 0;
};

/// Called for every micro-batch, from the worker thread that ran it.
/// Must be cheap and must not block (it delays the batch's completion);
/// it MAY call SwapModel (the registry's health-probe rollback does
/// exactly that).
using BatchObserver = std::function<void(const BatchReport&)>;

/// Called after every successful SwapModel, from the swapping thread,
/// AFTER the new snapshot took effect — any batch assembled once the
/// callback fires runs on `model`. Streaming caches hook this to drop
/// forecasts computed on the old snapshot immediately instead of at
/// their next tick (see serve::TickStreamer::BindEngine). Must be cheap
/// and must not call back into SwapModel (it runs outside the engine
/// lock, but a re-entrant swap would recurse into the observer).
using SwapObserver = std::function<void(
    const std::shared_ptr<const FrozenModel>& model, SwapKind kind)>;

/// Concurrent batched inference engine over a hot-swappable FrozenModel.
///
/// Requests enter a submission queue; worker threads assemble dynamic
/// micro-batches along the batch dimension (flush on max_batch or
/// max_wait_us, skipping entries whose deadline already expired), run the
/// shared frozen model (whose kernels in turn use the global
/// ParallelFor/SIMD backend), audit the [B, f, N] output for non-finite
/// values, split it back into per-request forecasts, and fulfill the
/// promises.
///
/// Determinism contract: every kernel in the rollout treats batch rows
/// independently, so a request's forecast is byte-identical whether it
/// ran alone, in any micro-batch composition, serially, or under any
/// worker count or arrival interleaving (tests/serve_engine_test.cc
/// memcmp-verifies this).
///
/// Hot swap: SwapModel() atomically replaces the serving snapshot. Each
/// micro-batch pins the snapshot (a shared_ptr copy) before computing, so
/// in-flight batches finish on the model they started with — no drain, no
/// dangling futures — and the old snapshot is freed when its last batch
/// retires. tests/registry_test.cc memcmp-verifies both sides of a swap.
///
/// Failure semantics: Submit rejects malformed requests
/// (InvalidArgument), sheds at the soft overload watermark (Unavailable),
/// bounces at the hard queue wall (ResourceExhausted), and refuses
/// already-expired deadlines (DeadlineExceeded); workers reject
/// queue-expired requests at batch assembly without executing them; and
/// non-finite forecasts are failed (Internal) instead of served.
///
/// Telemetry (src/obs): counters serve.requests.{submitted,completed,
/// rejected,timed_out,shed,nonfinite}, serve.batches, serve.swaps and
/// serve.rollbacks, gauges serve.queue_depth and serve.last_batch_size,
/// timer serve.batch.compute, and per-request end-to-end latency under
/// serve.request.latency. With EngineOptions::tenant set, every name is
/// prefixed serve.<tenant>.* instead, so per-tenant engines never share
/// (or interleave) a counter namespace.
class InferenceEngine {
 public:
  /// `model` is shared read-only; the engine keeps it (and any snapshot
  /// later swapped in) alive via shared_ptr for as long as a batch might
  /// still be running on it.
  InferenceEngine(std::shared_ptr<const FrozenModel> model,
                  const EngineOptions& options);

  /// Calls Shutdown(): all outstanding futures are satisfied first.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one request. `x` is [h, N, C], `future_tod` [f]. The
  /// returned future always becomes ready: with the forecast, or with a
  /// non-ok status when the request is malformed (InvalidArgument, checked
  /// here so workers can never abort on bad input), the engine is
  /// shedding (Unavailable), the queue is full (ResourceExhausted), the
  /// deadline expired (DeadlineExceeded), or the engine is shutting down
  /// (FailedPrecondition). Applies EngineOptions::default_deadline_us.
  std::future<Forecast> Submit(tensor::Tensor x, tensor::Tensor future_tod);

  /// Same, with an explicit per-request deadline: the request is rejected
  /// with DeadlineExceeded — and never executed — unless a worker picks
  /// it up within `timeout` of submission. timeout <= 0 means no
  /// deadline (overriding any engine-level default).
  std::future<Forecast> Submit(tensor::Tensor x, tensor::Tensor future_tod,
                               std::chrono::microseconds timeout);

  /// Atomically replaces the serving snapshot. In-flight and
  /// already-assembled batches finish on the snapshot they pinned; every
  /// batch assembled after this returns runs on `model`. Fails
  /// (InvalidArgument) without swapping when `model`'s config is not
  /// request-compatible with the current one (same history, nodes,
  /// channels, horizon — queued requests were validated against those
  /// shapes and must stay servable). `kind` selects which counters bump.
  utils::Status SwapModel(std::shared_ptr<const FrozenModel> model,
                          SwapKind kind = SwapKind::kPublish);

  /// The snapshot new batches would run on right now.
  std::shared_ptr<const FrozenModel> model_snapshot() const;

  /// Installs (or clears, with nullptr-like empty function) the
  /// per-micro-batch observer. Takes effect for batches that finish after
  /// this returns.
  void SetBatchObserver(BatchObserver observer);

  /// Installs (or clears) the swap observer, invoked after every
  /// successful SwapModel. Takes effect for swaps that start after this
  /// returns.
  void SetSwapObserver(SwapObserver observer);

  /// Stops intake, then drains or rejects the queue per
  /// EngineOptions::drain_on_shutdown and joins the workers. Idempotent;
  /// after it returns no future is pending.
  void Shutdown();

  EngineStats stats() const;
  const EngineOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    tensor::Tensor x;           // [h, N, C]
    tensor::Tensor future_tod;  // [f]
    std::promise<Forecast> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // Clock::time_point::max() = none
  };

  /// Rejects immediately with `status` (never touches the queue).
  static std::future<Forecast> RejectedFuture(utils::Status status);

  std::future<Forecast> SubmitInternal(tensor::Tensor x,
                                       tensor::Tensor future_tod,
                                       Clock::time_point deadline);

  void WorkerLoop();

  /// Fails every request in `expired` with DeadlineExceeded (already
  /// counted under mu_ by the caller).
  void RejectExpired(std::vector<Request> expired);

  /// Stacks `batch`, runs the pinned frozen snapshot, audits the output,
  /// splits it, fulfills every promise in the batch, and reports to the
  /// batch observer.
  void RunBatch(std::vector<Request> batch);

  /// Telemetry names, prefixed with the tenant id once at construction so
  /// the hot paths never concatenate strings per request.
  struct TelemetryNames {
    std::string submitted;
    std::string completed;
    std::string rejected;
    std::string timed_out;
    std::string shed;
    std::string nonfinite;
    std::string batches;
    std::string swaps;
    std::string rollbacks;
    std::string queue_depth;
    std::string last_batch_size;
    std::string batch_compute;
    std::string request_latency;
  };

  EngineOptions options_;
  TelemetryNames names_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // workers wait here
  std::deque<Request> queue_;         // guarded by mu_
  bool stopping_ = false;             // guarded by mu_

  /// The serving snapshot (guarded by mu_). Batches pin a copy before
  /// computing, so SwapModel never invalidates in-flight work.
  std::shared_ptr<const FrozenModel> model_;

  /// Guarded by mu_; shared_ptr-wrapped so RunBatch can pin the observer
  /// alongside the model without holding the lock across the callback.
  std::shared_ptr<const BatchObserver> observer_;

  /// Guarded by mu_; pinned and invoked outside the lock by SwapModel.
  std::shared_ptr<const SwapObserver> swap_observer_;

  /// Serializes Shutdown() callers (never taken by workers); `joined_` is
  /// guarded by it.
  std::mutex shutdown_mu_;
  bool joined_ = false;

  // Counters (guarded by mu_; cheap enough at request granularity).
  EngineStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_ENGINE_H_
