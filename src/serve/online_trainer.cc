#include "serve/online_trainer.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "data/time_series.h"
#include "utils/check.h"

namespace sagdfn::serve {

OnlineTrainer::OnlineTrainer(TenantRouter* router, OnlineTrainerOptions options)
    : router_(router), options_(std::move(options)) {
  SAGDFN_CHECK(router_ != nullptr);
  if (!options_.candidate_dir.empty()) {
    std::error_code ec;  // surfaced later as a save error, not a crash
    std::filesystem::create_directories(options_.candidate_dir, ec);
  }
}

OnlineTrainer::~OnlineTrainer() { Stop(); }

utils::Status OnlineTrainer::Track(const std::string& tenant,
                                   const data::StandardScaler& scaler,
                                   data::WindowSpec window,
                                   int64_t steps_per_day) {
  if (tenant.empty()) {
    return utils::Status::InvalidArgument("tenant id must be non-empty");
  }
  if (!scaler.fitted()) {
    return utils::Status::InvalidArgument(
        "online trainer needs the deployment's fitted scaler");
  }
  if (steps_per_day <= 0) {
    return utils::Status::InvalidArgument("steps_per_day must be positive");
  }
  auto state = std::make_shared<TenantState>();
  state->scaler = scaler;
  state->window = window;
  state->steps_per_day = steps_per_day;
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.count(tenant) > 0) {
    return utils::Status::InvalidArgument("tenant already tracked: " + tenant);
  }
  tenants_[tenant] = std::move(state);
  return utils::Status::Ok();
}

utils::Status OnlineTrainer::Untrack(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.erase(tenant) == 0) {
    return utils::Status::NotFound("tenant not tracked: " + tenant);
  }
  return utils::Status::Ok();
}

std::shared_ptr<OnlineTrainer::TenantState> OnlineTrainer::FindState(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second;
}

int64_t OnlineTrainer::RoundFloor(const TenantState& state) const {
  // ForecastDataset splits 70/10/20 chronologically and every split must
  // hold at least one (history + horizon) window; the 10% validation
  // slice is the binding constraint, so the buffer needs ~10x the window
  // (+10 to absorb the floor() in the split arithmetic).
  const int64_t window = state.window.history + state.window.horizon;
  return std::max<int64_t>(options_.min_buffered_frames, 10 * window + 10);
}

int64_t OnlineTrainer::RingCap(const TenantState& state) const {
  const int64_t floor = RoundFloor(state);
  int64_t cap = options_.max_buffered_frames;
  if (cap <= 0) cap = 8 * (state.window.history + state.window.horizon);
  cap = std::max(cap, floor);
  // Round up to whole days so trimming (whole days off the front) can
  // always get back under the cap without breaking day alignment.
  const int64_t spd = state.steps_per_day;
  return ((cap + spd - 1) / spd) * spd;
}

utils::Status OnlineTrainer::Observe(const std::string& tenant,
                                     const tensor::Tensor& frame) {
  std::shared_ptr<TenantState> state = FindState(tenant);
  if (state == nullptr) {
    return utils::Status::NotFound("tenant not tracked: " + tenant);
  }
  if (frame.ndim() != 1 || frame.dim(0) <= 0) {
    return utils::Status::InvalidArgument("frame must be a non-empty [N]");
  }
  const int64_t n = frame.dim(0);
  std::vector<float> values(frame.data(), frame.data() + n);
  std::lock_guard<std::mutex> lock(mu_);
  if (state->num_nodes < 0) {
    state->num_nodes = n;
  } else if (state->num_nodes != n) {
    return utils::Status::InvalidArgument(
        "frame node count changed mid-stream for tenant " + tenant);
  }
  state->frames.push_back(std::move(values));
  const int64_t cap = RingCap(*state);
  while (static_cast<int64_t>(state->frames.size()) > cap) {
    // Drop one whole day so the buffer's origin stays at midnight.
    for (int64_t i = 0; i < state->steps_per_day && !state->frames.empty();
         ++i) {
      state->frames.pop_front();
    }
  }
  return utils::Status::Ok();
}

int64_t OnlineTrainer::BufferedFrames(const std::string& tenant) const {
  std::shared_ptr<TenantState> state = FindState(tenant);
  if (state == nullptr) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(state->frames.size());
}

utils::Status OnlineTrainer::FineTuneOnce(const std::string& tenant) {
  std::shared_ptr<TenantState> state = FindState(tenant);
  if (state == nullptr) {
    return utils::Status::NotFound("tenant not tracked: " + tenant);
  }
  std::lock_guard<std::mutex> tune_lock(state->tune_mu);

  // Snapshot the buffer (the ingest path keeps appending while we train).
  tensor::Tensor values;
  data::StandardScaler scaler;
  data::WindowSpec window;
  int64_t steps_per_day = 0;
  int64_t round = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t t = static_cast<int64_t>(state->frames.size());
    if (t < RoundFloor(*state)) {
      return utils::Status::FailedPrecondition(
          "tenant " + tenant + " has " + std::to_string(t) +
          " buffered frames; needs " + std::to_string(RoundFloor(*state)));
    }
    const int64_t n = state->num_nodes;
    values = tensor::Tensor::Zeros(tensor::Shape({t, n}));
    float* dst = values.data();
    for (int64_t i = 0; i < t; ++i) {
      std::memcpy(dst + i * n, state->frames[i].data(), n * sizeof(float));
    }
    scaler = state->scaler;
    window = state->window;
    steps_per_day = state->steps_per_day;
    round = state->round++;
    ++state->stats.rounds;
  }

  std::shared_ptr<const FrozenModel> live = router_->live(tenant);
  if (live == nullptr) {
    return utils::Status::NotFound("tenant " + tenant +
                                   " has no live model to fine-tune");
  }

  data::TimeSeries series;
  series.name = tenant + "-online";
  series.steps_per_day = steps_per_day;
  series.values = std::move(values);
  data::ForecastDataset dataset(std::move(series), window, scaler);

  core::TrainOptions train = options_.train;
  train.seed += static_cast<uint64_t>(round);
  const std::string path = options_.candidate_dir + "/" + tenant +
                           "-online-" + std::to_string(round) + ".ckpt";
  utils::Status status =
      core::FineTuneFromSnapshot(live->model(), dataset, train, path);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++state->stats.errors;
    return status;
  }

  status = router_->Publish(tenant, path);
  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok()) {
    ++state->stats.published;
  } else {
    ++state->stats.rejected;
  }
  return status;
}

OnlineTenantStats OnlineTrainer::stats(const std::string& tenant) const {
  std::shared_ptr<TenantState> state = FindState(tenant);
  if (state == nullptr) return OnlineTenantStats{};
  std::lock_guard<std::mutex> lock(mu_);
  return state->stats;
}

void OnlineTrainer::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (sweeper_.joinable()) return;
  stop_ = false;
  sweeper_ = std::thread([this] { SweepLoop(); });
}

void OnlineTrainer::Stop() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (!sweeper_.joinable()) return;
  {
    std::lock_guard<std::mutex> state_lock(mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  sweeper_.join();
}

void OnlineTrainer::SweepLoop() {
  const auto interval =
      std::chrono::milliseconds(std::max<int64_t>(1, options_.interval_ms));
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_cv_.wait_for(lock, interval, [this] { return stop_; })) {
        return;
      }
    }
    std::vector<std::string> ids;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ids.reserve(tenants_.size());
      for (const auto& [id, state] : tenants_) ids.push_back(id);
    }
    for (const std::string& id : ids) {
      // FailedPrecondition (not enough frames) and gate rejections are
      // normal here; counters record them.
      (void)FineTuneOnce(id);
    }
  }
}

}  // namespace sagdfn::serve
