#include "serve/forecast_cache.h"

#include <cstring>
#include <utility>

#include "obs/telemetry.h"
#include "utils/check.h"

namespace sagdfn::serve {

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// ForecastCache

std::shared_ptr<const TickForecast> ForecastCache::Read() const {
  reads_.fetch_add(1, std::memory_order_relaxed);
#if defined(SAGDFN_FORECAST_CACHE_ATOMIC_SLOT)
  std::shared_ptr<const TickForecast> f = slot_.load(std::memory_order_acquire);
#else
  std::shared_ptr<const TickForecast> f = std::atomic_load(&slot_);
#endif
  if (f != nullptr) hits_.fetch_add(1, std::memory_order_relaxed);
  return f;
}

void ForecastCache::Publish(std::shared_ptr<const TickForecast> forecast) {
  SAGDFN_CHECK(forecast != nullptr);
#if defined(SAGDFN_FORECAST_CACHE_ATOMIC_SLOT)
  slot_.store(std::move(forecast), std::memory_order_release);
#else
  std::atomic_store(&slot_, std::shared_ptr<const TickForecast>(
                                std::move(forecast)));
#endif
  publishes_.fetch_add(1, std::memory_order_relaxed);
  obs::Telemetry::Global().AddCounter("serve.cache.publishes");
}

void ForecastCache::Invalidate() {
#if defined(SAGDFN_FORECAST_CACHE_ATOMIC_SLOT)
  slot_.store(nullptr, std::memory_order_release);
#else
  std::atomic_store(&slot_, std::shared_ptr<const TickForecast>());
#endif
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  obs::Telemetry::Global().AddCounter("serve.cache.invalidations");
}

ForecastCache::Stats ForecastCache::stats() const {
  Stats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// TickStreamer

TickStreamer::TickStreamer(std::shared_ptr<const FrozenModel> model,
                           ForecastCache* cache,
                           const TickStreamerOptions& options)
    : options_(options), cache_(cache), model_(std::move(model)) {
  SAGDFN_CHECK(model_ != nullptr);
  SAGDFN_CHECK(cache_ != nullptr);
}

std::shared_ptr<const TickForecast> TickStreamer::OnTick(
    const Tensor& frame, const Tensor& future_tod) {
  std::lock_guard<std::mutex> lock(mu_);
  const core::SagdfnConfig& cfg = model_->config();
  SAGDFN_CHECK_EQ(frame.ndim(), 2);
  SAGDFN_CHECK_EQ(frame.dim(0), cfg.num_nodes);
  SAGDFN_CHECK_EQ(frame.dim(1), cfg.input_dim);
  SAGDFN_CHECK_EQ(future_tod.ndim(), 1);
  SAGDFN_CHECK_EQ(future_tod.dim(0), cfg.horizon);

  ++window_id_;
  // Clone: the caller may reuse its frame buffer for the next tick, but
  // the retained window must stay frozen for full re-encodes.
  frames_.push_back(frame.Clone());
  while (static_cast<int64_t>(frames_.size()) > cfg.history) {
    frames_.pop_front();
  }
  if (static_cast<int64_t>(frames_.size()) < cfg.history) {
    return nullptr;  // warming up: not enough frames for the first window
  }
  std::shared_ptr<const TickForecast> forecast = ComputeLocked(future_tod);
  cache_->Publish(forecast);
  return forecast;
}

std::shared_ptr<const TickForecast> TickStreamer::ComputeLocked(
    const Tensor& future_tod) {
  const core::SagdfnConfig& cfg = model_->config();
  const int64_t n = cfg.num_nodes;
  const int64_t c = cfg.input_dim;
  const int64_t h = cfg.history;
  const int64_t f = cfg.horizon;

  Tensor ft{Shape({1, f})};
  std::memcpy(ft.data(), future_tod.data(), sizeof(float) * f);

  const bool drift_guard_due =
      options_.full_reencode_every > 0 &&
      ticks_since_full_ >= options_.full_reencode_every;
  const bool incremental = state_valid_ && !drift_guard_due;

  Tensor pred;
  if (incremental) {
    // O(1) tick: import last tick's state, encode only the new frame.
    std::shared_ptr<const core::RolloutPlan> plan =
        model_->PlanFor(1, core::PlanKind::kIncremental);
    if (state_.size() != plan->state_floats()) {
      // Cannot happen while the model is fixed (state size depends only
      // on the config), but keep the invariant explicit.
      state_ = Tensor{Shape({plan->state_floats()})};
    }
    Tensor x{Shape({1, 1, n, c})};
    std::memcpy(x.data(), frames_.back().data(), sizeof(float) * n * c);
    pred = plan->Run(x, ft, &state_, &state_);
    ++ticks_since_full_;
  } else {
    // Full re-encode of the retained h-frame window from zero init:
    // warmup, periodic drift guard, or first tick on a swapped model.
    std::shared_ptr<const core::RolloutPlan> plan =
        model_->PlanFor(1, core::PlanKind::kFull);
    if (state_.size() != plan->state_floats()) {
      state_ = Tensor{Shape({plan->state_floats()})};
    }
    Tensor x{Shape({1, h, n, c})};
    float* dst = x.data();
    for (const Tensor& fr : frames_) {
      std::memcpy(dst, fr.data(), sizeof(float) * n * c);
      dst += n * c;
    }
    pred = plan->Run(x, ft, /*h_in=*/nullptr, &state_);
    state_valid_ = true;
    ticks_since_full_ = 0;
  }
  last_incremental_ = incremental;

  auto forecast = std::make_shared<TickForecast>();
  forecast->model = model_;
  forecast->window_id = window_id_;
  forecast->prediction = pred.Reshape({f, n});
  forecast->incremental = incremental;
  return forecast;
}

void TickStreamer::SetModel(std::shared_ptr<const FrozenModel> model) {
  SAGDFN_CHECK(model != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (model.get() == model_.get()) return;
  // Swapped-out snapshot: nothing computed on it may be served again,
  // and its carried state is meaningless under the new weights.
  model_ = std::move(model);
  state_valid_ = false;
  cache_->Invalidate();
}

void TickStreamer::BindEngine(InferenceEngine* engine) {
  SAGDFN_CHECK(engine != nullptr);
  engine->SetSwapObserver(
      [this](const std::shared_ptr<const FrozenModel>& model, SwapKind) {
        SetModel(model);
      });
}

int64_t TickStreamer::window_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_id_;
}

bool TickStreamer::last_tick_incremental() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_incremental_;
}

}  // namespace sagdfn::serve
