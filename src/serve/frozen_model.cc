#include "serve/frozen_model.h"

#include <utility>

#include "nn/serialization.h"
#include "utils/check.h"

namespace sagdfn::serve {

FrozenModel::FrozenModel(std::unique_ptr<core::SagdfnModel> model,
                         core::AdjacencySnapshot snapshot)
    : model_(std::move(model)), snapshot_(std::move(snapshot)) {}

std::unique_ptr<FrozenModel> FrozenModel::Freeze(
    std::unique_ptr<core::SagdfnModel> model) {
  SAGDFN_CHECK(model != nullptr);
  model->SetTraining(false);
  core::AdjacencySnapshot snapshot = model->Snapshot();
  return std::unique_ptr<FrozenModel>(
      new FrozenModel(std::move(model), std::move(snapshot)));
}

utils::Status FrozenModel::Load(const core::SagdfnConfig& config,
                                const std::string& checkpoint_path,
                                std::unique_ptr<FrozenModel>* out) {
  auto model = std::make_unique<core::SagdfnModel>(config);
  SAGDFN_RETURN_IF_ERROR(nn::LoadModule(model.get(), checkpoint_path));
  *out = Freeze(std::move(model));
  return utils::Status::Ok();
}

tensor::Tensor FrozenModel::Predict(const tensor::Tensor& x,
                                    const tensor::Tensor& future_tod) const {
  return PlanFor(x.dim(0))->Run(x, future_tod);
}

tensor::Tensor FrozenModel::PredictEager(
    const tensor::Tensor& x, const tensor::Tensor& future_tod) const {
  return model_->Predict(x, future_tod, snapshot_);
}

std::shared_ptr<const core::RolloutPlan> FrozenModel::PlanFor(
    int64_t batch) const {
  // Plan construction (instruction build + dry run) happens under the
  // lock: concurrent first requests for one batch size build it once,
  // and replays through already-cached plans only pay the map lookup.
  std::lock_guard<std::mutex> lock(plans_mu_);
  auto it = plans_.find(batch);
  if (it == plans_.end()) {
    it = plans_
             .emplace(batch, std::make_shared<const core::RolloutPlan>(
                                 *model_, snapshot_, batch))
             .first;
  }
  return it->second;
}

}  // namespace sagdfn::serve
