#include "serve/frozen_model.h"

#include <utility>

#include "nn/serialization.h"
#include "obs/telemetry.h"
#include "utils/check.h"

namespace sagdfn::serve {

FrozenModel::FrozenModel(std::unique_ptr<core::SagdfnModel> model,
                         core::AdjacencySnapshot snapshot,
                         int64_t plan_capacity)
    : model_(std::move(model)),
      snapshot_(std::move(snapshot)),
      plan_capacity_(plan_capacity) {}

std::unique_ptr<FrozenModel> FrozenModel::Freeze(
    std::unique_ptr<core::SagdfnModel> model, int64_t plan_cache_capacity) {
  SAGDFN_CHECK(model != nullptr);
  SAGDFN_CHECK_GT(plan_cache_capacity, 0);
  model->SetTraining(false);
  core::AdjacencySnapshot snapshot = model->Snapshot();
  return std::unique_ptr<FrozenModel>(new FrozenModel(
      std::move(model), std::move(snapshot), plan_cache_capacity));
}

utils::Status FrozenModel::Load(const core::SagdfnConfig& config,
                                const std::string& checkpoint_path,
                                std::unique_ptr<FrozenModel>* out,
                                int64_t plan_cache_capacity) {
  auto model = std::make_unique<core::SagdfnModel>(config);
  SAGDFN_RETURN_IF_ERROR(nn::LoadModule(model.get(), checkpoint_path));
  *out = Freeze(std::move(model), plan_cache_capacity);
  return utils::Status::Ok();
}

tensor::Tensor FrozenModel::Predict(const tensor::Tensor& x,
                                    const tensor::Tensor& future_tod) const {
  return PlanFor(x.dim(0))->Run(x, future_tod);
}

tensor::Tensor FrozenModel::PredictEager(
    const tensor::Tensor& x, const tensor::Tensor& future_tod) const {
  return model_->Predict(x, future_tod, snapshot_);
}

std::shared_ptr<const core::RolloutPlan> FrozenModel::PlanFor(
    int64_t batch) const {
  return PlanFor(batch, core::PlanKind::kFull);
}

std::shared_ptr<const core::RolloutPlan> FrozenModel::PlanFor(
    int64_t batch, core::PlanKind kind) const {
  // Plan construction (instruction build + dry run) happens under the
  // lock: concurrent first requests for one (batch, kind) build it once,
  // and replays through already-cached plans only pay the map lookup.
  std::lock_guard<std::mutex> lock(plans_mu_);
  const PlanKey key{batch, kind};
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return it->second.first;
  }
  auto plan =
      std::make_shared<const core::RolloutPlan>(*model_, snapshot_, batch,
                                                kind);
  lru_.push_front(key);
  plans_.emplace(key, std::make_pair(plan, lru_.begin()));
  while (static_cast<int64_t>(plans_.size()) > plan_capacity_) {
    // Evict the least-recently-used entry. Replays already holding the
    // shared_ptr keep the evicted plan alive until they finish.
    plans_.erase(lru_.back());
    lru_.pop_back();
    ++plan_evictions_;
  }
  obs::Telemetry::Global().SetGauge("serve.plan_cache_size",
                                    static_cast<double>(plans_.size()));
  return plan;
}

int64_t FrozenModel::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return static_cast<int64_t>(plans_.size());
}

int64_t FrozenModel::plan_cache_evictions() const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plan_evictions_;
}

}  // namespace sagdfn::serve
