#include "serve/frozen_model.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "nn/serialization.h"
#include "obs/telemetry.h"
#include "utils/check.h"

namespace sagdfn::serve {

namespace {

// Weight-file entry names for the frozen snapshot. The "__frozen:" prefix
// cannot collide with module state: parameter names are dot-qualified and
// buffers are stored under "buffer:".
constexpr char kFrozenAs[] = "__frozen:a_s";
constexpr char kFrozenInvDeg[] = "__frozen:inv_deg";
constexpr char kFrozenIndexSet[] = "__frozen:index_set";
constexpr char kFrozenConfig[] = "__frozen:config";

// Shape-determining config fields; a weight file only loads against a
// config that agrees on all of them.
std::vector<uint64_t> ConfigFingerprint(const core::SagdfnConfig& c) {
  return {static_cast<uint64_t>(c.num_nodes),
          static_cast<uint64_t>(c.embedding_dim),
          static_cast<uint64_t>(c.m),
          static_cast<uint64_t>(c.k),
          static_cast<uint64_t>(c.hidden_dim),
          static_cast<uint64_t>(c.heads),
          static_cast<uint64_t>(c.ffn_hidden),
          static_cast<uint64_t>(c.diffusion_steps),
          static_cast<uint64_t>(c.num_layers),
          static_cast<uint64_t>(c.history),
          static_cast<uint64_t>(c.horizon),
          static_cast<uint64_t>(c.input_dim)};
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

FrozenModel::FrozenModel(std::unique_ptr<core::SagdfnModel> model,
                         core::AdjacencySnapshot snapshot,
                         int64_t plan_capacity)
    : model_(std::move(model)),
      snapshot_(std::move(snapshot)),
      plan_capacity_(plan_capacity) {}

std::unique_ptr<FrozenModel> FrozenModel::Freeze(
    std::unique_ptr<core::SagdfnModel> model, int64_t plan_cache_capacity) {
  SAGDFN_CHECK(model != nullptr);
  SAGDFN_CHECK_GT(plan_cache_capacity, 0);
  model->SetTraining(false);
  core::AdjacencySnapshot snapshot = model->Snapshot();
  return std::unique_ptr<FrozenModel>(new FrozenModel(
      std::move(model), std::move(snapshot), plan_cache_capacity));
}

utils::Status FrozenModel::Load(const core::SagdfnConfig& config,
                                const std::string& checkpoint_path,
                                std::unique_ptr<FrozenModel>* out,
                                int64_t plan_cache_capacity) {
  auto model = std::make_unique<core::SagdfnModel>(config);
  SAGDFN_RETURN_IF_ERROR(nn::LoadModule(model.get(), checkpoint_path));
  *out = Freeze(std::move(model), plan_cache_capacity);
  return utils::Status::Ok();
}

utils::Status FrozenModel::Save(const std::string& path) const {
  nn::Checkpoint checkpoint;
  for (const auto& [name, var] : model_->NamedParameters()) {
    checkpoint.tensors.emplace_back(name, var.value());
  }
  for (const auto& [name, buffer] : model_->NamedBuffers()) {
    checkpoint.tensors.emplace_back("buffer:" + name, buffer);
  }
  checkpoint.tensors.emplace_back(kFrozenAs, snapshot_.a_s);
  checkpoint.tensors.emplace_back(kFrozenInvDeg, snapshot_.inv_deg);
  checkpoint.meta.emplace_back(
      kFrozenIndexSet,
      std::vector<uint64_t>(snapshot_.index_set.begin(),
                            snapshot_.index_set.end()));
  checkpoint.meta.emplace_back(kFrozenConfig, ConfigFingerprint(config()));
  return nn::SaveMappedCheckpoint(checkpoint, path);
}

utils::Status FrozenModel::LoadMapped(const core::SagdfnConfig& config,
                                      const std::string& path,
                                      std::unique_ptr<FrozenModel>* out,
                                      int64_t plan_cache_capacity) {
  SAGDFN_CHECK_GT(plan_cache_capacity, 0);
  nn::MappedCheckpoint mapped;
  SAGDFN_RETURN_IF_ERROR(nn::OpenMappedCheckpoint(&mapped, path));

  const std::vector<uint64_t>* fingerprint = mapped.FindMeta(kFrozenConfig);
  if (fingerprint == nullptr) {
    return utils::Status::InvalidArgument(
        "not a frozen-model weight file (no config fingerprint): " + path);
  }
  if (*fingerprint != ConfigFingerprint(config)) {
    return utils::Status::InvalidArgument(
        "weight file was written for a different model configuration: " +
        path);
  }

  auto model = std::make_unique<core::SagdfnModel>(config);
  auto params = model->NamedParameters();
  auto buffers = model->NamedBuffers();
  std::map<std::string, autograd::Variable*> param_by_name;
  for (auto& [name, var] : params) param_by_name.emplace(name, &var);
  std::map<std::string, tensor::Tensor> buffer_by_name;
  for (auto& [name, buffer] : buffers) {
    buffer_by_name.emplace("buffer:" + name, buffer);
  }

  // Two passes so a bad file never leaves a half-bound model: validate
  // every entry against the module first, then bind/copy.
  std::vector<std::pair<autograd::Variable*, const tensor::Tensor*>> binds;
  std::vector<std::pair<tensor::Tensor*, const tensor::Tensor*>> copies;
  std::set<std::string> seen;
  for (const auto& [name, view] : mapped.tensors) {
    if (HasPrefix(name, "__frozen:")) continue;
    if (!seen.insert(name).second) {
      return utils::Status::InvalidArgument(
          "duplicate entry in weight file: " + name);
    }
    if (auto it = buffer_by_name.find(name); it != buffer_by_name.end()) {
      if (!(view.shape() == it->second.shape())) {
        return utils::Status::InvalidArgument(
            "shape mismatch for " + name + ": file " +
            view.shape().ToString() + " vs module " +
            it->second.shape().ToString());
      }
      copies.emplace_back(&it->second, &view);
      continue;
    }
    auto it = param_by_name.find(name);
    if (it == param_by_name.end()) {
      return utils::Status::NotFound("unknown entry in weight file: " +
                                     name);
    }
    if (!(view.shape() == it->second->shape())) {
      return utils::Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          view.shape().ToString() + " vs module " +
          it->second->shape().ToString());
    }
    binds.emplace_back(it->second, &view);
  }
  if (seen.size() != param_by_name.size() + buffer_by_name.size()) {
    return utils::Status::InvalidArgument(
        "state count mismatch: weight file has " +
        std::to_string(seen.size()) + " module entries, module has " +
        std::to_string(param_by_name.size() + buffer_by_name.size()));
  }

  const tensor::Tensor* a_s = mapped.FindTensor(kFrozenAs);
  const tensor::Tensor* inv_deg = mapped.FindTensor(kFrozenInvDeg);
  const std::vector<uint64_t>* ids = mapped.FindMeta(kFrozenIndexSet);
  if (a_s == nullptr || inv_deg == nullptr || ids == nullptr) {
    return utils::Status::InvalidArgument(
        "weight file is missing the frozen adjacency snapshot: " + path);
  }
  const int64_t n = config.num_nodes;
  if (a_s->ndim() != 2 || a_s->dim(0) != n || a_s->dim(1) != config.m ||
      inv_deg->size() != n ||
      static_cast<int64_t>(ids->size()) != config.m) {
    return utils::Status::InvalidArgument(
        "frozen snapshot shapes disagree with the configuration: " + path);
  }
  core::AdjacencySnapshot snapshot;
  snapshot.index_set.reserve(ids->size());
  for (uint64_t id : *ids) {
    if (id >= static_cast<uint64_t>(n)) {
      return utils::Status::InvalidArgument(
          "frozen index set references node " + std::to_string(id) +
          " outside [0, " + std::to_string(n) + "): " + path);
    }
    snapshot.index_set.push_back(static_cast<int64_t>(id));
  }

  // Bind: parameters alias the mapping (zero copy — the Variables' nodes
  // rebind their storage to the mapped pages); buffers are tiny mutable
  // state and are copied onto the heap.
  for (auto& [var, view] : binds) var->mutable_value() = *view;
  for (auto& [dst, view] : copies) dst->CopyFrom(*view);
  model->OnStateLoaded();
  model->SetTraining(false);

  // The snapshot tensors alias the mapping too; only the CSR arrays are
  // rebuilt (an O(N*M) scan of mapped a_s — the expensive attention /
  // entmax recomputation the heap path pays is skipped entirely).
  snapshot.a_s = *a_s;
  snapshot.inv_deg = *inv_deg;
  snapshot.csr = std::make_shared<const graph::CsrMatrix>(
      graph::CsrFromDense(snapshot.a_s));

  *out = std::unique_ptr<FrozenModel>(new FrozenModel(
      std::move(model), std::move(snapshot), plan_cache_capacity));
  return utils::Status::Ok();
}

tensor::Tensor FrozenModel::Predict(const tensor::Tensor& x,
                                    const tensor::Tensor& future_tod) const {
  return PlanFor(x.dim(0))->Run(x, future_tod);
}

tensor::Tensor FrozenModel::PredictEager(
    const tensor::Tensor& x, const tensor::Tensor& future_tod) const {
  return model_->Predict(x, future_tod, snapshot_);
}

std::shared_ptr<const core::RolloutPlan> FrozenModel::PlanFor(
    int64_t batch) const {
  return PlanFor(batch, core::PlanKind::kFull);
}

std::shared_ptr<const core::RolloutPlan> FrozenModel::PlanFor(
    int64_t batch, core::PlanKind kind) const {
  // Plan construction (instruction build + dry run) happens under the
  // lock: concurrent first requests for one (batch, kind) build it once,
  // and replays through already-cached plans only pay the map lookup.
  std::lock_guard<std::mutex> lock(plans_mu_);
  const PlanKey key{batch, kind};
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return it->second.first;
  }
  auto plan =
      std::make_shared<const core::RolloutPlan>(*model_, snapshot_, batch,
                                                kind);
  lru_.push_front(key);
  plans_.emplace(key, std::make_pair(plan, lru_.begin()));
  while (static_cast<int64_t>(plans_.size()) > plan_capacity_) {
    // Evict the least-recently-used entry. Replays already holding the
    // shared_ptr keep the evicted plan alive until they finish.
    plans_.erase(lru_.back());
    lru_.pop_back();
    ++plan_evictions_;
  }
  obs::Telemetry::Global().SetGauge("serve.plan_cache_size",
                                    static_cast<double>(plans_.size()));
  return plan;
}

int64_t FrozenModel::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return static_cast<int64_t>(plans_.size());
}

int64_t FrozenModel::plan_cache_evictions() const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  return plan_evictions_;
}

}  // namespace sagdfn::serve
