#ifndef SAGDFN_SERVE_ONLINE_TRAINER_H_
#define SAGDFN_SERVE_ONLINE_TRAINER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "data/scaler.h"
#include "data/window_dataset.h"
#include "serve/tenant_router.h"
#include "tensor/tensor.h"
#include "utils/status.h"

namespace sagdfn::serve {

/// Knobs of the online continual-learning loop.
struct OnlineTrainerOptions {
  /// Fine-tune schedule for each round (short by construction: a round
  /// trains on the tenant's tick buffer, not a full dataset). The seed is
  /// advanced per (tenant, round) so repeated rounds do not replay one
  /// shuffle order.
  core::TrainOptions train;
  /// Directory where candidate checkpoints are written (one file per
  /// round, "<tenant>-online-<round>.ckpt"). Must be writable.
  std::string candidate_dir;
  /// A round needs at least this many buffered frames; 0 derives the
  /// floor from the tenant's window spec (10 * (history + horizon) + 10:
  /// the buffer becomes a chronological 70/10/20 ForecastDataset, and
  /// the 10% validation slice must still hold one full window).
  int64_t min_buffered_frames = 0;
  /// Ring bound on each tenant's buffer. Oldest frames are dropped in
  /// whole-day multiples so the buffer's time origin stays day-aligned
  /// (time-of-day covariates are derived from frame position). 0 derives
  /// 8 * (history + horizon), clamped up to the round floor and rounded
  /// up to whole days.
  int64_t max_buffered_frames = 0;
  /// Background cadence of the fine-tune thread started by Start().
  int64_t interval_ms = 200;
};

/// Per-tenant counters of the continual-learning loop (all monotonic).
struct OnlineTenantStats {
  /// Fine-tune rounds attempted (enough frames were buffered).
  int64_t rounds = 0;
  /// Candidates that passed the tenant registry's gate and went live.
  int64_t published = 0;
  /// Candidates the gate rejected (live pointer untouched).
  int64_t rejected = 0;
  /// Rounds that failed before reaching the gate (training fault,
  /// candidate save I/O error). The buffer is kept; the next round
  /// retries.
  int64_t errors = 0;
};

/// Closes the continual-learning loop over a TenantRouter: per tenant it
/// buffers freshly observed frames, periodically fine-tunes a clone of
/// the tenant's LIVE serving snapshot on that buffer (in the
/// deployment's pinned scaled space), writes the result as a candidate
/// checkpoint, and offers it to the tenant's registry gate.
///
/// The trainer never touches serving state directly: the only way its
/// output can reach an engine is through ModelRegistry::Publish, so a
/// candidate that fails any gate — corrupt file, non-finite weights,
/// dry-run failure, held-out MAE regression, injected bad_candidate —
/// leaves every tenant's live pointer exactly where it was. Candidate
/// files are written with the atomic verify-before-publish checkpoint
/// writer, so a fine-tune round killed mid-save (io_fail@save /
/// truncate_ckpt) either leaves no candidate or a torn temp file the
/// registry loader gate rejects; the round reports an error and the
/// frame buffer survives for the retry.
///
/// Threading: Observe() may be called from any thread (e.g. the tick
/// ingest path); FineTuneOnce serializes per trainer. Start() spawns one
/// background thread that sweeps all tracked tenants every interval_ms.
class OnlineTrainer {
 public:
  /// `router` must outlive the trainer.
  OnlineTrainer(TenantRouter* router, OnlineTrainerOptions options);

  /// Stop()s the background thread.
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Registers a tenant for continual learning. `scaler` is the
  /// deployment's fitted scaler (serving I/O lives in its scaled space —
  /// fine-tune datasets are built on it, never refit). `window` is the
  /// tenant's history/horizon spec; `steps_per_day` the tick resolution.
  /// Frames are assumed to start at a day boundary (tick 0 = midnight),
  /// matching the simulator replays. InvalidArgument on duplicates or an
  /// unfitted scaler.
  utils::Status Track(const std::string& tenant,
                      const data::StandardScaler& scaler,
                      data::WindowSpec window, int64_t steps_per_day);

  /// Deregisters a tenant and drops its buffer. NotFound if untracked.
  utils::Status Untrack(const std::string& tenant);

  /// Feeds one freshly observed frame (`frame` [N], raw units) into the
  /// tenant's buffer. Ignored (NotFound) for untracked tenants.
  utils::Status Observe(const std::string& tenant,
                        const tensor::Tensor& frame);

  /// Frames currently buffered for `tenant` (-1 if untracked).
  int64_t BufferedFrames(const std::string& tenant) const;

  /// Runs one fine-tune round for `tenant` right now:
  ///   FailedPrecondition — fewer frames than the round floor;
  ///   NotFound           — tenant untracked, or no live model to clone;
  ///   other non-OK       — training/save error, or the gate's rejection
  ///                        status (stats tell the two apart).
  /// OK means the candidate passed the gate and is live for this tenant.
  utils::Status FineTuneOnce(const std::string& tenant);

  /// Starts the background sweep thread (idempotent).
  void Start();

  /// Stops and joins it (idempotent; called by the destructor).
  void Stop();

  /// Counters for one tenant (zeros if untracked).
  OnlineTenantStats stats(const std::string& tenant) const;

 private:
  struct TenantState {
    data::StandardScaler scaler;
    data::WindowSpec window;
    int64_t steps_per_day = 0;
    std::deque<std::vector<float>> frames;  // each [N], raw units
    int64_t num_nodes = -1;                 // fixed by the first frame
    int64_t round = 0;
    OnlineTenantStats stats;
    /// Serializes FineTuneOnce per tenant (training runs outside mu_).
    std::mutex tune_mu;
  };

  std::shared_ptr<TenantState> FindState(const std::string& tenant) const;
  int64_t RoundFloor(const TenantState& state) const;
  int64_t RingCap(const TenantState& state) const;
  void SweepLoop();

  TenantRouter* router_;
  OnlineTrainerOptions options_;

  mutable std::mutex mu_;  // guards tenants_ and each state's data fields
  std::map<std::string, std::shared_ptr<TenantState>> tenants_;

  std::mutex thread_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread sweeper_;
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_ONLINE_TRAINER_H_
