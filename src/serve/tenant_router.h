#ifndef SAGDFN_SERVE_TENANT_ROUTER_H_
#define SAGDFN_SERVE_TENANT_ROUTER_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "serve/forecast_cache.h"
#include "serve/frozen_model.h"
#include "serve/registry.h"
#include "tensor/tensor.h"
#include "utils/status.h"

namespace sagdfn::serve {

/// Process-wide knobs of the TenantRouter.
struct TenantRouterOptions {
  /// Total worker-thread budget shared by every tenant engine. AddTenant
  /// clamps each tenant's requested EngineOptions::num_workers to what is
  /// left of the budget (granted = max(1, min(requested, remaining))) so
  /// one greedy tenant cannot monopolize the process — every tenant gets
  /// at least one worker, and workers are returned to the pool on
  /// RemoveTenant. 0 = unlimited (grant exactly what was requested).
  int64_t worker_budget = 0;
};

/// Per-tenant wiring passed to AddTenant. The router force-sets the
/// `tenant` field of both option structs to the tenant id (telemetry
/// namespacing and fault-probe qualification are not opt-in) and applies
/// the worker budget to `engine.num_workers`.
struct TenantConfig {
  EngineOptions engine;
  RegistryOptions registry;
  /// When true the tenant also gets a ForecastCache + TickStreamer bound
  /// to its engine's swap observer (streaming scenario families).
  bool enable_streaming = false;
  TickStreamerOptions streamer;
};

/// Point-in-time view of one tenant (see TenantRouter::Stats).
struct TenantStats {
  std::string id;
  /// Workers actually granted (after the budget clamp).
  int64_t workers = 0;
  EngineStats engine;
  RegistryStats registry;
  ForecastCache::Stats cache;
};

/// Multi-tenant serving front door: one ModelRegistry + InferenceEngine
/// (and optionally ForecastCache + TickStreamer) per scenario family,
/// with per-request routing by tenant id.
///
/// Isolation is structural, not scheduled: each tenant owns its engine —
/// its own submission queue, deadline/shed watermarks, worker threads,
/// live model pointer, and probation state — so an overloaded or faulted
/// tenant can only shed, time out, or roll back ITS OWN requests. The
/// only shared resource is the process worker budget, which is divided
/// at AddTenant time (a static partition; never rebalanced mid-request),
/// and the global tensor-kernel thread pool, whose determinism contract
/// (thread-count-invariant ParallelFor, offset-independent SIMD tails,
/// batch-row-independent kernels) makes each tenant's forecasts
/// byte-identical to a dedicated single-tenant deployment regardless of
/// what its neighbors are doing — tests/tenant_router_test.cc
/// memcmp-verifies exactly that.
///
/// Routing failure semantics: Submit to an unknown (or already removed)
/// tenant fails fast with NotFound — the returned future is ready
/// immediately; nothing is enqueued anywhere. Malformed requests keep
/// the engine's InvalidArgument behavior. RemoveTenant with requests in
/// flight drains them per the tenant engine's drain_on_shutdown policy;
/// every outstanding future is satisfied before RemoveTenant returns.
///
/// Thread safety: all methods may be called from any thread. Submit and
/// the per-tenant accessors pin the tenant via shared_ptr before leaving
/// the router lock, so a concurrent RemoveTenant never yanks an engine
/// out from under a request being submitted — the removed tenant is torn
/// down when its last in-flight reference retires.
class TenantRouter {
 public:
  explicit TenantRouter(TenantRouterOptions options = {});

  /// Removes every tenant (draining each engine).
  ~TenantRouter();

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  /// Registers a tenant serving `model`. Fails with InvalidArgument on an
  /// empty id or a duplicate. On success the tenant is immediately
  /// routable and its registry/engine telemetry appears under
  /// serve.<id>.* / registry.<id>.*.
  utils::Status AddTenant(const std::string& id,
                          std::shared_ptr<const FrozenModel> model,
                          TenantConfig config);

  /// Deregisters a tenant: NotFound if unknown. In-flight and queued
  /// requests are drained (or rejected, per the tenant's
  /// drain_on_shutdown) before teardown; no future is left dangling.
  utils::Status RemoveTenant(const std::string& id);

  /// Routes one request to `tenant`'s engine. `x` is [h, N, C],
  /// `future_tod` [f]. Unknown tenant -> ready future with NotFound; all
  /// other failure codes are the tenant engine's own.
  std::future<Forecast> Submit(const std::string& tenant, tensor::Tensor x,
                               tensor::Tensor future_tod);

  /// Same, with an explicit per-request deadline.
  std::future<Forecast> Submit(const std::string& tenant, tensor::Tensor x,
                               tensor::Tensor future_tod,
                               std::chrono::microseconds timeout);

  /// Offers a candidate checkpoint to `tenant`'s registry gate. The
  /// verdict (and any later probation rollback) affects only this
  /// tenant's live pointer.
  utils::Status Publish(const std::string& tenant, const std::string& path);

  /// Feeds one streaming tick to `tenant`'s TickStreamer (requires
  /// enable_streaming). Returns the published forecast, nullptr during
  /// warmup, or nullptr for an unknown/non-streaming tenant.
  std::shared_ptr<const TickForecast> OnTick(const std::string& tenant,
                                             const tensor::Tensor& frame,
                                             const tensor::Tensor& future_tod);

  /// Lock-free read of `tenant`'s cached tick forecast (nullptr when
  /// unknown, non-streaming, warming up, or invalidated by a swap).
  std::shared_ptr<const TickForecast> ReadCached(
      const std::string& tenant) const;

  /// The snapshot `tenant`'s next batch would run on (nullptr if
  /// unknown).
  std::shared_ptr<const FrozenModel> live(const std::string& tenant) const;

  /// True while `tenant`'s registry has a swapped-in model on probation.
  bool on_probation(const std::string& tenant) const;

  /// Registered tenant ids, sorted.
  std::vector<std::string> Tenants() const;

  /// Per-tenant counters, sorted by id.
  std::vector<TenantStats> Stats() const;

  /// Stats for one tenant; NotFound if unknown.
  utils::Status StatsFor(const std::string& tenant, TenantStats* out) const;

  /// Workers granted to `tenant` after the budget clamp (-1 if unknown).
  int64_t WorkersGranted(const std::string& tenant) const;

  const TenantRouterOptions& options() const { return options_; }

 private:
  /// One tenant's serving stack. Declaration order is the destruction
  /// contract reversed: the registry tears down first (stops its watcher
  /// and unhooks the batch observer), then the engine (drains queued
  /// work; satisfies every future), then the streamer and cache, then
  /// the initial model reference.
  struct Tenant {
    std::string id;
    int64_t workers = 0;
    std::unique_ptr<ForecastCache> cache;     // null unless streaming
    std::unique_ptr<TickStreamer> streamer;   // null unless streaming
    std::unique_ptr<InferenceEngine> engine;
    std::unique_ptr<ModelRegistry> registry;
  };

  /// Pins a tenant by id (nullptr when unknown). Holds mu_ only for the
  /// map lookup, never across engine/registry calls.
  std::shared_ptr<Tenant> Find(const std::string& id) const;

  TenantRouterOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;  // guarded by mu_
  int64_t workers_in_use_ = 0;                              // guarded by mu_
};

}  // namespace sagdfn::serve

#endif  // SAGDFN_SERVE_TENANT_ROUTER_H_
