#include "optim/optimizer.h"

#include <cmath>

#include "tensor/simd.h"
#include "utils/block_reduce.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace sagdfn::optim {

Optimizer::Optimizer(std::vector<autograd::Variable> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  SAGDFN_CHECK(!params_.empty()) << "optimizer needs parameters";
  for (const auto& p : params_) {
    SAGDFN_CHECK(p.requires_grad()) << "optimizer over non-trainable var";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> params, double lr, double momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void Sgd::Step() {
  const float lr = static_cast<float>(lr_);
  const float mu = static_cast<float>(momentum_);
  for (size_t i = 0; i < params_.size(); ++i) {
    tensor::Tensor grad = params_[i].grad();
    float* w = params_[i].mutable_value().data();
    float* v = velocity_[i].data();
    const float* g = grad.data();
    const int64_t n = grad.size();
    for (int64_t e = 0; e < n; ++e) {
      v[e] = mu * v[e] + g[e];
      w[e] -= lr * v[e];
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(tensor::Tensor::Zeros(p.shape()));
    v_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, step_count_);
  const double bias2 = 1.0 - std::pow(beta2_, step_count_);
  const float lr = static_cast<float>(lr_);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(eps_);
  const float wd = static_cast<float>(weight_decay_);
  const float inv_bias1 = static_cast<float>(1.0 / bias1);
  const float inv_bias2 = static_cast<float>(1.0 / bias2);

  for (size_t i = 0; i < params_.size(); ++i) {
    tensor::Tensor grad = params_[i].grad();
    float* w = params_[i].mutable_value().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const float* g = grad.data();
    const int64_t n = grad.size();
    for (int64_t e = 0; e < n; ++e) {
      const float ge = g[e] + wd * w[e];
      m[e] = b1 * m[e] + (1.0f - b1) * ge;
      v[e] = b2 * v[e] + (1.0f - b2) * ge * ge;
      const float m_hat = m[e] * inv_bias1;
      const float v_hat = v[e] * inv_bias2;
      w[e] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

void Adam::set_step_count(int64_t step_count) {
  SAGDFN_CHECK_GE(step_count, 0);
  step_count_ = step_count;
}

double ClipGradNorm(const std::vector<autograd::Variable>& params,
                    double max_norm) {
  SAGDFN_CHECK_GT(max_norm, 0.0);
  // Per-parameter squared norms use the same fixed-block reduction as
  // SumAll and the masked metrics (utils/block_reduce.h): previously this
  // was a hand-rolled sequential sum with its own grouping, which could
  // drift from the other reductions when the kernel layer changed.
  const auto dot = tensor::simd::K().dot;
  double sq = 0.0;
  for (const auto& p : params) {
    tensor::Tensor g = p.grad();
    const float* pg = g.data();
    sq += utils::DeterministicBlockReduce<double>(
        g.size(), 0.0,
        [&](int64_t lo, int64_t hi) { return dot(pg + lo, pg + lo, hi - lo); },
        [](double& acc, double partial) { acc += partial; });
  }
  const double norm = std::sqrt(sq);
  // A NaN/Inf norm means some gradient is non-finite; rescaling would
  // spread NaN (or zeros, for max_norm/Inf) into every parameter. Leave
  // the gradients as-is and report the norm for the caller's guard.
  if (!std::isfinite(norm)) return norm;
  if (norm > max_norm) {
    // norm > max_norm > 0, so the division is well-conditioned.
    const float scale = static_cast<float>(max_norm / norm);
    const auto scale_k = tensor::simd::K().scale;
    for (const auto& p : params) {
      // grad() returns the stored buffer (shared handle) once defined, so
      // scaling through it updates the optimizer-visible gradient.
      tensor::Tensor g = p.grad();
      float* pg = g.data();
      utils::ParallelFor(0, g.size(), utils::kElementwiseGrain,
                         [&](int64_t i0, int64_t i1) {
                           scale_k(pg + i0, scale, i1 - i0);
                         });
    }
  }
  return norm;
}

}  // namespace sagdfn::optim
