#ifndef SAGDFN_OPTIM_LR_SCHEDULER_H_
#define SAGDFN_OPTIM_LR_SCHEDULER_H_

#include <vector>

#include "optim/optimizer.h"

namespace sagdfn::optim {

/// Multiplies the learning rate by `gamma` at each listed epoch milestone
/// (the schedule used by DCRNN-style training).
class MultiStepLr {
 public:
  MultiStepLr(Optimizer* optimizer, std::vector<int64_t> milestones,
              double gamma);

  /// Call once per epoch (0-based). Applies the decay when `epoch` is a
  /// milestone.
  void Step(int64_t epoch);

 private:
  Optimizer* optimizer_;
  std::vector<int64_t> milestones_;
  double gamma_;
};

/// Cosine annealing from the initial LR down to `min_lr` over
/// `total_epochs`.
class CosineLr {
 public:
  CosineLr(Optimizer* optimizer, int64_t total_epochs, double min_lr = 0.0);

  void Step(int64_t epoch);

 private:
  Optimizer* optimizer_;
  int64_t total_epochs_;
  double base_lr_;
  double min_lr_;
};

}  // namespace sagdfn::optim

#endif  // SAGDFN_OPTIM_LR_SCHEDULER_H_
