#ifndef SAGDFN_OPTIM_OPTIMIZER_H_
#define SAGDFN_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace sagdfn::optim {

/// Base class for gradient-based optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params, double lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the
  /// parameters.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
  double lr_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, double lr,
      double momentum = 0.0);

  void Step() override;

 private:
  double momentum_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction; the paper's optimizer.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, double lr,
       double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
       double weight_decay = 0.0);

  void Step() override;

  int64_t step_count() const { return step_count_; }

  /// Checkpoint access to the optimizer state: first and second moment
  /// slots, index-aligned with params(). The returned Tensor handles
  /// share storage with the live slots, so writing through them (e.g.
  /// Trainer::Resume copying a checkpoint in) updates the optimizer.
  const std::vector<tensor::Tensor>& moments_m() const { return m_; }
  const std::vector<tensor::Tensor>& moments_v() const { return v_; }

  /// Restores the bias-correction step counter on resume. Requires
  /// step_count >= 0.
  void set_step_count(int64_t step_count);

 private:
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int64_t step_count_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. A zero norm needs no rescaling and a
/// non-finite norm (NaN/Inf gradients) leaves the gradients untouched —
/// scaling by max_norm/Inf or by NaN would zero or poison every
/// parameter — so callers must check std::isfinite on the returned norm
/// before stepping the optimizer.
double ClipGradNorm(const std::vector<autograd::Variable>& params,
                    double max_norm);

}  // namespace sagdfn::optim

#endif  // SAGDFN_OPTIM_OPTIMIZER_H_
