#include "optim/lr_scheduler.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace sagdfn::optim {

MultiStepLr::MultiStepLr(Optimizer* optimizer,
                         std::vector<int64_t> milestones, double gamma)
    : optimizer_(optimizer),
      milestones_(std::move(milestones)),
      gamma_(gamma) {
  SAGDFN_CHECK(optimizer_ != nullptr);
  SAGDFN_CHECK_GT(gamma_, 0.0);
}

void MultiStepLr::Step(int64_t epoch) {
  if (std::find(milestones_.begin(), milestones_.end(), epoch) !=
      milestones_.end()) {
    optimizer_->set_lr(optimizer_->lr() * gamma_);
  }
}

CosineLr::CosineLr(Optimizer* optimizer, int64_t total_epochs, double min_lr)
    : optimizer_(optimizer),
      total_epochs_(total_epochs),
      base_lr_(optimizer->lr()),
      min_lr_(min_lr) {
  SAGDFN_CHECK(optimizer_ != nullptr);
  SAGDFN_CHECK_GT(total_epochs, 0);
}

void CosineLr::Step(int64_t epoch) {
  const double t = std::min<double>(epoch, total_epochs_) / total_epochs_;
  const double lr =
      min_lr_ + 0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(M_PI * t));
  optimizer_->set_lr(lr);
}

}  // namespace sagdfn::optim
