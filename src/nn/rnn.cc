#include "nn/rnn.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace sagdfn::nn {

namespace ag = ::sagdfn::autograd;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, utils::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  input_proj_ =
      std::make_unique<Linear>(input_size, 3 * hidden_size, rng, true);
  hidden_proj_ =
      std::make_unique<Linear>(hidden_size, 3 * hidden_size, rng, false);
  RegisterModule("input_proj", input_proj_.get());
  RegisterModule("hidden_proj", hidden_proj_.get());
}

ag::Variable GruCell::Forward(const ag::Variable& x,
                              const ag::Variable& h) const {
  SAGDFN_CHECK_EQ(x.shape().dim(-1), input_size_);
  SAGDFN_CHECK_EQ(h.shape().dim(-1), hidden_size_);
  ag::Variable xi = input_proj_->Forward(x);   // [B, 3H], (r|z|n)
  ag::Variable hh = hidden_proj_->Forward(h);  // [B, 3H]
  // Gates + candidate + blend in one fused pass (see autograd::GruStep):
  // the unfused Slice/Sigmoid/Tanh/Mul/Add chain materialized ~10
  // temporaries per step.
  return ag::GruStep(xi, hh, h);
}

ag::Variable GruCell::InitialState(int64_t batch) const {
  return ag::Variable(
      tensor::Tensor::Zeros(tensor::Shape({batch, hidden_size_})));
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, utils::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  input_proj_ =
      std::make_unique<Linear>(input_size, 4 * hidden_size, rng, true);
  hidden_proj_ =
      std::make_unique<Linear>(hidden_size, 4 * hidden_size, rng, false);
  RegisterModule("input_proj", input_proj_.get());
  RegisterModule("hidden_proj", hidden_proj_.get());
}

std::pair<ag::Variable, ag::Variable> LstmCell::Forward(
    const ag::Variable& x, const ag::Variable& h,
    const ag::Variable& c) const {
  SAGDFN_CHECK_EQ(x.shape().dim(-1), input_size_);
  const int64_t H = hidden_size_;
  ag::Variable gates =
      ag::Add(input_proj_->Forward(x), hidden_proj_->Forward(h));
  ag::Variable i = ag::Sigmoid(ag::Slice(gates, -1, 0, H));
  ag::Variable f = ag::Sigmoid(ag::Slice(gates, -1, H, 2 * H));
  ag::Variable g = ag::Tanh(ag::Slice(gates, -1, 2 * H, 3 * H));
  ag::Variable o = ag::Sigmoid(ag::Slice(gates, -1, 3 * H, 4 * H));
  ag::Variable c_new = ag::Add(ag::Mul(f, c), ag::Mul(i, g));
  ag::Variable h_new = ag::Mul(o, ag::Tanh(c_new));
  return {h_new, c_new};
}

std::pair<ag::Variable, ag::Variable> LstmCell::InitialState(
    int64_t batch) const {
  tensor::Shape s({batch, hidden_size_});
  return {ag::Variable(tensor::Tensor::Zeros(s)),
          ag::Variable(tensor::Tensor::Zeros(s))};
}

}  // namespace sagdfn::nn
