#include "nn/layer_norm.h"

#include "utils/check.h"

namespace sagdfn::nn {

namespace ag = ::sagdfn::autograd;

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  SAGDFN_CHECK_GT(features, 0);
  gamma_ = RegisterParameter(
      "gamma",
      ag::Variable(tensor::Tensor::Ones(tensor::Shape({features}))));
  beta_ = RegisterParameter(
      "beta",
      ag::Variable(tensor::Tensor::Zeros(tensor::Shape({features}))));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  SAGDFN_CHECK_EQ(x.shape().dim(-1), features_);
  ag::Variable mu = ag::Mean(x, -1, /*keepdim=*/true);
  ag::Variable centered = ag::Sub(x, mu);
  ag::Variable var = ag::Mean(ag::Mul(centered, centered), -1, true);
  ag::Variable denom = ag::Sqrt(ag::AddScalar(var, eps_));
  ag::Variable normed = ag::Div(centered, denom);
  return ag::Add(ag::Mul(normed, gamma_), beta_);
}

}  // namespace sagdfn::nn
