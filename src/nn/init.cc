#include "nn/init.h"

#include <cmath>

#include "utils/check.h"

namespace sagdfn::nn {
namespace {

void FanInOut(const tensor::Shape& shape, int64_t* fan_in,
              int64_t* fan_out) {
  SAGDFN_CHECK_GE(shape.ndim(), 1);
  if (shape.ndim() == 1) {
    *fan_in = shape.dims()[0];
    *fan_out = shape.dims()[0];
    return;
  }
  *fan_in = shape.dims()[shape.ndim() - 2];
  *fan_out = shape.dims()[shape.ndim() - 1];
}

}  // namespace

tensor::Tensor XavierUniform(tensor::Shape shape, utils::Rng& rng,
                             float gain) {
  int64_t fan_in = 0;
  int64_t fan_out = 0;
  FanInOut(shape, &fan_in, &fan_out);
  const float a =
      gain * std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::Uniform(std::move(shape), rng, -a, a);
}

tensor::Tensor XavierNormal(tensor::Shape shape, utils::Rng& rng,
                            float gain) {
  int64_t fan_in = 0;
  int64_t fan_out = 0;
  FanInOut(shape, &fan_in, &fan_out);
  const float stddev =
      gain * std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::Normal(std::move(shape), rng, 0.0f, stddev);
}

tensor::Tensor HeUniform(tensor::Shape shape, utils::Rng& rng) {
  int64_t fan_in = 0;
  int64_t fan_out = 0;
  FanInOut(shape, &fan_in, &fan_out);
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in));
  return tensor::Tensor::Uniform(std::move(shape), rng, -a, a);
}

tensor::Tensor LinearDefault(tensor::Shape shape, utils::Rng& rng,
                             int64_t fan_in) {
  SAGDFN_CHECK_GT(fan_in, 0);
  const float a = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return tensor::Tensor::Uniform(std::move(shape), rng, -a, a);
}

}  // namespace sagdfn::nn
