#ifndef SAGDFN_NN_LAYER_NORM_H_
#define SAGDFN_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace sagdfn::nn {

/// Layer normalization over the last dimension:
///   y = (x - mean) / sqrt(var + eps) * gamma + beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t features() const { return features_; }

 private:
  int64_t features_;
  float eps_;
  autograd::Variable gamma_;
  autograd::Variable beta_;
};

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_LAYER_NORM_H_
