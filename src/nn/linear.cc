#include "nn/linear.h"

#include "nn/init.h"
#include "utils/check.h"

namespace sagdfn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, utils::Rng& rng,
               bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  SAGDFN_CHECK_GT(in_features, 0);
  SAGDFN_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight",
      autograd::Variable(LinearDefault(
          tensor::Shape({in_features, out_features}), rng, in_features)));
  if (has_bias_) {
    bias_ = RegisterParameter(
        "bias", autograd::Variable(LinearDefault(
                    tensor::Shape({out_features}), rng, in_features)));
  }
}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  SAGDFN_CHECK_EQ(x.shape().dim(-1), in_features_)
      << "Linear input " << x.shape().ToString();
  autograd::Variable out;
  if (x.shape().ndim() == 2) {
    out = autograd::MatMul(x, weight_);
  } else if (x.shape().ndim() == 3) {
    out = autograd::BatchedMatMul(x, weight_);
  } else {
    SAGDFN_CHECK(false) << "Linear expects rank 2 or 3, got "
                        << x.shape().ToString();
  }
  if (has_bias_) out = autograd::Add(out, bias_);
  return out;
}

}  // namespace sagdfn::nn
