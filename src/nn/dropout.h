#ifndef SAGDFN_NN_DROPOUT_H_
#define SAGDFN_NN_DROPOUT_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "utils/rng.h"

namespace sagdfn::nn {

/// Inverted dropout: during training each element is zeroed with
/// probability p and survivors are scaled by 1/(1-p); in eval mode the
/// input passes through unchanged.
class Dropout : public Module {
 public:
  /// `p` in [0, 1). The module owns its RNG stream so dropout masks do not
  /// perturb other random state.
  explicit Dropout(double p, uint64_t seed = 7);

  autograd::Variable Forward(const autograd::Variable& x);

  double p() const { return p_; }

 private:
  double p_;
  utils::Rng rng_;
};

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_DROPOUT_H_
