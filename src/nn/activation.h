#ifndef SAGDFN_NN_ACTIVATION_H_
#define SAGDFN_NN_ACTIVATION_H_

#include "autograd/ops.h"

namespace sagdfn::nn {

/// Activation functions selectable by configuration.
enum class Activation {
  kIdentity,
  kRelu,
  kTanh,
  kSigmoid,
};

/// Applies the selected activation.
autograd::Variable Apply(Activation act, const autograd::Variable& x);

/// Parses "relu" / "tanh" / "sigmoid" / "identity" (fatal on unknown).
Activation ActivationFromName(const std::string& name);

/// Name for logging/serialization.
const char* ActivationName(Activation act);

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_ACTIVATION_H_
