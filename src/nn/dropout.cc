#include "nn/dropout.h"

#include "utils/check.h"

namespace sagdfn::nn {

Dropout::Dropout(double p, uint64_t seed) : p_(p), rng_(seed) {
  SAGDFN_CHECK_GE(p, 0.0);
  SAGDFN_CHECK_LT(p, 1.0);
}

autograd::Variable Dropout::Forward(const autograd::Variable& x) {
  if (!training() || p_ == 0.0) return x;
  tensor::Tensor mask(x.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  float* pm = mask.data();
  for (int64_t i = 0; i < mask.size(); ++i) {
    pm[i] = rng_.Bernoulli(p_) ? 0.0f : scale;
  }
  return autograd::MulMask(x, mask);
}

}  // namespace sagdfn::nn
