#ifndef SAGDFN_NN_MLP_H_
#define SAGDFN_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace sagdfn::nn {

/// Multi-layer perceptron: Linear -> act -> ... -> Linear. The activation
/// is applied between layers but not after the last one.
class Mlp : public Module {
 public:
  /// `dims` lists layer widths, e.g. {in, hidden, out} builds two Linear
  /// layers. Needs at least two entries.
  Mlp(const std::vector<int64_t>& dims, Activation act, utils::Rng& rng);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }

 private:
  Activation act_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_MLP_H_
