#include "nn/activation.h"

#include "utils/check.h"

namespace sagdfn::nn {

autograd::Variable Apply(Activation act, const autograd::Variable& x) {
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kRelu:
      return autograd::Relu(x);
    case Activation::kTanh:
      return autograd::Tanh(x);
    case Activation::kSigmoid:
      return autograd::Sigmoid(x);
  }
  SAGDFN_CHECK(false) << "unknown activation";
  return x;
}

Activation ActivationFromName(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  SAGDFN_CHECK(false) << "unknown activation: " << name;
  return Activation::kIdentity;
}

const char* ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "?";
}

}  // namespace sagdfn::nn
