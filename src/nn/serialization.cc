#include "nn/serialization.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "utils/fault.h"
#include "utils/logging.h"

namespace sagdfn::nn {
namespace {

constexpr uint32_t kMagic = 0x53414744;        // "SAGD" (streamed v2)
constexpr uint32_t kMappedMagic = 0x4D474153;  // "SAGM" (mapped format)
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxRank = 16;
constexpr uint64_t kMaxElements = uint64_t{1} << 40;
constexpr uint64_t kMappedHeaderBytes = 64;
constexpr uint64_t kMappedAlign = 64;

uint64_t Align64(uint64_t v) {
  return (v + kMappedAlign - 1) & ~(kMappedAlign - 1);
}

// ---------------------------------------------------------------------------
// Writing. Every write goes through ByteSink so the serialized size is
// tracked exactly (the header's payload_bytes field) and a stream failure
// (full disk, I/O error) is detected at the write that caused it.

class ByteSink {
 public:
  explicit ByteSink(std::ostream& out) : out_(out) {}

  void Write(const void* data, size_t bytes) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
    written_ += bytes;
  }
  void WriteU32(uint32_t v) { Write(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Write(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    Write(s.data(), s.size());
  }

  uint64_t written() const { return written_; }
  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
  uint64_t written_ = 0;
};

// The payload (everything after the fixed-size header) for one checkpoint.
void WritePayload(ByteSink& sink, const Checkpoint& checkpoint) {
  for (const auto& [name, value] : checkpoint.tensors) {
    sink.WriteString(name);
    const auto& dims = value.shape().dims();
    sink.WriteU64(dims.size());
    for (int64_t d : dims) sink.WriteU64(static_cast<uint64_t>(d));
    sink.Write(value.data(), value.size() * sizeof(float));
  }
  for (const auto& [name, words] : checkpoint.meta) {
    sink.WriteString(name);
    sink.WriteU64(words.size());
    sink.Write(words.data(), words.size() * sizeof(uint64_t));
  }
}

// ---------------------------------------------------------------------------
// Reading. ByteSource mirrors ByteSink: every read is checked and counted
// so a truncated file fails at the exact field, and the total consumed is
// compared against the header's payload_bytes.

class ByteSource {
 public:
  explicit ByteSource(std::istream& in) : in_(in) {}

  bool Read(void* data, size_t bytes) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (in_.gcount() != static_cast<std::streamsize>(bytes)) return false;
    consumed_ += bytes;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len) || len > kMaxNameLen) return false;
    s->assign(len, '\0');
    return Read(s->data(), len);
  }

  uint64_t consumed() const { return consumed_; }

 private:
  std::istream& in_;
  uint64_t consumed_ = 0;
};

utils::Status LoadCheckpointImpl(Checkpoint* checkpoint,
                                 const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return utils::Status::NotFound("cannot open: " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  ByteSource src(in);

  uint32_t magic = 0;
  uint32_t version = 0;
  if (!src.ReadU32(&magic) || magic != kMagic) {
    return utils::Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  if (!src.ReadU32(&version) || version != kCheckpointVersion) {
    return utils::Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kCheckpointVersion) +
        "): " + path);
  }
  uint64_t tensor_count = 0;
  uint64_t meta_count = 0;
  uint64_t payload_bytes = 0;
  if (!src.ReadU64(&tensor_count) || !src.ReadU64(&meta_count) ||
      !src.ReadU64(&payload_bytes)) {
    return utils::Status::InvalidArgument("truncated checkpoint header: " +
                                          path);
  }

  const uint64_t header_bytes = src.consumed();
  // Anchor the declared payload to the actual file size: every later
  // per-entry bound is relative to payload_bytes, so a corrupted (huge)
  // payload field would otherwise let a corrupted dim/word count size a
  // multi-terabyte allocation before any read fails.
  if (payload_bytes != file_size - header_bytes) {
    return utils::Status::InvalidArgument(
        "declared payload (" + std::to_string(payload_bytes) +
        " bytes) does not match file size: " + path);
  }
  // Each entry consumes at least a name length field plus a rank/word
  // count (16 bytes), which bounds the counts before the reserves trust
  // them.
  if (tensor_count > payload_bytes / 16 || meta_count > payload_bytes / 16) {
    return utils::Status::InvalidArgument("implausible entry count: " + path);
  }

  Checkpoint result;
  result.tensors.reserve(tensor_count);
  result.meta.reserve(meta_count);

  for (uint64_t i = 0; i < tensor_count; ++i) {
    std::string name;
    if (!src.ReadString(&name)) {
      return utils::Status::InvalidArgument(
          "truncated or corrupt tensor name (entry " + std::to_string(i) +
          "): " + path);
    }
    uint64_t rank = 0;
    if (!src.ReadU64(&rank) || rank > kMaxRank) {
      return utils::Status::InvalidArgument("corrupt rank for " + name +
                                            ": " + path);
    }
    std::vector<int64_t> dims(rank);
    uint64_t elements = 1;
    for (auto& d : dims) {
      uint64_t v = 0;
      if (!src.ReadU64(&v) || v > kMaxElements) {
        return utils::Status::InvalidArgument("corrupt dims for " + name +
                                              ": " + path);
      }
      d = static_cast<int64_t>(v);
      elements *= v == 0 ? 1 : v;
      if (elements > kMaxElements) {
        return utils::Status::InvalidArgument(
            "implausible element count for " + name + ": " + path);
      }
    }
    // A corrupted dim field must be rejected before the allocation it
    // sizes: the tensor's data cannot occupy more bytes than the header
    // says remain in the payload.
    const uint64_t payload_consumed = src.consumed() - header_bytes;
    if (payload_consumed > payload_bytes ||
        elements * sizeof(float) > payload_bytes - payload_consumed) {
      return utils::Status::InvalidArgument(
          "tensor " + name + " exceeds declared payload: " + path);
    }
    tensor::Tensor value{tensor::Shape(dims)};
    if (!src.Read(value.data(), value.size() * sizeof(float))) {
      return utils::Status::InvalidArgument("truncated data for " + name +
                                            ": " + path);
    }
    result.tensors.emplace_back(std::move(name), std::move(value));
  }

  for (uint64_t i = 0; i < meta_count; ++i) {
    std::string name;
    if (!src.ReadString(&name)) {
      return utils::Status::InvalidArgument(
          "truncated or corrupt meta name (entry " + std::to_string(i) +
          "): " + path);
    }
    uint64_t words = 0;
    if (!src.ReadU64(&words) || words > kMaxElements) {
      return utils::Status::InvalidArgument("corrupt meta size for " + name +
                                            ": " + path);
    }
    const uint64_t payload_consumed = src.consumed() - header_bytes;
    if (payload_consumed > payload_bytes ||
        words * sizeof(uint64_t) > payload_bytes - payload_consumed) {
      return utils::Status::InvalidArgument(
          "meta " + name + " exceeds declared payload: " + path);
    }
    std::vector<uint64_t> values(words);
    if (!src.Read(values.data(), words * sizeof(uint64_t))) {
      return utils::Status::InvalidArgument("truncated meta for " + name +
                                            ": " + path);
    }
    result.meta.emplace_back(std::move(name), std::move(values));
  }

  // The payload byte count in the header must agree with what the
  // entries actually occupied, and the file must end exactly there — a
  // disagreement means a truncated, padded, or tampered checkpoint.
  const uint64_t consumed_payload = src.consumed() - header_bytes;
  if (consumed_payload != payload_bytes) {
    return utils::Status::InvalidArgument(
        "payload size mismatch: header declares " +
        std::to_string(payload_bytes) + " bytes, entries occupy " +
        std::to_string(consumed_payload) + ": " + path);
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return utils::Status::InvalidArgument(
        "trailing bytes after checkpoint payload: " + path);
  }

  *checkpoint = std::move(result);
  return utils::Status::Ok();
}

// fsyncs a path (file or directory) so a rename-published checkpoint
// survives power loss. Best-effort on filesystems without dirsync.
bool SyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Collects parameter and buffer storage handles by qualified name.
std::map<std::string, tensor::Tensor> StateMap(Module* module) {
  std::map<std::string, tensor::Tensor> by_name;
  for (auto& [name, var] : module->NamedParameters()) {
    by_name.emplace(name, var.mutable_value());
  }
  for (auto& [name, buffer] : module->NamedBuffers()) {
    by_name.emplace("buffer:" + name, buffer);
  }
  return by_name;
}

}  // namespace

const tensor::Tensor* Checkpoint::FindTensor(const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) return &t;
  }
  return nullptr;
}

const std::vector<uint64_t>* Checkpoint::FindMeta(
    const std::string& name) const {
  for (const auto& [n, w] : meta) {
    if (n == name) return &w;
  }
  return nullptr;
}

utils::Status SaveCheckpoint(const Checkpoint& checkpoint,
                             const std::string& path) {
  utils::FaultInjector& injector = utils::FaultInjector::Global();
  if (injector.FireCounted(utils::FaultSite::kSaveFail)) {
    return utils::Status::Internal("injected I/O failure saving " + path);
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return utils::Status::NotFound("cannot open for write: " + tmp);
    }
    // Serialize the payload once to learn its exact byte count, then
    // write header + payload. Checkpoints are MB-scale here, so the
    // extra in-memory pass is cheap and keeps the header trustworthy.
    std::ostringstream payload_stream;
    ByteSink payload(payload_stream);
    WritePayload(payload, checkpoint);
    const std::string payload_bytes = payload_stream.str();

    ByteSink sink(out);
    sink.WriteU32(kMagic);
    sink.WriteU32(kCheckpointVersion);
    sink.WriteU64(checkpoint.tensors.size());
    sink.WriteU64(checkpoint.meta.size());
    sink.WriteU64(payload_bytes.size());
    sink.Write(payload_bytes.data(), payload_bytes.size());
    out.flush();
    if (!sink.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return utils::Status::ResourceExhausted(
          "write failed (disk full or I/O error): " + tmp);
    }
  }

  if (injector.FireCounted(utils::FaultSite::kTruncate)) {
    // Simulate a torn write: chop the tail third off the temp file. The
    // verification pass below must catch this before the rename.
    std::ifstream probe(tmp, std::ios::binary | std::ios::ate);
    const auto size = static_cast<int64_t>(probe.tellg());
    probe.close();
    if (::truncate(tmp.c_str(), size * 2 / 3) != 0) {
      std::remove(tmp.c_str());
      return utils::Status::Internal("fault injection truncate failed: " +
                                     tmp);
    }
  }

  // Verify-before-publish: re-read the temp file end to end. Only a
  // checkpoint that parses cleanly may replace the previous one.
  Checkpoint readback;
  utils::Status verify = LoadCheckpointImpl(&readback, tmp);
  if (!verify.ok()) {
    std::remove(tmp.c_str());
    return utils::Status::Internal(
        "checkpoint failed post-write verification (" + verify.message() +
        "); previous checkpoint left intact");
  }

  if (!SyncPath(tmp)) {
    std::remove(tmp.c_str());
    return utils::Status::Internal("fsync failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return utils::Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  if (!SyncPath(DirName(path))) {
    SAGDFN_LOG(Warning) << "directory fsync failed for " << path
                        << " (checkpoint published but may not survive "
                           "power loss)";
  }
  return utils::Status::Ok();
}

utils::Status LoadCheckpoint(Checkpoint* checkpoint,
                             const std::string& path) {
  if (utils::FaultInjector::Global().FireCounted(
          utils::FaultSite::kLoadFail)) {
    return utils::Status::Internal("injected I/O failure loading " + path);
  }
  return LoadCheckpointImpl(checkpoint, path);
}

utils::Status SaveModule(const Module& module, const std::string& path) {
  Checkpoint checkpoint;
  for (const auto& [name, var] : module.NamedParameters()) {
    checkpoint.tensors.emplace_back(name, var.value());
  }
  for (const auto& [name, buffer] : module.NamedBuffers()) {
    checkpoint.tensors.emplace_back("buffer:" + name, buffer);
  }
  return SaveCheckpoint(checkpoint, path);
}

utils::Status LoadModuleFromCheckpoint(Module* module,
                                       const Checkpoint& checkpoint,
                                       const std::string& prefix) {
  std::map<std::string, tensor::Tensor> by_name = StateMap(module);
  // Two passes so a bad checkpoint can never leave the module half
  // overwritten: validate every record (membership, shape, duplicates),
  // and only if the whole set is coherent copy any data.
  std::vector<std::pair<tensor::Tensor*, const tensor::Tensor*>> plan;
  std::set<std::string> seen;
  for (const auto& [name, value] : checkpoint.tensors) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string local = name.substr(prefix.size());
    auto it = by_name.find(local);
    if (it == by_name.end()) {
      return utils::Status::NotFound("unknown entry in checkpoint: " + name);
    }
    if (!seen.insert(local).second) {
      return utils::Status::InvalidArgument(
          "duplicate entry in checkpoint: " + name);
    }
    if (!(value.shape() == it->second.shape())) {
      return utils::Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          value.shape().ToString() + " vs module " +
          it->second.shape().ToString());
    }
    plan.emplace_back(&it->second, &value);
  }
  if (plan.size() != by_name.size()) {
    return utils::Status::InvalidArgument(
        "state count mismatch: checkpoint has " +
        std::to_string(plan.size()) + " entries under '" + prefix +
        "', module has " + std::to_string(by_name.size()));
  }
  for (auto& [dst, src] : plan) dst->CopyFrom(*src);
  module->OnStateLoaded();
  return utils::Status::Ok();
}

utils::Status LoadModule(Module* module, const std::string& path) {
  Checkpoint checkpoint;
  SAGDFN_RETURN_IF_ERROR(LoadCheckpoint(&checkpoint, path));
  return LoadModuleFromCheckpoint(module, checkpoint, /*prefix=*/"");
}

utils::Status CopyModuleState(const Module& src, Module* dst) {
  Checkpoint checkpoint;
  for (const auto& [name, var] : src.NamedParameters()) {
    checkpoint.tensors.emplace_back(name, var.value());
  }
  for (const auto& [name, buffer] : src.NamedBuffers()) {
    checkpoint.tensors.emplace_back("buffer:" + name, buffer);
  }
  return LoadModuleFromCheckpoint(dst, checkpoint, /*prefix=*/"");
}

// ---------------------------------------------------------------------------
// Mapped ("SAGM") weight files.

namespace {

// Bounds-checked cursor over the mapped index region. Fields are
// memcpy'd out: the index packs strings between integers, so u64 fields
// are not always 8-aligned in the file and must not be read through a
// reinterpret_cast.
class MemCursor {
 public:
  MemCursor(const uint8_t* data, uint64_t size) : data_(data), size_(size) {}

  bool Read(void* out, uint64_t bytes) {
    if (bytes > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
    return true;
  }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len) || len > kMaxNameLen || len > size_ - pos_) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(len));
    pos_ += len;
    return true;
  }
  uint64_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  uint64_t size_;
  uint64_t pos_ = 0;
};

// Exact byte count of the index region for `checkpoint` (names, ranks,
// dims, word counts, offsets — everything except the aligned payloads).
uint64_t MappedIndexBytes(const Checkpoint& checkpoint) {
  uint64_t bytes = 0;
  for (const auto& [name, value] : checkpoint.tensors) {
    bytes += 8 + name.size();                          // name
    bytes += 8;                                        // rank
    bytes += 8 * value.shape().dims().size();          // dims
    bytes += 8;                                        // payload offset
  }
  for (const auto& [name, words] : checkpoint.meta) {
    bytes += 8 + name.size();  // name
    bytes += 8;                // word count
    bytes += 8;                // payload offset
  }
  return bytes;
}

}  // namespace

const tensor::Tensor* MappedCheckpoint::FindTensor(
    const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) return &t;
  }
  return nullptr;
}

const std::vector<uint64_t>* MappedCheckpoint::FindMeta(
    const std::string& name) const {
  for (const auto& [n, w] : meta) {
    if (n == name) return &w;
  }
  return nullptr;
}

utils::Status SaveMappedCheckpoint(const Checkpoint& checkpoint,
                                   const std::string& path) {
  utils::FaultInjector& injector = utils::FaultInjector::Global();
  if (injector.FireCounted(utils::FaultSite::kSaveFail)) {
    return utils::Status::Internal("injected I/O failure saving " + path);
  }
  for (const auto& [name, value] : checkpoint.tensors) {
    if (name.size() > kMaxNameLen ||
        value.shape().dims().size() > kMaxRank) {
      return utils::Status::InvalidArgument(
          "tensor not representable in mapped format: " + name);
    }
  }
  for (const auto& [name, words] : checkpoint.meta) {
    if (name.size() > kMaxNameLen) {
      return utils::Status::InvalidArgument(
          "meta name too long for mapped format: " + name);
    }
    (void)words;
  }

  // Lay out payload offsets: aligned region after the index, one aligned
  // slot per entry in index order.
  const uint64_t index_bytes = MappedIndexBytes(checkpoint);
  uint64_t cursor = Align64(kMappedHeaderBytes + index_bytes);
  std::vector<uint64_t> tensor_offsets;
  tensor_offsets.reserve(checkpoint.tensors.size());
  for (const auto& [name, value] : checkpoint.tensors) {
    tensor_offsets.push_back(cursor);
    cursor = Align64(cursor +
                     static_cast<uint64_t>(value.size()) * sizeof(float));
  }
  std::vector<uint64_t> meta_offsets;
  meta_offsets.reserve(checkpoint.meta.size());
  for (const auto& [name, words] : checkpoint.meta) {
    meta_offsets.push_back(cursor);
    cursor = Align64(cursor + words.size() * sizeof(uint64_t));
  }
  const uint64_t file_bytes = cursor;

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return utils::Status::NotFound("cannot open for write: " + tmp);
    }
    ByteSink sink(out);
    sink.WriteU32(kMappedMagic);
    sink.WriteU32(kMappedFormatVersion);
    sink.WriteU64(checkpoint.tensors.size());
    sink.WriteU64(checkpoint.meta.size());
    sink.WriteU64(index_bytes);
    sink.WriteU64(file_bytes);
    const char zeros[kMappedAlign] = {};
    sink.Write(zeros, kMappedHeaderBytes - sink.written());

    for (size_t i = 0; i < checkpoint.tensors.size(); ++i) {
      const auto& [name, value] = checkpoint.tensors[i];
      sink.WriteString(name);
      const auto& dims = value.shape().dims();
      sink.WriteU64(dims.size());
      for (int64_t d : dims) sink.WriteU64(static_cast<uint64_t>(d));
      sink.WriteU64(tensor_offsets[i]);
    }
    for (size_t i = 0; i < checkpoint.meta.size(); ++i) {
      const auto& [name, words] = checkpoint.meta[i];
      sink.WriteString(name);
      sink.WriteU64(words.size());
      sink.WriteU64(meta_offsets[i]);
    }

    // Payloads at their precomputed aligned offsets; the gaps between
    // entries are explicit zeros so the file content is a pure function
    // of the checkpoint (byte-identical re-saves).
    auto pad_to = [&](uint64_t offset) {
      while (sink.written() < offset) {
        const uint64_t gap =
            std::min<uint64_t>(sizeof(zeros), offset - sink.written());
        sink.Write(zeros, gap);
      }
    };
    for (size_t i = 0; i < checkpoint.tensors.size(); ++i) {
      pad_to(tensor_offsets[i]);
      const auto& value = checkpoint.tensors[i].second;
      sink.Write(value.data(),
                 static_cast<uint64_t>(value.size()) * sizeof(float));
    }
    for (size_t i = 0; i < checkpoint.meta.size(); ++i) {
      pad_to(meta_offsets[i]);
      const auto& words = checkpoint.meta[i].second;
      sink.Write(words.data(), words.size() * sizeof(uint64_t));
    }
    pad_to(file_bytes);
    out.flush();
    if (!sink.ok() || sink.written() != file_bytes) {
      out.close();
      std::remove(tmp.c_str());
      return utils::Status::ResourceExhausted(
          "write failed (disk full or I/O error): " + tmp);
    }
  }

  if (injector.FireCounted(utils::FaultSite::kTruncate)) {
    std::ifstream probe(tmp, std::ios::binary | std::ios::ate);
    const auto size = static_cast<int64_t>(probe.tellg());
    probe.close();
    if (::truncate(tmp.c_str(), size * 2 / 3) != 0) {
      std::remove(tmp.c_str());
      return utils::Status::Internal("fault injection truncate failed: " +
                                     tmp);
    }
  }

  // Verify-before-publish, through the same reader consumers will use.
  MappedCheckpoint readback;
  utils::Status verify = OpenMappedCheckpoint(&readback, tmp);
  if (!verify.ok()) {
    std::remove(tmp.c_str());
    return utils::Status::Internal(
        "mapped checkpoint failed post-write verification (" +
        verify.message() + "); previous file left intact");
  }
  readback = MappedCheckpoint{};  // drop the mapping before rename

  if (!SyncPath(tmp)) {
    std::remove(tmp.c_str());
    return utils::Status::Internal("fsync failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return utils::Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  if (!SyncPath(DirName(path))) {
    SAGDFN_LOG(Warning) << "directory fsync failed for " << path
                        << " (weight file published but may not survive "
                           "power loss)";
  }
  return utils::Status::Ok();
}

utils::Status OpenMappedCheckpoint(MappedCheckpoint* out,
                                   const std::string& path) {
  if (utils::FaultInjector::Global().FireCounted(
          utils::FaultSite::kLoadFail)) {
    return utils::Status::Internal("injected I/O failure loading " + path);
  }
  std::shared_ptr<utils::MappedFile> file;
  SAGDFN_RETURN_IF_ERROR(utils::MappedFile::Open(path, &file));
  const uint8_t* base = file->data();
  const uint64_t size = file->size();
  if (size < kMappedHeaderBytes) {
    return utils::Status::InvalidArgument("file too small for header: " +
                                          path);
  }

  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t tensor_count = 0;
  uint64_t meta_count = 0;
  uint64_t index_bytes = 0;
  uint64_t file_bytes = 0;
  MemCursor header(base, kMappedHeaderBytes);
  header.Read(&magic, sizeof(magic));
  header.Read(&version, sizeof(version));
  header.ReadU64(&tensor_count);
  header.ReadU64(&meta_count);
  header.ReadU64(&index_bytes);
  header.ReadU64(&file_bytes);
  if (magic != kMappedMagic) {
    return utils::Status::InvalidArgument("bad mapped-file magic: " + path);
  }
  if (version != kMappedFormatVersion) {
    return utils::Status::InvalidArgument(
        "unsupported mapped-file version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kMappedFormatVersion) + "): " + path);
  }
  if (file_bytes != size) {
    return utils::Status::InvalidArgument(
        "declared size (" + std::to_string(file_bytes) +
        " bytes) does not match file size (" + std::to_string(size) +
        "): " + path);
  }
  if (index_bytes > size - kMappedHeaderBytes) {
    return utils::Status::InvalidArgument("index exceeds file: " + path);
  }
  // Every index entry occupies at least name-length + count + offset.
  if (tensor_count > index_bytes / 24 || meta_count > index_bytes / 24) {
    return utils::Status::InvalidArgument("implausible entry count: " + path);
  }

  MappedCheckpoint result;
  result.file = file;
  result.tensors.reserve(tensor_count);
  result.meta.reserve(meta_count);
  MemCursor index(base + kMappedHeaderBytes, index_bytes);

  auto check_payload = [&](uint64_t offset, uint64_t bytes,
                           const std::string& name) -> utils::Status {
    if (offset % kMappedAlign != 0) {
      return utils::Status::InvalidArgument("misaligned payload for " +
                                            name + ": " + path);
    }
    if (offset > size || bytes > size - offset) {
      return utils::Status::InvalidArgument("payload for " + name +
                                            " exceeds file: " + path);
    }
    return utils::Status::Ok();
  };

  for (uint64_t i = 0; i < tensor_count; ++i) {
    std::string name;
    if (!index.ReadString(&name)) {
      return utils::Status::InvalidArgument(
          "truncated or corrupt tensor name (entry " + std::to_string(i) +
          "): " + path);
    }
    uint64_t rank = 0;
    if (!index.ReadU64(&rank) || rank > kMaxRank) {
      return utils::Status::InvalidArgument("corrupt rank for " + name +
                                            ": " + path);
    }
    std::vector<int64_t> dims(rank);
    uint64_t elements = 1;
    for (auto& d : dims) {
      uint64_t v = 0;
      if (!index.ReadU64(&v) || v > kMaxElements) {
        return utils::Status::InvalidArgument("corrupt dims for " + name +
                                              ": " + path);
      }
      d = static_cast<int64_t>(v);
      elements *= v == 0 ? 1 : v;
      if (elements > kMaxElements) {
        return utils::Status::InvalidArgument(
            "implausible element count for " + name + ": " + path);
      }
    }
    uint64_t offset = 0;
    if (!index.ReadU64(&offset)) {
      return utils::Status::InvalidArgument("truncated offset for " + name +
                                            ": " + path);
    }
    tensor::Shape shape(dims);
    const uint64_t bytes =
        static_cast<uint64_t>(shape.NumElements()) * sizeof(float);
    SAGDFN_RETURN_IF_ERROR(check_payload(offset, bytes, name));
    // The mapping is PROT_READ; the const_cast hands out a pointer that
    // must never be written (FromExternal documents the contract).
    float* data = const_cast<float*>(
        reinterpret_cast<const float*>(base + offset));
    result.tensors.emplace_back(
        std::move(name),
        tensor::Tensor::FromExternal(file, data, std::move(shape)));
  }

  for (uint64_t i = 0; i < meta_count; ++i) {
    std::string name;
    if (!index.ReadString(&name)) {
      return utils::Status::InvalidArgument(
          "truncated or corrupt meta name (entry " + std::to_string(i) +
          "): " + path);
    }
    uint64_t words = 0;
    uint64_t offset = 0;
    if (!index.ReadU64(&words) || words > kMaxElements ||
        !index.ReadU64(&offset)) {
      return utils::Status::InvalidArgument("corrupt meta entry for " +
                                            name + ": " + path);
    }
    SAGDFN_RETURN_IF_ERROR(
        check_payload(offset, words * sizeof(uint64_t), name));
    std::vector<uint64_t> values(words);
    if (words > 0) {
      std::memcpy(values.data(), base + offset, words * sizeof(uint64_t));
    }
    result.meta.emplace_back(std::move(name), std::move(values));
  }

  if (index.pos() != index_bytes) {
    return utils::Status::InvalidArgument(
        "index size mismatch: header declares " +
        std::to_string(index_bytes) + " bytes, entries occupy " +
        std::to_string(index.pos()) + ": " + path);
  }

  *out = std::move(result);
  return utils::Status::Ok();
}

}  // namespace sagdfn::nn
