#include "nn/serialization.h"

#include <cstdint>
#include <fstream>
#include <map>

namespace sagdfn::nn {
namespace {

constexpr uint32_t kMagic = 0x53414744;  // "SAGD"

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void WriteEntry(std::ofstream& out, const std::string& name,
                const tensor::Tensor& value) {
  WriteU64(out, name.size());
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  const auto& dims = value.shape().dims();
  WriteU64(out, dims.size());
  for (int64_t d : dims) WriteU64(out, static_cast<uint64_t>(d));
  out.write(reinterpret_cast<const char*>(value.data()),
            static_cast<std::streamsize>(value.size() * sizeof(float)));
}

/// Collects parameter and buffer storage handles by qualified name.
std::map<std::string, tensor::Tensor> StateMap(Module* module) {
  std::map<std::string, tensor::Tensor> by_name;
  for (auto& [name, var] : module->NamedParameters()) {
    by_name.emplace(name, var.mutable_value());
  }
  for (auto& [name, buffer] : module->NamedBuffers()) {
    by_name.emplace("buffer:" + name, buffer);
  }
  return by_name;
}

}  // namespace

utils::Status SaveModule(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return utils::Status::NotFound("cannot open for write: " + path);
  }
  auto params = module.NamedParameters();
  auto buffers = module.NamedBuffers();
  WriteU32(out, kMagic);
  WriteU64(out, params.size() + buffers.size());
  for (const auto& [name, var] : params) {
    WriteEntry(out, name, var.value());
  }
  for (const auto& [name, buffer] : buffers) {
    WriteEntry(out, "buffer:" + name, buffer);
  }
  if (!out.good()) {
    return utils::Status::Internal("write failed: " + path);
  }
  return utils::Status::Ok();
}

utils::Status LoadModule(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return utils::Status::NotFound("cannot open: " + path);
  }
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return utils::Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  if (!ReadU64(in, &count)) {
    return utils::Status::InvalidArgument("truncated checkpoint: " + path);
  }

  std::map<std::string, tensor::Tensor> by_name = StateMap(module);
  if (count != by_name.size()) {
    return utils::Status::InvalidArgument(
        "state count mismatch: file has " + std::to_string(count) +
        ", module has " + std::to_string(by_name.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len) || name_len > 4096) {
      return utils::Status::InvalidArgument("corrupt name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t rank = 0;
    if (!ReadU64(in, &rank) || rank > 16) {
      return utils::Status::InvalidArgument("corrupt rank for " + name);
    }
    std::vector<int64_t> dims(rank);
    for (auto& d : dims) {
      uint64_t v = 0;
      if (!ReadU64(in, &v)) {
        return utils::Status::InvalidArgument("corrupt dims for " + name);
      }
      d = static_cast<int64_t>(v);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return utils::Status::NotFound("unknown entry in file: " + name);
    }
    tensor::Shape shape(dims);
    if (!(shape == it->second.shape())) {
      return utils::Status::InvalidArgument(
          "shape mismatch for " + name + ": file " + shape.ToString() +
          " vs module " + it->second.shape().ToString());
    }
    in.read(reinterpret_cast<char*>(it->second.data()),
            static_cast<std::streamsize>(it->second.size() *
                                         sizeof(float)));
    if (!in.good()) {
      return utils::Status::InvalidArgument("truncated data for " + name);
    }
  }
  module->OnStateLoaded();
  return utils::Status::Ok();
}

}  // namespace sagdfn::nn
