#include "nn/serialization.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "utils/fault.h"
#include "utils/logging.h"

namespace sagdfn::nn {
namespace {

constexpr uint32_t kMagic = 0x53414744;  // "SAGD"
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxRank = 16;
constexpr uint64_t kMaxElements = uint64_t{1} << 40;

// ---------------------------------------------------------------------------
// Writing. Every write goes through ByteSink so the serialized size is
// tracked exactly (the header's payload_bytes field) and a stream failure
// (full disk, I/O error) is detected at the write that caused it.

class ByteSink {
 public:
  explicit ByteSink(std::ostream& out) : out_(out) {}

  void Write(const void* data, size_t bytes) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
    written_ += bytes;
  }
  void WriteU32(uint32_t v) { Write(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Write(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    Write(s.data(), s.size());
  }

  uint64_t written() const { return written_; }
  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
  uint64_t written_ = 0;
};

// The payload (everything after the fixed-size header) for one checkpoint.
void WritePayload(ByteSink& sink, const Checkpoint& checkpoint) {
  for (const auto& [name, value] : checkpoint.tensors) {
    sink.WriteString(name);
    const auto& dims = value.shape().dims();
    sink.WriteU64(dims.size());
    for (int64_t d : dims) sink.WriteU64(static_cast<uint64_t>(d));
    sink.Write(value.data(), value.size() * sizeof(float));
  }
  for (const auto& [name, words] : checkpoint.meta) {
    sink.WriteString(name);
    sink.WriteU64(words.size());
    sink.Write(words.data(), words.size() * sizeof(uint64_t));
  }
}

// ---------------------------------------------------------------------------
// Reading. ByteSource mirrors ByteSink: every read is checked and counted
// so a truncated file fails at the exact field, and the total consumed is
// compared against the header's payload_bytes.

class ByteSource {
 public:
  explicit ByteSource(std::istream& in) : in_(in) {}

  bool Read(void* data, size_t bytes) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (in_.gcount() != static_cast<std::streamsize>(bytes)) return false;
    consumed_ += bytes;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len) || len > kMaxNameLen) return false;
    s->assign(len, '\0');
    return Read(s->data(), len);
  }

  uint64_t consumed() const { return consumed_; }

 private:
  std::istream& in_;
  uint64_t consumed_ = 0;
};

utils::Status LoadCheckpointImpl(Checkpoint* checkpoint,
                                 const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return utils::Status::NotFound("cannot open: " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  ByteSource src(in);

  uint32_t magic = 0;
  uint32_t version = 0;
  if (!src.ReadU32(&magic) || magic != kMagic) {
    return utils::Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  if (!src.ReadU32(&version) || version != kCheckpointVersion) {
    return utils::Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kCheckpointVersion) +
        "): " + path);
  }
  uint64_t tensor_count = 0;
  uint64_t meta_count = 0;
  uint64_t payload_bytes = 0;
  if (!src.ReadU64(&tensor_count) || !src.ReadU64(&meta_count) ||
      !src.ReadU64(&payload_bytes)) {
    return utils::Status::InvalidArgument("truncated checkpoint header: " +
                                          path);
  }

  const uint64_t header_bytes = src.consumed();
  // Anchor the declared payload to the actual file size: every later
  // per-entry bound is relative to payload_bytes, so a corrupted (huge)
  // payload field would otherwise let a corrupted dim/word count size a
  // multi-terabyte allocation before any read fails.
  if (payload_bytes != file_size - header_bytes) {
    return utils::Status::InvalidArgument(
        "declared payload (" + std::to_string(payload_bytes) +
        " bytes) does not match file size: " + path);
  }
  // Each entry consumes at least a name length field plus a rank/word
  // count (16 bytes), which bounds the counts before the reserves trust
  // them.
  if (tensor_count > payload_bytes / 16 || meta_count > payload_bytes / 16) {
    return utils::Status::InvalidArgument("implausible entry count: " + path);
  }

  Checkpoint result;
  result.tensors.reserve(tensor_count);
  result.meta.reserve(meta_count);

  for (uint64_t i = 0; i < tensor_count; ++i) {
    std::string name;
    if (!src.ReadString(&name)) {
      return utils::Status::InvalidArgument(
          "truncated or corrupt tensor name (entry " + std::to_string(i) +
          "): " + path);
    }
    uint64_t rank = 0;
    if (!src.ReadU64(&rank) || rank > kMaxRank) {
      return utils::Status::InvalidArgument("corrupt rank for " + name +
                                            ": " + path);
    }
    std::vector<int64_t> dims(rank);
    uint64_t elements = 1;
    for (auto& d : dims) {
      uint64_t v = 0;
      if (!src.ReadU64(&v) || v > kMaxElements) {
        return utils::Status::InvalidArgument("corrupt dims for " + name +
                                              ": " + path);
      }
      d = static_cast<int64_t>(v);
      elements *= v == 0 ? 1 : v;
      if (elements > kMaxElements) {
        return utils::Status::InvalidArgument(
            "implausible element count for " + name + ": " + path);
      }
    }
    // A corrupted dim field must be rejected before the allocation it
    // sizes: the tensor's data cannot occupy more bytes than the header
    // says remain in the payload.
    const uint64_t payload_consumed = src.consumed() - header_bytes;
    if (payload_consumed > payload_bytes ||
        elements * sizeof(float) > payload_bytes - payload_consumed) {
      return utils::Status::InvalidArgument(
          "tensor " + name + " exceeds declared payload: " + path);
    }
    tensor::Tensor value{tensor::Shape(dims)};
    if (!src.Read(value.data(), value.size() * sizeof(float))) {
      return utils::Status::InvalidArgument("truncated data for " + name +
                                            ": " + path);
    }
    result.tensors.emplace_back(std::move(name), std::move(value));
  }

  for (uint64_t i = 0; i < meta_count; ++i) {
    std::string name;
    if (!src.ReadString(&name)) {
      return utils::Status::InvalidArgument(
          "truncated or corrupt meta name (entry " + std::to_string(i) +
          "): " + path);
    }
    uint64_t words = 0;
    if (!src.ReadU64(&words) || words > kMaxElements) {
      return utils::Status::InvalidArgument("corrupt meta size for " + name +
                                            ": " + path);
    }
    const uint64_t payload_consumed = src.consumed() - header_bytes;
    if (payload_consumed > payload_bytes ||
        words * sizeof(uint64_t) > payload_bytes - payload_consumed) {
      return utils::Status::InvalidArgument(
          "meta " + name + " exceeds declared payload: " + path);
    }
    std::vector<uint64_t> values(words);
    if (!src.Read(values.data(), words * sizeof(uint64_t))) {
      return utils::Status::InvalidArgument("truncated meta for " + name +
                                            ": " + path);
    }
    result.meta.emplace_back(std::move(name), std::move(values));
  }

  // The payload byte count in the header must agree with what the
  // entries actually occupied, and the file must end exactly there — a
  // disagreement means a truncated, padded, or tampered checkpoint.
  const uint64_t consumed_payload = src.consumed() - header_bytes;
  if (consumed_payload != payload_bytes) {
    return utils::Status::InvalidArgument(
        "payload size mismatch: header declares " +
        std::to_string(payload_bytes) + " bytes, entries occupy " +
        std::to_string(consumed_payload) + ": " + path);
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return utils::Status::InvalidArgument(
        "trailing bytes after checkpoint payload: " + path);
  }

  *checkpoint = std::move(result);
  return utils::Status::Ok();
}

// fsyncs a path (file or directory) so a rename-published checkpoint
// survives power loss. Best-effort on filesystems without dirsync.
bool SyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Collects parameter and buffer storage handles by qualified name.
std::map<std::string, tensor::Tensor> StateMap(Module* module) {
  std::map<std::string, tensor::Tensor> by_name;
  for (auto& [name, var] : module->NamedParameters()) {
    by_name.emplace(name, var.mutable_value());
  }
  for (auto& [name, buffer] : module->NamedBuffers()) {
    by_name.emplace("buffer:" + name, buffer);
  }
  return by_name;
}

}  // namespace

const tensor::Tensor* Checkpoint::FindTensor(const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) return &t;
  }
  return nullptr;
}

const std::vector<uint64_t>* Checkpoint::FindMeta(
    const std::string& name) const {
  for (const auto& [n, w] : meta) {
    if (n == name) return &w;
  }
  return nullptr;
}

utils::Status SaveCheckpoint(const Checkpoint& checkpoint,
                             const std::string& path) {
  utils::FaultInjector& injector = utils::FaultInjector::Global();
  if (injector.FireCounted(utils::FaultSite::kSaveFail)) {
    return utils::Status::Internal("injected I/O failure saving " + path);
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return utils::Status::NotFound("cannot open for write: " + tmp);
    }
    // Serialize the payload once to learn its exact byte count, then
    // write header + payload. Checkpoints are MB-scale here, so the
    // extra in-memory pass is cheap and keeps the header trustworthy.
    std::ostringstream payload_stream;
    ByteSink payload(payload_stream);
    WritePayload(payload, checkpoint);
    const std::string payload_bytes = payload_stream.str();

    ByteSink sink(out);
    sink.WriteU32(kMagic);
    sink.WriteU32(kCheckpointVersion);
    sink.WriteU64(checkpoint.tensors.size());
    sink.WriteU64(checkpoint.meta.size());
    sink.WriteU64(payload_bytes.size());
    sink.Write(payload_bytes.data(), payload_bytes.size());
    out.flush();
    if (!sink.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return utils::Status::ResourceExhausted(
          "write failed (disk full or I/O error): " + tmp);
    }
  }

  if (injector.FireCounted(utils::FaultSite::kTruncate)) {
    // Simulate a torn write: chop the tail third off the temp file. The
    // verification pass below must catch this before the rename.
    std::ifstream probe(tmp, std::ios::binary | std::ios::ate);
    const auto size = static_cast<int64_t>(probe.tellg());
    probe.close();
    if (::truncate(tmp.c_str(), size * 2 / 3) != 0) {
      std::remove(tmp.c_str());
      return utils::Status::Internal("fault injection truncate failed: " +
                                     tmp);
    }
  }

  // Verify-before-publish: re-read the temp file end to end. Only a
  // checkpoint that parses cleanly may replace the previous one.
  Checkpoint readback;
  utils::Status verify = LoadCheckpointImpl(&readback, tmp);
  if (!verify.ok()) {
    std::remove(tmp.c_str());
    return utils::Status::Internal(
        "checkpoint failed post-write verification (" + verify.message() +
        "); previous checkpoint left intact");
  }

  if (!SyncPath(tmp)) {
    std::remove(tmp.c_str());
    return utils::Status::Internal("fsync failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return utils::Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  if (!SyncPath(DirName(path))) {
    SAGDFN_LOG(Warning) << "directory fsync failed for " << path
                        << " (checkpoint published but may not survive "
                           "power loss)";
  }
  return utils::Status::Ok();
}

utils::Status LoadCheckpoint(Checkpoint* checkpoint,
                             const std::string& path) {
  if (utils::FaultInjector::Global().FireCounted(
          utils::FaultSite::kLoadFail)) {
    return utils::Status::Internal("injected I/O failure loading " + path);
  }
  return LoadCheckpointImpl(checkpoint, path);
}

utils::Status SaveModule(const Module& module, const std::string& path) {
  Checkpoint checkpoint;
  for (const auto& [name, var] : module.NamedParameters()) {
    checkpoint.tensors.emplace_back(name, var.value());
  }
  for (const auto& [name, buffer] : module.NamedBuffers()) {
    checkpoint.tensors.emplace_back("buffer:" + name, buffer);
  }
  return SaveCheckpoint(checkpoint, path);
}

utils::Status LoadModuleFromCheckpoint(Module* module,
                                       const Checkpoint& checkpoint,
                                       const std::string& prefix) {
  std::map<std::string, tensor::Tensor> by_name = StateMap(module);
  // Two passes so a bad checkpoint can never leave the module half
  // overwritten: validate every record (membership, shape, duplicates),
  // and only if the whole set is coherent copy any data.
  std::vector<std::pair<tensor::Tensor*, const tensor::Tensor*>> plan;
  std::set<std::string> seen;
  for (const auto& [name, value] : checkpoint.tensors) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string local = name.substr(prefix.size());
    auto it = by_name.find(local);
    if (it == by_name.end()) {
      return utils::Status::NotFound("unknown entry in checkpoint: " + name);
    }
    if (!seen.insert(local).second) {
      return utils::Status::InvalidArgument(
          "duplicate entry in checkpoint: " + name);
    }
    if (!(value.shape() == it->second.shape())) {
      return utils::Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          value.shape().ToString() + " vs module " +
          it->second.shape().ToString());
    }
    plan.emplace_back(&it->second, &value);
  }
  if (plan.size() != by_name.size()) {
    return utils::Status::InvalidArgument(
        "state count mismatch: checkpoint has " +
        std::to_string(plan.size()) + " entries under '" + prefix +
        "', module has " + std::to_string(by_name.size()));
  }
  for (auto& [dst, src] : plan) dst->CopyFrom(*src);
  module->OnStateLoaded();
  return utils::Status::Ok();
}

utils::Status LoadModule(Module* module, const std::string& path) {
  Checkpoint checkpoint;
  SAGDFN_RETURN_IF_ERROR(LoadCheckpoint(&checkpoint, path));
  return LoadModuleFromCheckpoint(module, checkpoint, /*prefix=*/"");
}

}  // namespace sagdfn::nn
