#include "nn/module.h"

#include "utils/check.h"

namespace sagdfn::nn {

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> result;
  for (const auto& [name, param] : params_) {
    result.emplace_back(name, param);
  }
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, param] : child->NamedParameters()) {
      result.emplace_back(child_name + "." + name, param);
    }
  }
  return result;
}

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> result;
  for (auto& [name, param] : NamedParameters()) {
    result.push_back(param);
  }
  return result;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const auto& param : Parameters()) count += param.size();
  return count;
}

void Module::ZeroGrad() {
  for (auto& param : Parameters()) param.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

std::vector<std::pair<std::string, tensor::Tensor>> Module::NamedBuffers()
    const {
  std::vector<std::pair<std::string, tensor::Tensor>> result;
  for (const auto& [name, buffer] : buffers_) {
    result.emplace_back(name, buffer);
  }
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, buffer] : child->NamedBuffers()) {
      result.emplace_back(child_name + "." + name, buffer);
    }
  }
  return result;
}

tensor::Tensor Module::RegisterBuffer(std::string name,
                                      tensor::Tensor buffer) {
  buffers_.emplace_back(std::move(name), buffer);
  return buffers_.back().second;
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             autograd::Variable param) {
  param.set_requires_grad(true);
  params_.emplace_back(std::move(name), param);
  return params_.back().second;
}

void Module::RegisterModule(std::string name, Module* child) {
  SAGDFN_CHECK(child != nullptr);
  SAGDFN_CHECK(child != this);
  children_.emplace_back(std::move(name), child);
}

}  // namespace sagdfn::nn
