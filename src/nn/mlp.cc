#include "nn/mlp.h"

#include "utils/check.h"

namespace sagdfn::nn {

Mlp::Mlp(const std::vector<int64_t>& dims, Activation act, utils::Rng& rng)
    : act_(act) {
  SAGDFN_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
}

autograd::Variable Mlp::Forward(const autograd::Variable& x) const {
  autograd::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Apply(act_, h);
  }
  return h;
}

}  // namespace sagdfn::nn
