#ifndef SAGDFN_NN_SERIALIZATION_H_
#define SAGDFN_NN_SERIALIZATION_H_

#include <string>

#include "nn/module.h"
#include "utils/status.h"

namespace sagdfn::nn {

/// Writes every named parameter of `module` to a binary checkpoint:
/// magic, count, then per parameter (name, shape, float32 data).
utils::Status SaveModule(const Module& module, const std::string& path);

/// Loads a checkpoint produced by SaveModule into `module`. Every stored
/// name must exist in the module with an identical shape, and every module
/// parameter must be present in the file (strict matching).
utils::Status LoadModule(Module* module, const std::string& path);

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_SERIALIZATION_H_
