#ifndef SAGDFN_NN_SERIALIZATION_H_
#define SAGDFN_NN_SERIALIZATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "utils/mmap_file.h"
#include "utils/status.h"

namespace sagdfn::nn {

/// Checkpoint format version written by this build. Version 2 added the
/// self-describing header (entry counts + payload byte count) and the
/// u64 metadata entries that carry optimizer/trainer/RNG state.
inline constexpr uint32_t kCheckpointVersion = 2;

/// In-memory image of a checkpoint file: named float tensors (model
/// parameters, buffers, optimizer moment slots) plus named vectors of
/// opaque 64-bit words (iteration counters, RNG streams, bit-cast
/// doubles). Entry order is preserved on disk, so writing the same
/// state twice produces byte-identical files.
struct Checkpoint {
  std::vector<std::pair<std::string, tensor::Tensor>> tensors;
  std::vector<std::pair<std::string, std::vector<uint64_t>>> meta;

  /// Returns the named tensor or nullptr.
  const tensor::Tensor* FindTensor(const std::string& name) const;

  /// Returns the named metadata words or nullptr.
  const std::vector<uint64_t>* FindMeta(const std::string& name) const;
};

/// Atomically writes `checkpoint` to `path`:
///   1. serialize into `path + ".tmp"` with a versioned header that
///      records entry counts and the exact payload byte count, checking
///      the stream after every write (a full disk fails loudly, never
///      silently truncates);
///   2. re-read and validate the temp file (verify-before-publish, so a
///      corrupted write can never shadow a good checkpoint);
///   3. fsync the file and its directory, then rename() over `path`.
/// On any failure the temp file is removed and an existing `path` is
/// left untouched. Honors FaultInjector's io_fail@save / truncate_ckpt.
utils::Status SaveCheckpoint(const Checkpoint& checkpoint,
                             const std::string& path);

/// Reads a checkpoint written by SaveCheckpoint. Validates the magic,
/// version, every length/shape field, and that the payload byte count in
/// the header matches both the bytes consumed and the file's actual
/// size; truncated or padded files are rejected. Honors FaultInjector's
/// io_fail@load.
utils::Status LoadCheckpoint(Checkpoint* checkpoint,
                             const std::string& path);

/// Writes every named parameter and buffer of `module` as a checkpoint
/// (atomically, via SaveCheckpoint).
utils::Status SaveModule(const Module& module, const std::string& path);

/// Loads a checkpoint produced by SaveModule into `module`. Every stored
/// name must exist in the module with an identical shape, and every
/// module parameter must be present in the file (strict matching).
utils::Status LoadModule(Module* module, const std::string& path);

/// Copies `checkpoint` tensors whose names start with `prefix` into the
/// module's parameters and buffers (strict: every module state tensor
/// must be present under `prefix` with an identical shape). Calls
/// OnStateLoaded() on success. Shared by LoadModule and the trainer's
/// full-state resume.
utils::Status LoadModuleFromCheckpoint(Module* module,
                                       const Checkpoint& checkpoint,
                                       const std::string& prefix);

/// Copies every named parameter and buffer of `src` into `dst` with the
/// same strict name/shape matching as LoadModule, then calls
/// dst->OnStateLoaded() — an in-memory checkpoint round trip without
/// touching disk. The online fine-tuner uses this to seed a trainable
/// clone from a live serving snapshot (the restored SNS index buffer
/// keeps the clone's neighbor structure frozen).
utils::Status CopyModuleState(const Module& src, Module* dst);

// ---------------------------------------------------------------------------
// Memory-mapped weight files ("SAGM" format). Unlike the streamed v2
// checkpoint above — which copies every tensor into fresh heap storage on
// load — a mapped file stores tensor data at 64-byte-aligned offsets so a
// reader can mmap the file once and hand out zero-copy tensor views.
// Loading a 100k-node frozen model becomes an O(index) parse instead of
// an O(weights) copy, and every process serving the same model shares one
// physical copy of the pages.

/// Mapped weight-file format version. Version 1 layout:
///   [0, 64)    header: magic "SAGM", version, tensor count, meta count,
///              index byte count, total file byte count, zero padding
///   [64, ...)  index: per tensor {name, rank, dims..., payload offset},
///              then per meta entry {name, word count, payload offset}
///   aligned    payloads: raw float / u64 arrays, each at a 64-byte
///              boundary, in index order, zero-padded between entries
/// All integers are little-endian u32/u64; offsets are absolute file
/// offsets. Readers reject files whose declared sizes, counts, offsets,
/// or alignments disagree with the actual file.
inline constexpr uint32_t kMappedFormatVersion = 1;

/// A weight file opened read-only via mmap: `tensors` alias the mapping
/// (zero copy — treat them as read-only; writing through data() faults),
/// kept alive by `file`. Meta entries are small and decoded eagerly.
struct MappedCheckpoint {
  std::shared_ptr<utils::MappedFile> file;
  std::vector<std::pair<std::string, tensor::Tensor>> tensors;
  std::vector<std::pair<std::string, std::vector<uint64_t>>> meta;

  const tensor::Tensor* FindTensor(const std::string& name) const;
  const std::vector<uint64_t>* FindMeta(const std::string& name) const;
};

/// Atomically writes `checkpoint` in the mapped ("SAGM") format with the
/// same verify-before-publish choreography as SaveCheckpoint: serialize
/// to `path + ".tmp"`, re-open and validate the temp file via
/// OpenMappedCheckpoint, fsync, then rename over `path`. Honors
/// FaultInjector's io_fail@save / truncate_ckpt sites.
utils::Status SaveMappedCheckpoint(const Checkpoint& checkpoint,
                                   const std::string& path);

/// Opens a file written by SaveMappedCheckpoint. Validates the header,
/// every name/rank/dim, and that each payload offset is 64-byte aligned
/// and in bounds before exposing any view; corrupt or truncated files are
/// rejected without faulting.
utils::Status OpenMappedCheckpoint(MappedCheckpoint* out,
                                   const std::string& path);

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_SERIALIZATION_H_
