#ifndef SAGDFN_NN_MODULE_H_
#define SAGDFN_NN_MODULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace sagdfn::nn {

/// Base class for neural-network modules.
///
/// A Module owns its trainable parameters (as autograd::Variable handles)
/// and knows its submodules, so parameter collection, gradient zeroing,
/// counting, and (de)serialization work uniformly across the model tree.
/// Submodule registration is non-owning: the parent stores members by
/// value and registers pointers to them.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules are identity objects (parameter registries); copying one would
  // silently alias or duplicate parameters.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, with dotted
  /// qualified names (e.g. "encoder.cell.weight"). Handles share storage
  /// with the module's own members.
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// All parameter handles, depth-first.
  std::vector<autograd::Variable> Parameters() const;

  /// Non-trainable state tensors included in checkpoints but not in
  /// Parameters() (e.g. SAGDFN's frozen significant-node index set), with
  /// dotted qualified names. Handles share storage with the module.
  std::vector<std::pair<std::string, tensor::Tensor>> NamedBuffers() const;

  /// Called by nn::LoadModule after all parameters and buffers have been
  /// filled, so modules can rebuild derived state from buffers.
  virtual void OnStateLoaded() {}

  /// Total trainable scalar count.
  int64_t ParameterCount() const;

  /// Clears gradients on every parameter.
  void ZeroGrad();

  /// Switches training/eval behaviour (dropout etc.) for the whole tree.
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  /// Registers a trainable parameter; returns a handle the subclass should
  /// keep as a member. Marks it requires_grad.
  autograd::Variable RegisterParameter(std::string name,
                                       autograd::Variable param);

  /// Registers a child module (non-owning; `child` must outlive `this`).
  void RegisterModule(std::string name, Module* child);

  /// Registers a non-trainable state tensor; returns a handle the
  /// subclass should keep (writes through it update the checkpointed
  /// storage).
  tensor::Tensor RegisterBuffer(std::string name, tensor::Tensor buffer);

 private:
  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, tensor::Tensor>> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_MODULE_H_
