#ifndef SAGDFN_NN_INIT_H_
#define SAGDFN_NN_INIT_H_

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn::nn {

/// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6 / (fan_in +
/// fan_out)). For 2-D shapes fan_in/fan_out are the two dims; for higher
/// ranks the trailing two dims are used.
tensor::Tensor XavierUniform(tensor::Shape shape, utils::Rng& rng,
                             float gain = 1.0f);

/// Xavier/Glorot normal init: N(0, sqrt(2 / (fan_in + fan_out))).
tensor::Tensor XavierNormal(tensor::Shape shape, utils::Rng& rng,
                            float gain = 1.0f);

/// He/Kaiming uniform init: U(-a, a) with a = sqrt(6 / fan_in).
tensor::Tensor HeUniform(tensor::Shape shape, utils::Rng& rng);

/// PyTorch nn.Linear-style default: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
tensor::Tensor LinearDefault(tensor::Shape shape, utils::Rng& rng,
                             int64_t fan_in);

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_INIT_H_
