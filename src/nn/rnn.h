#ifndef SAGDFN_NN_RNN_H_
#define SAGDFN_NN_RNN_H_

#include <memory>
#include <utility>

#include "nn/linear.h"
#include "nn/module.h"

namespace sagdfn::nn {

/// Gated Recurrent Unit cell (Chung et al., 2014). One time step:
///   r = sigmoid(x W_ir + h W_hr + b_r)
///   z = sigmoid(x W_iz + h W_hz + b_z)
///   n = tanh(x W_in + r * (h W_hn) + b_n)
///   h' = z * h + (1 - z) * n
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, utils::Rng& rng);

  /// `x`: [B, input], `h`: [B, hidden]. Returns h': [B, hidden].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& h) const;

  /// Zero initial state for a batch.
  autograd::Variable InitialState(int64_t batch) const;

  int64_t hidden_size() const { return hidden_size_; }
  int64_t input_size() const { return input_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  std::unique_ptr<Linear> input_proj_;   // x -> 3H (r|z|n), with bias
  std::unique_ptr<Linear> hidden_proj_;  // h -> 3H, no bias
};

/// Long Short-Term Memory cell (Hochreiter & Schmidhuber, 1997).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, utils::Rng& rng);

  /// `x`: [B, input]; state is (h, c), both [B, hidden]. Returns (h', c').
  std::pair<autograd::Variable, autograd::Variable> Forward(
      const autograd::Variable& x, const autograd::Variable& h,
      const autograd::Variable& c) const;

  /// Zero (h, c) for a batch.
  std::pair<autograd::Variable, autograd::Variable> InitialState(
      int64_t batch) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  std::unique_ptr<Linear> input_proj_;   // x -> 4H (i|f|g|o), with bias
  std::unique_ptr<Linear> hidden_proj_;  // h -> 4H, no bias
};

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_RNN_H_
