#ifndef SAGDFN_NN_LINEAR_H_
#define SAGDFN_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"
#include "utils/rng.h"

namespace sagdfn::nn {

/// Affine map y = x W + b with W: [in, out], b: [out].
///
/// Accepts 2-D inputs [B, in] or 3-D inputs [B, N, in]; the bias
/// broadcasts over leading dims.
class Linear : public Module {
 public:
  /// Initializes W and (optionally) b with the PyTorch Linear default
  /// U(-1/sqrt(in), 1/sqrt(in)).
  Linear(int64_t in_features, int64_t out_features, utils::Rng& rng,
         bool bias = true);

  /// Applies the affine map.
  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  const autograd::Variable& weight() const { return weight_; }
  bool has_bias() const { return has_bias_; }
  /// The bias vector [out]; empty Variable when constructed without bias.
  const autograd::Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  autograd::Variable weight_;
  autograd::Variable bias_;
};

}  // namespace sagdfn::nn

#endif  // SAGDFN_NN_LINEAR_H_
