// AVX2+FMA kernel table. This translation unit is compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt) and must only be CALLED
// after runtime CPUID detection confirms support — simd.cc guarantees
// that. Every elementwise kernel computes each output element with the
// same instruction sequence regardless of its offset within the call's
// range: partial tails either run the lane kernel on a zero-padded
// block (exp/sigmoid/tanh, see Tail8) or a scalar expression with the
// same rounding behaviour (std::fma where the lanes fuse). That makes
// results bit-identical regardless of how callers partition the range
// across threads OR where an element lands inside a batch — batched and
// unbatched inference must agree byte-for-byte (tests/serve_engine_test
// pins this). The dot/sum reductions fix their lane accumulator layout
// per call instead, so equal (lo, hi) blocks always reduce identically.
//
// exp/sigmoid/tanh use a Cephes-style polynomial exp (~2 ulp over the
// clamped range) rather than libm, so they differ from the scalar level
// within the tolerance pinned by tests/simd_test.cc.
#include "tensor/simd_internal.h"

#if defined(SAGDFN_SIMD_AVX2_TU)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace sagdfn::tensor::simd::internal {
namespace {

// ---------------------------------------------------------------------------
// Vectorized exp (Cephes expf constants, as used by avx_mathfun and the
// usual SIMD math libraries). Preserves the IEEE edge cases the model
// relies on: overflow to +inf, underflow to 0, NaN propagation.
// ---------------------------------------------------------------------------

inline __m256 ExpPs(__m256 x) {
  const __m256 exp_hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 exp_lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 p0 = _mm256_set1_ps(1.9875691500e-4f);
  const __m256 p1 = _mm256_set1_ps(1.3981999507e-3f);
  const __m256 p2 = _mm256_set1_ps(8.3334519073e-3f);
  const __m256 p3 = _mm256_set1_ps(4.1665795894e-2f);
  const __m256 p4 = _mm256_set1_ps(1.6666665459e-1f);
  const __m256 p5 = _mm256_set1_ps(5.0000001201e-1f);
  const __m256 one = _mm256_set1_ps(1.0f);

  // Remember the out-of-range lanes before clamping.
  const __m256 overflow = _mm256_cmp_ps(x, exp_hi, _CMP_GT_OQ);
  const __m256 underflow = _mm256_cmp_ps(x, exp_lo, _CMP_LT_OQ);
  const __m256 nan_mask = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);

  __m256 xc = _mm256_min_ps(_mm256_max_ps(x, exp_lo), exp_hi);

  // n = round(x * log2(e)); r = x - n*ln2 (split-constant Cody-Waite).
  __m256 fx = _mm256_round_ps(
      _mm256_mul_ps(xc, log2e),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(fx, c1, xc);
  r = _mm256_fnmadd_ps(fx, c2, r);
  const __m256 r2 = _mm256_mul_ps(r, r);

  __m256 y = p0;
  y = _mm256_fmadd_ps(y, r, p1);
  y = _mm256_fmadd_ps(y, r, p2);
  y = _mm256_fmadd_ps(y, r, p3);
  y = _mm256_fmadd_ps(y, r, p4);
  y = _mm256_fmadd_ps(y, r, p5);
  y = _mm256_fmadd_ps(y, r2, _mm256_add_ps(r, one));

  // Scale by 2^n through the exponent bits.
  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i pow2n =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  y = _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));

  y = _mm256_blendv_ps(y, _mm256_set1_ps(HUGE_VALF), overflow);
  y = _mm256_blendv_ps(y, _mm256_setzero_ps(), underflow);
  y = _mm256_blendv_ps(y, x, nan_mask);  // propagate the original NaN
  return y;
}

inline __m256 AbsPs(__m256 x) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), x);
}

// Stable two-branch sigmoid, vectorized: z = e^{-|x|} <= 1, then
// x >= 0 -> 1/(1+z), x < 0 -> z/(1+z). NaN propagates the input.
inline __m256 SigmoidPs(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 z = ExpPs(_mm256_xor_ps(AbsPs(x), _mm256_set1_ps(-0.0f)));
  const __m256 denom = _mm256_add_ps(one, z);
  const __m256 nonneg = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GE_OQ);
  const __m256 num = _mm256_blendv_ps(z, one, nonneg);
  __m256 y = _mm256_div_ps(num, denom);
  const __m256 nan_mask = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
  return _mm256_blendv_ps(y, x, nan_mask);
}

// tanh(|x|) = (1 - e^{-2|x|}) / (1 + e^{-2|x|}), sign restored at the
// end; e^{-2|x|} <= 1 so there is no overflow anywhere.
inline __m256 TanhPs(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 ax = AbsPs(x);
  const __m256 t = ExpPs(_mm256_mul_ps(ax, _mm256_set1_ps(-2.0f)));
  __m256 y = _mm256_div_ps(_mm256_sub_ps(one, t), _mm256_add_ps(one, t));
  y = _mm256_or_ps(y, _mm256_and_ps(x, _mm256_set1_ps(-0.0f)));
  const __m256 nan_mask = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
  return _mm256_blendv_ps(y, x, nan_mask);
}

// Runs a lane kernel over a partial block (rem < 8) by padding the
// input with zeros, so tail elements execute the exact instruction
// sequence a full lane would. A libm tail here would make an element's
// bits depend on its offset within the call range, which breaks the
// partition-independence contract in the header comment.
template <typename Fn>
inline void Tail8(Fn fn, const float* a, float* o, int64_t rem) {
  alignas(32) float in[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  alignas(32) float out[8];
  for (int64_t k = 0; k < rem; ++k) in[k] = a[k];
  _mm256_store_ps(out, fn(_mm256_load_ps(in)));
  for (int64_t k = 0; k < rem; ++k) o[k] = out[k];
}

// ---------------------------------------------------------------------------
// Lane+tail loop helpers: each kernel body is expressed once over lanes
// (8 floats) and once over scalars, via small op structs.
// ---------------------------------------------------------------------------

struct AddOp {
  static __m256 V(__m256 a, __m256 b) { return _mm256_add_ps(a, b); }
  static float S(float a, float b) { return a + b; }
};
struct SubOp {
  static __m256 V(__m256 a, __m256 b) { return _mm256_sub_ps(a, b); }
  static float S(float a, float b) { return a - b; }
};
struct MulOp {
  static __m256 V(__m256 a, __m256 b) { return _mm256_mul_ps(a, b); }
  static float S(float a, float b) { return a * b; }
};
struct DivOp {
  static __m256 V(__m256 a, __m256 b) { return _mm256_div_ps(a, b); }
  static float S(float a, float b) { return a / b; }
};
struct MaxOp {
  static __m256 V(__m256 a, __m256 b) { return _mm256_max_ps(b, a); }
  static float S(float a, float b) { return a > b ? a : b; }
};
struct MinOp {
  static __m256 V(__m256 a, __m256 b) { return _mm256_min_ps(b, a); }
  static float S(float a, float b) { return a < b ? a : b; }
};

template <typename Op>
void BinaryVV(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, Op::V(_mm256_loadu_ps(a + i),
                                  _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = Op::S(a[i], b[i]);
}

/// o[i] = a[i] OP s
template <typename Op>
void BinaryVS(const float* a, float s, float* o, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, Op::V(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) o[i] = Op::S(a[i], s);
}

/// o[i] = s OP a[i]
template <typename Op>
void BinarySV(const float* a, float s, float* o, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, Op::V(vs, _mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] = Op::S(s, a[i]);
}

// ---------------------------------------------------------------------------
// Kernel entry points
// ---------------------------------------------------------------------------

void Add(const float* a, const float* b, float* o, int64_t n) {
  BinaryVV<AddOp>(a, b, o, n);
}
void Sub(const float* a, const float* b, float* o, int64_t n) {
  BinaryVV<SubOp>(a, b, o, n);
}
void Mul(const float* a, const float* b, float* o, int64_t n) {
  BinaryVV<MulOp>(a, b, o, n);
}
void Div(const float* a, const float* b, float* o, int64_t n) {
  BinaryVV<DivOp>(a, b, o, n);
}
void VMax(const float* a, const float* b, float* o, int64_t n) {
  BinaryVV<MaxOp>(a, b, o, n);
}
void VMin(const float* a, const float* b, float* o, int64_t n) {
  BinaryVV<MinOp>(a, b, o, n);
}

void AddS(const float* a, float s, float* o, int64_t n) {
  BinaryVS<AddOp>(a, s, o, n);
}
void SubS(const float* a, float s, float* o, int64_t n) {
  BinaryVS<SubOp>(a, s, o, n);
}
void RSubS(const float* a, float s, float* o, int64_t n) {
  BinarySV<SubOp>(a, s, o, n);
}
void MulS(const float* a, float s, float* o, int64_t n) {
  BinaryVS<MulOp>(a, s, o, n);
}
void DivS(const float* a, float s, float* o, int64_t n) {
  BinaryVS<DivOp>(a, s, o, n);
}
void RDivS(const float* a, float s, float* o, int64_t n) {
  BinarySV<DivOp>(a, s, o, n);
}
void MaxS(const float* a, float s, float* o, int64_t n) {
  BinaryVS<MaxOp>(a, s, o, n);
}
void MinS(const float* a, float s, float* o, int64_t n) {
  BinaryVS<MinOp>(a, s, o, n);
}

void AccAdd(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}
void MaxInto(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max(dst, src): second operand wins on NaN, matching `src > dst`.
    _mm256_storeu_ps(dst + i, _mm256_max_ps(_mm256_loadu_ps(src + i),
                                            _mm256_loadu_ps(dst + i)));
  }
  for (; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

void Neg(const float* a, float* o, int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
  }
  for (; i < n; ++i) o[i] = -a[i];
}
void VAbs(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, AbsPs(_mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] = std::fabs(a[i]);
}
void Relu(const float* a, float* o, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(a + i);
    // x > 0 ? x : 0 (a NaN lane yields 0, matching the scalar branch).
    const __m256 mask = _mm256_cmp_ps(x, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(o + i, _mm256_and_ps(x, mask));
  }
  for (; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}
void VSqrt(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_sqrt_ps(_mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] = std::sqrt(a[i]);
}
void VExp(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, ExpPs(_mm256_loadu_ps(a + i)));
  }
  if (i < n) Tail8([](__m256 x) { return ExpPs(x); }, a + i, o + i, n - i);
}
void Sigmoid(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, SigmoidPs(_mm256_loadu_ps(a + i)));
  }
  if (i < n) {
    Tail8([](__m256 x) { return SigmoidPs(x); }, a + i, o + i, n - i);
  }
}
void VTanh(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, TanhPs(_mm256_loadu_ps(a + i)));
  }
  if (i < n) Tail8([](__m256 x) { return TanhPs(x); }, a + i, o + i, n - i);
}

void SigmoidGrad(const float* g, const float* out, float* o, int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 s = _mm256_loadu_ps(out + i);
    const __m256 d = _mm256_mul_ps(s, _mm256_sub_ps(one, s));
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(g + i), d));
  }
  // Same association as the lanes: g * (s * (1 - s)).
  for (; i < n; ++i) o[i] = g[i] * (out[i] * (1.0f - out[i]));
}
void TanhGrad(const float* g, const float* out, float* o, int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_loadu_ps(out + i);
    const __m256 d = _mm256_fnmadd_ps(t, t, one);  // 1 - t*t
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(g + i), d));
  }
  // std::fma mirrors the lanes' fnmadd rounding (one rounding, not two).
  for (; i < n; ++i) o[i] = g[i] * std::fma(-out[i], out[i], 1.0f);
}
void ReluGrad(const float* g, const float* x, float* o, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask =
        _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ);
    _mm256_storeu_ps(o + i, _mm256_and_ps(_mm256_loadu_ps(g + i), mask));
  }
  for (; i < n; ++i) o[i] = x[i] > 0.0f ? g[i] : 0.0f;
}
void MulSub(const float* g, const float* a, const float* b, float* o,
            int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(g + i), d));
  }
  for (; i < n; ++i) o[i] = g[i] * (a[i] - b[i]);
}
void MulOneMinus(const float* g, const float* z, float* o, int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(one, _mm256_loadu_ps(z + i));
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(g + i), d));
  }
  for (; i < n; ++i) o[i] = g[i] * (1.0f - z[i]);
}

void Axpy(float a, const float* x, float* dst, int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                                     _mm256_loadu_ps(dst + i)));
  }
  for (; i < n; ++i) dst[i] = std::fma(a, x[i], dst[i]);
}
void Scale(float* dst, float s, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), vs));
  }
  for (; i < n; ++i) dst[i] *= s;
}

/// Sums the four doubles of `v` in fixed lane order.
inline double HSum4(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

double Dot(const float* a, const float* b, int64_t n) {
  // Products are widened to double BEFORE accumulating, matching the
  // scalar level's (double)a * (double)b precision; only the lane
  // interleaving differs, which stays within the cross-level tolerance.
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc_lo = _mm256_fmadd_pd(
        _mm256_cvtps_pd(_mm256_castps256_ps128(va)),
        _mm256_cvtps_pd(_mm256_castps256_ps128(vb)), acc_lo);
    acc_hi = _mm256_fmadd_pd(
        _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
        _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)), acc_hi);
  }
  double acc = HSum4(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}
double Sum(const float* a, int64_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    acc_lo = _mm256_add_pd(acc_lo,
                           _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc_hi = _mm256_add_pd(acc_hi,
                           _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double acc = HSum4(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) acc += a[i];
  return acc;
}

void GruBlend(const float* z, const float* h, const float* c, float* o,
              int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vz = _mm256_loadu_ps(z + i);
    const __m256 vh = _mm256_loadu_ps(h + i);
    const __m256 vc = _mm256_loadu_ps(c + i);
    const __m256 blended = _mm256_fmadd_ps(
        vz, vh, _mm256_mul_ps(_mm256_sub_ps(one, vz), vc));
    _mm256_storeu_ps(o + i, blended);
  }
  for (; i < n; ++i) o[i] = std::fma(z[i], h[i], (1.0f - z[i]) * c[i]);
}

/// Copies `rem` (< 8) floats into a zero-padded aligned lane block. The
/// fused sigmoid/tanh kernels run their full lane body over these pads so
/// tail elements get the exact bits a full lane would (same contract as
/// Tail8, extended to multi-input kernels).
inline __m256 PadLoad(const float* a, int64_t rem) {
  alignas(32) float in[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int64_t k = 0; k < rem; ++k) in[k] = a[k];
  return _mm256_load_ps(in);
}

inline void PadStore(float* o, __m256 v, int64_t rem) {
  if (o == nullptr) return;
  alignas(32) float out[8];
  _mm256_store_ps(out, v);
  for (int64_t k = 0; k < rem; ++k) o[k] = out[k];
}

void SigmoidMul(const float* a, const float* b, float* o, float* r_out,
                int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r = SigmoidPs(_mm256_loadu_ps(a + i));
    if (r_out != nullptr) _mm256_storeu_ps(r_out + i, r);
    _mm256_storeu_ps(o + i, _mm256_mul_ps(r, _mm256_loadu_ps(b + i)));
  }
  if (i < n) {
    const int64_t rem = n - i;
    const __m256 r = SigmoidPs(PadLoad(a + i, rem));
    PadStore(r_out == nullptr ? nullptr : r_out + i, r, rem);
    PadStore(o + i, _mm256_mul_ps(r, PadLoad(b + i, rem)), rem);
  }
}

void GruTail(const float* gz, const float* h, const float* c, float* o,
             float* z_out, float* t_out, int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 z = SigmoidPs(_mm256_loadu_ps(gz + i));
    const __m256 t = TanhPs(_mm256_loadu_ps(c + i));
    if (z_out != nullptr) _mm256_storeu_ps(z_out + i, z);
    if (t_out != nullptr) _mm256_storeu_ps(t_out + i, t);
    // Same blend sequence as GruBlend, so fused == unfused bit-for-bit.
    const __m256 blended = _mm256_fmadd_ps(
        z, _mm256_loadu_ps(h + i), _mm256_mul_ps(_mm256_sub_ps(one, z), t));
    _mm256_storeu_ps(o + i, blended);
  }
  if (i < n) {
    const int64_t rem = n - i;
    const __m256 z = SigmoidPs(PadLoad(gz + i, rem));
    const __m256 t = TanhPs(PadLoad(c + i, rem));
    PadStore(z_out == nullptr ? nullptr : z_out + i, z, rem);
    PadStore(t_out == nullptr ? nullptr : t_out + i, t, rem);
    const __m256 blended = _mm256_fmadd_ps(
        z, PadLoad(h + i, rem), _mm256_mul_ps(_mm256_sub_ps(one, z), t));
    PadStore(o + i, blended, rem);
  }
}

void SigmoidMulGrad(const float* gh, const float* r, const float* h,
                    float* dg, float* dh, int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vg = _mm256_loadu_ps(gh + i);
    const __m256 vr = _mm256_loadu_ps(r + i);
    const __m256 ds = _mm256_mul_ps(vr, _mm256_sub_ps(one, vr));
    _mm256_storeu_ps(
        dg + i,
        _mm256_mul_ps(_mm256_mul_ps(vg, _mm256_loadu_ps(h + i)), ds));
    _mm256_storeu_ps(dh + i, _mm256_mul_ps(vg, vr));
  }
  // Same association as the lanes: (g*h) * (r*(1-r)).
  for (; i < n; ++i) {
    dg[i] = (gh[i] * h[i]) * (r[i] * (1.0f - r[i]));
    dh[i] = gh[i] * r[i];
  }
}

void GruTailGrad(const float* g, const float* z, const float* t,
                 const float* h, float* dgz, float* dh, float* dc,
                 int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vg = _mm256_loadu_ps(g + i);
    const __m256 vz = _mm256_loadu_ps(z + i);
    const __m256 vt = _mm256_loadu_ps(t + i);
    const __m256 dzs = _mm256_mul_ps(vz, _mm256_sub_ps(one, vz));
    _mm256_storeu_ps(
        dgz + i,
        _mm256_mul_ps(
            _mm256_mul_ps(vg, _mm256_sub_ps(_mm256_loadu_ps(h + i), vt)),
            dzs));
    _mm256_storeu_ps(dh + i, _mm256_mul_ps(vg, vz));
    _mm256_storeu_ps(
        dc + i,
        _mm256_mul_ps(_mm256_mul_ps(vg, _mm256_sub_ps(one, vz)),
                      _mm256_sub_ps(one, _mm256_mul_ps(vt, vt))));
  }
  for (; i < n; ++i) {
    dgz[i] = (g[i] * (h[i] - t[i])) * (z[i] * (1.0f - z[i]));
    dh[i] = g[i] * z[i];
    dc[i] = (g[i] * (1.0f - z[i])) * (1.0f - t[i] * t[i]);
  }
}

void GruStep(const float* xi, const float* hh, const float* h, float* o,
             float* r_out, float* z_out, float* n_out, int64_t h_len) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const float* xi_z = xi + h_len;
  const float* xi_n = xi + 2 * h_len;
  const float* hh_z = hh + h_len;
  const float* hh_n = hh + 2 * h_len;
  int64_t i = 0;
  for (; i + 8 <= h_len; i += 8) {
    const __m256 r = SigmoidPs(
        _mm256_add_ps(_mm256_loadu_ps(xi + i), _mm256_loadu_ps(hh + i)));
    const __m256 z = SigmoidPs(
        _mm256_add_ps(_mm256_loadu_ps(xi_z + i), _mm256_loadu_ps(hh_z + i)));
    const __m256 nc = TanhPs(_mm256_fmadd_ps(r, _mm256_loadu_ps(hh_n + i),
                                             _mm256_loadu_ps(xi_n + i)));
    if (r_out != nullptr) _mm256_storeu_ps(r_out + i, r);
    if (z_out != nullptr) _mm256_storeu_ps(z_out + i, z);
    if (n_out != nullptr) _mm256_storeu_ps(n_out + i, nc);
    const __m256 blended = _mm256_fmadd_ps(
        z, _mm256_loadu_ps(h + i), _mm256_mul_ps(_mm256_sub_ps(one, z), nc));
    _mm256_storeu_ps(o + i, blended);
  }
  if (i < h_len) {
    const int64_t rem = h_len - i;
    const __m256 r = SigmoidPs(
        _mm256_add_ps(PadLoad(xi + i, rem), PadLoad(hh + i, rem)));
    const __m256 z = SigmoidPs(
        _mm256_add_ps(PadLoad(xi_z + i, rem), PadLoad(hh_z + i, rem)));
    const __m256 nc =
        TanhPs(_mm256_fmadd_ps(r, PadLoad(hh_n + i, rem),
                               PadLoad(xi_n + i, rem)));
    PadStore(r_out == nullptr ? nullptr : r_out + i, r, rem);
    PadStore(z_out == nullptr ? nullptr : z_out + i, z, rem);
    PadStore(n_out == nullptr ? nullptr : n_out + i, nc, rem);
    const __m256 blended = _mm256_fmadd_ps(
        z, PadLoad(h + i, rem), _mm256_mul_ps(_mm256_sub_ps(one, z), nc));
    PadStore(o + i, blended, rem);
  }
}

void GruStepGrad(const float* g, const float* r, const float* z,
                 const float* nc, const float* h, const float* hh_n,
                 float* dxi, float* dhh, float* dh, int64_t h_len) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= h_len; i += 8) {
    const __m256 vg = _mm256_loadu_ps(g + i);
    const __m256 vz = _mm256_loadu_ps(z + i);
    const __m256 vr = _mm256_loadu_ps(r + i);
    const __m256 vn = _mm256_loadu_ps(nc + i);
    const __m256 one_minus_z = _mm256_sub_ps(one, vz);
    const __m256 dz_pre = _mm256_mul_ps(
        _mm256_mul_ps(vg, _mm256_sub_ps(_mm256_loadu_ps(h + i), vn)),
        _mm256_mul_ps(vz, one_minus_z));
    const __m256 dn_pre =
        _mm256_mul_ps(_mm256_mul_ps(vg, one_minus_z),
                      _mm256_sub_ps(one, _mm256_mul_ps(vn, vn)));
    const __m256 dr_pre = _mm256_mul_ps(
        _mm256_mul_ps(dn_pre, _mm256_loadu_ps(hh_n + i)),
        _mm256_mul_ps(vr, _mm256_sub_ps(one, vr)));
    _mm256_storeu_ps(dxi + i, dr_pre);
    _mm256_storeu_ps(dxi + h_len + i, dz_pre);
    _mm256_storeu_ps(dxi + 2 * h_len + i, dn_pre);
    _mm256_storeu_ps(dhh + i, dr_pre);
    _mm256_storeu_ps(dhh + h_len + i, dz_pre);
    _mm256_storeu_ps(dhh + 2 * h_len + i, _mm256_mul_ps(dn_pre, vr));
    _mm256_storeu_ps(dh + i, _mm256_mul_ps(vg, vz));
  }
  for (; i < h_len; ++i) {
    const float gi = g[i];
    const float zi = z[i];
    const float ri = r[i];
    const float ni = nc[i];
    const float dz_pre = (gi * (h[i] - ni)) * (zi * (1.0f - zi));
    const float dn_pre = (gi * (1.0f - zi)) * (1.0f - ni * ni);
    const float dr_pre = (dn_pre * hh_n[i]) * (ri * (1.0f - ri));
    dxi[i] = dr_pre;
    dxi[h_len + i] = dz_pre;
    dxi[2 * h_len + i] = dn_pre;
    dhh[i] = dr_pre;
    dhh[h_len + i] = dz_pre;
    dhh[2 * h_len + i] = dn_pre * ri;
    dh[i] = gi * zi;
  }
}

MaskedErrAcc MaskedErr(const float* pred, const float* truth, int64_t n,
                       double mape_floor) {
  MaskedErrAcc acc;
  const __m256d zero_d = _mm256_setzero_pd();
  const __m256d one_d = _mm256_set1_pd(1.0);
  const __m256d floor_d = _mm256_set1_pd(mape_floor);
  const __m256d sign_d = _mm256_set1_pd(-0.0);
  __m256d abs_acc = zero_d, sq_acc = zero_d, ape_acc = zero_d;
  int64_t count = 0, ape_count = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d td = _mm256_cvtps_pd(_mm_loadu_ps(truth + i));
    const __m256d pd = _mm256_cvtps_pd(_mm_loadu_ps(pred + i));
    // truth != 0, unordered (NaN truth stays included, like the scalar
    // `truth[i] == 0.0f` skip which is false for NaN).
    const __m256d m_nz = _mm256_cmp_pd(td, zero_d, _CMP_NEQ_UQ);
    const __m256d err = _mm256_sub_pd(pd, td);
    const __m256d abs_err = _mm256_andnot_pd(sign_d, err);
    const __m256d abs_t = _mm256_andnot_pd(sign_d, td);
    abs_acc = _mm256_add_pd(abs_acc, _mm256_and_pd(abs_err, m_nz));
    const __m256d err_masked = _mm256_and_pd(err, m_nz);
    sq_acc = _mm256_fmadd_pd(err_masked, err_masked, sq_acc);
    count += _mm_popcnt_u32(
        static_cast<unsigned>(_mm256_movemask_pd(m_nz)));
    // |truth| >= floor, ordered (NaN truth drops out of MAPE, matching
    // the scalar fabs(truth) >= floor which is false for NaN).
    const __m256d m_ape = _mm256_cmp_pd(abs_t, floor_d, _CMP_GE_OQ);
    const __m256d safe_t = _mm256_blendv_pd(one_d, abs_t, m_ape);
    ape_acc = _mm256_add_pd(
        ape_acc, _mm256_and_pd(_mm256_div_pd(abs_err, safe_t), m_ape));
    ape_count += _mm_popcnt_u32(
        static_cast<unsigned>(_mm256_movemask_pd(m_ape)));
  }
  acc.abs = HSum4(abs_acc);
  acc.sq = HSum4(sq_acc);
  acc.ape = HSum4(ape_acc);
  acc.count = count;
  acc.ape_count = ape_count;
  for (; i < n; ++i) {
    if (truth[i] == 0.0f) continue;
    const double truth_i = truth[i];
    const double err = static_cast<double>(pred[i]) - truth_i;
    acc.abs += std::fabs(err);
    acc.sq += err * err;
    if (std::fabs(truth_i) >= mape_floor) {
      acc.ape += std::fabs(err) / std::fabs(truth_i);
      ++acc.ape_count;
    }
    ++acc.count;
  }
  return acc;
}

}  // namespace

bool Avx2CompiledIn() { return true; }

const Kernels& Avx2Kernels() {
  static const Kernels table = {
      .add = Add,
      .sub = Sub,
      .mul = Mul,
      .div = Div,
      .vmax = VMax,
      .vmin = VMin,
      .add_s = AddS,
      .sub_s = SubS,
      .rsub_s = RSubS,
      .mul_s = MulS,
      .div_s = DivS,
      .rdiv_s = RDivS,
      .max_s = MaxS,
      .min_s = MinS,
      .acc_add = AccAdd,
      .max_into = MaxInto,
      .neg = Neg,
      .vabs = VAbs,
      .relu = Relu,
      .vsqrt = VSqrt,
      .vexp = VExp,
      .sigmoid = Sigmoid,
      .vtanh = VTanh,
      .sigmoid_grad = SigmoidGrad,
      .tanh_grad = TanhGrad,
      .relu_grad = ReluGrad,
      .mul_sub = MulSub,
      .mul_one_minus = MulOneMinus,
      .axpy = Axpy,
      .scale = Scale,
      .dot = Dot,
      .sum = Sum,
      .gru_blend = GruBlend,
      .sigmoid_mul = SigmoidMul,
      .gru_tail = GruTail,
      .sigmoid_mul_grad = SigmoidMulGrad,
      .gru_tail_grad = GruTailGrad,
      .gru_step = GruStep,
      .gru_step_grad = GruStepGrad,
      .masked_err = MaskedErr,
  };
  return table;
}

}  // namespace sagdfn::tensor::simd::internal

#else  // !SAGDFN_SIMD_AVX2_TU

namespace sagdfn::tensor::simd::internal {

bool Avx2CompiledIn() { return false; }

const Kernels& Avx2Kernels() { return ScalarKernels(); }

}  // namespace sagdfn::tensor::simd::internal

#endif  // SAGDFN_SIMD_AVX2_TU
