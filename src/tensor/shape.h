#ifndef SAGDFN_TENSOR_SHAPE_H_
#define SAGDFN_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace sagdfn::tensor {

/// Dimension sizes of a dense tensor. Rank-0 (scalar) shapes are allowed
/// and have NumElements() == 1.
class Shape {
 public:
  Shape() = default;

  /// Constructs from an explicit dimension list; all dims must be >= 0.
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  /// Number of dimensions (rank).
  int64_t ndim() const { return static_cast<int64_t>(dims_.size()); }

  /// Size of dimension `d`; `d` may be negative (Python-style).
  int64_t dim(int64_t d) const;

  /// Total element count (1 for rank-0).
  int64_t NumElements() const;

  const std::vector<int64_t>& dims() const { return dims_; }

  /// Row-major strides (in elements) for this shape.
  std::vector<int64_t> Strides() const;

  /// Canonicalizes a possibly-negative axis into [0, ndim). Fatal if out
  /// of range.
  int64_t CanonicalAxis(int64_t axis) const;

  /// Renders e.g. "[2, 3, 4]".
  std::string ToString() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) {
    return !(a == b);
  }

  /// Computes the numpy-style broadcast shape of `a` and `b`. Fatal if the
  /// shapes are incompatible.
  static Shape Broadcast(const Shape& a, const Shape& b);

  /// True if `a` and `b` are broadcast-compatible.
  static bool BroadcastCompatible(const Shape& a, const Shape& b);

 private:
  std::vector<int64_t> dims_;
};

}  // namespace sagdfn::tensor

#endif  // SAGDFN_TENSOR_SHAPE_H_
