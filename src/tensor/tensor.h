#ifndef SAGDFN_TENSOR_TENSOR_H_
#define SAGDFN_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "utils/rng.h"

namespace sagdfn::tensor {

/// Dense float32 tensor with shared, contiguous row-major storage.
///
/// Tensors are value types: copying a Tensor copies a handle to the same
/// storage (cheap); use Clone() for a deep copy. All shape errors are
/// programming errors and abort via SAGDFN_CHECK. The library is
/// deliberately float32-only and CPU-only — it is the substrate for the
/// SAGDFN reproduction, not a general framework.
class Tensor {
 public:
  /// Constructs an empty rank-1 tensor of size 0.
  Tensor();

  /// Constructs an uninitialized-to-zero tensor of the given shape.
  explicit Tensor(Shape shape);

  // -- Factories -----------------------------------------------------------

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Rank-0 scalar.
  static Tensor Scalar(float value);
  /// Takes ownership of `values`; size must equal shape.NumElements().
  static Tensor FromVector(std::vector<float> values, Shape shape);
  /// Wraps storage the tensor does not own — `ptr` must point at
  /// shape.NumElements() contiguous floats kept alive by `owner` (e.g. a
  /// memory-mapped weight file). No copy is made. If the backing memory
  /// is mapped read-only, callers must treat the tensor as read-only:
  /// writing through data() would fault.
  static Tensor FromExternal(std::shared_ptr<void> owner, float* ptr,
                             Shape shape);
  /// [0, 1, ..., n-1] as a rank-1 tensor.
  static Tensor Arange(int64_t n);
  /// N x N identity.
  static Tensor Eye(int64_t n);
  /// I.i.d. uniform samples in [lo, hi).
  static Tensor Uniform(Shape shape, utils::Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// I.i.d. normal samples.
  static Tensor Normal(Shape shape, utils::Rng& rng, float mean = 0.0f,
                       float stddev = 1.0f);

  // -- Introspection --------------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return shape_.ndim(); }
  int64_t dim(int64_t d) const { return shape_.dim(d); }
  int64_t size() const { return shape_.NumElements(); }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

  /// Element access by flat row-major offset.
  float& operator[](int64_t i) { return ptr_[i]; }
  float operator[](int64_t i) const { return ptr_[i]; }

  /// Element access by multi-index (size must equal ndim()).
  float& At(std::initializer_list<int64_t> index);
  float At(std::initializer_list<int64_t> index) const;

  /// Value of a rank-0 or single-element tensor.
  float Item() const;

  /// True if this handle shares storage with `other`.
  bool SharesStorageWith(const Tensor& other) const {
    return owner_ == other.owner_ && ptr_ == other.ptr_;
  }

  // -- Shape manipulation (storage-sharing where possible) ------------------

  /// Reinterprets the data with a new shape of equal element count. One
  /// dimension may be -1 (inferred). Shares storage.
  Tensor Reshape(std::vector<int64_t> dims) const;

  /// Deep copy.
  Tensor Clone() const;

  /// Writes `value` into every element.
  void Fill(float value);

  /// Copies the contents of `src` (same shape required) into this tensor.
  void CopyFrom(const Tensor& src);

  /// Renders values for debugging, e.g. "Tensor[2, 2]{1, 2, 3, 4}".
  /// Truncates long tensors.
  std::string ToString(int64_t max_elements = 32) const;

 private:
  /// Keeps the backing storage alive. For heap tensors this owns a
  /// std::vector<float>; for FromExternal views it owns whatever keeps
  /// the external memory valid (e.g. a mapped file handle). `ptr_`
  /// points at the first element inside that storage.
  std::shared_ptr<void> owner_;
  float* ptr_ = nullptr;
  Shape shape_;
};

}  // namespace sagdfn::tensor

#endif  // SAGDFN_TENSOR_TENSOR_H_
