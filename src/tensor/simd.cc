// Runtime SIMD dispatch: pick the kernel table once at startup from
// CPUID + the SAGDFN_SIMD environment variable, then serve it through a
// single relaxed atomic load per call site.
#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tensor/simd_internal.h"
#include "utils/logging.h"

namespace sagdfn::tensor::simd {
namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Level DetectLevel() {
  return Avx2Available() ? Level::kAvx2 : Level::kScalar;
}

/// Resolves the startup level from SAGDFN_SIMD (once, before any kernel
/// runs). Invalid values and unsatisfiable requests degrade with a
/// warning instead of aborting: a forecasting run on a scalar-only box
/// should still train, just slower.
Level ResolveStartupLevel() {
  const char* env = std::getenv("SAGDFN_SIMD");
  if (env == nullptr || env[0] == '\0') return DetectLevel();
  const Level requested = LevelFromString(env);
  if (requested == Level::kAvx2 && !Avx2Available()) {
    SAGDFN_LOG(Warning) << "SAGDFN_SIMD=" << env
                        << " requested but AVX2+FMA is unavailable ("
                        << (internal::Avx2CompiledIn()
                                ? "CPU lacks support"
                                : "not compiled in")
                        << "); using scalar kernels";
    return Level::kScalar;
  }
  return requested;
}

struct Dispatch {
  std::atomic<const Kernels*> table;
  std::atomic<Level> level;

  Dispatch() {
    const Level startup = ResolveStartupLevel();
    level.store(startup, std::memory_order_relaxed);
    table.store(&KernelsFor(startup), std::memory_order_relaxed);
  }
};

Dispatch& GetDispatch() {
  static Dispatch dispatch;
  return dispatch;
}

}  // namespace

bool Avx2Available() {
  static const bool available = internal::Avx2CompiledIn() && CpuHasAvx2Fma();
  return available;
}

Level ActiveLevel() {
  return GetDispatch().level.load(std::memory_order_relaxed);
}

bool SetActiveLevel(Level level) {
  if (level == Level::kAvx2 && !Avx2Available()) return false;
  Dispatch& d = GetDispatch();
  d.level.store(level, std::memory_order_relaxed);
  d.table.store(&KernelsFor(level), std::memory_order_relaxed);
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Level LevelFromString(const char* value) {
  if (value == nullptr) return DetectLevel();
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "scalar") == 0) {
    return Level::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(value, "auto") != 0 && value[0] != '\0') {
    SAGDFN_LOG(Warning) << "Unknown SAGDFN_SIMD value '" << value
                        << "' (want off|avx2|auto); using auto detection";
  }
  return DetectLevel();
}

const Kernels& KernelsFor(Level level) {
  if (level == Level::kAvx2 && Avx2Available()) {
    return internal::Avx2Kernels();
  }
  return internal::ScalarKernels();
}

const Kernels& K() {
  return *GetDispatch().table.load(std::memory_order_relaxed);
}

}  // namespace sagdfn::tensor::simd
