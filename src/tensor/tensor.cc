#include "tensor/tensor.h"

#include <sstream>

#include "utils/check.h"

namespace sagdfn::tensor {

Tensor::Tensor() : Tensor(Shape({0})) {}

Tensor::Tensor(Shape shape)
    : data_(std::make_shared<std::vector<float>>(shape.NumElements(), 0.0f)),
      shape_(std::move(shape)) {}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape(std::vector<int64_t>{})};
  (*t.data_)[0] = value;
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values, Shape shape) {
  SAGDFN_CHECK_EQ(static_cast<int64_t>(values.size()), shape.NumElements());
  Tensor t;
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t{Shape({n})};
  for (int64_t i = 0; i < n; ++i) (*t.data_)[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t{Shape({n, n})};
  for (int64_t i = 0; i < n; ++i) (*t.data_)[i * n + i] = 1.0f;
  return t;
}

Tensor Tensor::Uniform(Shape shape, utils::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) {
    v = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Normal(Shape shape, utils::Rng& rng, float mean,
                      float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) {
    v = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

float& Tensor::At(std::initializer_list<int64_t> index) {
  SAGDFN_CHECK_EQ(static_cast<int64_t>(index.size()), ndim());
  const auto strides = shape_.Strides();
  int64_t offset = 0;
  int64_t d = 0;
  for (int64_t i : index) {
    SAGDFN_DCHECK_GE(i, 0);
    SAGDFN_DCHECK_LT(i, shape_.dim(d));
    offset += i * strides[d++];
  }
  return (*data_)[offset];
}

float Tensor::At(std::initializer_list<int64_t> index) const {
  return const_cast<Tensor*>(this)->At(index);
}

float Tensor::Item() const {
  SAGDFN_CHECK_EQ(size(), 1) << "Item() requires a single-element tensor";
  return (*data_)[0];
}

Tensor Tensor::Reshape(std::vector<int64_t> dims) const {
  int64_t known = 1;
  int64_t infer_index = -1;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      SAGDFN_CHECK_EQ(infer_index, -1) << "at most one -1 dim in Reshape";
      infer_index = static_cast<int64_t>(i);
    } else {
      SAGDFN_CHECK_GE(dims[i], 0);
      known *= dims[i];
    }
  }
  if (infer_index >= 0) {
    SAGDFN_CHECK_GT(known, 0);
    SAGDFN_CHECK_EQ(size() % known, 0)
        << "cannot infer dim for reshape of " << shape_.ToString();
    dims[infer_index] = size() / known;
  }
  Shape new_shape(std::move(dims));
  SAGDFN_CHECK_EQ(new_shape.NumElements(), size())
      << "Reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.data_ = std::make_shared<std::vector<float>>(*data_);
  t.shape_ = shape_;
  return t;
}

void Tensor::Fill(float value) {
  for (auto& v : *data_) v = value;
}

void Tensor::CopyFrom(const Tensor& src) {
  SAGDFN_CHECK(shape_ == src.shape_)
      << "CopyFrom shape mismatch: " << shape_.ToString() << " vs "
      << src.shape_.ToString();
  *data_ = *src.data_;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << "{";
  int64_t n = std::min<int64_t>(size(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << (*data_)[i];
  }
  if (size() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace sagdfn::tensor
