#include "tensor/tensor.h"

#include <cstring>
#include <sstream>

#include "utils/check.h"

namespace sagdfn::tensor {

namespace {

// Heap storage: a shared vector whose data() backs ptr_. Kept as a
// helper so every allocating path sets owner_/ptr_ the same way.
std::shared_ptr<std::vector<float>> MakeStorage(int64_t n, float value) {
  return std::make_shared<std::vector<float>>(static_cast<size_t>(n), value);
}

}  // namespace

Tensor::Tensor() : Tensor(Shape({0})) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  auto storage = MakeStorage(shape_.NumElements(), 0.0f);
  ptr_ = storage->data();
  owner_ = std::move(storage);
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.ptr_, t.ptr_ + t.size(), value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape(std::vector<int64_t>{})};
  t.ptr_[0] = value;
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values, Shape shape) {
  SAGDFN_CHECK_EQ(static_cast<int64_t>(values.size()), shape.NumElements());
  Tensor t;
  auto storage = std::make_shared<std::vector<float>>(std::move(values));
  t.ptr_ = storage->data();
  t.owner_ = std::move(storage);
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::FromExternal(std::shared_ptr<void> owner, float* ptr,
                            Shape shape) {
  SAGDFN_CHECK(ptr != nullptr || shape.NumElements() == 0)
      << "FromExternal: null storage for non-empty shape "
      << shape.ToString();
  Tensor t;
  t.owner_ = std::move(owner);
  t.ptr_ = ptr;
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t{Shape({n})};
  for (int64_t i = 0; i < n; ++i) t.ptr_[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t{Shape({n, n})};
  for (int64_t i = 0; i < n; ++i) t.ptr_[i * n + i] = 1.0f;
  return t;
}

Tensor Tensor::Uniform(Shape shape, utils::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.ptr_[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Normal(Shape shape, utils::Rng& rng, float mean,
                      float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.ptr_[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

float& Tensor::At(std::initializer_list<int64_t> index) {
  SAGDFN_CHECK_EQ(static_cast<int64_t>(index.size()), ndim());
  const auto strides = shape_.Strides();
  int64_t offset = 0;
  int64_t d = 0;
  for (int64_t i : index) {
    SAGDFN_DCHECK_GE(i, 0);
    SAGDFN_DCHECK_LT(i, shape_.dim(d));
    offset += i * strides[d++];
  }
  return ptr_[offset];
}

float Tensor::At(std::initializer_list<int64_t> index) const {
  return const_cast<Tensor*>(this)->At(index);
}

float Tensor::Item() const {
  SAGDFN_CHECK_EQ(size(), 1) << "Item() requires a single-element tensor";
  return ptr_[0];
}

Tensor Tensor::Reshape(std::vector<int64_t> dims) const {
  int64_t known = 1;
  int64_t infer_index = -1;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      SAGDFN_CHECK_EQ(infer_index, -1) << "at most one -1 dim in Reshape";
      infer_index = static_cast<int64_t>(i);
    } else {
      SAGDFN_CHECK_GE(dims[i], 0);
      known *= dims[i];
    }
  }
  if (infer_index >= 0) {
    SAGDFN_CHECK_GT(known, 0);
    SAGDFN_CHECK_EQ(size() % known, 0)
        << "cannot infer dim for reshape of " << shape_.ToString();
    dims[infer_index] = size() / known;
  }
  Shape new_shape(std::move(dims));
  SAGDFN_CHECK_EQ(new_shape.NumElements(), size())
      << "Reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t{shape_};
  if (size() > 0) {
    std::memcpy(t.ptr_, ptr_, static_cast<size_t>(size()) * sizeof(float));
  }
  return t;
}

void Tensor::Fill(float value) {
  std::fill(ptr_, ptr_ + size(), value);
}

void Tensor::CopyFrom(const Tensor& src) {
  SAGDFN_CHECK(shape_ == src.shape_)
      << "CopyFrom shape mismatch: " << shape_.ToString() << " vs "
      << src.shape_.ToString();
  if (size() > 0) {
    std::memmove(ptr_, src.ptr_, static_cast<size_t>(size()) * sizeof(float));
  }
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << "{";
  int64_t n = std::min<int64_t>(size(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << ptr_[i];
  }
  if (size() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace sagdfn::tensor
