#ifndef SAGDFN_TENSOR_TENSOR_OPS_H_
#define SAGDFN_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sagdfn::tensor {

// Elementwise binary operations with numpy-style broadcasting. All return
// new tensors; inputs are never mutated.

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// Scalar-broadcast conveniences.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
/// s - a per element (reverse subtraction), without materializing a
/// constant tensor of s.
Tensor RSubScalar(const Tensor& a, float s);

// Elementwise unary operations.
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
/// -1, 0 or +1 per element.
Tensor Sign(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
/// Clamps every element into [lo, hi].
Tensor Clamp(const Tensor& a, float lo, float hi);
/// Raises every element to the (scalar) power p. Elements must be >= 0
/// when p is non-integral.
Tensor Pow(const Tensor& a, float p);

/// 2-D matrix product: [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched matrix product with broadcasting of a 2-D operand:
///   [B, m, k] x [B, k, n] -> [B, m, n]
///   [B, m, k] x [k, n]    -> [B, m, n]  (rhs shared across batch)
///   [m, k]    x [B, k, n] -> [B, m, n]  (lhs shared across batch)
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);

/// Raw-pointer matmul into a caller-owned buffer: o[rows, n] = a[rows, k]
/// x b[k, n]. Zeroes `o`, then runs the same row-parallel k-tiled
/// macro-kernel as MatMul / BatchedMatMul — per-row accumulation order is
/// identical, so for equal operand values the output rows are
/// bit-identical to those ops. This is what lets the eval-mode rollout
/// plan (core/rollout_plan) replay matmuls into arena scratch while
/// staying memcmp-equal to the eager path. `o` must not alias `a` or `b`.
void MatMulInto(const float* a, const float* b, float* o, int64_t rows,
                int64_t k, int64_t n);

/// Row-range variant of MatMulInto for callers that fuse the matmul into
/// a larger per-row-range parallel region (one ParallelFor dispatch
/// covering several row-local stages): zeroes rows [i0, i1) of `o` and
/// accumulates a[i0:i1] x b into them with the same per-row k-tile order
/// as MatMul / MatMulInto. Per-row results are independent of how the
/// caller partitions the row range, so any partition is bit-identical to
/// the full-matrix ops.
void MatMulRowsInto(const float* a, const float* b, float* o, int64_t i0,
                    int64_t i1, int64_t k, int64_t n);

// Reductions. `axis` may be negative. With keepdim the reduced axis stays
// as size 1; otherwise it is removed.

Tensor Sum(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor Mean(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor Max(const Tensor& a, int64_t axis, bool keepdim = false);
/// Index of the maximum along `axis` (ties -> first), as float values.
Tensor ArgMax(const Tensor& a, int64_t axis);

/// Full reductions to a rank-0 scalar tensor.
Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

/// Sums `a` down to `target` (which must be broadcast-compatible with and
/// no larger than a.shape()). This is the adjoint of broadcasting.
Tensor ReduceTo(const Tensor& a, const Shape& target);

/// Swaps two axes, materializing a contiguous result.
Tensor Transpose(const Tensor& a, int64_t axis0, int64_t axis1);

/// Concatenates tensors along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Stacks equal-shaped tensors along a new leading `axis`.
Tensor Stack(const std::vector<Tensor>& parts, int64_t axis);

/// Returns a[..., start:end, ...] along `axis` (copy).
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t end);

/// Selects rows along `axis` by index (gather). Indices may repeat.
Tensor IndexSelect(const Tensor& a, int64_t axis,
                   const std::vector<int64_t>& indices);

/// Scatter-add: dst[..., indices[i], ...] += src[..., i, ...] along `axis`.
/// This is the adjoint of IndexSelect.
void IndexAddInto(Tensor& dst, int64_t axis,
                  const std::vector<int64_t>& indices, const Tensor& src);

/// Numerically stable softmax along `axis`.
Tensor Softmax(const Tensor& a, int64_t axis);

/// True when all elements satisfy |a - b| <= atol + rtol * |b|.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

/// True if any element is NaN or infinite.
bool HasNonFinite(const Tensor& a);

}  // namespace sagdfn::tensor

#endif  // SAGDFN_TENSOR_TENSOR_OPS_H_
