#ifndef SAGDFN_TENSOR_SIMD_INTERNAL_H_
#define SAGDFN_TENSOR_SIMD_INTERNAL_H_

#include "tensor/simd.h"

// Internal wiring between the dispatch front-end (simd.cc) and the
// per-level kernel translation units. Not for use outside src/tensor.

namespace sagdfn::tensor::simd::internal {

/// Portable scalar kernel table (always available).
const Kernels& ScalarKernels();

/// True when the binary was built with the AVX2 translation unit.
bool Avx2CompiledIn();

/// AVX2+FMA kernel table. Only valid to CALL when the CPU supports
/// AVX2+FMA; always safe to reference. When the AVX2 TU is compiled out
/// this returns the scalar table.
const Kernels& Avx2Kernels();

}  // namespace sagdfn::tensor::simd::internal

#endif  // SAGDFN_TENSOR_SIMD_INTERNAL_H_
