#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

#include "utils/check.h"

namespace sagdfn::tensor {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) SAGDFN_CHECK_GE(d, 0);
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) SAGDFN_CHECK_GE(d, 0);
}

int64_t Shape::dim(int64_t d) const { return dims_[CanonicalAxis(d)]; }

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size());
  int64_t acc = 1;
  for (int64_t i = ndim() - 1; i >= 0; --i) {
    strides[i] = acc;
    acc *= dims_[i];
  }
  return strides;
}

int64_t Shape::CanonicalAxis(int64_t axis) const {
  int64_t n = ndim();
  if (axis < 0) axis += n;
  SAGDFN_CHECK_GE(axis, 0) << "axis out of range for " << ToString();
  SAGDFN_CHECK_LT(axis, n) << "axis out of range for " << ToString();
  return axis;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

bool Shape::BroadcastCompatible(const Shape& a, const Shape& b) {
  int64_t rank = std::max(a.ndim(), b.ndim());
  for (int64_t i = 0; i < rank; ++i) {
    int64_t da = i < a.ndim() ? a.dims_[a.ndim() - 1 - i] : 1;
    int64_t db = i < b.ndim() ? b.dims_[b.ndim() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape Shape::Broadcast(const Shape& a, const Shape& b) {
  SAGDFN_CHECK(BroadcastCompatible(a, b))
      << "cannot broadcast " << a.ToString() << " with " << b.ToString();
  int64_t rank = std::max(a.ndim(), b.ndim());
  std::vector<int64_t> out(rank);
  for (int64_t i = 0; i < rank; ++i) {
    int64_t da = i < a.ndim() ? a.dims_[a.ndim() - 1 - i] : 1;
    int64_t db = i < b.ndim() ? b.dims_[b.ndim() - 1 - i] : 1;
    out[rank - 1 - i] = std::max(da, db);
  }
  return Shape(std::move(out));
}

}  // namespace sagdfn::tensor
