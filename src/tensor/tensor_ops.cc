#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "tensor/simd.h"
#include "utils/block_reduce.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace sagdfn::tensor {
namespace {

using utils::kElementwiseGrain;
using utils::kReduceBlock;
using utils::ParallelFor;
using utils::ParallelFor2D;

// Kernel-pointer aliases from the SIMD dispatch table (see tensor/simd.h).
using BinVV = void (*)(const float*, const float*, float*, int64_t);
using BinVS = void (*)(const float*, float, float*, int64_t);
using UnaryK = void (*)(const float*, float*, int64_t);

// Minimum multiply-accumulate count per matmul task; rows are grouped so
// each task carries at least this much work before the pool is engaged.
constexpr int64_t kMatMulGrainFlops = 1 << 16;

// Cache tile over the shared (k) dimension: one tile of B rows
// (kKTile x n floats) stays resident while a task's rows stream past it.
constexpr int64_t kKTile = 256;

// Applies one operation elementwise over broadcast inputs. The three
// contiguous fast paths run the dispatched SIMD kernels: `vv` for
// identical shapes, `vs` (o = a[i] OP s) when the rhs is a scalar, `sv`
// (o = s OP a[i]) when the lhs is. The general broadcast path walks a
// multi-index with per-input strides and stays on the scalar `op` (its
// access pattern is gather-like, not vectorizable as contiguous lanes).
// All paths parallelize over contiguous output chunks (each element is
// written by exactly one task, so results are thread-count independent).
template <typename Op>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, BinVV vv, BinVS vs,
                       BinVS sv, Op op) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, a.size(), kElementwiseGrain,
                [&](int64_t i0, int64_t i1) {
                  vv(pa + i0, pb + i0, po + i0, i1 - i0);
                });
    return out;
  }
  // Scalar fast paths apply only when the scalar operand's rank does not
  // exceed the other's (otherwise broadcasting promotes the result rank,
  // e.g. [3] op [1, 1] -> [1, 3]).
  if (b.size() == 1 && b.ndim() <= a.ndim()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float s = b.data()[0];
    float* po = out.data();
    ParallelFor(0, a.size(), kElementwiseGrain,
                [&](int64_t i0, int64_t i1) {
                  vs(pa + i0, s, po + i0, i1 - i0);
                });
    return out;
  }
  if (a.size() == 1 && a.ndim() <= b.ndim()) {
    Tensor out(b.shape());
    const float s = a.data()[0];
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, b.size(), kElementwiseGrain,
                [&](int64_t i0, int64_t i1) {
                  sv(pb + i0, s, po + i0, i1 - i0);
                });
    return out;
  }

  Shape out_shape = Shape::Broadcast(a.shape(), b.shape());
  const int64_t rank = out_shape.ndim();
  Tensor out(out_shape);

  // Align strides to the output rank, zeroing broadcast dims.
  auto aligned_strides = [&](const Shape& s) {
    std::vector<int64_t> strides(rank, 0);
    auto own = s.Strides();
    for (int64_t i = 0; i < s.ndim(); ++i) {
      int64_t out_dim = rank - s.ndim() + i;
      strides[out_dim] = (s.dims()[i] == 1) ? 0 : own[i];
    }
    return strides;
  };
  const std::vector<int64_t> sa = aligned_strides(a.shape());
  const std::vector<int64_t> sb = aligned_strides(b.shape());

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t total = out.size();
  // Each chunk seeds its multi-index / input offsets from its first flat
  // index, then advances odometer-style.
  ParallelFor(0, total, kElementwiseGrain, [&](int64_t flat0, int64_t flat1) {
    std::vector<int64_t> index(rank, 0);
    int64_t offset_a = 0;
    int64_t offset_b = 0;
    int64_t rem = flat0;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % out_shape.dims()[d];
      rem /= out_shape.dims()[d];
      offset_a += index[d] * sa[d];
      offset_b += index[d] * sb[d];
    }
    for (int64_t flat = flat0; flat < flat1; ++flat) {
      po[flat] = op(pa[offset_a], pb[offset_b]);
      // Increment the multi-index (odometer) and the two offsets.
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        offset_a += sa[d];
        offset_b += sb[d];
        if (index[d] < out_shape.dims()[d]) break;
        offset_a -= sa[d] * index[d];
        offset_b -= sb[d] * index[d];
        index[d] = 0;
      }
    }
  });
  return out;
}

template <typename Op>
Tensor UnaryOp(const Tensor& a, Op op) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = op(pa[i]);
  });
  return out;
}

// Unary op routed through a dispatched contiguous kernel.
Tensor UnaryKernel(const Tensor& a, UnaryK kernel) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    kernel(pa + i0, po + i0, i1 - i0);
  });
  return out;
}

// Tensor-scalar op routed through a dispatched contiguous kernel.
Tensor ScalarKernel(const Tensor& a, float s, BinVS kernel) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    kernel(pa + i0, s, po + i0, i1 - i0);
  });
  return out;
}

// Decomposes a shape around `axis` into (outer, axis_size, inner) so
// reductions can run as three nested loops.
struct AxisSplit {
  int64_t outer;
  int64_t axis_size;
  int64_t inner;
};

AxisSplit SplitAtAxis(const Shape& shape, int64_t axis) {
  axis = shape.CanonicalAxis(axis);
  AxisSplit s{1, shape.dims()[axis], 1};
  for (int64_t i = 0; i < axis; ++i) s.outer *= shape.dims()[i];
  for (int64_t i = axis + 1; i < shape.ndim(); ++i) {
    s.inner *= shape.dims()[i];
  }
  return s;
}

Shape ReducedShape(const Shape& shape, int64_t axis, bool keepdim) {
  axis = shape.CanonicalAxis(axis);
  std::vector<int64_t> dims = shape.dims();
  if (keepdim) {
    dims[axis] = 1;
  } else {
    dims.erase(dims.begin() + axis);
  }
  return Shape(std::move(dims));
}

// Grain for axis reductions: each (outer-range x inner-range) tile owns
// its output elements outright; size tiles so a task reads at least
// ~kReduceBlock input elements.
int64_t ReduceOuterGrain(const AxisSplit& s) {
  const int64_t per_outer = s.axis_size * s.inner;
  return std::max<int64_t>(1, kReduceBlock / std::max<int64_t>(1, per_outer));
}

// Single-row matmul macro-kernel: out_row += a_row * B over kk in
// [k0, k1), streaming B rows through the dispatched axpy kernel. Zero
// entries of A are skipped (the slim adjacency and dropout masks are
// sparse in practice).
inline void MatMulRowTile(const float* a_row, const float* pb, float* out_row,
                          int64_t k0, int64_t k1, int64_t n,
                          const simd::Kernels& kern) {
  for (int64_t kk = k0; kk < k1; ++kk) {
    const float av = a_row[kk];
    if (av == 0.0f) continue;
    kern.axpy(av, pb + kk * n, out_row, n);
  }
}

// Shared [rows in [i0, i1)] x [k tiles] kernel used by both MatMul and
// BatchedMatMul. The k tiles advance in order inside each row, so per-row
// accumulation order equals the sequential kernel's (bit-identical output
// for every thread count / partition).
inline void MatMulRows(const float* pa, const float* pb, float* po,
                       int64_t i0, int64_t i1, int64_t k, int64_t n) {
  const simd::Kernels& kern = simd::K();
  for (int64_t k0 = 0; k0 < k; k0 += kKTile) {
    const int64_t k1 = std::min<int64_t>(k, k0 + kKTile);
    for (int64_t i = i0; i < i1; ++i) {
      MatMulRowTile(pa + i * k, pb, po + i * n, k0, k1, n, kern);
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const simd::Kernels& k = simd::K();
  return BroadcastBinary(a, b, k.add, k.add_s, k.add_s, std::plus<float>());
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  const simd::Kernels& k = simd::K();
  return BroadcastBinary(a, b, k.sub, k.sub_s, k.rsub_s, std::minus<float>());
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const simd::Kernels& k = simd::K();
  return BroadcastBinary(a, b, k.mul, k.mul_s, k.mul_s,
                         std::multiplies<float>());
}

Tensor Div(const Tensor& a, const Tensor& b) {
  const simd::Kernels& k = simd::K();
  return BroadcastBinary(a, b, k.div, k.div_s, k.rdiv_s,
                         std::divides<float>());
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  const simd::Kernels& k = simd::K();
  return BroadcastBinary(a, b, k.vmax, k.max_s, k.max_s,
                         [](float x, float y) { return std::max(x, y); });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  const simd::Kernels& k = simd::K();
  return BroadcastBinary(a, b, k.vmin, k.min_s, k.min_s,
                         [](float x, float y) { return std::min(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return ScalarKernel(a, s, simd::K().add_s);
}

Tensor MulScalar(const Tensor& a, float s) {
  return ScalarKernel(a, s, simd::K().mul_s);
}

Tensor RSubScalar(const Tensor& a, float s) {
  return ScalarKernel(a, s, simd::K().rsub_s);
}

Tensor Neg(const Tensor& a) { return UnaryKernel(a, simd::K().neg); }

Tensor Exp(const Tensor& a) { return UnaryKernel(a, simd::K().vexp); }

Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(x); });
}

Tensor Sqrt(const Tensor& a) { return UnaryKernel(a, simd::K().vsqrt); }

Tensor Abs(const Tensor& a) { return UnaryKernel(a, simd::K().vabs); }

Tensor Sign(const Tensor& a) {
  return UnaryOp(a, [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}

Tensor Tanh(const Tensor& a) { return UnaryKernel(a, simd::K().vtanh); }

Tensor Sigmoid(const Tensor& a) {
  return UnaryKernel(a, simd::K().sigmoid);
}

Tensor Relu(const Tensor& a) { return UnaryKernel(a, simd::K().relu); }

Tensor Clamp(const Tensor& a, float lo, float hi) {
  SAGDFN_CHECK_LE(lo, hi);
  return UnaryOp(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor Pow(const Tensor& a, float p) {
  return UnaryOp(a, [p](float x) { return std::pow(x, p); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  SAGDFN_CHECK_EQ(a.ndim(), 2) << "MatMul lhs must be 2-D";
  SAGDFN_CHECK_EQ(b.ndim(), 2) << "MatMul rhs must be 2-D";
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  SAGDFN_CHECK_EQ(k, b.dim(0))
      << "MatMul inner dims: " << a.shape().ToString() << " x "
      << b.shape().ToString();
  Tensor out{Shape({m, n})};
  // Freshly constructed tensors are zeroed, so the accumulate-only macro
  // kernel can run directly.
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Row-parallel, k-tiled: each task owns a contiguous block of output
  // rows; inside a row, i-k-j order streams both B and the output row.
  const int64_t row_grain =
      std::max<int64_t>(1, kMatMulGrainFlops / std::max<int64_t>(1, k * n));
  ParallelFor(0, m, row_grain, [&](int64_t i0, int64_t i1) {
    MatMulRows(pa, pb, po, i0, i1, k, n);
  });
  return out;
}

void MatMulInto(const float* a, const float* b, float* o, int64_t rows,
                int64_t k, int64_t n) {
  std::memset(o, 0, sizeof(float) * rows * n);
  const int64_t row_grain =
      std::max<int64_t>(1, kMatMulGrainFlops / std::max<int64_t>(1, k * n));
  ParallelFor(0, rows, row_grain, [&](int64_t i0, int64_t i1) {
    MatMulRows(a, b, o, i0, i1, k, n);
  });
}

void MatMulRowsInto(const float* a, const float* b, float* o, int64_t i0,
                    int64_t i1, int64_t k, int64_t n) {
  std::memset(o + i0 * n, 0, sizeof(float) * (i1 - i0) * n);
  MatMulRows(a, b, o, i0, i1, k, n);
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  SAGDFN_CHECK(a.ndim() == 3 || b.ndim() == 3)
      << "BatchedMatMul requires a 3-D operand";
  const bool broadcast_lhs = a.ndim() == 2;
  const bool broadcast_rhs = b.ndim() == 2;
  SAGDFN_CHECK(!broadcast_lhs || !broadcast_rhs);
  const int64_t batch = broadcast_lhs ? b.dim(0) : a.dim(0);
  const int64_t m = broadcast_lhs ? a.dim(0) : a.dim(1);
  const int64_t k = broadcast_lhs ? a.dim(1) : a.dim(2);
  if (!broadcast_lhs && !broadcast_rhs) SAGDFN_CHECK_EQ(b.dim(0), batch);
  const int64_t n = broadcast_rhs ? b.dim(1) : b.dim(2);
  SAGDFN_CHECK_EQ(k, broadcast_rhs ? b.dim(0) : b.dim(1))
      << "BatchedMatMul inner dims: " << a.shape().ToString() << " x "
      << b.shape().ToString();
  Tensor out{Shape({batch, m, n})};
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Parallelize over the flattened batch x row space so small-batch,
  // many-row workloads (the encoder's [B, N, C] steps) still spread over
  // all threads. A task's range may straddle batch boundaries.
  const int64_t row_grain =
      std::max<int64_t>(1, kMatMulGrainFlops / std::max<int64_t>(1, k * n));
  ParallelFor(0, batch * m, row_grain, [&](int64_t r0, int64_t r1) {
    int64_t r = r0;
    while (r < r1) {
      const int64_t bi = r / m;
      const int64_t i0 = r - bi * m;
      const int64_t i1 = std::min<int64_t>(m, i0 + (r1 - r));
      const float* a_mat = broadcast_lhs ? pa : pa + bi * m * k;
      const float* b_mat = broadcast_rhs ? pb : pb + bi * k * n;
      MatMulRows(a_mat, b_mat, po + bi * m * n, i0, i1, k, n);
      r += i1 - i0;
    }
  });
  return out;
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdim) {
  const AxisSplit s = SplitAtAxis(a.shape(), axis);
  Tensor out{ReducedShape(a.shape(), axis, keepdim)};
  const float* pa = a.data();
  float* po = out.data();
  // Tiles over (outer, inner) own disjoint output elements; the axis loop
  // stays innermost-ordered, so sums accumulate in the sequential order
  // regardless of thread count.
  const auto acc_add = simd::K().acc_add;
  ParallelFor2D(s.outer, s.inner, ReduceOuterGrain(s), kReduceBlock,
                [&](int64_t o0, int64_t o1, int64_t i0, int64_t i1) {
                  for (int64_t o = o0; o < o1; ++o) {
                    for (int64_t x = 0; x < s.axis_size; ++x) {
                      const float* src = pa + (o * s.axis_size + x) * s.inner;
                      float* dst = po + o * s.inner;
                      acc_add(dst + i0, src + i0, i1 - i0);
                    }
                  }
                });
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdim) {
  const AxisSplit s = SplitAtAxis(a.shape(), axis);
  SAGDFN_CHECK_GT(s.axis_size, 0);
  return MulScalar(Sum(a, axis, keepdim), 1.0f / s.axis_size);
}

Tensor Max(const Tensor& a, int64_t axis, bool keepdim) {
  const AxisSplit s = SplitAtAxis(a.shape(), axis);
  SAGDFN_CHECK_GT(s.axis_size, 0);
  Tensor out{ReducedShape(a.shape(), axis, keepdim)};
  out.Fill(-std::numeric_limits<float>::infinity());
  const float* pa = a.data();
  float* po = out.data();
  const auto max_into = simd::K().max_into;
  ParallelFor2D(s.outer, s.inner, ReduceOuterGrain(s), kReduceBlock,
                [&](int64_t o0, int64_t o1, int64_t i0, int64_t i1) {
                  for (int64_t o = o0; o < o1; ++o) {
                    for (int64_t x = 0; x < s.axis_size; ++x) {
                      const float* src = pa + (o * s.axis_size + x) * s.inner;
                      float* dst = po + o * s.inner;
                      max_into(dst + i0, src + i0, i1 - i0);
                    }
                  }
                });
  return out;
}

Tensor ArgMax(const Tensor& a, int64_t axis) {
  const AxisSplit s = SplitAtAxis(a.shape(), axis);
  SAGDFN_CHECK_GT(s.axis_size, 0);
  Tensor out{ReducedShape(a.shape(), axis, /*keepdim=*/false)};
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor2D(
      s.outer, s.inner, ReduceOuterGrain(s), kReduceBlock,
      [&](int64_t o0, int64_t o1, int64_t i0, int64_t i1) {
        for (int64_t o = o0; o < o1; ++o) {
          for (int64_t i = i0; i < i1; ++i) {
            float best = -std::numeric_limits<float>::infinity();
            int64_t best_idx = 0;
            for (int64_t x = 0; x < s.axis_size; ++x) {
              float v = pa[(o * s.axis_size + x) * s.inner + i];
              if (v > best) {
                best = v;
                best_idx = x;
              }
            }
            po[o * s.inner + i] = static_cast<float>(best_idx);
          }
        }
      });
  return out;
}

Tensor SumAll(const Tensor& a) {
  const float* pa = a.data();
  const auto sum = simd::K().sum;
  // Fixed-size blocks (independent of the thread count) with per-block
  // double partials merged in block order keep the result identical for
  // any pool size; see utils/block_reduce.h for the shared contract.
  const double total = utils::DeterministicBlockReduce<double>(
      a.size(), 0.0,
      [&](int64_t lo, int64_t hi) { return sum(pa + lo, hi - lo); },
      [](double& acc, double partial) { acc += partial; });
  return Tensor::Scalar(static_cast<float>(total));
}

Tensor MeanAll(const Tensor& a) {
  SAGDFN_CHECK_GT(a.size(), 0);
  return Tensor::Scalar(SumAll(a).Item() / a.size());
}

float MaxAll(const Tensor& a) {
  SAGDFN_CHECK_GT(a.size(), 0);
  float best = a.data()[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::max(best, a.data()[i]);
  return best;
}

float MinAll(const Tensor& a) {
  SAGDFN_CHECK_GT(a.size(), 0);
  float best = a.data()[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::min(best, a.data()[i]);
  return best;
}

Tensor ReduceTo(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  SAGDFN_CHECK(Shape::BroadcastCompatible(a.shape(), target))
      << "ReduceTo " << a.shape().ToString() << " -> " << target.ToString();
  Tensor current = a;
  // Remove extra leading dims.
  while (current.ndim() > target.ndim()) {
    current = Sum(current, 0, /*keepdim=*/false);
  }
  // Sum along axes where the target is size-1.
  for (int64_t d = 0; d < target.ndim(); ++d) {
    if (target.dims()[d] == 1 && current.dim(d) != 1) {
      current = Sum(current, d, /*keepdim=*/true);
    } else {
      SAGDFN_CHECK_EQ(current.dim(d), target.dims()[d]);
    }
  }
  return current.Reshape(target.dims());
}

Tensor Transpose(const Tensor& a, int64_t axis0, int64_t axis1) {
  axis0 = a.shape().CanonicalAxis(axis0);
  axis1 = a.shape().CanonicalAxis(axis1);
  if (axis0 == axis1) return a.Clone();
  std::vector<int64_t> out_dims = a.shape().dims();
  std::swap(out_dims[axis0], out_dims[axis1]);
  Tensor out{Shape(out_dims)};

  const auto in_strides = a.shape().Strides();
  std::vector<int64_t> out_in_strides = in_strides;
  std::swap(out_in_strides[axis0], out_in_strides[axis1]);

  const int64_t rank = a.ndim();
  const float* pa = a.data();
  float* po = out.data();
  const int64_t total = a.size();
  ParallelFor(0, total, kElementwiseGrain, [&](int64_t flat0, int64_t flat1) {
    std::vector<int64_t> index(rank, 0);
    int64_t in_offset = 0;
    int64_t rem = flat0;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % out_dims[d];
      rem /= out_dims[d];
      in_offset += index[d] * out_in_strides[d];
    }
    for (int64_t flat = flat0; flat < flat1; ++flat) {
      po[flat] = pa[in_offset];
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        in_offset += out_in_strides[d];
        if (index[d] < out_dims[d]) break;
        in_offset -= out_in_strides[d] * index[d];
        index[d] = 0;
      }
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  SAGDFN_CHECK(!parts.empty());
  const Shape& first = parts[0].shape();
  axis = first.CanonicalAxis(axis);
  int64_t axis_total = 0;
  for (const Tensor& p : parts) {
    SAGDFN_CHECK_EQ(p.ndim(), first.ndim());
    for (int64_t d = 0; d < first.ndim(); ++d) {
      if (d != axis) SAGDFN_CHECK_EQ(p.dim(d), first.dims()[d]);
    }
    axis_total += p.dim(axis);
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims[axis] = axis_total;
  Tensor out{Shape(out_dims)};

  const AxisSplit s = SplitAtAxis(out.shape(), axis);
  float* po = out.data();
  int64_t axis_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t p_axis = p.dim(axis);
    const float* pp = p.data();
    const int64_t copy_len = p_axis * s.inner;
    const int64_t outer_grain =
        std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(
                                                     1, copy_len));
    ParallelFor(0, s.outer, outer_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        const float* src = pp + o * copy_len;
        float* dst = po + (o * axis_total + axis_offset) * s.inner;
        std::copy(src, src + copy_len, dst);
      }
    });
    axis_offset += p_axis;
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts, int64_t axis) {
  SAGDFN_CHECK(!parts.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(parts.size());
  for (const Tensor& p : parts) {
    SAGDFN_CHECK(p.shape() == parts[0].shape());
    std::vector<int64_t> dims = p.shape().dims();
    int64_t ax = axis < 0 ? axis + p.ndim() + 1 : axis;
    SAGDFN_CHECK_GE(ax, 0);
    SAGDFN_CHECK_LE(ax, p.ndim());
    dims.insert(dims.begin() + ax, 1);
    expanded.push_back(p.Reshape(dims));
  }
  int64_t ax = axis < 0 ? axis + parts[0].ndim() + 1 : axis;
  return Concat(expanded, ax);
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t end) {
  axis = a.shape().CanonicalAxis(axis);
  const int64_t axis_size = a.dim(axis);
  SAGDFN_CHECK_GE(start, 0);
  SAGDFN_CHECK_LE(start, end);
  SAGDFN_CHECK_LE(end, axis_size);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[axis] = end - start;
  Tensor out{Shape(out_dims)};

  const AxisSplit s = SplitAtAxis(a.shape(), axis);
  const float* pa = a.data();
  float* po = out.data();
  const int64_t out_axis = end - start;
  const int64_t copy_len = out_axis * s.inner;
  const int64_t outer_grain = std::max<int64_t>(
      1, kElementwiseGrain / std::max<int64_t>(1, copy_len));
  ParallelFor(0, s.outer, outer_grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      const float* src = pa + (o * axis_size + start) * s.inner;
      float* dst = po + o * copy_len;
      std::copy(src, src + copy_len, dst);
    }
  });
  return out;
}

Tensor IndexSelect(const Tensor& a, int64_t axis,
                   const std::vector<int64_t>& indices) {
  axis = a.shape().CanonicalAxis(axis);
  const int64_t axis_size = a.dim(axis);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[axis] = static_cast<int64_t>(indices.size());
  Tensor out{Shape(out_dims)};

  const AxisSplit s = SplitAtAxis(a.shape(), axis);
  const int64_t k = static_cast<int64_t>(indices.size());
  for (int64_t x = 0; x < k; ++x) {
    SAGDFN_CHECK_GE(indices[x], 0);
    SAGDFN_CHECK_LT(indices[x], axis_size);
  }
  const float* pa = a.data();
  float* po = out.data();
  // Each (outer, index-slot) pair owns one disjoint output row.
  const int64_t row_grain = std::max<int64_t>(
      1, kElementwiseGrain / std::max<int64_t>(1, s.inner));
  ParallelFor(0, s.outer * k, row_grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t o = r / k;
      const int64_t x = r - o * k;
      const float* src = pa + (o * axis_size + indices[x]) * s.inner;
      float* dst = po + r * s.inner;
      std::copy(src, src + s.inner, dst);
    }
  });
  return out;
}

void IndexAddInto(Tensor& dst, int64_t axis,
                  const std::vector<int64_t>& indices, const Tensor& src) {
  axis = dst.shape().CanonicalAxis(axis);
  const int64_t axis_size = dst.dim(axis);
  SAGDFN_CHECK_EQ(src.dim(axis), static_cast<int64_t>(indices.size()));
  SAGDFN_CHECK_EQ(src.ndim(), dst.ndim());
  for (int64_t d = 0; d < dst.ndim(); ++d) {
    if (d != axis) SAGDFN_CHECK_EQ(src.dim(d), dst.dim(d));
  }
  const AxisSplit s = SplitAtAxis(dst.shape(), axis);
  const int64_t k = static_cast<int64_t>(indices.size());
  for (int64_t x = 0; x < k; ++x) {
    SAGDFN_CHECK_GE(indices[x], 0);
    SAGDFN_CHECK_LT(indices[x], axis_size);
  }
  const float* ps = src.data();
  float* pd = dst.data();
  // Indices may repeat, so the scatter axis (x) must stay sequential;
  // (outer, inner) tiles touch disjoint destination elements and the x
  // loop runs in sequential order inside each tile, keeping accumulation
  // deterministic.
  const auto acc_add = simd::K().acc_add;
  ParallelFor2D(s.outer, s.inner, ReduceOuterGrain(s), kReduceBlock,
                [&](int64_t o0, int64_t o1, int64_t i0, int64_t i1) {
                  for (int64_t o = o0; o < o1; ++o) {
                    for (int64_t x = 0; x < k; ++x) {
                      const float* sp = ps + (o * k + x) * s.inner;
                      float* dp = pd + (o * axis_size + indices[x]) * s.inner;
                      acc_add(dp + i0, sp + i0, i1 - i0);
                    }
                  }
                });
}

Tensor Softmax(const Tensor& a, int64_t axis) {
  Tensor shifted = Sub(a, Max(a, axis, /*keepdim=*/true));
  Tensor e = Exp(shifted);
  return Div(e, Sum(e, axis, /*keepdim=*/true));
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!(a.shape() == b.shape())) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(pa[i] - pb[i]);
    if (std::isnan(diff) ||
        diff > atol + rtol * std::fabs(pb[i])) {
      return false;
    }
  }
  return true;
}

bool HasNonFinite(const Tensor& a) {
  const float* pa = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    if (!std::isfinite(pa[i])) return true;
  }
  return false;
}

}  // namespace sagdfn::tensor
