#ifndef SAGDFN_TENSOR_SIMD_H_
#define SAGDFN_TENSOR_SIMD_H_

#include <cstdint>

namespace sagdfn::tensor::simd {

/// Instruction-set tier for the hot-path kernels.
///
/// Resolved once at startup (first kernel use): runtime CPUID detection
/// picks kAvx2 when the CPU reports AVX2+FMA, overridable with the
/// SAGDFN_SIMD environment variable:
///   SAGDFN_SIMD=off    force the portable scalar kernels
///   SAGDFN_SIMD=avx2   require AVX2 (falls back to scalar with a warning
///                      when the CPU or build lacks it)
///   SAGDFN_SIMD=auto   CPUID detection (the default)
///
/// Determinism contract (DESIGN.md §5f): for a FIXED level, every kernel
/// is bit-identical across thread counts and runs. Levels agree with each
/// other to tight tolerance (FMA contraction and vectorized exp/tanh/
/// sigmoid round differently than libm), which the `simd`-labeled test
/// suite pins.
enum class Level {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when this binary carries AVX2 kernels and the CPU supports them.
bool Avx2Available();

/// The level in effect (resolves env/CPUID on first call).
Level ActiveLevel();

/// Overrides the active level (tests and A/B benches). Passing kAvx2 on a
/// machine without AVX2 support keeps the scalar table and returns false.
/// Not thread-safe against in-flight kernels: call between parallel
/// regions, like SetNumThreads.
bool SetActiveLevel(Level level);

/// "scalar" or "avx2".
const char* LevelName(Level level);

/// Parses a SAGDFN_SIMD value ("off"/"scalar" -> kScalar, "avx2" -> kAvx2,
/// "auto"/"" -> detected level). Unknown values fall back to detection.
Level LevelFromString(const char* value);

/// Per-block partial for the masked error reduction behind the metrics
/// (MAE/RMSE/MAPE over non-missing entries; see metrics/metrics.cc).
struct MaskedErrAcc {
  double abs = 0.0;       // sum |pred - truth|        over truth != 0
  double sq = 0.0;        // sum (pred - truth)^2      over truth != 0
  double ape = 0.0;       // sum |err| / |truth|       over |truth| >= floor
  int64_t count = 0;      // entries with truth != 0
  int64_t ape_count = 0;  // entries with |truth| >= floor
};

/// Dispatch table of contiguous-array kernels. One table per Level; all
/// entries are non-null. Pointers operate on raw float arrays — callers
/// (tensor_ops, autograd backwards, metrics, optim) own the slicing,
/// broadcasting, and parallel partitioning.
struct Kernels {
  // -- Elementwise binary: o[i] = a[i] OP b[i] ------------------------------
  void (*add)(const float* a, const float* b, float* o, int64_t n);
  void (*sub)(const float* a, const float* b, float* o, int64_t n);
  void (*mul)(const float* a, const float* b, float* o, int64_t n);
  void (*div)(const float* a, const float* b, float* o, int64_t n);
  void (*vmax)(const float* a, const float* b, float* o, int64_t n);
  void (*vmin)(const float* a, const float* b, float* o, int64_t n);

  // -- Elementwise with a broadcast scalar ----------------------------------
  void (*add_s)(const float* a, float s, float* o, int64_t n);   // a + s
  void (*sub_s)(const float* a, float s, float* o, int64_t n);   // a - s
  void (*rsub_s)(const float* a, float s, float* o, int64_t n);  // s - a
  void (*mul_s)(const float* a, float s, float* o, int64_t n);   // a * s
  void (*div_s)(const float* a, float s, float* o, int64_t n);   // a / s
  void (*rdiv_s)(const float* a, float s, float* o, int64_t n);  // s / a
  void (*max_s)(const float* a, float s, float* o, int64_t n);
  void (*min_s)(const float* a, float s, float* o, int64_t n);

  // -- In-place accumulation (reduction inner loops) ------------------------
  void (*acc_add)(float* dst, const float* src, int64_t n);   // dst += src
  void (*max_into)(float* dst, const float* src, int64_t n);  // dst=max(.,src)

  // -- Elementwise unary ----------------------------------------------------
  void (*neg)(const float* a, float* o, int64_t n);
  void (*vabs)(const float* a, float* o, int64_t n);
  void (*relu)(const float* a, float* o, int64_t n);
  void (*vsqrt)(const float* a, float* o, int64_t n);
  void (*vexp)(const float* a, float* o, int64_t n);
  void (*sigmoid)(const float* a, float* o, int64_t n);
  void (*vtanh)(const float* a, float* o, int64_t n);

  // -- Fused autograd backward kernels --------------------------------------
  /// o = g * out * (1 - out)   (sigmoid backward; `out` is the fwd value)
  void (*sigmoid_grad)(const float* g, const float* out, float* o, int64_t n);
  /// o = g * (1 - out^2)       (tanh backward)
  void (*tanh_grad)(const float* g, const float* out, float* o, int64_t n);
  /// o = x > 0 ? g : 0         (relu backward; `x` is the fwd input)
  void (*relu_grad)(const float* g, const float* x, float* o, int64_t n);
  /// o = g * (a - b)           (GRU blend backward wrt z)
  void (*mul_sub)(const float* g, const float* a, const float* b, float* o,
                  int64_t n);
  /// o = g * (1 - z)           (GRU blend backward wrt candidate)
  void (*mul_one_minus)(const float* g, const float* z, float* o, int64_t n);

  // -- Linear-algebra inner loops -------------------------------------------
  /// dst[i] += a * x[i]  (matmul / diffusion macro-kernel row update)
  void (*axpy)(float a, const float* x, float* dst, int64_t n);
  /// dst[i] *= s         (gradient rescale)
  void (*scale)(float* dst, float s, int64_t n);
  /// sum_i (double)a[i] * (double)b[i]; fixed intra-call order per level.
  double (*dot)(const float* a, const float* b, int64_t n);
  /// sum_i (double)a[i]; fixed intra-call order per level.
  double (*sum)(const float* a, int64_t n);

  // -- Model-specific fusions -----------------------------------------------
  /// o = z*h + (1-z)*c   (GRU state blend, one pass)
  void (*gru_blend)(const float* z, const float* h, const float* c, float* o,
                    int64_t n);
  /// o = sigmoid(a) * b; when r_out is non-null it also receives
  /// sigmoid(a) (training keeps the gate for backward, eval passes null).
  /// Per element this is the exact sigmoid-kernel value times b, so fusing
  /// it changes no bits vs the unfused Sigmoid -> Mul chain.
  void (*sigmoid_mul)(const float* a, const float* b, float* o, float* r_out,
                      int64_t n);
  /// Fused GConv-GRU tail: z = sigmoid(gz), t = tanh(c),
  /// o = z*h + (1-z)*t — the Sigmoid -> Tanh -> GruBlend chain in one
  /// pass. z_out / t_out are optional (null in eval). The blend uses the
  /// same instruction sequence as gru_blend, so bits match the unfused
  /// composition.
  void (*gru_tail)(const float* gz, const float* h, const float* c, float* o,
                   float* z_out, float* t_out, int64_t n);
  /// Backward of sigmoid_mul: dg = gh*h * (r*(1-r)), dh = gh*r, where r is
  /// the stored forward sigmoid and gh the incoming gradient.
  void (*sigmoid_mul_grad)(const float* gh, const float* r, const float* h,
                           float* dg, float* dh, int64_t n);
  /// Backward of gru_tail: dgz = g*(h-t) * (z*(1-z)); dh = g*z;
  /// dc = g*(1-z) * (1-t*t).
  void (*gru_tail_grad)(const float* g, const float* z, const float* t,
                        const float* h, float* dgz, float* dh, float* dc,
                        int64_t n);
  /// One full plain-GRU cell row (nn::GruCell), gates + candidate + blend
  /// in one pass. xi and hh are [r|z|n] triples of length h_len (the two
  /// affine projections), h the previous state:
  ///   r = sigmoid(xi_r + hh_r), z = sigmoid(xi_z + hh_z),
  ///   nc = tanh(xi_n + r*hh_n), o = z*h + (1-z)*nc.
  /// r_out/z_out/n_out are optional (training stores them for backward).
  void (*gru_step)(const float* xi, const float* hh, const float* h, float* o,
                   float* r_out, float* z_out, float* n_out, int64_t h_len);
  /// Fused backward of gru_step: given the output gradient g and the
  /// stored r/z/nc plus h and the hh candidate section hh_n, writes the
  /// [r|z|n] gradient rows dxi and dhh (length 3*h_len) and dh (h_len).
  void (*gru_step_grad)(const float* g, const float* r, const float* z,
                        const float* nc, const float* h, const float* hh_n,
                        float* dxi, float* dhh, float* dh, int64_t h_len);
  /// Masked error partials over one block (metrics reduction).
  MaskedErrAcc (*masked_err)(const float* pred, const float* truth, int64_t n,
                             double mape_floor);
};

/// The kernel table for an explicit level (kAvx2 requires Avx2Available()).
const Kernels& KernelsFor(Level level);

/// The active kernel table (one relaxed atomic load).
const Kernels& K();

}  // namespace sagdfn::tensor::simd

#endif  // SAGDFN_TENSOR_SIMD_H_
