// Portable scalar kernel table: the reference semantics every other level
// must match (to the tolerance pinned by the simd test suite). These loops
// are deliberately simple — the compiler may auto-vectorize them, but the
// accumulation orders are fixed, so results are bit-identical run to run
// and thread count to thread count.
#include <cmath>

#include "tensor/simd_internal.h"

namespace sagdfn::tensor::simd::internal {
namespace {

void Add(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}
void Sub(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}
void Mul(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}
void Div(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
}
void VMax(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] > b[i] ? a[i] : b[i];
}
void VMin(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] < b[i] ? a[i] : b[i];
}

void AddS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + s;
}
void SubS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - s;
}
void RSubS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = s - a[i];
}
void MulS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * s;
}
void DivS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] / s;
}
void RDivS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = s / a[i];
}
void MaxS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] > s ? a[i] : s;
}
void MinS(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] < s ? a[i] : s;
}

void AccAdd(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}
void MaxInto(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

void Neg(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = -a[i];
}
void VAbs(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::fabs(a[i]);
}
void Relu(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}
void VSqrt(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::sqrt(a[i]);
}
void VExp(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::exp(a[i]);
}
void Sigmoid(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float x = a[i];
    // Stable in both tails.
    if (x >= 0.0f) {
      const float z = std::exp(-x);
      o[i] = 1.0f / (1.0f + z);
    } else {
      const float z = std::exp(x);
      o[i] = z / (1.0f + z);
    }
  }
}
void VTanh(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = std::tanh(a[i]);
}

void SigmoidGrad(const float* g, const float* out, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = g[i] * out[i] * (1.0f - out[i]);
}
void TanhGrad(const float* g, const float* out, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = g[i] * (1.0f - out[i] * out[i]);
}
void ReluGrad(const float* g, const float* x, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = x[i] > 0.0f ? g[i] : 0.0f;
}
void MulSub(const float* g, const float* a, const float* b, float* o,
            int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = g[i] * (a[i] - b[i]);
}
void MulOneMinus(const float* g, const float* z, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = g[i] * (1.0f - z[i]);
}

void Axpy(float a, const float* x, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += a * x[i];
}
void Scale(float* dst, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] *= s;
}
double Dot(const float* a, const float* b, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}
double Sum(const float* a, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

void GruBlend(const float* z, const float* h, const float* c, float* o,
              int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = z[i] * h[i] + (1.0f - z[i]) * c[i];
}

/// The two-branch stable sigmoid as a scalar expression, shared by the
/// fused kernels so their per-element bits equal the sigmoid kernel's.
inline float SigmoidScalar(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

void SigmoidMul(const float* a, const float* b, float* o, float* r_out,
                int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float r = SigmoidScalar(a[i]);
    if (r_out != nullptr) r_out[i] = r;
    o[i] = r * b[i];
  }
}

void GruTail(const float* gz, const float* h, const float* c, float* o,
             float* z_out, float* t_out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float z = SigmoidScalar(gz[i]);
    const float t = std::tanh(c[i]);
    if (z_out != nullptr) z_out[i] = z;
    if (t_out != nullptr) t_out[i] = t;
    o[i] = z * h[i] + (1.0f - z) * t;  // same association as GruBlend
  }
}

void SigmoidMulGrad(const float* gh, const float* r, const float* h,
                    float* dg, float* dh, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dg[i] = (gh[i] * h[i]) * (r[i] * (1.0f - r[i]));
    dh[i] = gh[i] * r[i];
  }
}

void GruTailGrad(const float* g, const float* z, const float* t,
                 const float* h, float* dgz, float* dh, float* dc,
                 int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dgz[i] = (g[i] * (h[i] - t[i])) * (z[i] * (1.0f - z[i]));
    dh[i] = g[i] * z[i];
    dc[i] = (g[i] * (1.0f - z[i])) * (1.0f - t[i] * t[i]);
  }
}

void GruStep(const float* xi, const float* hh, const float* h, float* o,
             float* r_out, float* z_out, float* n_out, int64_t h_len) {
  for (int64_t i = 0; i < h_len; ++i) {
    const float r = SigmoidScalar(xi[i] + hh[i]);
    const float z = SigmoidScalar(xi[h_len + i] + hh[h_len + i]);
    const float nc = std::tanh(xi[2 * h_len + i] + r * hh[2 * h_len + i]);
    if (r_out != nullptr) r_out[i] = r;
    if (z_out != nullptr) z_out[i] = z;
    if (n_out != nullptr) n_out[i] = nc;
    o[i] = z * h[i] + (1.0f - z) * nc;
  }
}

void GruStepGrad(const float* g, const float* r, const float* z,
                 const float* nc, const float* h, const float* hh_n,
                 float* dxi, float* dhh, float* dh, int64_t h_len) {
  for (int64_t i = 0; i < h_len; ++i) {
    const float gi = g[i];
    const float zi = z[i];
    const float ri = r[i];
    const float ni = nc[i];
    const float dz_pre = (gi * (h[i] - ni)) * (zi * (1.0f - zi));
    const float dn_pre = (gi * (1.0f - zi)) * (1.0f - ni * ni);
    const float dr_pre = (dn_pre * hh_n[i]) * (ri * (1.0f - ri));
    dxi[i] = dr_pre;
    dxi[h_len + i] = dz_pre;
    dxi[2 * h_len + i] = dn_pre;
    dhh[i] = dr_pre;
    dhh[h_len + i] = dz_pre;
    dhh[2 * h_len + i] = dn_pre * ri;
    dh[i] = gi * zi;
  }
}

MaskedErrAcc MaskedErr(const float* pred, const float* truth, int64_t n,
                       double mape_floor) {
  MaskedErrAcc acc;
  for (int64_t i = 0; i < n; ++i) {
    if (truth[i] == 0.0f) continue;  // missing-reading convention
    const double truth_i = truth[i];
    const double err = static_cast<double>(pred[i]) - truth_i;
    acc.abs += std::fabs(err);
    acc.sq += err * err;
    if (std::fabs(truth_i) >= mape_floor) {
      acc.ape += std::fabs(err) / std::fabs(truth_i);
      ++acc.ape_count;
    }
    ++acc.count;
  }
  return acc;
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels table = {
      .add = Add,
      .sub = Sub,
      .mul = Mul,
      .div = Div,
      .vmax = VMax,
      .vmin = VMin,
      .add_s = AddS,
      .sub_s = SubS,
      .rsub_s = RSubS,
      .mul_s = MulS,
      .div_s = DivS,
      .rdiv_s = RDivS,
      .max_s = MaxS,
      .min_s = MinS,
      .acc_add = AccAdd,
      .max_into = MaxInto,
      .neg = Neg,
      .vabs = VAbs,
      .relu = Relu,
      .vsqrt = VSqrt,
      .vexp = VExp,
      .sigmoid = Sigmoid,
      .vtanh = VTanh,
      .sigmoid_grad = SigmoidGrad,
      .tanh_grad = TanhGrad,
      .relu_grad = ReluGrad,
      .mul_sub = MulSub,
      .mul_one_minus = MulOneMinus,
      .axpy = Axpy,
      .scale = Scale,
      .dot = Dot,
      .sum = Sum,
      .gru_blend = GruBlend,
      .sigmoid_mul = SigmoidMul,
      .gru_tail = GruTail,
      .sigmoid_mul_grad = SigmoidMulGrad,
      .gru_tail_grad = GruTailGrad,
      .gru_step = GruStep,
      .gru_step_grad = GruStepGrad,
      .masked_err = MaskedErr,
  };
  return table;
}

}  // namespace sagdfn::tensor::simd::internal
