#ifndef SAGDFN_GRAPH_ADJACENCY_H_
#define SAGDFN_GRAPH_ADJACENCY_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sagdfn::graph {

/// Row-sum degrees of a (possibly slim N x M) adjacency matrix; returns a
/// length-N vector tensor.
tensor::Tensor RowDegrees(const tensor::Tensor& adjacency);

/// Row-normalizes `adjacency` so each non-empty row sums to 1 (random-walk
/// transition matrix). Zero rows stay zero.
tensor::Tensor RowNormalize(const tensor::Tensor& adjacency);

/// Symmetric normalization D^{-1/2} A D^{-1/2} for a square adjacency.
tensor::Tensor SymmetricNormalize(const tensor::Tensor& adjacency);

/// Keeps the `k` largest entries per row and zeroes the rest.
tensor::Tensor TopKPerRow(const tensor::Tensor& adjacency, int64_t k);

/// Zeroes entries below `threshold`.
tensor::Tensor ThresholdSparsify(const tensor::Tensor& adjacency,
                                 float threshold);

/// Fraction of exactly-zero entries.
double Sparsity(const tensor::Tensor& adjacency);

/// Row-wise top-k overlap between two N x N matrices (mean Jaccard of the
/// per-row top-k index sets). Used to compare a learned adjacency against
/// the generator's latent graph.
double TopKOverlap(const tensor::Tensor& a, const tensor::Tensor& b,
                   int64_t k);

}  // namespace sagdfn::graph

#endif  // SAGDFN_GRAPH_ADJACENCY_H_
