#include "graph/csr.h"

#include <algorithm>

#include "utils/check.h"

namespace sagdfn::graph {

CsrMatrix CsrFromDense(const tensor::Tensor& dense) {
  SAGDFN_CHECK_EQ(dense.ndim(), 2);
  CsrMatrix csr;
  csr.rows = dense.dim(0);
  csr.cols = dense.dim(1);
  csr.row_ptr.resize(static_cast<size_t>(csr.rows) + 1, 0);
  const float* d = dense.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < csr.rows; ++i) {
    const float* row = d + i * csr.cols;
    for (int64_t j = 0; j < csr.cols; ++j) {
      if (row[j] != 0.0f) ++nnz;
    }
    csr.row_ptr[static_cast<size_t>(i) + 1] = nnz;
  }
  csr.col.reserve(static_cast<size_t>(nnz));
  csr.val.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < csr.rows; ++i) {
    const float* row = d + i * csr.cols;
    for (int64_t j = 0; j < csr.cols; ++j) {
      if (row[j] != 0.0f) {
        csr.col.push_back(static_cast<int32_t>(j));
        csr.val.push_back(row[j]);
      }
    }
  }
  return csr;
}

tensor::Tensor CsrToDense(const CsrMatrix& csr) {
  ValidateCsr(csr);
  tensor::Tensor dense = tensor::Tensor::Zeros(
      tensor::Shape({csr.rows, csr.cols}));
  float* d = dense.data();
  for (int64_t i = 0; i < csr.rows; ++i) {
    for (int64_t e = csr.row_ptr[i]; e < csr.row_ptr[i + 1]; ++e) {
      d[i * csr.cols + csr.col[e]] = csr.val[e];
    }
  }
  return dense;
}

void ValidateCsr(const CsrMatrix& csr) {
  SAGDFN_CHECK_GE(csr.rows, 0);
  SAGDFN_CHECK_GE(csr.cols, 0);
  SAGDFN_CHECK_EQ(static_cast<int64_t>(csr.row_ptr.size()), csr.rows + 1);
  SAGDFN_CHECK_EQ(csr.row_ptr.front(), 0);
  SAGDFN_CHECK_EQ(csr.row_ptr.back(), csr.nnz());
  SAGDFN_CHECK_EQ(csr.col.size(), csr.val.size());
  for (int64_t i = 0; i < csr.rows; ++i) {
    SAGDFN_CHECK_LE(csr.row_ptr[i], csr.row_ptr[i + 1])
        << "row_ptr must be non-decreasing at row " << i;
    for (int64_t e = csr.row_ptr[i]; e < csr.row_ptr[i + 1]; ++e) {
      SAGDFN_CHECK_GE(csr.col[e], 0);
      SAGDFN_CHECK_LT(csr.col[e], csr.cols);
      if (e > csr.row_ptr[i]) {
        SAGDFN_CHECK_LT(csr.col[e - 1], csr.col[e])
            << "columns must be strictly ascending in row " << i;
      }
    }
  }
}

CsrMatrix RowNormalizeCsr(const CsrMatrix& csr) {
  CsrMatrix out = csr;
  for (int64_t i = 0; i < csr.rows; ++i) {
    double row_sum = 0.0;
    for (int64_t e = csr.row_ptr[i]; e < csr.row_ptr[i + 1]; ++e) {
      row_sum += csr.val[e];
    }
    if (row_sum <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / row_sum);
    for (int64_t e = csr.row_ptr[i]; e < csr.row_ptr[i + 1]; ++e) {
      out.val[e] *= inv;
    }
  }
  return out;
}

NodeShards ComputeNodeShards(int64_t num_nodes, int64_t bytes_per_row,
                             int64_t target_shard_bytes) {
  SAGDFN_CHECK_GE(num_nodes, 0);
  SAGDFN_CHECK_GT(bytes_per_row, 0);
  SAGDFN_CHECK_GT(target_shard_bytes, 0);
  NodeShards shards;
  if (num_nodes == 0) {
    shards.bounds = {0, 0};
    return shards;
  }
  int64_t rows = target_shard_bytes / bytes_per_row;
  // Round down to a multiple of 8 rows so shard boundaries stay friendly
  // to 8-wide SIMD row groups; floor at 8 so tiny L2 targets still make
  // progress.
  rows = std::max<int64_t>(8, rows - rows % 8);
  shards.bounds.push_back(0);
  for (int64_t b = rows; b < num_nodes; b += rows) {
    shards.bounds.push_back(b);
  }
  shards.bounds.push_back(num_nodes);
  return shards;
}

double TopKOverlapCsr(const CsrMatrix& latent, const tensor::Tensor& slim,
                      const std::vector<int64_t>& index_set, int64_t k) {
  SAGDFN_CHECK_EQ(slim.ndim(), 2);
  const int64_t n = slim.dim(0);
  const int64_t m = slim.dim(1);
  SAGDFN_CHECK_EQ(latent.rows, n);
  SAGDFN_CHECK_EQ(static_cast<int64_t>(index_set.size()), m);
  SAGDFN_CHECK_GT(k, 0);
  const float* s = slim.data();

  double total = 0.0;
  std::vector<std::pair<float, int64_t>> scored;
  std::vector<int64_t> a_top, b_top, inter;
  for (int64_t i = 0; i < n; ++i) {
    // Learned side: top-k slim entries mapped to global node ids.
    scored.clear();
    for (int64_t j = 0; j < m; ++j) {
      if (s[i * m + j] != 0.0f) scored.push_back({s[i * m + j], index_set[j]});
    }
    const int64_t ka = std::min<int64_t>(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + ka, scored.end(),
                      [](const auto& x, const auto& y) {
                        return x.first > y.first ||
                               (x.first == y.first && x.second < y.second);
                      });
    a_top.clear();
    for (int64_t j = 0; j < ka; ++j) a_top.push_back(scored[j].second);

    // Latent side: top-k neighbors by weight from the CSR row.
    scored.clear();
    for (int64_t e = latent.row_ptr[i]; e < latent.row_ptr[i + 1]; ++e) {
      scored.push_back({latent.val[e], latent.col[e]});
    }
    const int64_t kb = std::min<int64_t>(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + kb, scored.end(),
                      [](const auto& x, const auto& y) {
                        return x.first > y.first ||
                               (x.first == y.first && x.second < y.second);
                      });
    b_top.clear();
    for (int64_t j = 0; j < kb; ++j) b_top.push_back(scored[j].second);

    if (a_top.empty() && b_top.empty()) {
      total += 1.0;
      continue;
    }
    std::sort(a_top.begin(), a_top.end());
    std::sort(b_top.begin(), b_top.end());
    inter.clear();
    std::set_intersection(a_top.begin(), a_top.end(), b_top.begin(),
                          b_top.end(), std::back_inserter(inter));
    const double uni = static_cast<double>(a_top.size() + b_top.size()) -
                       static_cast<double>(inter.size());
    total += uni > 0 ? static_cast<double>(inter.size()) / uni : 1.0;
  }
  return n > 0 ? total / static_cast<double>(n) : 1.0;
}

}  // namespace sagdfn::graph
