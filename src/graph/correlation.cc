#include "graph/correlation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/adjacency.h"
#include "utils/check.h"

namespace sagdfn::graph {

tensor::Tensor CorrelationKnnGraph(const tensor::Tensor& values, int64_t k,
                                   int64_t max_steps) {
  SAGDFN_CHECK_EQ(values.ndim(), 2);
  SAGDFN_CHECK_GT(k, 0);
  SAGDFN_CHECK_GT(max_steps, 1);
  const int64_t t_total = values.dim(0);
  const int64_t n = values.dim(1);
  const int64_t stride = std::max<int64_t>(1, t_total / max_steps);
  const int64_t t_used = (t_total + stride - 1) / stride;
  SAGDFN_CHECK_GT(t_used, 1);

  // Standardize the sampled rows per node.
  std::vector<double> z(t_used * n);
  const float* v = values.data();
  for (int64_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int64_t s = 0; s < t_used; ++s) sum += v[(s * stride) * n + i];
    const double mean = sum / t_used;
    double sq = 0.0;
    for (int64_t s = 0; s < t_used; ++s) {
      const double d = v[(s * stride) * n + i] - mean;
      sq += d * d;
    }
    const double std = std::sqrt(sq / t_used);
    const double inv = std > 1e-9 ? 1.0 / std : 0.0;
    for (int64_t s = 0; s < t_used; ++s) {
      z[s * n + i] = (v[(s * stride) * n + i] - mean) * inv;
    }
  }

  tensor::Tensor corr = tensor::Tensor::Zeros(tensor::Shape({n, n}));
  float* c = corr.data();
  // corr = Z^T Z / t_used, negatives clipped.
  for (int64_t s = 0; s < t_used; ++s) {
    const double* row = z.data() + s * n;
    for (int64_t i = 0; i < n; ++i) {
      const double zi = row[i];
      if (zi == 0.0) continue;
      float* out_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        out_row[j] += static_cast<float>(zi * row[j]);
      }
    }
  }
  const float inv_t = 1.0f / t_used;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float& e = c[i * n + j];
      e = i == j ? 0.0f : std::max(0.0f, e * inv_t);
    }
  }
  return TopKPerRow(corr, k);
}

}  // namespace sagdfn::graph
