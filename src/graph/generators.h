#ifndef SAGDFN_GRAPH_GENERATORS_H_
#define SAGDFN_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn::graph {

/// A spatial graph with dense weighted adjacency and optional 2-D node
/// coordinates (used by the synthetic dataset generators as the latent
/// "road network").
struct SpatialGraph {
  int64_t num_nodes = 0;
  /// [N, N] weighted adjacency; zero diagonal.
  tensor::Tensor adjacency;
  /// Node positions in the unit square; empty when not geometric.
  std::vector<double> x;
  std::vector<double> y;
};

/// Random geometric graph: nodes uniform in the unit square; edge weight
/// w_ij = exp(-dist^2 / sigma^2) when dist <= radius (the METR-LA sensor
/// graph construction), else 0.
SpatialGraph RandomGeometric(int64_t num_nodes, double radius, double sigma,
                             utils::Rng& rng);

/// Erdős–Rényi graph with edge probability p and Uniform(0.5, 1.5) edge
/// weights. Symmetric, zero diagonal.
SpatialGraph ErdosRenyi(int64_t num_nodes, double p, utils::Rng& rng);

/// Stochastic block model: `num_blocks` equal communities; edge probability
/// p_in within a block, p_out across blocks. Returns also a latent block id
/// per node via `block_of`.
SpatialGraph StochasticBlockModel(int64_t num_nodes, int64_t num_blocks,
                                  double p_in, double p_out,
                                  utils::Rng& rng,
                                  std::vector<int64_t>* block_of = nullptr);

/// k-nearest-neighbor graph from explicit coordinates with Gaussian kernel
/// weights.
SpatialGraph KnnFromPoints(const std::vector<double>& x,
                           const std::vector<double>& y, int64_t k,
                           double sigma);

}  // namespace sagdfn::graph

#endif  // SAGDFN_GRAPH_GENERATORS_H_
