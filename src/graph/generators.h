#ifndef SAGDFN_GRAPH_GENERATORS_H_
#define SAGDFN_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn::graph {

/// A spatial graph with dense weighted adjacency and optional 2-D node
/// coordinates (used by the synthetic dataset generators as the latent
/// "road network").
struct SpatialGraph {
  int64_t num_nodes = 0;
  /// [N, N] weighted adjacency; zero diagonal.
  tensor::Tensor adjacency;
  /// Node positions in the unit square; empty when not geometric.
  std::vector<double> x;
  std::vector<double> y;
};

/// Random geometric graph: nodes uniform in the unit square; edge weight
/// w_ij = exp(-dist^2 / sigma^2) when dist <= radius (the METR-LA sensor
/// graph construction), else 0.
SpatialGraph RandomGeometric(int64_t num_nodes, double radius, double sigma,
                             utils::Rng& rng);

/// A spatial graph stored sparsely — the N >= 10k regime, where a dense
/// [N, N] adjacency tensor (400 MB at N=10k, 40 GB at N=100k) is not an
/// option but the geometric graph itself has only ~degree * N edges.
struct SparseSpatialGraph {
  int64_t num_nodes = 0;
  /// Symmetric weighted adjacency, zero diagonal, columns ascending.
  CsrMatrix adjacency;
  /// Node positions in the unit square.
  std::vector<double> x;
  std::vector<double> y;
};

/// Sparse random geometric graph, bit-compatible with RandomGeometric:
/// coordinates come from the same rng draws in the same order (the edge
/// scan draws nothing), and each edge weight is the identical float
/// expression, so at any N where the dense graph fits,
/// RandomGeometricSparse(...).adjacency == CsrFromDense(
/// RandomGeometric(...).adjacency) entry for entry. Edge construction
/// uses a uniform grid with cell width >= radius (all neighbors lie in
/// the 3x3 surrounding cells), so it runs in O(N * degree) time and
/// memory instead of the dense O(N^2) pair scan.
SparseSpatialGraph RandomGeometricSparse(int64_t num_nodes, double radius,
                                         double sigma, utils::Rng& rng);

/// Erdős–Rényi graph with edge probability p and Uniform(0.5, 1.5) edge
/// weights. Symmetric, zero diagonal.
SpatialGraph ErdosRenyi(int64_t num_nodes, double p, utils::Rng& rng);

/// Stochastic block model: `num_blocks` equal communities; edge probability
/// p_in within a block, p_out across blocks. Returns also a latent block id
/// per node via `block_of`.
SpatialGraph StochasticBlockModel(int64_t num_nodes, int64_t num_blocks,
                                  double p_in, double p_out,
                                  utils::Rng& rng,
                                  std::vector<int64_t>* block_of = nullptr);

/// k-nearest-neighbor graph from explicit coordinates with Gaussian kernel
/// weights.
SpatialGraph KnnFromPoints(const std::vector<double>& x,
                           const std::vector<double>& y, int64_t k,
                           double sigma);

}  // namespace sagdfn::graph

#endif  // SAGDFN_GRAPH_GENERATORS_H_
