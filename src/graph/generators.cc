#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "utils/check.h"

namespace sagdfn::graph {

SpatialGraph RandomGeometric(int64_t num_nodes, double radius, double sigma,
                             utils::Rng& rng) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_GT(radius, 0.0);
  SAGDFN_CHECK_GT(sigma, 0.0);
  SpatialGraph g;
  g.num_nodes = num_nodes;
  g.x.resize(num_nodes);
  g.y.resize(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i) {
    g.x[i] = rng.Uniform();
    g.y[i] = rng.Uniform();
  }
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({num_nodes, num_nodes}));
  float* a = g.adjacency.data();
  const double r2 = radius * radius;
  const double inv_s2 = 1.0 / (sigma * sigma);
  for (int64_t i = 0; i < num_nodes; ++i) {
    for (int64_t j = i + 1; j < num_nodes; ++j) {
      const double dx = g.x[i] - g.x[j];
      const double dy = g.y[i] - g.y[j];
      const double d2 = dx * dx + dy * dy;
      if (d2 <= r2) {
        const float w = static_cast<float>(std::exp(-d2 * inv_s2));
        a[i * num_nodes + j] = w;
        a[j * num_nodes + i] = w;
      }
    }
  }
  return g;
}

SpatialGraph ErdosRenyi(int64_t num_nodes, double p, utils::Rng& rng) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_GE(p, 0.0);
  SAGDFN_CHECK_LE(p, 1.0);
  SpatialGraph g;
  g.num_nodes = num_nodes;
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({num_nodes, num_nodes}));
  float* a = g.adjacency.data();
  for (int64_t i = 0; i < num_nodes; ++i) {
    for (int64_t j = i + 1; j < num_nodes; ++j) {
      if (rng.Bernoulli(p)) {
        const float w = static_cast<float>(rng.Uniform(0.5, 1.5));
        a[i * num_nodes + j] = w;
        a[j * num_nodes + i] = w;
      }
    }
  }
  return g;
}

SpatialGraph StochasticBlockModel(int64_t num_nodes, int64_t num_blocks,
                                  double p_in, double p_out,
                                  utils::Rng& rng,
                                  std::vector<int64_t>* block_of) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_GT(num_blocks, 0);
  SpatialGraph g;
  g.num_nodes = num_nodes;
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({num_nodes, num_nodes}));
  std::vector<int64_t> blocks(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i) blocks[i] = i % num_blocks;
  rng.Shuffle(blocks);
  float* a = g.adjacency.data();
  for (int64_t i = 0; i < num_nodes; ++i) {
    for (int64_t j = i + 1; j < num_nodes; ++j) {
      const double p = blocks[i] == blocks[j] ? p_in : p_out;
      if (rng.Bernoulli(p)) {
        const float w = static_cast<float>(rng.Uniform(0.5, 1.5));
        a[i * num_nodes + j] = w;
        a[j * num_nodes + i] = w;
      }
    }
  }
  if (block_of != nullptr) *block_of = std::move(blocks);
  return g;
}

SpatialGraph KnnFromPoints(const std::vector<double>& x,
                           const std::vector<double>& y, int64_t k,
                           double sigma) {
  SAGDFN_CHECK_EQ(x.size(), y.size());
  const int64_t n = static_cast<int64_t>(x.size());
  SAGDFN_CHECK_GT(n, 1);
  SAGDFN_CHECK_GT(k, 0);
  SAGDFN_CHECK_GT(sigma, 0.0);
  SpatialGraph g;
  g.num_nodes = n;
  g.x = x;
  g.y = y;
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({n, n}));
  float* a = g.adjacency.data();
  const double inv_s2 = 1.0 / (sigma * sigma);
  std::vector<int64_t> order(n);
  std::vector<double> d2(n);
  const int64_t keep = std::min(k, n - 1);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      d2[j] = dx * dx + dy * dy;
    }
    d2[i] = std::numeric_limits<double>::infinity();
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](int64_t p, int64_t q) { return d2[p] < d2[q]; });
    for (int64_t j = 0; j < keep; ++j) {
      const int64_t nb = order[j];
      const float w = static_cast<float>(std::exp(-d2[nb] * inv_s2));
      a[i * n + nb] = std::max(a[i * n + nb], w);
      a[nb * n + i] = std::max(a[nb * n + i], w);
    }
  }
  return g;
}

}  // namespace sagdfn::graph
