#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "utils/check.h"

namespace sagdfn::graph {

SpatialGraph RandomGeometric(int64_t num_nodes, double radius, double sigma,
                             utils::Rng& rng) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_GT(radius, 0.0);
  SAGDFN_CHECK_GT(sigma, 0.0);
  SpatialGraph g;
  g.num_nodes = num_nodes;
  g.x.resize(num_nodes);
  g.y.resize(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i) {
    g.x[i] = rng.Uniform();
    g.y[i] = rng.Uniform();
  }
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({num_nodes, num_nodes}));
  float* a = g.adjacency.data();
  const double r2 = radius * radius;
  const double inv_s2 = 1.0 / (sigma * sigma);
  for (int64_t i = 0; i < num_nodes; ++i) {
    for (int64_t j = i + 1; j < num_nodes; ++j) {
      const double dx = g.x[i] - g.x[j];
      const double dy = g.y[i] - g.y[j];
      const double d2 = dx * dx + dy * dy;
      if (d2 <= r2) {
        const float w = static_cast<float>(std::exp(-d2 * inv_s2));
        a[i * num_nodes + j] = w;
        a[j * num_nodes + i] = w;
      }
    }
  }
  return g;
}

SparseSpatialGraph RandomGeometricSparse(int64_t num_nodes, double radius,
                                         double sigma, utils::Rng& rng) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_LE(num_nodes, std::numeric_limits<int32_t>::max());
  SAGDFN_CHECK_GT(radius, 0.0);
  SAGDFN_CHECK_GT(sigma, 0.0);
  SparseSpatialGraph g;
  g.num_nodes = num_nodes;
  g.x.resize(num_nodes);
  g.y.resize(num_nodes);
  // Same draw order as RandomGeometric: x then y per node, nothing else.
  for (int64_t i = 0; i < num_nodes; ++i) {
    g.x[i] = rng.Uniform();
    g.y[i] = rng.Uniform();
  }
  const int64_t cells = std::max<int64_t>(
      1, static_cast<int64_t>(std::floor(1.0 / radius)));
  auto cell_of = [cells](double v) {
    return std::clamp<int64_t>(static_cast<int64_t>(v * cells), 0,
                               cells - 1);
  };
  std::vector<std::vector<int32_t>> buckets(cells * cells);
  for (int64_t i = 0; i < num_nodes; ++i) {
    buckets[cell_of(g.x[i]) * cells + cell_of(g.y[i])].push_back(
        static_cast<int32_t>(i));
  }
  const double r2 = radius * radius;
  const double inv_s2 = 1.0 / (sigma * sigma);
  CsrMatrix& adj = g.adjacency;
  adj.rows = num_nodes;
  adj.cols = num_nodes;
  adj.row_ptr.assign(num_nodes + 1, 0);
  std::vector<std::pair<int32_t, float>> row;
  for (int64_t i = 0; i < num_nodes; ++i) {
    row.clear();
    const int64_t cx = cell_of(g.x[i]);
    const int64_t cy = cell_of(g.y[i]);
    const int64_t bx_end = std::min<int64_t>(cells - 1, cx + 1);
    const int64_t by_end = std::min<int64_t>(cells - 1, cy + 1);
    for (int64_t bx = std::max<int64_t>(0, cx - 1); bx <= bx_end; ++bx) {
      for (int64_t by = std::max<int64_t>(0, cy - 1); by <= by_end; ++by) {
        for (int32_t j : buckets[bx * cells + by]) {
          if (j == i) continue;
          // (x_i - x_j)^2 == (x_j - x_i)^2 bitwise, so this matches the
          // dense j > i scan for both edge directions.
          const double dx = g.x[i] - g.x[j];
          const double dy = g.y[i] - g.y[j];
          const double d2 = dx * dx + dy * dy;
          if (d2 <= r2) {
            row.emplace_back(j, static_cast<float>(std::exp(-d2 * inv_s2)));
          }
        }
      }
    }
    std::sort(row.begin(), row.end());
    for (const auto& [j, w] : row) {
      adj.col.push_back(j);
      adj.val.push_back(w);
    }
    adj.row_ptr[i + 1] = static_cast<int64_t>(adj.col.size());
  }
  return g;
}

SpatialGraph ErdosRenyi(int64_t num_nodes, double p, utils::Rng& rng) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_GE(p, 0.0);
  SAGDFN_CHECK_LE(p, 1.0);
  SpatialGraph g;
  g.num_nodes = num_nodes;
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({num_nodes, num_nodes}));
  float* a = g.adjacency.data();
  for (int64_t i = 0; i < num_nodes; ++i) {
    for (int64_t j = i + 1; j < num_nodes; ++j) {
      if (rng.Bernoulli(p)) {
        const float w = static_cast<float>(rng.Uniform(0.5, 1.5));
        a[i * num_nodes + j] = w;
        a[j * num_nodes + i] = w;
      }
    }
  }
  return g;
}

SpatialGraph StochasticBlockModel(int64_t num_nodes, int64_t num_blocks,
                                  double p_in, double p_out,
                                  utils::Rng& rng,
                                  std::vector<int64_t>* block_of) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_GT(num_blocks, 0);
  SpatialGraph g;
  g.num_nodes = num_nodes;
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({num_nodes, num_nodes}));
  std::vector<int64_t> blocks(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i) blocks[i] = i % num_blocks;
  rng.Shuffle(blocks);
  float* a = g.adjacency.data();
  for (int64_t i = 0; i < num_nodes; ++i) {
    for (int64_t j = i + 1; j < num_nodes; ++j) {
      const double p = blocks[i] == blocks[j] ? p_in : p_out;
      if (rng.Bernoulli(p)) {
        const float w = static_cast<float>(rng.Uniform(0.5, 1.5));
        a[i * num_nodes + j] = w;
        a[j * num_nodes + i] = w;
      }
    }
  }
  if (block_of != nullptr) *block_of = std::move(blocks);
  return g;
}

SpatialGraph KnnFromPoints(const std::vector<double>& x,
                           const std::vector<double>& y, int64_t k,
                           double sigma) {
  SAGDFN_CHECK_EQ(x.size(), y.size());
  const int64_t n = static_cast<int64_t>(x.size());
  SAGDFN_CHECK_GT(n, 1);
  SAGDFN_CHECK_GT(k, 0);
  SAGDFN_CHECK_GT(sigma, 0.0);
  SpatialGraph g;
  g.num_nodes = n;
  g.x = x;
  g.y = y;
  g.adjacency = tensor::Tensor::Zeros(tensor::Shape({n, n}));
  float* a = g.adjacency.data();
  const double inv_s2 = 1.0 / (sigma * sigma);
  std::vector<int64_t> order(n);
  std::vector<double> d2(n);
  const int64_t keep = std::min(k, n - 1);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      d2[j] = dx * dx + dy * dy;
    }
    d2[i] = std::numeric_limits<double>::infinity();
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](int64_t p, int64_t q) { return d2[p] < d2[q]; });
    for (int64_t j = 0; j < keep; ++j) {
      const int64_t nb = order[j];
      const float w = static_cast<float>(std::exp(-d2[nb] * inv_s2));
      a[i * n + nb] = std::max(a[i * n + nb], w);
      a[nb * n + i] = std::max(a[nb * n + i], w);
    }
  }
  return g;
}

}  // namespace sagdfn::graph
