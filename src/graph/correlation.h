#ifndef SAGDFN_GRAPH_CORRELATION_H_
#define SAGDFN_GRAPH_CORRELATION_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace sagdfn::graph {

/// Builds a data-driven adjacency from a [T, N] series: Pearson
/// correlation between node series (computed on at most `max_steps`
/// evenly-strided rows), negatives clipped to zero, top-`k` kept per row,
/// diagonal zeroed. This is the "predefined" graph handed to
/// predefined-topology baselines (DCRNN-class) when no road network
/// exists, mirroring the proximity/correlation graphs such methods use in
/// practice.
tensor::Tensor CorrelationKnnGraph(const tensor::Tensor& values, int64_t k,
                                   int64_t max_steps = 512);

}  // namespace sagdfn::graph

#endif  // SAGDFN_GRAPH_CORRELATION_H_
