#include "graph/adjacency.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/tensor_ops.h"
#include "utils/check.h"

namespace sagdfn::graph {

tensor::Tensor RowDegrees(const tensor::Tensor& adjacency) {
  SAGDFN_CHECK_EQ(adjacency.ndim(), 2);
  return tensor::Sum(adjacency, 1, /*keepdim=*/false);
}

tensor::Tensor RowNormalize(const tensor::Tensor& adjacency) {
  SAGDFN_CHECK_EQ(adjacency.ndim(), 2);
  const int64_t n = adjacency.dim(0);
  const int64_t m = adjacency.dim(1);
  tensor::Tensor out = adjacency.Clone();
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < m; ++j) row_sum += p[i * m + j];
    if (row_sum <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / row_sum);
    for (int64_t j = 0; j < m; ++j) p[i * m + j] *= inv;
  }
  return out;
}

tensor::Tensor SymmetricNormalize(const tensor::Tensor& adjacency) {
  SAGDFN_CHECK_EQ(adjacency.ndim(), 2);
  SAGDFN_CHECK_EQ(adjacency.dim(0), adjacency.dim(1));
  const int64_t n = adjacency.dim(0);
  tensor::Tensor deg = RowDegrees(adjacency);
  std::vector<float> inv_sqrt(n, 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    if (deg[i] > 0.0f) inv_sqrt[i] = 1.0f / std::sqrt(deg[i]);
  }
  tensor::Tensor out = adjacency.Clone();
  float* p = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      p[i * n + j] *= inv_sqrt[i] * inv_sqrt[j];
    }
  }
  return out;
}

tensor::Tensor TopKPerRow(const tensor::Tensor& adjacency, int64_t k) {
  SAGDFN_CHECK_EQ(adjacency.ndim(), 2);
  SAGDFN_CHECK_GT(k, 0);
  const int64_t n = adjacency.dim(0);
  const int64_t m = adjacency.dim(1);
  tensor::Tensor out = tensor::Tensor::Zeros(adjacency.shape());
  const float* pin = adjacency.data();
  float* pout = out.data();
  std::vector<int64_t> order(m);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pin + i * m;
    std::iota(order.begin(), order.end(), 0);
    const int64_t keep = std::min(k, m);
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [row](int64_t a, int64_t b) { return row[a] > row[b]; });
    for (int64_t j = 0; j < keep; ++j) {
      pout[i * m + order[j]] = row[order[j]];
    }
  }
  return out;
}

tensor::Tensor ThresholdSparsify(const tensor::Tensor& adjacency,
                                 float threshold) {
  tensor::Tensor out = adjacency.Clone();
  float* p = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    if (p[i] < threshold) p[i] = 0.0f;
  }
  return out;
}

double Sparsity(const tensor::Tensor& adjacency) {
  SAGDFN_CHECK_GT(adjacency.size(), 0);
  int64_t zeros = 0;
  const float* p = adjacency.data();
  for (int64_t i = 0; i < adjacency.size(); ++i) {
    if (p[i] == 0.0f) ++zeros;
  }
  return static_cast<double>(zeros) / adjacency.size();
}

double TopKOverlap(const tensor::Tensor& a, const tensor::Tensor& b,
                   int64_t k) {
  SAGDFN_CHECK(a.shape() == b.shape());
  SAGDFN_CHECK_EQ(a.ndim(), 2);
  const int64_t n = a.dim(0);
  const int64_t m = a.dim(1);
  const int64_t keep = std::min(k, m);

  auto top_k_set = [&](const float* row) {
    std::vector<int64_t> order(m);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [row](int64_t x, int64_t y) { return row[x] > row[y]; });
    order.resize(keep);
    std::sort(order.begin(), order.end());
    return order;
  };

  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int64_t> sa = top_k_set(a.data() + i * m);
    std::vector<int64_t> sb = top_k_set(b.data() + i * m);
    std::vector<int64_t> inter;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(inter));
    const double uni = static_cast<double>(sa.size() + sb.size()) -
                       static_cast<double>(inter.size());
    total += uni > 0 ? inter.size() / uni : 1.0;
  }
  return total / n;
}

}  // namespace sagdfn::graph
