#ifndef SAGDFN_GRAPH_CSR_H_
#define SAGDFN_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sagdfn::graph {

/// Compressed-sparse-row view of an adjacency matrix (dense [rows, cols]
/// with most entries exactly zero — e.g. the slim N x M adjacency after
/// entmax, or a latent generator graph at N >= 10k where a dense [N, N]
/// tensor would not fit in memory).
///
/// Invariants (checked by CsrFromDense / Validate):
///   - row_ptr has rows + 1 entries, non-decreasing, row_ptr[0] == 0 and
///     row_ptr[rows] == col.size() == val.size()
///   - columns within a row are strictly ascending
///   - stored values are the nonzero entries in row-major order, so a
///     kernel walking CSR nonzeros visits exactly the entries the dense
///     slim kernel visits (it skips av == 0.0f), in the same order —
///     which is what makes the CSR diffusion path byte-identical to the
///     dense path.
struct CsrMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;  // rows + 1 offsets into col/val
  std::vector<int32_t> col;      // ascending within each row
  std::vector<float> val;

  int64_t nnz() const { return static_cast<int64_t>(col.size()); }
  bool empty() const { return rows == 0; }
};

/// Builds a CSR matrix from a dense [rows, cols] tensor, dropping entries
/// that are exactly 0.0f (matching the dense diffusion kernel's skip).
CsrMatrix CsrFromDense(const tensor::Tensor& dense);

/// Expands back to a dense [rows, cols] tensor (testing / small N only).
tensor::Tensor CsrToDense(const CsrMatrix& csr);

/// Aborts via SAGDFN_CHECK if `csr` violates a CSR invariant.
void ValidateCsr(const CsrMatrix& csr);

/// Row-normalizes a CSR matrix into a random-walk transition matrix.
/// Bit-compatible with the dense path (RowNormalize then CsrFromDense):
/// the row sum accumulates the stored values in column order in double —
/// identical to the dense double accumulation, since adding the skipped
/// exact zeros changes nothing — and each value is scaled by the same
/// float(1.0 / row_sum). Rows with a non-positive sum are left untouched.
CsrMatrix RowNormalizeCsr(const CsrMatrix& csr);

/// Cache-aware partition of [0, num_nodes) into contiguous node blocks.
/// Shard s owns rows [bounds[s], bounds[s+1]); shards are sized so one
/// shard's output rows (~bytes_per_row each) fit in a slice of L2, and
/// parallel kernels assign each (batch, shard) pair to one task — writes
/// are disjoint, so the result is bit-identical for any thread count.
struct NodeShards {
  std::vector<int64_t> bounds;  // size count() + 1; bounds.front() == 0

  int64_t count() const { return static_cast<int64_t>(bounds.size()) - 1; }
  int64_t begin(int64_t s) const { return bounds[s]; }
  int64_t end(int64_t s) const { return bounds[s + 1]; }
};

/// Partitions `num_nodes` rows into shards of ~`target_shard_bytes`
/// (default 256 KiB, a comfortable L2 slice) given `bytes_per_row` of
/// kernel working set. Always returns at least one shard; shard sizes
/// are multiples of 8 rows except the last.
NodeShards ComputeNodeShards(int64_t num_nodes, int64_t bytes_per_row,
                             int64_t target_shard_bytes = 256 * 1024);

/// Mean row-wise Jaccard overlap between the latent graph's neighbor sets
/// (CSR, over global node ids) and a learned slim adjacency whose columns
/// are global ids via `index_set` (col j of `slim` refers to node
/// index_set[j]). For each row, the learned top-k slim entries are mapped
/// to global ids and compared against the latent row's top-k by weight.
/// This is the scale-safe counterpart of TopKOverlap (which needs dense
/// N x N inputs).
double TopKOverlapCsr(const CsrMatrix& latent, const tensor::Tensor& slim,
                      const std::vector<int64_t>& index_set, int64_t k);

}  // namespace sagdfn::graph

#endif  // SAGDFN_GRAPH_CSR_H_
