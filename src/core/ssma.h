#ifndef SAGDFN_CORE_SSMA_H_
#define SAGDFN_CORE_SSMA_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "core/entmax.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace sagdfn::core {

/// Configuration of the Sparse Spatial Multi-Head Attention module.
struct SsmaConfig {
  /// Node embedding dimension d.
  int64_t embedding_dim = 100;
  /// Number of significant neighbors M (columns of the slim adjacency).
  int64_t m = 100;
  /// Attention heads P.
  int64_t heads = 8;
  /// Hidden width of each head's feed-forward network.
  int64_t ffn_hidden = 16;
  /// alpha of the entmax normalization (1 = softmax, 2 = sparsemax).
  float alpha = 1.5f;
  /// Ablation: replace entmax with plain softmax ("w/o Entmax").
  bool use_entmax = true;
};

/// Sparse Spatial Multi-Head Attention (paper Section IV-B, Eq. 1-6).
///
/// Given node embeddings E [N, d] and the significant index set I (|I| =
/// M), produces the slim dense adjacency A_s [N, M]:
///   E_bar   = concat(repeat(E_i, M), E_I)        [N, M, 2d]
///   Y^p     = FFN_p(E_bar)                       [N, M, 2]  per head
///   Z^p     = alpha-entmax(Y^p) along the M axis [N, M, 2]
///   Z       = concat_p Z^p                       [N, M, 2P]
///   A_s     = Z W_a                              [N, M]
///
/// All parameters (P feed-forward networks and W_a) are trained end-to-end
/// with the forecasting loss; gradients flow back into E through both the
/// repeated rows and the gathered neighbor rows.
class SparseSpatialAttention : public nn::Module {
 public:
  SparseSpatialAttention(const SsmaConfig& config, utils::Rng& rng);

  /// Computes A_s for the given embeddings and index set.
  autograd::Variable Forward(const autograd::Variable& embeddings,
                             const std::vector<int64_t>& index_set) const;

  const SsmaConfig& config() const { return config_; }

 private:
  SsmaConfig config_;
  std::vector<std::unique_ptr<nn::Mlp>> head_ffns_;
  autograd::Variable output_proj_;  // W_a: [2P, 1]
};

/// Ablation "w/o Pair-Wise Attention": A_s = E E_I^T (inner product of
/// node embeddings with the significant-neighbor embeddings).
autograd::Variable InnerProductAdjacency(
    const autograd::Variable& embeddings,
    const std::vector<int64_t>& index_set);

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_SSMA_H_
