#ifndef SAGDFN_CORE_FAST_GCONV_H_
#define SAGDFN_CORE_FAST_GCONV_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "graph/csr.h"
#include "nn/module.h"

namespace sagdfn::core {

/// Fast graph convolution over the slim adjacency (paper Eq. 9):
///
///   W *_{A_s} X = sum_{j=0}^{J-1} W_j [ (D + I)^{-1} (A_s X_I + X) ]^(j)
///
/// where X is [B, N, C], X_I gathers the M significant-node rows, D is the
/// degree matrix of A_s, and the bracket is applied j times (j = 0 is X
/// itself). Both compute and memory are O(N M) instead of O(N^2).
///
/// Degrees use |A_s| row sums: A_s comes out of a linear head combination
/// and can carry negative entries, and absolute degrees keep (D + I)^{-1}
/// positive and bounded.
class FastGraphConv : public nn::Module {
 public:
  /// `diffusion_steps` is J >= 1 (J = 1 degenerates to a plain linear map).
  FastGraphConv(int64_t in_dim, int64_t out_dim, int64_t diffusion_steps,
                utils::Rng& rng);

  /// `a_s`: [N, M] slim adjacency; `index_set`: the M column node ids;
  /// `x`: [B, N, in_dim]. Returns [B, N, out_dim].
  ///
  /// `inv_deg` optionally supplies the precomputed InverseDegree(a_s)
  /// column; it depends only on `a_s`, so callers that apply several
  /// convolutions (or timesteps) against one adjacency should compute it
  /// once and pass it through instead of paying the reduction per call.
  ///
  /// `csr` optionally supplies CsrFromDense(a_s) for frozen adjacencies
  /// (serving / eval rollouts): the diffusion steps then run the sharded
  /// CSR gather kernel — byte-identical output, O(nnz) instead of O(N*M)
  /// row scans. Callers must keep `csr` in sync with `a_s`.
  autograd::Variable Forward(const autograd::Variable& a_s,
                             const std::vector<int64_t>& index_set,
                             const autograd::Variable& x,
                             const autograd::Variable* inv_deg = nullptr,
                             const std::shared_ptr<const graph::CsrMatrix>&
                                 csr = nullptr) const;

  /// (D + I)^{-1} with D_ii = sum_j |A_s[i, j]|: [N, 1], broadcasts over
  /// batch and channels. Differentiable through `a_s`.
  static autograd::Variable InverseDegree(const autograd::Variable& a_s);

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }
  int64_t diffusion_steps() const { return diffusion_steps_; }

  /// The J diffusion weight matrices [in, out] and the bias [out]; read
  /// by the eval-mode rollout plan (core/rollout_plan) to replay the
  /// convolution without autograd.
  const std::vector<autograd::Variable>& weights() const { return weights_; }
  const autograd::Variable& bias() const { return bias_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  int64_t diffusion_steps_;
  std::vector<autograd::Variable> weights_;  // J matrices [in, out]
  autograd::Variable bias_;                  // [out]
};

/// OneStepFastGConv (paper Eq. 10): a GRU cell whose gate transforms are
/// fast graph convolutions over the slim adjacency:
///
///   R_t = sigmoid(W_r *_{A_s} (X_t ++ H_{t-1}) + b_r)
///   Z_t = sigmoid(W_z *_{A_s} (X_t ++ H_{t-1}) + b_z)
///   Htil = tanh(W_h *_{A_s} (X_t ++ R_t . H_{t-1}) + b_h)
///   H_t = Z_t . H_{t-1} + (1 - Z_t) . Htil
///
/// States are [B, N, hidden]; inputs [B, N, in_dim].
class GConvGruCell : public nn::Module {
 public:
  GConvGruCell(int64_t in_dim, int64_t hidden_dim, int64_t diffusion_steps,
               utils::Rng& rng);

  /// `inv_deg` optionally supplies FastGraphConv::InverseDegree(a_s),
  /// shared by the gate and candidate convolutions; when null it is
  /// computed once per call (still amortized across the two convs).
  /// `csr` is forwarded to FastGraphConv::Forward (frozen-adjacency CSR
  /// diffusion; see there).
  autograd::Variable Forward(const autograd::Variable& a_s,
                             const std::vector<int64_t>& index_set,
                             const autograd::Variable& x,
                             const autograd::Variable& h,
                             const autograd::Variable* inv_deg = nullptr,
                             const std::shared_ptr<const graph::CsrMatrix>&
                                 csr = nullptr) const;

  /// Zero hidden state [B, N, hidden].
  autograd::Variable InitialState(int64_t batch, int64_t num_nodes) const;

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t in_dim() const { return in_dim_; }

  /// Gate / candidate convolutions, read by the eval-mode rollout plan.
  const FastGraphConv& gate_conv() const { return *gate_conv_; }
  const FastGraphConv& candidate_conv() const { return *candidate_conv_; }

 private:
  int64_t in_dim_;
  int64_t hidden_dim_;
  std::unique_ptr<FastGraphConv> gate_conv_;       // -> 2H (r | z)
  std::unique_ptr<FastGraphConv> candidate_conv_;  // -> H
};

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_FAST_GCONV_H_
