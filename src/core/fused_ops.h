#ifndef SAGDFN_CORE_FUSED_OPS_H_
#define SAGDFN_CORE_FUSED_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "graph/csr.h"

namespace sagdfn::core {

/// One diffusion step of the slim graph convolution, fused:
///
///   next[b, i, :] = (sum_j a_s[i, j] * term[b, idx[j], :] + term[b, i, :])
///                   * inv_deg[i]
///
/// replacing the IndexSelect -> BatchedMatMul -> Add -> Mul chain in
/// FastGraphConv::Forward. No gathered [B, K, C] tensor is ever built:
/// each output row streams the indexed term rows through the dispatched
/// axpy kernel (zero entries of a_s skipped, mirroring MatMul's slim
/// sparsity), so an encoder rollout allocates one tensor per step instead
/// of four. Backward recomputes the small intermediates into the calling
/// thread's ScratchArena.
///
/// Shapes: a_s [N, K], term [B, N, C], inv_deg [N, 1]; index_set holds K
/// indices into [0, N). Gradients flow to all three tensor inputs.
autograd::Variable OneStepFastGConv(const autograd::Variable& a_s,
                                    const autograd::Variable& term,
                                    const std::vector<int64_t>& index_set,
                                    const autograd::Variable& inv_deg);

/// CSR variant of OneStepFastGConv for frozen adjacencies. `csr` must be
/// CsrFromDense(a_s.value()) — i.e. hold exactly the nonzero entries of
/// a_s with ascending columns. Because the dense kernel skips exact-zero
/// entries in ascending j order, walking the CSR nonzeros issues the
/// identical axpy sequence and the result (forward AND all three
/// gradients) is byte-identical to OneStepFastGConv. The win at scale:
/// the inner loop touches nnz entries instead of scanning the full N x K
/// row block, and the forward is sharded into cache-sized contiguous node
/// blocks (see graph::ComputeNodeShards) per batch element.
///
/// The caller owns keeping `csr` in sync with `a_s` — use this only where
/// a_s is frozen (serving snapshots, eval rollouts), not in training
/// steps that recompute a_s.
autograd::Variable OneStepFastGConvCsr(
    const autograd::Variable& a_s,
    const std::shared_ptr<const graph::CsrMatrix>& csr,
    const autograd::Variable& term, const std::vector<int64_t>& index_set,
    const autograd::Variable& inv_deg);

/// Fused GRU state blend: out = z * h + (1 - z) * c, all operands the
/// same shape. Replaces the RSubScalar -> Mul -> Mul -> Add chain at the
/// tail of GConvGruCell::Forward (one pass, one output tensor, and fused
/// single-pass backwards for each input).
autograd::Variable GruBlend(const autograd::Variable& z,
                            const autograd::Variable& h,
                            const autograd::Variable& c);

/// Fused candidate-input build for GConvGruCell: given the gate-conv
/// pre-activations `gates` [B, N, 2H] in [r|z] layout, writes
///   out[b, i, :] = [ x[b, i, :] | sigmoid(gates_r[b, i, :]) * h[b, i, :] ]
/// with out [B, N, C+H]. Replaces the Sigmoid(Slice) -> Mul -> Concat
/// chain; the reset gate r is only materialized when gradients are being
/// recorded.
autograd::Variable GruCandidateInput(const autograd::Variable& gates,
                                     const autograd::Variable& x,
                                     const autograd::Variable& h);

/// Fused GRU tail for GConvGruCell: given the gate-conv pre-activations
/// `gates` [B, N, 2H] ([r|z]), the previous state `h` [B, N, H] and the
/// candidate-conv pre-activation `c_pre` [B, N, H], computes per element
///   z = sigmoid(gates_z), t = tanh(c_pre), out = z*h + (1-z)*t
/// in one pass (the Sigmoid(Slice) -> Tanh -> GruBlend chain collapsed).
/// z and t are only materialized when gradients are being recorded. The
/// blend uses GruBlend's exact instruction sequence, so results are
/// bit-identical to the unfused path.
autograd::Variable GruTailBlend(const autograd::Variable& gates,
                                const autograd::Variable& h,
                                const autograd::Variable& c_pre);

// Raw-pointer forward cores, shared between the autograd ops above and
// the eval-mode rollout plan (core/rollout_plan). Replaying through these
// keeps plan output bit-identical to eager Predict: same kernels, same
// per-row accumulation order.

/// One diffusion step into `out` [batch, n, c]: exactly the forward pass
/// of OneStepFastGConv. `out` must not alias `term` (rows gather from
/// other rows).
void OneStepFastGConvInto(const float* a_s, const float* term,
                          const float* inv_deg,
                          const std::vector<int64_t>& index_set,
                          int64_t batch, int64_t n, int64_t c, float* out);

/// CSR core of OneStepFastGConvCsr: one diffusion step into `out`
/// [batch, n, c], parallelized over (batch x node-shard) tasks. Each task
/// owns a contiguous block of output rows, so writes are disjoint and the
/// result is bit-identical to OneStepFastGConvInto for any thread count
/// or shard partition. `out` must not alias `term`.
void OneStepFastGConvCsrInto(const graph::CsrMatrix& csr, const float* term,
                             const float* inv_deg,
                             const std::vector<int64_t>& index_set,
                             const graph::NodeShards& shards, int64_t batch,
                             int64_t n, int64_t c, float* out);

/// Row-loop core of GruCandidateInput over `rows` = B*N rows. `gates`
/// rows have stride 2*hd ([r|z]); `out` rows have stride c + hd. When
/// `copy_x` is false the x head of each out row is assumed to already be
/// in place and only the r*h tail is written (the rollout plan reuses its
/// [x|h] staging buffer this way). `r_out` (rows x hd) may be null.
void GruCandidateInputInto(const float* gates, const float* x, const float* h,
                           float* out, float* r_out, int64_t rows, int64_t c,
                           int64_t hd, bool copy_x);

/// Row-loop core of GruTailBlend over `rows` = B*N rows. `gates` rows
/// have stride 2*hd; the z half is read. `out` may alias `h` (the plan
/// updates hidden state in place); `z_out` / `t_out` (rows x hd) may be
/// null.
void GruTailBlendInto(const float* gates, const float* h, const float* c_pre,
                      float* out, float* z_out, float* t_out, int64_t rows,
                      int64_t hd);

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_FUSED_OPS_H_
