#ifndef SAGDFN_CORE_FUSED_OPS_H_
#define SAGDFN_CORE_FUSED_OPS_H_

#include <vector>

#include "autograd/ops.h"

namespace sagdfn::core {

/// One diffusion step of the slim graph convolution, fused:
///
///   next[b, i, :] = (sum_j a_s[i, j] * term[b, idx[j], :] + term[b, i, :])
///                   * inv_deg[i]
///
/// replacing the IndexSelect -> BatchedMatMul -> Add -> Mul chain in
/// FastGraphConv::Forward. No gathered [B, K, C] tensor is ever built:
/// each output row streams the indexed term rows through the dispatched
/// axpy kernel (zero entries of a_s skipped, mirroring MatMul's slim
/// sparsity), so an encoder rollout allocates one tensor per step instead
/// of four. Backward recomputes the small intermediates into the calling
/// thread's ScratchArena.
///
/// Shapes: a_s [N, K], term [B, N, C], inv_deg [N, 1]; index_set holds K
/// indices into [0, N). Gradients flow to all three tensor inputs.
autograd::Variable OneStepFastGConv(const autograd::Variable& a_s,
                                    const autograd::Variable& term,
                                    const std::vector<int64_t>& index_set,
                                    const autograd::Variable& inv_deg);

/// Fused GRU state blend: out = z * h + (1 - z) * c, all operands the
/// same shape. Replaces the RSubScalar -> Mul -> Mul -> Add chain at the
/// tail of GConvGruCell::Forward (one pass, one output tensor, and fused
/// single-pass backwards for each input).
autograd::Variable GruBlend(const autograd::Variable& z,
                            const autograd::Variable& h,
                            const autograd::Variable& c);

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_FUSED_OPS_H_
