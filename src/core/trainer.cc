#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "autograd/ops.h"
#include "core/sagdfn.h"
#include "nn/serialization.h"
#include "obs/telemetry.h"
#include "tensor/tensor_ops.h"
#include "utils/check.h"
#include "utils/fault.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"

namespace sagdfn::core {

namespace ag = ::sagdfn::autograd;
namespace fs = ::std::filesystem;

namespace {

constexpr const char* kEpochPrefix = "epoch-";
constexpr const char* kCkptSuffix = ".ckpt";

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Parses "epoch-NNNNNN.ckpt"; returns -1 for anything else.
int64_t EpochFromFilename(const std::string& filename) {
  const size_t prefix_len = std::strlen(kEpochPrefix);
  const size_t suffix_len = std::strlen(kCkptSuffix);
  if (filename.size() <= prefix_len + suffix_len) return -1;
  if (filename.compare(0, prefix_len, kEpochPrefix) != 0) return -1;
  if (filename.compare(filename.size() - suffix_len, suffix_len,
                       kCkptSuffix) != 0) {
    return -1;
  }
  const std::string digits = filename.substr(
      prefix_len, filename.size() - prefix_len - suffix_len);
  if (digits.empty()) return -1;
  int64_t epoch = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
    epoch = epoch * 10 + (c - '0');
  }
  return epoch;
}

/// Epoch checkpoints in `dir` as (completed_epochs, path), unsorted.
std::vector<std::pair<int64_t, std::string>> ListEpochCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const int64_t epoch = EpochFromFilename(entry.path().filename().string());
    if (epoch >= 0) found.emplace_back(epoch, entry.path().string());
  }
  return found;
}

}  // namespace

Trainer::Trainer(SeqModel* model, const data::ForecastDataset* dataset,
                 TrainOptions options)
    : model_(model),
      dataset_(dataset),
      options_(std::move(options)),
      rng_(options_.seed) {
  SAGDFN_CHECK(model_ != nullptr);
  SAGDFN_CHECK(dataset_ != nullptr);
  SAGDFN_CHECK_GT(options_.batch_size, 0);
  SAGDFN_CHECK_EQ(model_->horizon(), dataset_->spec().horizon);
  SAGDFN_CHECK_GE(options_.keep_last_k, 1);
  SAGDFN_CHECK_GE(options_.max_consecutive_skips, 1);
  SAGDFN_CHECK_GE(options_.max_rollbacks, 0);
  SAGDFN_CHECK_GT(options_.backoff_factor, 0.0);
  SAGDFN_CHECK_LE(options_.backoff_factor, 1.0);
}

void Trainer::EnsureOptimizer() {
  if (optimizer_ == nullptr) {
    optimizer_ = std::make_unique<optim::Adam>(model_->Parameters(),
                                               options_.learning_rate);
  }
}

int64_t Trainer::TrainBatchesPerEpoch() const {
  int64_t per_epoch =
      dataset_->NumBatches(data::Split::kTrain, options_.batch_size);
  if (options_.max_train_batches_per_epoch > 0) {
    per_epoch = std::min(per_epoch, options_.max_train_batches_per_epoch);
  }
  return per_epoch;
}

std::string Trainer::BestCheckpointPath() const {
  if (!checkpointing()) return "";
  return options_.checkpoint_dir + "/best" + kCkptSuffix;
}

std::string Trainer::EpochCheckpointPath(int64_t completed_epochs) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06lld%s", kEpochPrefix,
                static_cast<long long>(completed_epochs), kCkptSuffix);
  return options_.checkpoint_dir + "/" + name;
}

std::string Trainer::LatestCheckpoint(const std::string& dir) {
  int64_t best_epoch = -1;
  std::string best_path;
  for (const auto& [epoch, path] : ListEpochCheckpoints(dir)) {
    if (epoch > best_epoch) {
      best_epoch = epoch;
      best_path = path;
    }
  }
  return best_path;
}

void Trainer::RotateCheckpoints() {
  auto found = ListEpochCheckpoints(options_.checkpoint_dir);
  if (static_cast<int64_t>(found.size()) <= options_.keep_last_k) return;
  std::sort(found.begin(), found.end());  // ascending by epoch
  const int64_t remove_count =
      static_cast<int64_t>(found.size()) - options_.keep_last_k;
  for (int64_t i = 0; i < remove_count; ++i) {
    std::error_code ec;
    fs::remove(found[i].second, ec);
    if (ec) {
      SAGDFN_LOG(Warning) << "failed to rotate old checkpoint "
                          << found[i].second << ": " << ec.message();
    }
  }
}

utils::Status Trainer::SaveTrainerCheckpoint(const std::string& path,
                                             int64_t completed_epochs) {
  utils::Stopwatch watch;
  utils::Status status = DoSaveTrainerCheckpoint(path, completed_epochs);
  obs::Telemetry::Global().Emit(obs::Event("ckpt.save")
                                    .Str("path", path)
                                    .Int("epoch", completed_epochs)
                                    .Double("seconds",
                                            watch.ElapsedSeconds())
                                    .Bool("ok", status.ok()));
  return status;
}

utils::Status Trainer::DoSaveTrainerCheckpoint(const std::string& path,
                                               int64_t completed_epochs) {
  SAGDFN_SCOPED_TIMER("trainer.ckpt_save");
  EnsureOptimizer();
  nn::Checkpoint ckpt;
  for (const auto& [name, var] : model_->NamedParameters()) {
    ckpt.tensors.emplace_back("model/" + name, var.value());
  }
  for (const auto& [name, buffer] : model_->NamedBuffers()) {
    ckpt.tensors.emplace_back("model/buffer:" + name, buffer);
  }
  const auto& m = optimizer_->moments_m();
  const auto& v = optimizer_->moments_v();
  for (size_t i = 0; i < m.size(); ++i) {
    ckpt.tensors.emplace_back("optim/m/" + std::to_string(i), m[i]);
    ckpt.tensors.emplace_back("optim/v/" + std::to_string(i), v[i]);
  }
  ckpt.meta = {
      {"completed_epochs", {static_cast<uint64_t>(completed_epochs)}},
      {"total_epochs", {static_cast<uint64_t>(options_.epochs)}},
      {"iteration", {static_cast<uint64_t>(iteration_)}},
      {"adam_step", {static_cast<uint64_t>(optimizer_->step_count())}},
      {"trainer_rng", rng_.SerializeState()},
      {"lr_bits", {DoubleBits(optimizer_->lr())}},
      {"best_val_bits", {DoubleBits(best_val_)}},
      {"bad_epochs", {static_cast<uint64_t>(bad_epochs_)}},
      {"rollbacks", {static_cast<uint64_t>(rollbacks_)}},
  };
  for (auto& [name, words] : model_->ExportRuntimeState()) {
    ckpt.meta.emplace_back("model_rt/" + name, std::move(words));
  }
  return nn::SaveCheckpoint(ckpt, path);
}

utils::Status Trainer::RestoreTrainerCheckpoint(const std::string& path,
                                                bool rollback) {
  utils::Stopwatch watch;
  utils::Status status = DoRestoreTrainerCheckpoint(path);
  obs::Telemetry::Global().Emit(obs::Event("ckpt.load")
                                    .Str("path", path)
                                    .Bool("rollback", rollback)
                                    .Double("seconds",
                                            watch.ElapsedSeconds())
                                    .Bool("ok", status.ok()));
  if (status.ok() && !rollback) {
    rollbacks_ = restored_rollbacks_;
  }
  return status;
}

utils::Status Trainer::DoRestoreTrainerCheckpoint(const std::string& path) {
  SAGDFN_SCOPED_TIMER("trainer.ckpt_load");
  nn::Checkpoint ckpt;
  SAGDFN_RETURN_IF_ERROR(nn::LoadCheckpoint(&ckpt, path));
  SAGDFN_RETURN_IF_ERROR(
      nn::LoadModuleFromCheckpoint(model_, ckpt, "model/"));

  EnsureOptimizer();
  const auto& m = optimizer_->moments_m();
  const auto& v = optimizer_->moments_v();
  for (size_t i = 0; i < m.size(); ++i) {
    const tensor::Tensor* cm = ckpt.FindTensor("optim/m/" + std::to_string(i));
    const tensor::Tensor* cv = ckpt.FindTensor("optim/v/" + std::to_string(i));
    if (cm == nullptr || cv == nullptr) {
      return utils::Status::InvalidArgument(
          "checkpoint is missing Adam moments for parameter " +
          std::to_string(i) + ": " + path);
    }
    if (!(cm->shape() == m[i].shape()) || !(cv->shape() == v[i].shape())) {
      return utils::Status::InvalidArgument(
          "Adam moment shape mismatch for parameter " + std::to_string(i) +
          ": " + path);
    }
    // The moment accessors return shared-storage handles, so copying
    // through local handles writes into the live optimizer slots.
    tensor::Tensor slot_m = m[i];
    tensor::Tensor slot_v = v[i];
    slot_m.CopyFrom(*cm);
    slot_v.CopyFrom(*cv);
  }

  auto word = [&ckpt, &path](const std::string& name,
                             uint64_t* out) -> utils::Status {
    const std::vector<uint64_t>* words = ckpt.FindMeta(name);
    if (words == nullptr || words->size() != 1) {
      return utils::Status::InvalidArgument(
          "checkpoint is missing meta entry '" + name + "': " + path);
    }
    *out = (*words)[0];
    return utils::Status::Ok();
  };
  uint64_t completed = 0, total = 0, iteration = 0, adam_step = 0;
  uint64_t lr_bits = 0, best_val_bits = 0, bad_epochs = 0, rollbacks = 0;
  SAGDFN_RETURN_IF_ERROR(word("completed_epochs", &completed));
  SAGDFN_RETURN_IF_ERROR(word("total_epochs", &total));
  SAGDFN_RETURN_IF_ERROR(word("iteration", &iteration));
  SAGDFN_RETURN_IF_ERROR(word("adam_step", &adam_step));
  SAGDFN_RETURN_IF_ERROR(word("lr_bits", &lr_bits));
  SAGDFN_RETURN_IF_ERROR(word("best_val_bits", &best_val_bits));
  SAGDFN_RETURN_IF_ERROR(word("bad_epochs", &bad_epochs));
  SAGDFN_RETURN_IF_ERROR(word("rollbacks", &rollbacks));
  const std::vector<uint64_t>* rng_words = ckpt.FindMeta("trainer_rng");
  if (rng_words == nullptr ||
      static_cast<int64_t>(rng_words->size()) != utils::Rng::kStateWords) {
    return utils::Status::InvalidArgument(
        "checkpoint has a malformed trainer_rng entry: " + path);
  }

  std::vector<std::pair<std::string, std::vector<uint64_t>>> runtime;
  for (const auto& [name, words] : ckpt.meta) {
    constexpr std::string_view kRtPrefix = "model_rt/";
    if (name.size() > kRtPrefix.size() &&
        name.compare(0, kRtPrefix.size(), kRtPrefix) == 0) {
      runtime.emplace_back(name.substr(kRtPrefix.size()), words);
    }
  }
  SAGDFN_RETURN_IF_ERROR(model_->ImportRuntimeState(runtime));

  if (static_cast<int64_t>(total) != options_.epochs) {
    SAGDFN_LOG(Warning)
        << "resuming a run planned for " << total << " epochs with epochs="
        << options_.epochs << "; iteration-based schedules (scheduled "
        << "sampling, SNS convergence) will not match the original plan";
  }

  iteration_ = static_cast<int64_t>(iteration);
  next_epoch_ = static_cast<int64_t>(completed);
  rng_.DeserializeState(*rng_words);
  optimizer_->set_step_count(static_cast<int64_t>(adam_step));
  optimizer_->set_lr(BitsToDouble(lr_bits));
  best_val_ = BitsToDouble(best_val_bits);
  bad_epochs_ = static_cast<int64_t>(bad_epochs);
  // On a resume the saved rollback count is adopted; a rollback keeps the
  // live count (the caller applies this distinction).
  restored_rollbacks_ = static_cast<int64_t>(rollbacks);
  return utils::Status::Ok();
}

utils::Status Trainer::Resume(const std::string& path) {
  if (resumed_ || iteration_ != 0) {
    return utils::Status::FailedPrecondition(
        "Resume() must be called once, before Train()");
  }
  EnsureOptimizer();
  SAGDFN_RETURN_IF_ERROR(RestoreTrainerCheckpoint(path, /*rollback=*/false));
  resumed_ = true;
  last_good_ckpt_ = path;
  SAGDFN_LOG(Info) << "resumed " << model_->name() << " from " << path
                   << " (completed epochs: " << next_epoch_
                   << ", iteration: " << iteration_ << ")";
  return utils::Status::Ok();
}

bool Trainer::TryRollback(TrainResult* result) {
  consecutive_skips_ = 0;
  if (rollbacks_ >= options_.max_rollbacks) {
    result->status = utils::Status::FailedPrecondition(
        "training aborted: non-finite batches persisted through " +
        std::to_string(rollbacks_) +
        " rollback/backoff attempts (max_rollbacks)");
    return false;
  }
  ++rollbacks_;
  ++result->rollbacks;
  const double lr_before = optimizer_->lr();
  if (!last_good_ckpt_.empty()) {
    utils::Status status =
        RestoreTrainerCheckpoint(last_good_ckpt_, /*rollback=*/true);
    if (!status.ok()) {
      result->status = utils::Status::Internal(
          "rollback restore from " + last_good_ckpt_ +
          " failed: " + status.ToString());
      return false;
    }
  }
  // Compound the backoff across rollbacks: the restored checkpoint
  // carries the LR it was saved with, so halve whichever is smaller.
  const double lr = std::min(lr_before, optimizer_->lr()) *
                    options_.backoff_factor;
  optimizer_->set_lr(lr);
  obs::Telemetry::Global().AddCounter("fault.rollbacks");
  obs::Telemetry::Global().Emit(obs::Event("fault.rollback")
                                    .Str("checkpoint", last_good_ckpt_)
                                    .Double("lr", lr)
                                    .Int("rollback", rollbacks_)
                                    .Int("max_rollbacks",
                                         options_.max_rollbacks));
  SAGDFN_LOG(Warning) << "rolled back to "
                      << (last_good_ckpt_.empty()
                              ? "current weights (no checkpoint available)"
                              : last_good_ckpt_)
                      << "; learning rate now " << lr << " (rollback "
                      << rollbacks_ << "/" << options_.max_rollbacks << ")";
  return true;
}

Trainer::EpochOutcome Trainer::RunTrainEpoch(int64_t epoch,
                                             TrainResult* result) {
  (void)epoch;
  SAGDFN_SCOPED_TIMER("trainer.train_epoch");
  utils::FaultInjector& injector = utils::FaultInjector::Global();
  model_->SetTraining(true);
  std::vector<int64_t> order = dataset_->ShuffledTrainOrder(rng_);
  int64_t num_batches =
      (static_cast<int64_t>(order.size()) + options_.batch_size - 1) /
      options_.batch_size;
  if (options_.max_train_batches_per_epoch > 0) {
    num_batches = std::min(num_batches, options_.max_train_batches_per_epoch);
  }

  double epoch_loss = 0.0;
  int64_t good_batches = 0;
  for (int64_t bi = 0; bi < num_batches; ++bi) {
    const int64_t start = bi * options_.batch_size;
    const int64_t end = std::min<int64_t>(
        start + options_.batch_size, static_cast<int64_t>(order.size()));
    std::vector<int64_t> offsets(order.begin() + start, order.begin() + end);
    data::Batch batch = dataset_->GetBatchAt(data::Split::kTrain, offsets);

    const double teacher_prob =
        decay_steps_ / (decay_steps_ + std::exp(iteration_ / decay_steps_));
    ag::Variable pred = model_->Forward(batch.x, batch.future_tod,
                                        iteration_, &batch.y_scaled,
                                        teacher_prob);
    ag::Variable loss;
    if (options_.mask_missing) {
      // Mask entries whose raw reading is 0 (missing sensor data).
      tensor::Tensor mask(batch.y.shape());
      const float* truth = batch.y.data();
      float* pm = mask.data();
      for (int64_t e = 0; e < mask.size(); ++e) {
        pm[e] = truth[e] != 0.0f ? 1.0f : 0.0f;
      }
      loss = ag::MaskedL1Loss(pred, ag::Variable(batch.y_scaled), mask);
    } else {
      loss = ag::L1Loss(pred, ag::Variable(batch.y_scaled));
    }

    if (injector.Fire(utils::FaultSite::kLoss, iteration_)) {
      loss.mutable_value().data()[0] =
          std::numeric_limits<float>::quiet_NaN();
    }

    // Non-finite guard #1: a NaN/Inf loss poisons every gradient through
    // backprop, so skip the batch before touching the tape.
    const float loss_value = loss.value().Item();
    bool poisoned = !std::isfinite(loss_value);
    if (!poisoned) {
      model_->ZeroGrad();
      loss.Backward();
      if (injector.Fire(utils::FaultSite::kGrad, iteration_)) {
        tensor::Tensor g = optimizer_->params()[0].grad();
        g.data()[0] = std::numeric_limits<float>::quiet_NaN();
      }
      // Non-finite guard #2: ClipGradNorm reports a non-finite global
      // norm instead of scaling by it; skip the optimizer step.
      const double norm =
          optim::ClipGradNorm(optimizer_->params(), options_.grad_clip);
      if (std::isfinite(norm)) {
        last_grad_norm_ = norm;
        optimizer_->Step();
      } else {
        poisoned = true;
      }
    }

    ++iteration_;
    if (poisoned) {
      model_->ZeroGrad();
      ++result->skipped_batches;
      ++consecutive_skips_;
      obs::Telemetry::Global().AddCounter("fault.skipped_batches");
      obs::Telemetry::Global().Emit(
          obs::Event("fault.skipped_batch")
              .Int("iteration", iteration_ - 1)
              .Int("consecutive", consecutive_skips_)
              .Int("max_consecutive", options_.max_consecutive_skips));
      SAGDFN_LOG(Warning) << model_->name()
                          << ": non-finite loss/gradient at iteration "
                          << (iteration_ - 1) << ", skipping batch ("
                          << consecutive_skips_ << "/"
                          << options_.max_consecutive_skips
                          << " consecutive)";
      if (consecutive_skips_ >= options_.max_consecutive_skips) {
        return EpochOutcome::kFaultStorm;
      }
      continue;
    }
    consecutive_skips_ = 0;
    epoch_loss += loss_value;
    ++good_batches;
  }
  epoch_loss /= std::max<int64_t>(good_batches, 1);
  result->epoch_train_loss.push_back(epoch_loss);
  return EpochOutcome::kOk;
}

void Trainer::RestoreBestWeights(TrainResult* result) {
  if (checkpointing()) {
    const std::string best = BestCheckpointPath();
    std::error_code ec;
    if (!fs::exists(best, ec)) return;  // validation never improved
    nn::Checkpoint ckpt;
    utils::Status status = nn::LoadCheckpoint(&ckpt, best);
    if (status.ok()) {
      // Two passes so a malformed best.ckpt cannot leave the model
      // half-overwritten.
      auto params = model_->NamedParameters();
      for (const auto& [name, var] : params) {
        const tensor::Tensor* t = ckpt.FindTensor(name);
        if (t == nullptr || !(t->shape() == var.value().shape())) {
          status = utils::Status::InvalidArgument(
              "best checkpoint is missing or mismatched for " + name);
          break;
        }
      }
      if (status.ok()) {
        for (auto& [name, var] : params) {
          autograd::Variable param = var;  // shared handle
          param.mutable_value().CopyFrom(*ckpt.FindTensor(name));
        }
      }
    }
    if (!status.ok()) {
      ++result->checkpoint_failures;
      SAGDFN_LOG(Warning) << "could not restore best weights from " << best
                          << " (" << status.ToString()
                          << "); keeping final-epoch weights";
    }
  } else if (!best_weights_.empty()) {
    const auto& params = optimizer_->params();
    for (size_t i = 0; i < params.size(); ++i) {
      autograd::Variable param = params[i];  // shared handle
      param.mutable_value().CopyFrom(best_weights_[i]);
    }
  }
}

TrainResult Trainer::Train() {
  TrainResult result;
  utils::FaultInjector& injector = utils::FaultInjector::Global();
  EnsureOptimizer();

  const int64_t planned_iterations =
      TrainBatchesPerEpoch() * options_.epochs;
  model_->OnTrainingPlan(planned_iterations);
  // Scheduled-sampling decay (DCRNN-style inverse sigmoid): start with
  // mostly ground-truth decoder inputs, end with the model's own
  // predictions.
  decay_steps_ =
      std::max(1.0, static_cast<double>(planned_iterations) / 4.0);

  if (!resumed_) {
    best_val_ = std::numeric_limits<double>::infinity();
    bad_epochs_ = 0;
  }
  const int64_t run_start_epoch = next_epoch_;
  utils::Stopwatch total_watch;

  if (checkpointing()) {
    std::error_code ec;
    fs::create_directories(options_.checkpoint_dir, ec);
    if (last_good_ckpt_.empty()) {
      // Initial-state checkpoint: gives epoch 0 a rollback anchor and
      // makes a crash before the first epoch boundary resumable.
      const std::string path = EpochCheckpointPath(next_epoch_);
      utils::Status status = SaveTrainerCheckpoint(path, next_epoch_);
      if (status.ok()) {
        last_good_ckpt_ = path;
      } else {
        ++result.checkpoint_failures;
        SAGDFN_LOG(Warning) << "initial checkpoint failed ("
                            << status.ToString() << "); continuing without "
                            << "a rollback anchor";
      }
    }
  }

  int64_t epoch = next_epoch_;
  while (epoch < options_.epochs) {
    utils::Stopwatch epoch_watch;
    const int64_t skips_before = result.skipped_batches;
    if (RunTrainEpoch(epoch, &result) == EpochOutcome::kFaultStorm) {
      if (!TryRollback(&result)) break;
      // Drop any epochs recorded past the restored checkpoint; they will
      // be re-run (deterministically, from the restored RNG streams).
      const size_t keep = static_cast<size_t>(
          std::max<int64_t>(0, next_epoch_ - run_start_epoch));
      result.epoch_train_loss.resize(
          std::min(result.epoch_train_loss.size(), keep));
      result.epoch_val_mae.resize(
          std::min(result.epoch_val_mae.size(), keep));
      result.epochs_run = static_cast<int64_t>(result.epoch_val_mae.size());
      epoch = next_epoch_;
      continue;
    }

    // Validation metrics in original units: one Evaluate() pass instead
    // of a full tensor scan per metric.
    tensor::Tensor val_pred = Predict(data::Split::kValidation);
    tensor::Tensor val_truth = Truth(data::Split::kValidation);
    const metrics::Scores val = metrics::Evaluate(val_pred, val_truth);
    const double val_mae = val.mae;
    result.epoch_val_mae.push_back(val_mae);
    result.epochs_run = static_cast<int64_t>(result.epoch_val_mae.size());

    if (options_.verbose) {
      SAGDFN_LOG(Info) << model_->name() << " epoch " << epoch
                       << " train_l1=" << result.epoch_train_loss.back()
                       << " val_mae=" << val_mae;
    }

    obs::Telemetry::Global().Emit(
        obs::Event("train.epoch")
            .Str("model", model_->name())
            .Int("epoch", epoch)
            .Double("train_loss", result.epoch_train_loss.back())
            .Double("val_mae", val.mae)
            .Double("val_rmse", val.rmse)
            .Double("val_mape", val.mape)
            .Double("lr", optimizer_->lr())
            .Double("grad_norm", last_grad_norm_)
            .Int("skipped_batches",
                 result.skipped_batches - skips_before)
            .Double("seconds", epoch_watch.ElapsedSeconds()));

    bool stop = false;
    if (!val.IsSignal()) {
      // Every validation entry was masked: no signal. Neither a new best
      // nor a bad epoch — patience only counts real regressions.
      SAGDFN_LOG(Warning)
          << model_->name() << " epoch " << epoch
          << ": validation window is fully masked (val_mae=NaN); "
          << "skipping best-model/early-stopping bookkeeping";
    } else if (val_mae < best_val_ - 1e-9) {
      best_val_ = val_mae;
      bad_epochs_ = 0;
      // Snapshot the best-validation weights (restored after training,
      // the standard METR-LA benchmark protocol).
      if (checkpointing()) {
        utils::Status status =
            nn::SaveModule(*model_, BestCheckpointPath());
        if (!status.ok()) {
          ++result.checkpoint_failures;
          SAGDFN_LOG(Warning) << "best-checkpoint save failed: "
                              << status.ToString();
        }
      } else {
        best_weights_.clear();
        for (const auto& p : optimizer_->params()) {
          best_weights_.push_back(p.value().Clone());
        }
      }
    } else {
      ++bad_epochs_;
      if (options_.patience > 0 && bad_epochs_ >= options_.patience) {
        stop = true;
      }
    }

    ++epoch;
    next_epoch_ = epoch;
    if (checkpointing()) {
      const std::string path = EpochCheckpointPath(epoch);
      utils::Status status = SaveTrainerCheckpoint(path, epoch);
      if (status.ok()) {
        last_good_ckpt_ = path;
        RotateCheckpoints();
      } else {
        ++result.checkpoint_failures;
        SAGDFN_LOG(Warning)
            << "checkpoint save failed after epoch " << epoch << " ("
            << status.ToString() << "); previous checkpoint "
            << (last_good_ckpt_.empty() ? "none" : last_good_ckpt_)
            << " remains the resume/rollback anchor";
      }
    }
    if (stop) break;
    if (injector.Fire(utils::FaultSite::kCrash, epoch)) {
      result.status = utils::Status::Internal(
          "injected crash after epoch " + std::to_string(epoch));
      break;
    }
  }

  RestoreBestWeights(&result);

  result.total_seconds = total_watch.ElapsedSeconds();
  result.seconds_per_epoch =
      result.epochs_run > 0 ? result.total_seconds / result.epochs_run : 0.0;
  result.best_val_mae = best_val_;
  obs::Telemetry::Global().Emit(
      obs::Event("train.done")
          .Str("model", model_->name())
          .Int("epochs_run", result.epochs_run)
          .Double("total_seconds", result.total_seconds)
          .Double("best_val_mae", result.best_val_mae)
          .Int("skipped_batches", result.skipped_batches)
          .Int("rollbacks", result.rollbacks)
          .Int("checkpoint_failures", result.checkpoint_failures)
          .Bool("ok", result.status.ok()));
  obs::Telemetry::Global().EmitSnapshot("train.done");
  return result;
}

int64_t Trainer::EvalWindowCount(data::Split split) const {
  int64_t windows = dataset_->NumSamples(split);
  if (options_.max_eval_batches > 0) {
    windows = std::min(windows,
                       options_.max_eval_batches * options_.batch_size);
  }
  return windows;
}

tensor::Tensor Trainer::Predict(data::Split split) {
  SAGDFN_SCOPED_TIMER("trainer.predict");
  ag::NoGradGuard guard;
  model_->SetTraining(false);
  const int64_t windows = EvalWindowCount(split);
  const int64_t f = dataset_->spec().horizon;
  const int64_t n = dataset_->num_nodes();
  tensor::Tensor all =
      tensor::Tensor::Zeros(tensor::Shape({windows, f, n}));

  int64_t written = 0;
  while (written < windows) {
    const int64_t take =
        std::min(options_.batch_size, windows - written);
    std::vector<int64_t> offsets(take);
    for (int64_t i = 0; i < take; ++i) offsets[i] = written + i;
    data::Batch batch = dataset_->GetBatchAt(split, offsets);
    ag::Variable pred =
        model_->Forward(batch.x, batch.future_tod, iteration_);
    tensor::Tensor unscaled =
        dataset_->scaler().InverseTransform(pred.value());
    std::copy(unscaled.data(), unscaled.data() + unscaled.size(),
              all.data() + written * f * n);
    written += take;
  }
  model_->SetTraining(true);
  return all;
}

tensor::Tensor Trainer::Truth(data::Split split) const {
  const int64_t windows = EvalWindowCount(split);
  const int64_t f = dataset_->spec().horizon;
  const int64_t n = dataset_->num_nodes();
  tensor::Tensor all =
      tensor::Tensor::Zeros(tensor::Shape({windows, f, n}));
  int64_t written = 0;
  while (written < windows) {
    const int64_t take =
        std::min(options_.batch_size, windows - written);
    std::vector<int64_t> offsets(take);
    for (int64_t i = 0; i < take; ++i) offsets[i] = written + i;
    data::Batch batch = dataset_->GetBatchAt(split, offsets);
    std::copy(batch.y.data(), batch.y.data() + batch.y.size(),
              all.data() + written * f * n);
    written += take;
  }
  return all;
}

std::vector<metrics::Scores> Trainer::EvaluateSplit(
    data::Split split, const std::vector<int64_t>& horizons) {
  tensor::Tensor pred = Predict(split);
  tensor::Tensor truth = Truth(split);
  return metrics::EvaluateHorizons(pred, truth, horizons);
}

double Trainer::TimeInference() {
  utils::Stopwatch watch;
  Predict(data::Split::kTest);
  return watch.ElapsedSeconds();
}

utils::Status FineTuneFromSnapshot(const SagdfnModel& snapshot,
                                   const data::ForecastDataset& dataset,
                                   const TrainOptions& options,
                                   const std::string& candidate_path,
                                   TrainResult* result) {
  SAGDFN_CHECK_EQ(snapshot.config().num_nodes, dataset.num_nodes())
      << "fine-tune dataset node count must match the serving snapshot";
  auto clone = std::make_unique<SagdfnModel>(snapshot.config());
  utils::Status status = nn::CopyModuleState(snapshot, clone.get());
  if (!status.ok()) return status;

  Trainer trainer(clone.get(), &dataset, options);
  TrainResult train_result = trainer.Train();
  if (result != nullptr) *result = train_result;
  if (!train_result.status.ok()) return train_result.status;

  clone->SetTraining(false);
  return nn::SaveModule(*clone, candidate_path);
}

}  // namespace sagdfn::core
