#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "autograd/ops.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"
#include "utils/check.h"
#include "utils/logging.h"
#include "utils/rng.h"
#include "utils/stopwatch.h"

namespace sagdfn::core {

namespace ag = ::sagdfn::autograd;

Trainer::Trainer(SeqModel* model, const data::ForecastDataset* dataset,
                 TrainOptions options)
    : model_(model), dataset_(dataset), options_(options) {
  SAGDFN_CHECK(model_ != nullptr);
  SAGDFN_CHECK(dataset_ != nullptr);
  SAGDFN_CHECK_GT(options_.batch_size, 0);
  SAGDFN_CHECK_EQ(model_->horizon(), dataset_->spec().horizon);
}

TrainResult Trainer::Train() {
  TrainResult result;
  utils::Rng rng(options_.seed);
  optim::Adam optimizer(model_->Parameters(), options_.learning_rate);

  int64_t planned_iterations = 0;
  {
    int64_t per_epoch = dataset_->NumBatches(data::Split::kTrain,
                                             options_.batch_size);
    if (options_.max_train_batches_per_epoch > 0) {
      per_epoch =
          std::min(per_epoch, options_.max_train_batches_per_epoch);
    }
    planned_iterations = per_epoch * options_.epochs;
    model_->OnTrainingPlan(planned_iterations);
  }
  // Scheduled-sampling decay (DCRNN-style inverse sigmoid): start with
  // mostly ground-truth decoder inputs, end with the model's own
  // predictions.
  const double decay_steps =
      std::max(1.0, static_cast<double>(planned_iterations) / 4.0);

  double best_val = std::numeric_limits<double>::infinity();
  int64_t bad_epochs = 0;
  std::vector<tensor::Tensor> best_weights;
  utils::Stopwatch total_watch;

  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    model_->SetTraining(true);
    std::vector<int64_t> order = dataset_->ShuffledTrainOrder(rng);
    int64_t num_batches =
        (static_cast<int64_t>(order.size()) + options_.batch_size - 1) /
        options_.batch_size;
    if (options_.max_train_batches_per_epoch > 0) {
      num_batches =
          std::min(num_batches, options_.max_train_batches_per_epoch);
    }

    double epoch_loss = 0.0;
    for (int64_t bi = 0; bi < num_batches; ++bi) {
      const int64_t start = bi * options_.batch_size;
      const int64_t end = std::min<int64_t>(
          start + options_.batch_size, static_cast<int64_t>(order.size()));
      std::vector<int64_t> offsets(order.begin() + start,
                                   order.begin() + end);
      data::Batch batch =
          dataset_->GetBatchAt(data::Split::kTrain, offsets);

      const double teacher_prob =
          decay_steps /
          (decay_steps + std::exp(iteration_ / decay_steps));
      ag::Variable pred =
          model_->Forward(batch.x, batch.future_tod, iteration_,
                          &batch.y_scaled, teacher_prob);
      ag::Variable loss;
      if (options_.mask_missing) {
        // Mask entries whose raw reading is 0 (missing sensor data).
        tensor::Tensor mask(batch.y.shape());
        const float* truth = batch.y.data();
        float* pm = mask.data();
        for (int64_t e = 0; e < mask.size(); ++e) {
          pm[e] = truth[e] != 0.0f ? 1.0f : 0.0f;
        }
        loss = ag::MaskedL1Loss(pred, ag::Variable(batch.y_scaled), mask);
      } else {
        loss = ag::L1Loss(pred, ag::Variable(batch.y_scaled));
      }

      model_->ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(optimizer.params(), options_.grad_clip);
      optimizer.Step();

      epoch_loss += loss.value().Item();
      ++iteration_;
    }
    epoch_loss /= std::max<int64_t>(num_batches, 1);
    result.epoch_train_loss.push_back(epoch_loss);

    // Validation MAE in original units.
    tensor::Tensor val_pred = Predict(data::Split::kValidation);
    tensor::Tensor val_truth = Truth(data::Split::kValidation);
    const double val_mae = metrics::MaskedMae(val_pred, val_truth);
    result.epoch_val_mae.push_back(val_mae);
    ++result.epochs_run;

    if (options_.verbose) {
      SAGDFN_LOG(Info) << model_->name() << " epoch " << epoch
                       << " train_l1=" << epoch_loss
                       << " val_mae=" << val_mae;
    }

    if (val_mae < best_val - 1e-9) {
      best_val = val_mae;
      bad_epochs = 0;
      // Snapshot the best-validation weights (restored after training,
      // the standard METR-LA benchmark protocol).
      best_weights.clear();
      for (const auto& p : optimizer.params()) {
        best_weights.push_back(p.value().Clone());
      }
    } else {
      ++bad_epochs;
      if (options_.patience > 0 && bad_epochs >= options_.patience) break;
    }
  }

  if (!best_weights.empty()) {
    for (size_t i = 0; i < optimizer.params().size(); ++i) {
      autograd::Variable param = optimizer.params()[i];  // shared handle
      param.mutable_value().CopyFrom(best_weights[i]);
    }
  }

  result.total_seconds = total_watch.ElapsedSeconds();
  result.seconds_per_epoch =
      result.epochs_run > 0 ? result.total_seconds / result.epochs_run : 0.0;
  result.best_val_mae = best_val;
  return result;
}

int64_t Trainer::EvalWindowCount(data::Split split) const {
  int64_t windows = dataset_->NumSamples(split);
  if (options_.max_eval_batches > 0) {
    windows = std::min(windows,
                       options_.max_eval_batches * options_.batch_size);
  }
  return windows;
}

tensor::Tensor Trainer::Predict(data::Split split) {
  ag::NoGradGuard guard;
  model_->SetTraining(false);
  const int64_t windows = EvalWindowCount(split);
  const int64_t f = dataset_->spec().horizon;
  const int64_t n = dataset_->num_nodes();
  tensor::Tensor all =
      tensor::Tensor::Zeros(tensor::Shape({windows, f, n}));

  int64_t written = 0;
  while (written < windows) {
    const int64_t take =
        std::min(options_.batch_size, windows - written);
    std::vector<int64_t> offsets(take);
    for (int64_t i = 0; i < take; ++i) offsets[i] = written + i;
    data::Batch batch = dataset_->GetBatchAt(split, offsets);
    ag::Variable pred =
        model_->Forward(batch.x, batch.future_tod, iteration_);
    tensor::Tensor unscaled =
        dataset_->scaler().InverseTransform(pred.value());
    std::copy(unscaled.data(), unscaled.data() + unscaled.size(),
              all.data() + written * f * n);
    written += take;
  }
  model_->SetTraining(true);
  return all;
}

tensor::Tensor Trainer::Truth(data::Split split) const {
  const int64_t windows = EvalWindowCount(split);
  const int64_t f = dataset_->spec().horizon;
  const int64_t n = dataset_->num_nodes();
  tensor::Tensor all =
      tensor::Tensor::Zeros(tensor::Shape({windows, f, n}));
  int64_t written = 0;
  while (written < windows) {
    const int64_t take =
        std::min(options_.batch_size, windows - written);
    std::vector<int64_t> offsets(take);
    for (int64_t i = 0; i < take; ++i) offsets[i] = written + i;
    data::Batch batch = dataset_->GetBatchAt(split, offsets);
    std::copy(batch.y.data(), batch.y.data() + batch.y.size(),
              all.data() + written * f * n);
    written += take;
  }
  return all;
}

std::vector<metrics::Scores> Trainer::EvaluateSplit(
    data::Split split, const std::vector<int64_t>& horizons) {
  tensor::Tensor pred = Predict(split);
  tensor::Tensor truth = Truth(split);
  return metrics::EvaluateHorizons(pred, truth, horizons);
}

double Trainer::TimeInference() {
  utils::Stopwatch watch;
  Predict(data::Split::kTest);
  return watch.ElapsedSeconds();
}

}  // namespace sagdfn::core
