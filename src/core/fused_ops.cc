#include "core/fused_ops.h"

#include <algorithm>
#include <cstring>

#include "tensor/simd.h"
#include "utils/arena.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace sagdfn::core {

namespace ag = ::sagdfn::autograd;
namespace simd = ::sagdfn::tensor::simd;

using ag::internal::MakeOp;
using ag::internal::Node;
using tensor::Shape;
using tensor::Tensor;
using utils::kElementwiseGrain;
using utils::ParallelFor;
using utils::ScratchArena;

namespace {

void Accumulate(const std::shared_ptr<Node>& node, const Tensor& g) {
  if (node->requires_grad) node->AccumulateGrad(g);
}

/// Row grain so each task carries roughly kElementwiseGrain elements.
int64_t RowGrain(int64_t row_len) {
  return std::max<int64_t>(
      1, kElementwiseGrain / std::max<int64_t>(1, row_len));
}

}  // namespace

void OneStepFastGConvInto(const float* a_s, const float* term,
                          const float* inv_deg,
                          const std::vector<int64_t>& index_set,
                          int64_t batch, int64_t n, int64_t c, float* out) {
  const int64_t k = static_cast<int64_t>(index_set.size());
  const int64_t* idx = index_set.data();
  // Each (b, i) output row is owned by exactly one task; the j scan runs
  // in ascending order inside a row, so accumulation order (and the
  // result) is independent of the partition.
  ParallelFor(0, batch * n, RowGrain(c), [&](int64_t r0, int64_t r1) {
    const simd::Kernels& kern = simd::K();
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / n;
      const int64_t i = r - b * n;
      const float* t_base = term + b * n * c;
      float* out_row = out + r * c;
      std::memcpy(out_row, t_base + i * c, sizeof(float) * c);
      const float* a_row = a_s + i * k;
      for (int64_t j = 0; j < k; ++j) {
        const float av = a_row[j];
        if (av == 0.0f) continue;
        kern.axpy(av, t_base + idx[j] * c, out_row, c);
      }
      kern.scale(out_row, inv_deg[i], c);
    }
  });
}

void OneStepFastGConvCsrInto(const graph::CsrMatrix& csr, const float* term,
                             const float* inv_deg,
                             const std::vector<int64_t>& index_set,
                             const graph::NodeShards& shards, int64_t batch,
                             int64_t n, int64_t c, float* out) {
  const int64_t* idx = index_set.data();
  const int64_t* row_ptr = csr.row_ptr.data();
  const int32_t* col = csr.col.data();
  const float* val = csr.val.data();
  const int64_t num_shards = shards.count();
  // One task per (batch, shard): a contiguous block of output rows sized
  // to stay cache-resident. Within a row the nonzero scan is ascending —
  // the same axpy sequence the dense kernel issues after its zero-skip —
  // so the output is byte-identical to OneStepFastGConvInto.
  ParallelFor(0, batch * num_shards, 1, [&](int64_t t0, int64_t t1) {
    const simd::Kernels& kern = simd::K();
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t b = t / num_shards;
      const int64_t s = t - b * num_shards;
      const float* t_base = term + b * n * c;
      float* out_base = out + b * n * c;
      for (int64_t i = shards.begin(s); i < shards.end(s); ++i) {
        float* out_row = out_base + i * c;
        std::memcpy(out_row, t_base + i * c, sizeof(float) * c);
        for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
          kern.axpy(val[e], t_base + idx[col[e]] * c, out_row, c);
        }
        kern.scale(out_row, inv_deg[i], c);
      }
    }
  });
}

void GruCandidateInputInto(const float* gates, const float* x, const float* h,
                           float* out, float* r_out, int64_t rows, int64_t c,
                           int64_t hd, bool copy_x) {
  const int64_t out_stride = c + hd;
  ParallelFor(0, rows, RowGrain(out_stride), [&](int64_t r0, int64_t r1) {
    const simd::Kernels& kern = simd::K();
    for (int64_t r = r0; r < r1; ++r) {
      float* out_row = out + r * out_stride;
      if (copy_x) {
        std::memcpy(out_row, x + r * c, sizeof(float) * c);
      }
      kern.sigmoid_mul(gates + r * 2 * hd, h + r * hd, out_row + c,
                       r_out == nullptr ? nullptr : r_out + r * hd, hd);
    }
  });
}

void GruTailBlendInto(const float* gates, const float* h, const float* c_pre,
                      float* out, float* z_out, float* t_out, int64_t rows,
                      int64_t hd) {
  ParallelFor(0, rows, RowGrain(hd), [&](int64_t r0, int64_t r1) {
    const simd::Kernels& kern = simd::K();
    for (int64_t r = r0; r < r1; ++r) {
      kern.gru_tail(gates + r * 2 * hd + hd, h + r * hd, c_pre + r * hd,
                    out + r * hd, z_out == nullptr ? nullptr : z_out + r * hd,
                    t_out == nullptr ? nullptr : t_out + r * hd, hd);
    }
  });
}

ag::Variable OneStepFastGConv(const ag::Variable& a_s,
                              const ag::Variable& term,
                              const std::vector<int64_t>& index_set,
                              const ag::Variable& inv_deg) {
  SAGDFN_CHECK_EQ(term.shape().ndim(), 3);
  SAGDFN_CHECK_EQ(a_s.shape().ndim(), 2);
  const int64_t batch = term.dim(0);
  const int64_t n = term.dim(1);
  const int64_t c = term.dim(2);
  const int64_t k = static_cast<int64_t>(index_set.size());
  SAGDFN_CHECK_EQ(a_s.dim(0), n);
  SAGDFN_CHECK_EQ(a_s.dim(1), k);
  SAGDFN_CHECK_EQ(inv_deg.dim(0), n);
  SAGDFN_CHECK_EQ(inv_deg.size(), n);
  for (int64_t j = 0; j < k; ++j) {
    SAGDFN_CHECK_GE(index_set[j], 0);
    SAGDFN_CHECK_LT(index_set[j], n);
  }

  Tensor out{Shape({batch, n, c})};
  OneStepFastGConvInto(a_s.value().data(), term.value().data(),
                       inv_deg.value().data(), index_set, batch, n, c,
                       out.data());

  auto na = a_s.node();
  auto nt = term.node();
  auto ninv = inv_deg.node();
  std::vector<int64_t> idx = index_set;
  return MakeOp(
      "OneStepFastGConv", out, {a_s, term, inv_deg},
      [na, nt, ninv, idx, out, batch, n, c, k](const Tensor& g) {
        const int64_t kk = k;
        const float* pg = g.data();
        const float* pa = na->value.data();
        const float* pt = nt->value.data();
        const float* pinv = ninv->value.data();
        const float* pout = out.data();

        // gm = g * inv_deg (the gradient at `mixed`, before normalization)
        // doubles as the direct d_term contribution; it is materialized
        // into the d_term buffer and read back by the a_s / gather passes
        // BEFORE the scatter pass overwrites anything.
        Tensor d_term{Shape({batch, n, c})};
        float* pdt = d_term.data();
        ParallelFor(0, batch * n, RowGrain(c), [&](int64_t r0, int64_t r1) {
          const simd::Kernels& kern = simd::K();
          for (int64_t r = r0; r < r1; ++r) {
            const int64_t i = r % n;
            kern.mul_s(pg + r * c, pinv[i], pdt + r * c, c);
          }
        });

        if (na->requires_grad) {
          // d_a[i, j] = sum_b dot(gm[b, i, :], term[b, idx[j], :]);
          // disjoint a_s rows per task, batch loop in ascending order.
          Tensor d_a{Shape({n, kk})};
          float* pda = d_a.data();
          ParallelFor(0, n, RowGrain(kk * c * batch),
                      [&](int64_t i0, int64_t i1) {
                        const simd::Kernels& kern = simd::K();
                        for (int64_t i = i0; i < i1; ++i) {
                          float* da_row = pda + i * kk;
                          for (int64_t j = 0; j < kk; ++j) {
                            double acc = 0.0;
                            for (int64_t b = 0; b < batch; ++b) {
                              acc += kern.dot(pdt + (b * n + i) * c,
                                              pt + (b * n + idx[j]) * c, c);
                            }
                            da_row[j] = static_cast<float>(acc);
                          }
                        }
                      });
          Accumulate(na, d_a);
        }

        if (ninv->requires_grad) {
          // d_inv[i] = sum_{b,c} g * mixed, with mixed recomputed as
          // out / inv (inv = 1/(deg+1) is never zero).
          Tensor d_inv{Shape({n, 1})};
          float* pdi = d_inv.data();
          ParallelFor(0, n, RowGrain(batch * c), [&](int64_t i0, int64_t i1) {
            const simd::Kernels& kern = simd::K();
            for (int64_t i = i0; i < i1; ++i) {
              double acc = 0.0;
              for (int64_t b = 0; b < batch; ++b) {
                acc += kern.dot(pg + (b * n + i) * c,
                                pout + (b * n + i) * c, c);
              }
              pdi[i] = static_cast<float>(acc / pinv[i]);
            }
          });
          Accumulate(ninv, d_inv);
        }

        if (nt->requires_grad) {
          // Gather backward: dG[b, j, :] = sum_i a_s[i, j] * gm[b, i, :]
          // scattered into d_term[b, idx[j], :]. dG lives in the worker's
          // ScratchArena and is fully computed (reads of gm done) before
          // the scatter writes into the same batch slab — idx[j] may
          // alias any row, including i itself. Batches are disjoint per
          // task; the j scatter runs in ascending order, so repeated
          // indices accumulate deterministically.
          ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
            const simd::Kernels& kern = simd::K();
            ScratchArena& arena = ScratchArena::ThreadLocal();
            for (int64_t b = b0; b < b1; ++b) {
              ScratchArena::Scope scope(arena);
              float* dg = arena.AllocArray<float>(kk * c);
              std::memset(dg, 0, sizeof(float) * kk * c);
              const float* gm_base = pdt + b * n * c;
              for (int64_t i = 0; i < n; ++i) {
                const float* a_row = pa + i * kk;
                const float* gm_row = gm_base + i * c;
                for (int64_t j = 0; j < kk; ++j) {
                  const float av = a_row[j];
                  if (av == 0.0f) continue;
                  kern.axpy(av, gm_row, dg + j * c, c);
                }
              }
              float* dt_base = pdt + b * n * c;
              for (int64_t j = 0; j < kk; ++j) {
                kern.acc_add(dt_base + idx[j] * c, dg + j * c, c);
              }
            }
          });
          Accumulate(nt, d_term);
        }
      });
}

ag::Variable OneStepFastGConvCsr(
    const ag::Variable& a_s, const std::shared_ptr<const graph::CsrMatrix>& csr,
    const ag::Variable& term, const std::vector<int64_t>& index_set,
    const ag::Variable& inv_deg) {
  SAGDFN_CHECK(csr != nullptr);
  SAGDFN_CHECK_EQ(term.shape().ndim(), 3);
  SAGDFN_CHECK_EQ(a_s.shape().ndim(), 2);
  const int64_t batch = term.dim(0);
  const int64_t n = term.dim(1);
  const int64_t c = term.dim(2);
  const int64_t k = static_cast<int64_t>(index_set.size());
  SAGDFN_CHECK_EQ(a_s.dim(0), n);
  SAGDFN_CHECK_EQ(a_s.dim(1), k);
  SAGDFN_CHECK_EQ(csr->rows, n);
  SAGDFN_CHECK_EQ(csr->cols, k);
  SAGDFN_CHECK_EQ(inv_deg.dim(0), n);
  SAGDFN_CHECK_EQ(inv_deg.size(), n);
  for (int64_t j = 0; j < k; ++j) {
    SAGDFN_CHECK_GE(index_set[j], 0);
    SAGDFN_CHECK_LT(index_set[j], n);
  }

  const graph::NodeShards shards =
      graph::ComputeNodeShards(n, c * static_cast<int64_t>(sizeof(float)));
  Tensor out{Shape({batch, n, c})};
  OneStepFastGConvCsrInto(*csr, term.value().data(), inv_deg.value().data(),
                          index_set, shards, batch, n, c, out.data());

  auto na = a_s.node();
  auto nt = term.node();
  auto ninv = inv_deg.node();
  std::vector<int64_t> idx = index_set;
  return MakeOp(
      "OneStepFastGConvCsr", out, {a_s, term, inv_deg},
      [na, nt, ninv, csr, idx, out, batch, n, c, k](const Tensor& g) {
        // Mirrors OneStepFastGConv's backward instruction-for-instruction;
        // only the gather pass walks CSR nonzeros instead of scanning the
        // dense a_s rows (the skipped entries are exact zeros, so the axpy
        // sequence — and every gradient byte — is unchanged).
        const int64_t kk = k;
        const float* pg = g.data();
        const float* pt = nt->value.data();
        const float* pinv = ninv->value.data();
        const float* pout = out.data();
        const int64_t* row_ptr = csr->row_ptr.data();
        const int32_t* pcol = csr->col.data();
        const float* pval = csr->val.data();

        Tensor d_term{Shape({batch, n, c})};
        float* pdt = d_term.data();
        ParallelFor(0, batch * n, RowGrain(c), [&](int64_t r0, int64_t r1) {
          const simd::Kernels& kern = simd::K();
          for (int64_t r = r0; r < r1; ++r) {
            const int64_t i = r % n;
            kern.mul_s(pg + r * c, pinv[i], pdt + r * c, c);
          }
        });

        if (na->requires_grad) {
          // d_a is dense even though a_s is sparse: the loss gradient
          // exists at zero entries too (same dense pass as the slim op).
          Tensor d_a{Shape({n, kk})};
          float* pda = d_a.data();
          ParallelFor(0, n, RowGrain(kk * c * batch),
                      [&](int64_t i0, int64_t i1) {
                        const simd::Kernels& kern = simd::K();
                        for (int64_t i = i0; i < i1; ++i) {
                          float* da_row = pda + i * kk;
                          for (int64_t j = 0; j < kk; ++j) {
                            double acc = 0.0;
                            for (int64_t b = 0; b < batch; ++b) {
                              acc += kern.dot(pdt + (b * n + i) * c,
                                              pt + (b * n + idx[j]) * c, c);
                            }
                            da_row[j] = static_cast<float>(acc);
                          }
                        }
                      });
          Accumulate(na, d_a);
        }

        if (ninv->requires_grad) {
          Tensor d_inv{Shape({n, 1})};
          float* pdi = d_inv.data();
          ParallelFor(0, n, RowGrain(batch * c), [&](int64_t i0, int64_t i1) {
            const simd::Kernels& kern = simd::K();
            for (int64_t i = i0; i < i1; ++i) {
              double acc = 0.0;
              for (int64_t b = 0; b < batch; ++b) {
                acc += kern.dot(pg + (b * n + i) * c,
                                pout + (b * n + i) * c, c);
              }
              pdi[i] = static_cast<float>(acc / pinv[i]);
            }
          });
          Accumulate(ninv, d_inv);
        }

        if (nt->requires_grad) {
          // Gather backward, CSR edition: the per-batch dg slab and the
          // ascending (i, then column) accumulation order are identical
          // to the dense op; the scatter still visits every j (adding an
          // exact 0.0f row for columns with no nonzeros, as the dense op
          // does) so even signed-zero bytes match.
          ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
            const simd::Kernels& kern = simd::K();
            ScratchArena& arena = ScratchArena::ThreadLocal();
            for (int64_t b = b0; b < b1; ++b) {
              ScratchArena::Scope scope(arena);
              float* dg = arena.AllocArray<float>(kk * c);
              std::memset(dg, 0, sizeof(float) * kk * c);
              const float* gm_base = pdt + b * n * c;
              for (int64_t i = 0; i < n; ++i) {
                const float* gm_row = gm_base + i * c;
                for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
                  kern.axpy(pval[e], gm_row, dg + pcol[e] * c, c);
                }
              }
              float* dt_base = pdt + b * n * c;
              for (int64_t j = 0; j < kk; ++j) {
                kern.acc_add(dt_base + idx[j] * c, dg + j * c, c);
              }
            }
          });
          Accumulate(nt, d_term);
        }
      });
}

ag::Variable GruBlend(const ag::Variable& z, const ag::Variable& h,
                      const ag::Variable& c) {
  SAGDFN_CHECK(z.shape() == h.shape());
  SAGDFN_CHECK(z.shape() == c.shape());
  const int64_t size = z.size();
  const float* pz = z.value().data();
  const float* ph = h.value().data();
  const float* pc = c.value().data();
  Tensor out(z.shape());
  float* po = out.data();
  ParallelFor(0, size, kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    simd::K().gru_blend(pz + i0, ph + i0, pc + i0, po + i0, i1 - i0);
  });

  auto nz = z.node();
  auto nh = h.node();
  auto nc = c.node();
  return MakeOp(
      "GruBlend", out, {z, h, c}, [nz, nh, nc, size](const Tensor& g) {
        const float* pg = g.data();
        const float* pz = nz->value.data();
        const float* ph = nh->value.data();
        const float* pc = nc->value.data();
        auto fused = [&](auto kernel_call) {
          Tensor d(nz->value.shape());
          float* pd = d.data();
          ParallelFor(0, size, kElementwiseGrain,
                      [&](int64_t i0, int64_t i1) {
                        kernel_call(i0, i1, pd);
                      });
          return d;
        };
        if (nz->requires_grad) {
          // dz = g * (h - c)
          Accumulate(nz, fused([&](int64_t i0, int64_t i1, float* pd) {
            simd::K().mul_sub(pg + i0, ph + i0, pc + i0, pd + i0, i1 - i0);
          }));
        }
        if (nh->requires_grad) {
          // dh = g * z
          Accumulate(nh, fused([&](int64_t i0, int64_t i1, float* pd) {
            simd::K().mul(pg + i0, pz + i0, pd + i0, i1 - i0);
          }));
        }
        if (nc->requires_grad) {
          // dc = g * (1 - z)
          Accumulate(nc, fused([&](int64_t i0, int64_t i1, float* pd) {
            simd::K().mul_one_minus(pg + i0, pz + i0, pd + i0, i1 - i0);
          }));
        }
      });
}

ag::Variable GruCandidateInput(const ag::Variable& gates,
                               const ag::Variable& x, const ag::Variable& h) {
  SAGDFN_CHECK_EQ(gates.shape().ndim(), 3);
  SAGDFN_CHECK_EQ(x.shape().ndim(), 3);
  SAGDFN_CHECK_EQ(h.shape().ndim(), 3);
  const int64_t batch = h.dim(0);
  const int64_t n = h.dim(1);
  const int64_t hd = h.dim(2);
  const int64_t c = x.dim(2);
  SAGDFN_CHECK_EQ(x.dim(0), batch);
  SAGDFN_CHECK_EQ(x.dim(1), n);
  SAGDFN_CHECK_EQ(gates.dim(0), batch);
  SAGDFN_CHECK_EQ(gates.dim(1), n);
  SAGDFN_CHECK_EQ(gates.dim(2), 2 * hd);
  const int64_t rows = batch * n;

  const bool track =
      ag::GradEnabled() &&
      (gates.requires_grad() || x.requires_grad() || h.requires_grad());
  Tensor out{Shape({batch, n, c + hd})};
  Tensor r;
  if (track) r = Tensor(h.shape());
  GruCandidateInputInto(gates.value().data(), x.value().data(),
                        h.value().data(), out.data(),
                        track ? r.data() : nullptr, rows, c, hd,
                        /*copy_x=*/true);

  auto ng = gates.node();
  auto nx = x.node();
  auto nh = h.node();
  return MakeOp(
      "GruCandidateInput", out, {gates, x, h},
      [ng, nx, nh, r, batch, n, c, hd](const Tensor& g) {
        const int64_t rows = batch * n;
        const int64_t out_stride = c + hd;
        const float* pg = g.data();
        if (nx->requires_grad) {
          // dx is the head slice of g.
          Tensor dx{Shape({batch, n, c})};
          float* pdx = dx.data();
          ParallelFor(0, rows, RowGrain(c), [&](int64_t r0, int64_t r1) {
            for (int64_t row = r0; row < r1; ++row) {
              std::memcpy(pdx + row * c, pg + row * out_stride,
                          sizeof(float) * c);
            }
          });
          Accumulate(nx, dx);
        }
        if (ng->requires_grad || nh->requires_grad) {
          const float* ph = nh->value.data();
          const float* pr = r.data();
          // Only the r half of the gate pre-activations is touched here;
          // the z half belongs to GruTailBlend's backward and both
          // accumulate into the same gates node.
          Tensor dgates{Shape({batch, n, 2 * hd})};
          Tensor dh(nh->value.shape());
          float* pdg = dgates.data();
          float* pdh = dh.data();
          ParallelFor(0, rows, RowGrain(hd), [&](int64_t r0, int64_t r1) {
            const simd::Kernels& kern = simd::K();
            for (int64_t row = r0; row < r1; ++row) {
              kern.sigmoid_mul_grad(pg + row * out_stride + c, pr + row * hd,
                                    ph + row * hd, pdg + row * 2 * hd,
                                    pdh + row * hd, hd);
            }
          });
          if (ng->requires_grad) Accumulate(ng, dgates);
          if (nh->requires_grad) Accumulate(nh, dh);
        }
      });
}

ag::Variable GruTailBlend(const ag::Variable& gates, const ag::Variable& h,
                          const ag::Variable& c_pre) {
  SAGDFN_CHECK_EQ(gates.shape().ndim(), 3);
  SAGDFN_CHECK(h.shape() == c_pre.shape());
  const int64_t batch = h.dim(0);
  const int64_t n = h.dim(1);
  const int64_t hd = h.dim(2);
  SAGDFN_CHECK_EQ(gates.dim(0), batch);
  SAGDFN_CHECK_EQ(gates.dim(1), n);
  SAGDFN_CHECK_EQ(gates.dim(2), 2 * hd);
  const int64_t rows = batch * n;

  const bool track =
      ag::GradEnabled() &&
      (gates.requires_grad() || h.requires_grad() || c_pre.requires_grad());
  Tensor out(h.shape());
  Tensor z, t;
  if (track) {
    z = Tensor(h.shape());
    t = Tensor(h.shape());
  }
  GruTailBlendInto(gates.value().data(), h.value().data(),
                   c_pre.value().data(), out.data(),
                   track ? z.data() : nullptr, track ? t.data() : nullptr,
                   rows, hd);

  auto ng = gates.node();
  auto nh = h.node();
  auto nc = c_pre.node();
  return MakeOp(
      "GruTailBlend", out, {gates, h, c_pre},
      [ng, nh, nc, z, t, batch, n, hd](const Tensor& g) {
        const int64_t rows = batch * n;
        const float* pg = g.data();
        const float* pz = z.data();
        const float* pt = t.data();
        const float* ph = nh->value.data();
        Tensor dgates{Shape({batch, n, 2 * hd})};
        Tensor dh(nh->value.shape());
        Tensor dc(nc->value.shape());
        float* pdg = dgates.data();
        float* pdh = dh.data();
        float* pdc = dc.data();
        ParallelFor(0, rows, RowGrain(hd), [&](int64_t r0, int64_t r1) {
          const simd::Kernels& kern = simd::K();
          for (int64_t row = r0; row < r1; ++row) {
            kern.gru_tail_grad(pg + row * hd, pz + row * hd, pt + row * hd,
                               ph + row * hd, pdg + row * 2 * hd + hd,
                               pdh + row * hd, pdc + row * hd, hd);
          }
        });
        Accumulate(ng, dgates);
        Accumulate(nh, dh);
        Accumulate(nc, dc);
      });
}

}  // namespace sagdfn::core
