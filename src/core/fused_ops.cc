#include "core/fused_ops.h"

#include <algorithm>
#include <cstring>

#include "tensor/simd.h"
#include "utils/arena.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace sagdfn::core {

namespace ag = ::sagdfn::autograd;
namespace simd = ::sagdfn::tensor::simd;

using ag::internal::MakeOp;
using ag::internal::Node;
using tensor::Shape;
using tensor::Tensor;
using utils::kElementwiseGrain;
using utils::ParallelFor;
using utils::ScratchArena;

namespace {

void Accumulate(const std::shared_ptr<Node>& node, const Tensor& g) {
  if (node->requires_grad) node->AccumulateGrad(g);
}

/// Row grain so each task carries roughly kElementwiseGrain elements.
int64_t RowGrain(int64_t row_len) {
  return std::max<int64_t>(
      1, kElementwiseGrain / std::max<int64_t>(1, row_len));
}

}  // namespace

ag::Variable OneStepFastGConv(const ag::Variable& a_s,
                              const ag::Variable& term,
                              const std::vector<int64_t>& index_set,
                              const ag::Variable& inv_deg) {
  SAGDFN_CHECK_EQ(term.shape().ndim(), 3);
  SAGDFN_CHECK_EQ(a_s.shape().ndim(), 2);
  const int64_t batch = term.dim(0);
  const int64_t n = term.dim(1);
  const int64_t c = term.dim(2);
  const int64_t k = static_cast<int64_t>(index_set.size());
  SAGDFN_CHECK_EQ(a_s.dim(0), n);
  SAGDFN_CHECK_EQ(a_s.dim(1), k);
  SAGDFN_CHECK_EQ(inv_deg.dim(0), n);
  SAGDFN_CHECK_EQ(inv_deg.size(), n);
  for (int64_t j = 0; j < k; ++j) {
    SAGDFN_CHECK_GE(index_set[j], 0);
    SAGDFN_CHECK_LT(index_set[j], n);
  }

  const float* pa = a_s.value().data();
  const float* pt = term.value().data();
  const float* pinv = inv_deg.value().data();

  Tensor out{Shape({batch, n, c})};
  float* po = out.data();
  // Each (b, i) output row is owned by exactly one task; the j scan runs
  // in ascending order inside a row, so accumulation order (and the
  // result) is independent of the partition.
  ParallelFor(0, batch * n, RowGrain(c), [&](int64_t r0, int64_t r1) {
    const simd::Kernels& kern = simd::K();
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t b = r / n;
      const int64_t i = r - b * n;
      const float* t_base = pt + b * n * c;
      float* out_row = po + r * c;
      std::memcpy(out_row, t_base + i * c, sizeof(float) * c);
      const float* a_row = pa + i * k;
      for (int64_t j = 0; j < k; ++j) {
        const float av = a_row[j];
        if (av == 0.0f) continue;
        kern.axpy(av, t_base + index_set[j] * c, out_row, c);
      }
      kern.scale(out_row, pinv[i], c);
    }
  });

  auto na = a_s.node();
  auto nt = term.node();
  auto ninv = inv_deg.node();
  std::vector<int64_t> idx = index_set;
  return MakeOp(
      "OneStepFastGConv", out, {a_s, term, inv_deg},
      [na, nt, ninv, idx, out, batch, n, c, k](const Tensor& g) {
        const int64_t kk = k;
        const float* pg = g.data();
        const float* pa = na->value.data();
        const float* pt = nt->value.data();
        const float* pinv = ninv->value.data();
        const float* pout = out.data();

        // gm = g * inv_deg (the gradient at `mixed`, before normalization)
        // doubles as the direct d_term contribution; it is materialized
        // into the d_term buffer and read back by the a_s / gather passes
        // BEFORE the scatter pass overwrites anything.
        Tensor d_term{Shape({batch, n, c})};
        float* pdt = d_term.data();
        ParallelFor(0, batch * n, RowGrain(c), [&](int64_t r0, int64_t r1) {
          const simd::Kernels& kern = simd::K();
          for (int64_t r = r0; r < r1; ++r) {
            const int64_t i = r % n;
            kern.mul_s(pg + r * c, pinv[i], pdt + r * c, c);
          }
        });

        if (na->requires_grad) {
          // d_a[i, j] = sum_b dot(gm[b, i, :], term[b, idx[j], :]);
          // disjoint a_s rows per task, batch loop in ascending order.
          Tensor d_a{Shape({n, kk})};
          float* pda = d_a.data();
          ParallelFor(0, n, RowGrain(kk * c * batch),
                      [&](int64_t i0, int64_t i1) {
                        const simd::Kernels& kern = simd::K();
                        for (int64_t i = i0; i < i1; ++i) {
                          float* da_row = pda + i * kk;
                          for (int64_t j = 0; j < kk; ++j) {
                            double acc = 0.0;
                            for (int64_t b = 0; b < batch; ++b) {
                              acc += kern.dot(pdt + (b * n + i) * c,
                                              pt + (b * n + idx[j]) * c, c);
                            }
                            da_row[j] = static_cast<float>(acc);
                          }
                        }
                      });
          Accumulate(na, d_a);
        }

        if (ninv->requires_grad) {
          // d_inv[i] = sum_{b,c} g * mixed, with mixed recomputed as
          // out / inv (inv = 1/(deg+1) is never zero).
          Tensor d_inv{Shape({n, 1})};
          float* pdi = d_inv.data();
          ParallelFor(0, n, RowGrain(batch * c), [&](int64_t i0, int64_t i1) {
            const simd::Kernels& kern = simd::K();
            for (int64_t i = i0; i < i1; ++i) {
              double acc = 0.0;
              for (int64_t b = 0; b < batch; ++b) {
                acc += kern.dot(pg + (b * n + i) * c,
                                pout + (b * n + i) * c, c);
              }
              pdi[i] = static_cast<float>(acc / pinv[i]);
            }
          });
          Accumulate(ninv, d_inv);
        }

        if (nt->requires_grad) {
          // Gather backward: dG[b, j, :] = sum_i a_s[i, j] * gm[b, i, :]
          // scattered into d_term[b, idx[j], :]. dG lives in the worker's
          // ScratchArena and is fully computed (reads of gm done) before
          // the scatter writes into the same batch slab — idx[j] may
          // alias any row, including i itself. Batches are disjoint per
          // task; the j scatter runs in ascending order, so repeated
          // indices accumulate deterministically.
          ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
            const simd::Kernels& kern = simd::K();
            ScratchArena& arena = ScratchArena::ThreadLocal();
            for (int64_t b = b0; b < b1; ++b) {
              ScratchArena::Scope scope(arena);
              float* dg = arena.AllocArray<float>(kk * c);
              std::memset(dg, 0, sizeof(float) * kk * c);
              const float* gm_base = pdt + b * n * c;
              for (int64_t i = 0; i < n; ++i) {
                const float* a_row = pa + i * kk;
                const float* gm_row = gm_base + i * c;
                for (int64_t j = 0; j < kk; ++j) {
                  const float av = a_row[j];
                  if (av == 0.0f) continue;
                  kern.axpy(av, gm_row, dg + j * c, c);
                }
              }
              float* dt_base = pdt + b * n * c;
              for (int64_t j = 0; j < kk; ++j) {
                kern.acc_add(dt_base + idx[j] * c, dg + j * c, c);
              }
            }
          });
          Accumulate(nt, d_term);
        }
      });
}

ag::Variable GruBlend(const ag::Variable& z, const ag::Variable& h,
                      const ag::Variable& c) {
  SAGDFN_CHECK(z.shape() == h.shape());
  SAGDFN_CHECK(z.shape() == c.shape());
  const int64_t size = z.size();
  const float* pz = z.value().data();
  const float* ph = h.value().data();
  const float* pc = c.value().data();
  Tensor out(z.shape());
  float* po = out.data();
  ParallelFor(0, size, kElementwiseGrain, [&](int64_t i0, int64_t i1) {
    simd::K().gru_blend(pz + i0, ph + i0, pc + i0, po + i0, i1 - i0);
  });

  auto nz = z.node();
  auto nh = h.node();
  auto nc = c.node();
  return MakeOp(
      "GruBlend", out, {z, h, c}, [nz, nh, nc, size](const Tensor& g) {
        const float* pg = g.data();
        const float* pz = nz->value.data();
        const float* ph = nh->value.data();
        const float* pc = nc->value.data();
        auto fused = [&](auto kernel_call) {
          Tensor d(nz->value.shape());
          float* pd = d.data();
          ParallelFor(0, size, kElementwiseGrain,
                      [&](int64_t i0, int64_t i1) {
                        kernel_call(i0, i1, pd);
                      });
          return d;
        };
        if (nz->requires_grad) {
          // dz = g * (h - c)
          Accumulate(nz, fused([&](int64_t i0, int64_t i1, float* pd) {
            simd::K().mul_sub(pg + i0, ph + i0, pc + i0, pd + i0, i1 - i0);
          }));
        }
        if (nh->requires_grad) {
          // dh = g * z
          Accumulate(nh, fused([&](int64_t i0, int64_t i1, float* pd) {
            simd::K().mul(pg + i0, pz + i0, pd + i0, i1 - i0);
          }));
        }
        if (nc->requires_grad) {
          // dc = g * (1 - z)
          Accumulate(nc, fused([&](int64_t i0, int64_t i1, float* pd) {
            simd::K().mul_one_minus(pg + i0, pz + i0, pd + i0, i1 - i0);
          }));
        }
      });
}

}  // namespace sagdfn::core
