#ifndef SAGDFN_CORE_MEMORY_MODEL_H_
#define SAGDFN_CORE_MEMORY_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sagdfn::core {

/// Model families whose asymptotic training footprint the paper discusses
/// (Table I, Example 1/2, and the OOM markers of Tables V-VII).
enum class ModelFamily {
  kDcrnn,
  kStgcn,
  kGraphWaveNet,
  kGman,
  kAgcrn,
  kMtgnn,
  kAstgcn,
  kStsgcn,
  kGts,
  kStep,
  kD2stgnn,
  kSagdfn,
};

/// Human-readable family name matching the paper's tables.
const char* FamilyName(ModelFamily family);

/// All families in the paper's table order.
std::vector<ModelFamily> AllFamilies();

/// Workload parameters the estimates depend on (paper notation: N nodes,
/// d node-embedding dim, D hidden dim, M significant nodes, B batch, T
/// window length, P attention heads).
struct MemoryParams {
  int64_t num_nodes = 2000;    // N
  int64_t batch = 32;          // B
  int64_t window = 24;         // T (history + horizon scale)
  int64_t hidden = 64;         // D
  int64_t embedding = 100;     // d
  int64_t m = 100;             // M
  int64_t heads = 8;           // P
  /// GTS/STEP featurize the full training sequence per node; this is the
  /// compressed per-node feature width their pairwise concat uses.
  int64_t sequence_feature = 640;
};

/// Byte-level decomposition of estimated training memory.
struct MemoryEstimate {
  /// Recurrent/temporal activations kept for backprop.
  double activation_bytes = 0.0;
  /// Graph-structure buffers (adjacency, pairwise features, attention).
  double graph_bytes = 0.0;
  /// Parameters + optimizer state.
  double parameter_bytes = 0.0;

  double total_bytes() const {
    return activation_bytes + graph_bytes + parameter_bytes;
  }
};

/// Analytic training-memory estimate for a family at the given sizes.
///
/// The estimate is leading-order with an autograd-tape multiplier of 3x
/// (forward value, gradient, workspace) on activation-sized buffers; the
/// per-family graph terms implement the scaling classes the paper
/// identifies: O(N^2)-per-batch (AGCRN/STGCN/GMAN/ASTGCN/STSGCN),
/// O(N^2 d)-pairwise (GTS/STEP), O(N^2 T^2) (D2STGNN), O(N^2) shared
/// (GraphWaveNet/MTGNN), sparse-predefined (DCRNN), and O(N M d)
/// (SAGDFN).
MemoryEstimate EstimateTrainingMemory(ModelFamily family,
                                      const MemoryParams& params);

/// True when the estimate exceeds the accelerator budget (the paper's
/// 32 GB V100 by default).
bool WouldOom(const MemoryEstimate& estimate,
              double budget_bytes = 32.0 * (1ull << 30));

/// Symbolic complexity strings reproducing paper Table I rows.
struct ComplexityFormula {
  std::string computation;
  std::string memory;
};

/// Table I row for the four families the paper lists (AGCRN, GTS, STEP,
/// SAGDFN); other families return their closest class.
ComplexityFormula FormulaFor(ModelFamily family);

/// Leading-order FLOP count of one graph-structure construction +
/// convolution pass (the quantities behind Table I's computation column).
double GraphComputeFlops(ModelFamily family, const MemoryParams& params);

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_MEMORY_MODEL_H_
