#ifndef SAGDFN_CORE_SAGDFN_H_
#define SAGDFN_CORE_SAGDFN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/fast_gconv.h"
#include "core/seq_model.h"
#include "core/sns.h"
#include "core/ssma.h"
#include "nn/linear.h"

namespace sagdfn::core {

/// Frozen inference-time view of the learned graph: the slim adjacency
/// A_s [N, M], its inverse-degree column (D + I)^{-1} [N, 1], and the
/// significant-node index set I. Computed once (no tape, no exploration)
/// via SagdfnModel::Snapshot() and shared read-only across serving
/// workers — the whole point of the slim N x M factorization is that this
/// snapshot is small enough to pin per model replica.
struct AdjacencySnapshot {
  tensor::Tensor a_s;              // [N, M]
  tensor::Tensor inv_deg;          // [N, 1]
  std::vector<int64_t> index_set;  // M node ids (columns of a_s)
  /// CsrFromDense(a_s), shared with eval rollouts / serving plans so the
  /// diffusion gather walks nonzeros instead of scanning N x M rows.
  /// Always set by Snapshot(); may be null in hand-built snapshots, which
  /// then fall back to the dense slim kernels.
  std::shared_ptr<const graph::CsrMatrix> csr;
};

/// Hyper-parameters of the SAGDFN model (paper Section V-A,
/// "Implementation": d = 100, M = 100, K = 80, J = 3, hidden 64, 8 heads,
/// one encoder-decoder layer; defaults here are scaled for CPU use and
/// overridden by the benches).
struct SagdfnConfig {
  int64_t num_nodes = 0;
  /// Node embedding dimension d.
  int64_t embedding_dim = 16;
  /// Significant neighbor count M (M << N).
  int64_t m = 20;
  /// Globally-significant prefix K (< M); M - K slots explore randomly.
  int64_t k = 16;
  /// GRU hidden size D.
  int64_t hidden_dim = 32;
  /// Attention heads P.
  int64_t heads = 4;
  /// Per-head FFN hidden width.
  int64_t ffn_hidden = 16;
  /// Graph diffusion depth J.
  int64_t diffusion_steps = 3;
  /// Entmax alpha in [1.0, 2.5].
  float alpha = 1.5f;
  /// Stacked OneStepFastGConv layers in the encoder-decoder (the paper
  /// uses 1; deeper stacks feed each layer's state sequence upward).
  int64_t num_layers = 1;
  /// History h and horizon f.
  int64_t history = 12;
  int64_t horizon = 12;
  /// Input channels (reading + time-of-day).
  int64_t input_dim = 2;
  /// Convergence iteration r: neighbor sampling explores while the global
  /// training iteration is below r, then the index set freezes to the
  /// top-M significant nodes.
  int64_t convergence_iters = 50;
  /// Ablation switches (paper Table VIII variants).
  bool use_entmax = true;     // false: "w/o Entmax" (softmax)
  bool use_attention = true;  // false: "w/o Pair-Wise Attention"
  bool use_sns = true;        // false: "w/o SNS" (random index set)
  uint64_t seed = 7;
};

/// The Scalable Adaptive Graph Diffusion Forecasting Network (paper
/// Section IV): Significant Neighbors Sampling -> Sparse Spatial
/// Multi-Head Attention -> encoder-decoder of OneStepFastGConv cells,
/// trained end-to-end with L1 loss (Algorithm 2).
class SagdfnModel : public SeqModel {
 public:
  explicit SagdfnModel(const SagdfnConfig& config);

  autograd::Variable Forward(const tensor::Tensor& x,
                             const tensor::Tensor& future_tod,
                             int64_t iteration,
                             const tensor::Tensor* teacher = nullptr,
                             double teacher_prob = 0.0) override;

  std::string name() const override { return "SAGDFN"; }
  int64_t horizon() const override { return config_.horizon; }

  /// Caps the sampling-convergence iteration r at 60% of the planned
  /// training length so short runs still get an exploration phase and a
  /// frozen tail (the paper sets r near embedding convergence).
  void OnTrainingPlan(int64_t total_iterations) override;

  /// Restores the significant-node index set from the checkpoint buffer.
  void OnStateLoaded() override;

  /// Checkpoints the scheduled-sampling RNG and the SNS sampler state
  /// (exploration RNG + candidate matrix) so a resumed run replays the
  /// exact neighbor-sampling and teacher-forcing sequence.
  std::vector<std::pair<std::string, std::vector<uint64_t>>>
  ExportRuntimeState() const override;
  utils::Status ImportRuntimeState(
      const std::vector<std::pair<std::string, std::vector<uint64_t>>>&
          state) override;

  const SagdfnConfig& config() const { return config_; }

  /// The current significant-node index set I (|I| = M after the first
  /// forward pass).
  const std::vector<int64_t>& index_set() const { return index_set_; }

  /// The node embedding matrix E [N, d].
  const autograd::Variable& embeddings() const { return embeddings_; }

  /// Computes the slim adjacency A_s [N, M] for the current embeddings
  /// and index set (inference-time inspection; no tape).
  tensor::Tensor ComputeSlimAdjacency();

  /// Freezes the learned graph for serving: one exploration-free index
  /// set (reusing the trained/restored set when present), the slim
  /// adjacency, and its inverse-degree column, all computed without a
  /// tape. The snapshot is immutable and safe to share read-only across
  /// threads; pair it with Predict().
  AdjacencySnapshot Snapshot();

  /// Inference-only forward pass against a frozen snapshot: no tape, no
  /// resampling, no scheduled sampling, no RNG use, and no mutation of
  /// model state — safe to call concurrently from many threads on one
  /// model instance (parameters are read-only inside). `x` is
  /// [B, h, N, C], `future_tod` [B, f]; returns scaled predictions
  /// [B, f, N]. Per batch row the result is bit-identical regardless of
  /// which other rows share the batch (every kernel treats batch rows
  /// independently), which is what makes dynamic micro-batching in
  /// serve::InferenceEngine deterministic.
  tensor::Tensor Predict(const tensor::Tensor& x,
                         const tensor::Tensor& future_tod,
                         const AdjacencySnapshot& snapshot) const;

  /// Densifies the learned adjacency to [N, N] (zero outside columns I),
  /// for comparison against a latent ground-truth graph.
  tensor::Tensor DenseAdjacency();

  /// Encoder-decoder cell for `layer` (read by core/rollout_plan).
  const GConvGruCell& cell(int64_t layer) const { return *cells_.at(layer); }

  /// The H -> 1 output projection (read by core/rollout_plan).
  const nn::Linear& output_projection() const { return *output_proj_; }

 private:
  /// Refreshes `index_set_` per Algorithm 2 lines 5-6.
  void MaybeResample(int64_t iteration);

  /// Mirrors (index_set_, frozen_) into the checkpoint buffer.
  void SyncIndexState();

  /// A_s from the configured attention variant.
  autograd::Variable Adjacency();

  /// Shared encoder-decoder rollout over a fixed adjacency. `sampling_rng`
  /// drives the scheduled-sampling coin flips and may be null when
  /// `teacher` is null (the inference path); with it null the rollout is
  /// const in the deep sense — no model state is touched.
  autograd::Variable Rollout(const autograd::Variable& a_s,
                             const autograd::Variable& inv_deg,
                             const std::vector<int64_t>& index_set,
                             const tensor::Tensor& x,
                             const tensor::Tensor& future_tod,
                             const tensor::Tensor* teacher,
                             double teacher_prob,
                             utils::Rng* sampling_rng,
                             const std::shared_ptr<const graph::CsrMatrix>&
                                 csr = nullptr) const;

  SagdfnConfig config_;
  utils::Rng rng_;
  autograd::Variable embeddings_;  // E: [N, d]
  std::unique_ptr<SignificantNeighborSampler> sampler_;
  std::unique_ptr<SparseSpatialAttention> attention_;
  std::vector<std::unique_ptr<GConvGruCell>> cells_;  // num_layers deep
  std::unique_ptr<nn::Linear> output_proj_;  // H -> 1 (W_x)
  std::vector<int64_t> index_set_;
  bool frozen_ = false;
  /// Checkpointed copy of (index_set_, frozen_): [m] ids then a flag.
  tensor::Tensor index_state_;
};

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_SAGDFN_H_
