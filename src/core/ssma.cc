#include "core/ssma.h"

#include "nn/init.h"
#include "obs/telemetry.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace sagdfn::core {

namespace ag = ::sagdfn::autograd;

SparseSpatialAttention::SparseSpatialAttention(const SsmaConfig& config,
                                               utils::Rng& rng)
    : config_(config) {
  SAGDFN_CHECK_GT(config.embedding_dim, 0);
  SAGDFN_CHECK_GT(config.m, 0);
  SAGDFN_CHECK_GT(config.heads, 0);
  SAGDFN_CHECK_GT(config.ffn_hidden, 0);
  for (int64_t p = 0; p < config_.heads; ++p) {
    // FFN_p: 2d -> hidden -> 2 (likely / unlikely correlation scores).
    head_ffns_.push_back(std::make_unique<nn::Mlp>(
        std::vector<int64_t>{2 * config_.embedding_dim, config_.ffn_hidden,
                             2},
        nn::Activation::kRelu, rng));
    RegisterModule("ffn" + std::to_string(p), head_ffns_.back().get());
  }
  output_proj_ = RegisterParameter(
      "w_a", ag::Variable(nn::XavierUniform(
                 tensor::Shape({2 * config_.heads, 1}), rng)));
}

ag::Variable SparseSpatialAttention::Forward(
    const ag::Variable& embeddings,
    const std::vector<int64_t>& index_set) const {
  SAGDFN_SCOPED_TIMER("ssma.forward");
  const int64_t n = embeddings.dim(0);
  const int64_t d = embeddings.dim(1);
  const int64_t m = static_cast<int64_t>(index_set.size());
  SAGDFN_CHECK_EQ(d, config_.embedding_dim);
  SAGDFN_CHECK_EQ(m, config_.m);

  // E_bar: [N, M, 2d] = concat(repeat(E_i along M), E_I broadcast along N).
  ag::Variable e_rows =
      ag::Expand(ag::Reshape(embeddings, {n, 1, d}),
                 tensor::Shape({n, m, d}));
  ag::Variable e_neighbors = ag::Expand(
      ag::Reshape(ag::IndexSelect(embeddings, 0, index_set), {1, m, d}),
      tensor::Shape({n, m, d}));
  ag::Variable e_bar = ag::Concat({e_rows, e_neighbors}, 2);

  // Per-head scores, sparsified along the neighbor (M) axis. Heads are
  // independent until the concat, so they run in parallel; tensor kernels
  // inside a head inline (nested regions run sequentially). Each head
  // writes only its own slot and tape recording happens on the worker, so
  // the recorded graph is identical to the sequential one. GradModeGuard
  // propagates the calling thread's (thread-local) grad mode.
  const int64_t num_heads = static_cast<int64_t>(head_ffns_.size());
  std::vector<ag::Variable> head_outputs(num_heads);
  const bool grad_mode = ag::GradEnabled();
  utils::ParallelFor(0, num_heads, 1, [&](int64_t p0, int64_t p1) {
    ag::GradModeGuard guard(grad_mode);
    for (int64_t p = p0; p < p1; ++p) {
      // Mlp consumes rank-3 input as [N, M, 2d] -> [N, M, 2].
      ag::Variable y = head_ffns_[p]->Forward(e_bar);
      head_outputs[p] = config_.use_entmax
                            ? Entmax(y, config_.alpha, /*axis=*/1)
                            : ag::Softmax(y, /*axis=*/1);
    }
  });
  ag::Variable z_all = ag::Concat(head_outputs, 2);  // [N, M, 2P]

  // Linear head combination: [N, M, 2P] @ [2P, 1] -> [N, M].
  ag::Variable a_s = ag::BatchedMatMul(z_all, output_proj_);
  return ag::Reshape(a_s, {n, m});
}

ag::Variable InnerProductAdjacency(const ag::Variable& embeddings,
                                   const std::vector<int64_t>& index_set) {
  // E [N, d] x E_I^T [d, M] -> [N, M].
  ag::Variable e_i = ag::IndexSelect(embeddings, 0, index_set);
  return ag::MatMul(embeddings, ag::Transpose(e_i, 0, 1));
}

}  // namespace sagdfn::core
