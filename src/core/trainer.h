#ifndef SAGDFN_CORE_TRAINER_H_
#define SAGDFN_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "core/seq_model.h"
#include "data/window_dataset.h"
#include "metrics/metrics.h"

namespace sagdfn::core {

/// Training-loop knobs. The paper trains with Adam on L1 loss (Eq. 11);
/// `max_train_batches_per_epoch` lets CPU benches subsample epochs while
/// keeping the protocol.
struct TrainOptions {
  int64_t epochs = 5;
  int64_t batch_size = 8;
  double learning_rate = 0.01;
  double grad_clip = 5.0;
  /// 0 = use every training window each epoch.
  int64_t max_train_batches_per_epoch = 0;
  /// 0 = evaluate on the whole split.
  int64_t max_eval_batches = 0;
  /// Early stopping patience in epochs (0 disables).
  int64_t patience = 0;
  /// Excludes missing readings (raw value 0, the METR-LA convention) from
  /// the training loss, matching the masked evaluation metrics.
  bool mask_missing = false;
  bool verbose = false;
  uint64_t seed = 123;
};

/// What Train() reports (feeds the paper's Table X cost columns and the
/// convergence plots).
struct TrainResult {
  std::vector<double> epoch_train_loss;
  std::vector<double> epoch_val_mae;
  int64_t epochs_run = 0;
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  double best_val_mae = 0.0;
};

/// Trains any SeqModel on a ForecastDataset with Adam + L1 loss and
/// evaluates it with the paper's masked metrics.
class Trainer {
 public:
  /// Neither pointer is owned; both must outlive the Trainer.
  Trainer(SeqModel* model, const data::ForecastDataset* dataset,
          TrainOptions options);

  /// Runs the full training loop.
  TrainResult Train();

  /// Predicts a split in original units: [S, f, N] where S is the number
  /// of evaluated windows (capped by max_eval_batches).
  tensor::Tensor Predict(data::Split split);

  /// Ground truth aligned with Predict(): [S, f, N].
  tensor::Tensor Truth(data::Split split) const;

  /// Convenience: per-horizon scores of Predict() vs Truth().
  std::vector<metrics::Scores> EvaluateSplit(
      data::Split split, const std::vector<int64_t>& horizons);

  /// Timed average seconds for one inference pass over the (capped) test
  /// split.
  double TimeInference();

  int64_t global_iteration() const { return iteration_; }

 private:
  int64_t EvalWindowCount(data::Split split) const;

  SeqModel* model_;
  const data::ForecastDataset* dataset_;
  TrainOptions options_;
  int64_t iteration_ = 0;
};

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_TRAINER_H_
