#ifndef SAGDFN_CORE_TRAINER_H_
#define SAGDFN_CORE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/seq_model.h"
#include "data/window_dataset.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace sagdfn::core {

/// Training-loop knobs. The paper trains with Adam on L1 loss (Eq. 11);
/// `max_train_batches_per_epoch` lets CPU benches subsample epochs while
/// keeping the protocol.
struct TrainOptions {
  int64_t epochs = 5;
  int64_t batch_size = 8;
  double learning_rate = 0.01;
  double grad_clip = 5.0;
  /// 0 = use every training window each epoch.
  int64_t max_train_batches_per_epoch = 0;
  /// 0 = evaluate on the whole split.
  int64_t max_eval_batches = 0;
  /// Early stopping patience in epochs (0 disables).
  int64_t patience = 0;
  /// Excludes missing readings (raw value 0, the METR-LA convention) from
  /// the training loss, matching the masked evaluation metrics.
  bool mask_missing = false;
  bool verbose = false;
  uint64_t seed = 123;

  // -- Fault tolerance ------------------------------------------------------

  /// Directory for full-state checkpoints (model + buffers + Adam
  /// moments + iteration + every RNG stream + the SNS index set). One
  /// checkpoint is written atomically after each epoch, plus `best.ckpt`
  /// (model-only, best validation MAE). Empty disables checkpointing —
  /// and with it Resume() and rollback weight-restores.
  std::string checkpoint_dir;
  /// Epoch checkpoints kept on disk; older ones are deleted after each
  /// successful save.
  int64_t keep_last_k = 3;
  /// Consecutive non-finite batches tolerated (each is skipped with its
  /// gradients zeroed) before rolling back to the last good checkpoint
  /// with a reduced learning rate.
  int64_t max_consecutive_skips = 3;
  /// Rollback + learning-rate-backoff attempts before Train() gives up
  /// and reports a utils::Status error instead of looping.
  int64_t max_rollbacks = 3;
  /// Learning-rate multiplier applied at each rollback (bounded backoff:
  /// after max_rollbacks the run fails rather than decaying forever).
  double backoff_factor = 0.5;
};

/// What Train() reports (feeds the paper's Table X cost columns and the
/// convergence plots).
struct TrainResult {
  std::vector<double> epoch_train_loss;
  std::vector<double> epoch_val_mae;
  int64_t epochs_run = 0;
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  double best_val_mae = 0.0;
  /// Non-OK when training aborted: fault storm after bounded LR backoff,
  /// a rollback restore that itself failed, or an injected crash.
  utils::Status status;
  /// Batches skipped by the non-finite guard (loss or gradient NaN/Inf).
  int64_t skipped_batches = 0;
  /// Rollbacks to the last good checkpoint performed.
  int64_t rollbacks = 0;
  /// Checkpoint/best saves that failed (training continues; the previous
  /// checkpoint stays the rollback/resume anchor).
  int64_t checkpoint_failures = 0;
};

/// Trains any SeqModel on a ForecastDataset with Adam + L1 loss and
/// evaluates it with the paper's masked metrics.
///
/// Fault-tolerant runtime: with `TrainOptions::checkpoint_dir` set the
/// trainer writes atomic full-state checkpoints each epoch, recovers
/// from non-finite losses/gradients by skipping batches and — past a
/// threshold — rolling back to the last good checkpoint with a halved
/// learning rate, and supports bit-exact mid-run restarts: a fresh
/// Trainer that Resume()s a checkpoint and finishes the plan produces
/// byte-identical parameters to an uninterrupted run.
class Trainer {
 public:
  /// Neither pointer is owned; both must outlive the Trainer.
  Trainer(SeqModel* model, const data::ForecastDataset* dataset,
          TrainOptions options);

  /// Runs the full training loop (or, after Resume(), the remainder).
  TrainResult Train();

  /// Restores the full training state — model parameters and buffers,
  /// Adam moments and step count, iteration, every RNG stream, and the
  /// SNS index set — from a checkpoint written by a Trainer with the
  /// same model architecture and options. Call before Train(); the
  /// resumed run continues bit-exactly where the checkpoint left off.
  utils::Status Resume(const std::string& path);

  /// The newest epoch checkpoint in `dir` ("" if none).
  static std::string LatestCheckpoint(const std::string& dir);

  /// Where the best-validation model checkpoint is written ("" when
  /// checkpointing is disabled).
  std::string BestCheckpointPath() const;

  /// Predicts a split in original units: [S, f, N] where S is the number
  /// of evaluated windows (capped by max_eval_batches).
  tensor::Tensor Predict(data::Split split);

  /// Ground truth aligned with Predict(): [S, f, N].
  tensor::Tensor Truth(data::Split split) const;

  /// Convenience: per-horizon scores of Predict() vs Truth().
  std::vector<metrics::Scores> EvaluateSplit(
      data::Split split, const std::vector<int64_t>& horizons);

  /// Timed average seconds for one inference pass over the (capped) test
  /// split.
  double TimeInference();

  int64_t global_iteration() const { return iteration_; }

  /// The Adam state driving this trainer (nullptr before the first
  /// Train()/Resume() call). Exposed for checkpoint round-trip tests.
  const optim::Adam* optimizer() const { return optimizer_.get(); }

 private:
  enum class EpochOutcome { kOk, kFaultStorm };

  int64_t EvalWindowCount(data::Split split) const;
  int64_t TrainBatchesPerEpoch() const;

  /// Builds the Adam optimizer over the model parameters (idempotent).
  void EnsureOptimizer();

  /// Runs one training epoch; appends the epoch loss on success. Returns
  /// kFaultStorm when max_consecutive_skips non-finite batches hit.
  EpochOutcome RunTrainEpoch(int64_t epoch, TrainResult* result);

  /// Rolls back to the last good checkpoint with a reduced learning
  /// rate. Returns false (with result->status set) when the backoff
  /// budget is exhausted or the restore itself fails.
  bool TryRollback(TrainResult* result);

  /// Full-state checkpoint I/O (model + optim + trainer meta sections).
  /// The Save/Restore wrappers time the I/O and emit ckpt.save/ckpt.load
  /// telemetry records around the Do* workers.
  std::string EpochCheckpointPath(int64_t completed_epochs) const;
  utils::Status SaveTrainerCheckpoint(const std::string& path,
                                      int64_t completed_epochs);
  utils::Status DoSaveTrainerCheckpoint(const std::string& path,
                                        int64_t completed_epochs);
  utils::Status RestoreTrainerCheckpoint(const std::string& path,
                                         bool rollback);
  utils::Status DoRestoreTrainerCheckpoint(const std::string& path);
  /// Deletes epoch checkpoints beyond keep_last_k (best.ckpt exempt).
  void RotateCheckpoints();

  /// Puts the best-validation parameters back on the model: from
  /// best.ckpt when checkpointing, else from the in-memory snapshot.
  void RestoreBestWeights(TrainResult* result);

  bool checkpointing() const { return !options_.checkpoint_dir.empty(); }

  SeqModel* model_;
  const data::ForecastDataset* dataset_;
  TrainOptions options_;
  utils::Rng rng_;
  std::unique_ptr<optim::Adam> optimizer_;

  int64_t iteration_ = 0;
  /// First epoch the next Train() call will run (set by Resume/rollback).
  int64_t next_epoch_ = 0;
  double decay_steps_ = 1.0;

  double best_val_ = 0.0;  // re-initialized at the top of Train()
  int64_t bad_epochs_ = 0;
  /// In-memory best-weights snapshot (only when checkpointing is off).
  std::vector<tensor::Tensor> best_weights_;

  int64_t consecutive_skips_ = 0;
  int64_t rollbacks_ = 0;
  /// Rollback count read from the last restored checkpoint (adopted on
  /// resume, ignored on rollback).
  int64_t restored_rollbacks_ = 0;
  /// Last finite clipped gradient norm (reported per epoch by telemetry).
  double last_grad_norm_ = 0.0;
  /// Path of the newest successfully written epoch checkpoint.
  std::string last_good_ckpt_;
  bool resumed_ = false;
};

class SagdfnModel;

/// One round of online fine-tuning for the serving loop: clones
/// `snapshot` (fresh SagdfnModel on the same config, parameters and
/// buffers copied in memory — the restored SNS buffer keeps the clone's
/// index set frozen, so only weights move), runs a short Trainer::Train
/// on `dataset` (which the caller builds over freshly buffered ticks
/// with the deployment's pinned scaler), and atomically writes the
/// resulting weights to `candidate_path` via nn::SaveModule. The caller
/// then offers the file to a serve::ModelRegistry, whose gate decides
/// publish vs reject — this function never touches live serving state.
/// `result`, when non-null, receives the inner training report.
utils::Status FineTuneFromSnapshot(const SagdfnModel& snapshot,
                                   const data::ForecastDataset& dataset,
                                   const TrainOptions& options,
                                   const std::string& candidate_path,
                                   TrainResult* result = nullptr);

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_TRAINER_H_
