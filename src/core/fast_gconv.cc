#include "core/fast_gconv.h"

#include "core/fused_ops.h"
#include "nn/init.h"
#include "obs/telemetry.h"
#include "utils/check.h"

namespace sagdfn::core {

namespace ag = ::sagdfn::autograd;

FastGraphConv::FastGraphConv(int64_t in_dim, int64_t out_dim,
                             int64_t diffusion_steps, utils::Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim), diffusion_steps_(diffusion_steps) {
  SAGDFN_CHECK_GT(in_dim, 0);
  SAGDFN_CHECK_GT(out_dim, 0);
  SAGDFN_CHECK_GE(diffusion_steps, 1);
  for (int64_t j = 0; j < diffusion_steps_; ++j) {
    weights_.push_back(RegisterParameter(
        "w" + std::to_string(j),
        ag::Variable(nn::XavierUniform(tensor::Shape({in_dim, out_dim}),
                                       rng))));
  }
  bias_ = RegisterParameter(
      "bias", ag::Variable(tensor::Tensor::Zeros(tensor::Shape({out_dim}))));
}

ag::Variable FastGraphConv::InverseDegree(const ag::Variable& a_s) {
  return ag::Div(
      ag::Variable(tensor::Tensor::Ones(tensor::Shape({a_s.dim(0), 1}))),
      ag::AddScalar(ag::Sum(ag::Abs(a_s), 1, /*keepdim=*/true), 1.0f));
}

ag::Variable FastGraphConv::Forward(
    const ag::Variable& a_s, const std::vector<int64_t>& index_set,
    const ag::Variable& x, const ag::Variable* inv_deg,
    const std::shared_ptr<const graph::CsrMatrix>& csr) const {
  SAGDFN_SCOPED_TIMER("gconv.forward");
  SAGDFN_CHECK_EQ(x.shape().ndim(), 3);
  SAGDFN_CHECK_EQ(x.dim(2), in_dim_);
  const int64_t n = x.dim(1);
  SAGDFN_CHECK_EQ(a_s.dim(0), n);
  SAGDFN_CHECK_EQ(a_s.dim(1), static_cast<int64_t>(index_set.size()));

  ag::Variable local_inv_deg;
  if (inv_deg == nullptr) {
    local_inv_deg = InverseDegree(a_s);
    inv_deg = &local_inv_deg;
  } else {
    SAGDFN_CHECK_EQ(inv_deg->dim(0), n);
  }

  // Diffusion series: term_0 = X; term_{j+1} = (D+I)^{-1}(A_s term_j[I] +
  // term_j). Each term contributes through its own W_j. The fused step
  // streams the indexed rows directly (no gathered [B, K, C] tensor, no
  // mixed/normalized intermediates); see core/fused_ops.h.
  ag::Variable term = x;
  ag::Variable out = ag::BatchedMatMul(term, weights_[0]);
  for (int64_t j = 1; j < diffusion_steps_; ++j) {
    term = csr != nullptr
               ? OneStepFastGConvCsr(a_s, csr, term, index_set, *inv_deg)
               : OneStepFastGConv(a_s, term, index_set, *inv_deg);
    out = ag::Add(out, ag::BatchedMatMul(term, weights_[j]));
  }
  return ag::Add(out, bias_);
}

GConvGruCell::GConvGruCell(int64_t in_dim, int64_t hidden_dim,
                           int64_t diffusion_steps, utils::Rng& rng)
    : in_dim_(in_dim), hidden_dim_(hidden_dim) {
  gate_conv_ = std::make_unique<FastGraphConv>(
      in_dim + hidden_dim, 2 * hidden_dim, diffusion_steps, rng);
  candidate_conv_ = std::make_unique<FastGraphConv>(
      in_dim + hidden_dim, hidden_dim, diffusion_steps, rng);
  RegisterModule("gates", gate_conv_.get());
  RegisterModule("candidate", candidate_conv_.get());
}

ag::Variable GConvGruCell::Forward(
    const ag::Variable& a_s, const std::vector<int64_t>& index_set,
    const ag::Variable& x, const ag::Variable& h,
    const ag::Variable* inv_deg,
    const std::shared_ptr<const graph::CsrMatrix>& csr) const {
  SAGDFN_CHECK_EQ(x.dim(2), in_dim_);
  SAGDFN_CHECK_EQ(h.dim(2), hidden_dim_);

  // inv_deg depends only on a_s: compute it once and share it between the
  // gate and candidate convolutions (callers looping over timesteps pass
  // it in, amortizing the reduction across the whole sequence).
  ag::Variable local_inv_deg;
  if (inv_deg == nullptr) {
    local_inv_deg = FastGraphConv::InverseDegree(a_s);
    inv_deg = &local_inv_deg;
  }

  ag::Variable xh = ag::Concat({x, h}, 2);
  ag::Variable gates = gate_conv_->Forward(a_s, index_set, xh, inv_deg, csr);
  // Fused tail (core/fused_ops.h): r is applied inside the candidate-input
  // build, z/tanh/blend collapse into one pass. Bit-identical to the
  // Sigmoid(Slice) -> Mul -> Concat -> Tanh -> GruBlend chain it replaces.
  ag::Variable x_rh = GruCandidateInput(gates, x, h);
  ag::Variable candidate_pre =
      candidate_conv_->Forward(a_s, index_set, x_rh, inv_deg, csr);
  return GruTailBlend(gates, h, candidate_pre);
}

ag::Variable GConvGruCell::InitialState(int64_t batch,
                                        int64_t num_nodes) const {
  return ag::Variable(tensor::Tensor::Zeros(
      tensor::Shape({batch, num_nodes, hidden_dim_})));
}

}  // namespace sagdfn::core
