#ifndef SAGDFN_CORE_ENTMAX_H_
#define SAGDFN_CORE_ENTMAX_H_

#include <cstdint>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace sagdfn::core {

/// alpha-entmax (Peters, Niculae & Martins, 2019), the sparsity-inducing
/// softmax generalization SAGDFN uses to refine spatial attention scores
/// (paper Eq. 7-8):
///
///   entmax_alpha(z) = [(alpha - 1) z - tau 1]_+^{1/(alpha - 1)}
///
/// with tau chosen so the output sums to 1. alpha = 1 recovers softmax,
/// alpha = 2 recovers sparsemax; larger alpha is sparser. The valid range
/// here is [1.0, 4.0] (the paper tunes within [1.0, 2.5]).
///
/// The threshold tau is found by bisection: f(tau) = sum_i [(alpha-1)z_i -
/// tau]_+^{1/(alpha-1)} - 1 is strictly decreasing and changes sign on
/// [(alpha-1)max(z) - 1, (alpha-1)max(z)].

/// Forward pass along `axis`. `iterations` bounds the bisection steps; 50
/// gives ~1e-15 interval width.
tensor::Tensor EntmaxForward(const tensor::Tensor& z, float alpha,
                             int64_t axis, int iterations = 50);

/// Analytic vector-Jacobian product. `p` is the forward output;
/// `grad_output` the upstream gradient. Uses the support-restricted
/// Jacobian J = diag(s) - s s^T / sum(s) with s_i = p_i^{2 - alpha}.
tensor::Tensor EntmaxBackward(const tensor::Tensor& p,
                              const tensor::Tensor& grad_output, float alpha,
                              int64_t axis);

/// Differentiable entmax along `axis`.
autograd::Variable Entmax(const autograd::Variable& z, float alpha,
                          int64_t axis);

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_ENTMAX_H_
