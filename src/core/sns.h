#ifndef SAGDFN_CORE_SNS_H_
#define SAGDFN_CORE_SNS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace sagdfn::core {

/// Significant Neighbors Sampling (paper Algorithm 1).
///
/// Maintains a candidate-neighbors matrix C in {0..N-1}^{N x M} (each row
/// holds M distinct candidate ids, so every node is considered about M
/// times overall). Each Sample() call:
///   1. ranks every row's candidates by Euclidean distance to the row's
///      node in embedding space (closer = more significant), re-sorting C
///      in place so significant candidates move to the queue front;
///   2. counts how often each node appears in the top-K prefix across all
///      rows and keeps the K globally most frequent nodes;
///   3. fills the remaining M - K slots with random exploration nodes
///      drawn from V \ V_K (skipped once exploration is disabled, i.e.
///      after the convergence iteration r).
///
/// The returned index set I (|I| = M) is what the Sparse Spatial
/// Multi-Head Attention module attends over, giving the slim N x M
/// adjacency its columns.
class SignificantNeighborSampler {
 public:
  /// Requires 0 < k <= m <= num_nodes.
  SignificantNeighborSampler(int64_t num_nodes, int64_t m, int64_t k,
                             uint64_t seed);

  /// Runs one sampling round against the current embeddings [N, d].
  /// With `explore` false the full M slots come from the global
  /// frequency ranking (no random fill).
  std::vector<int64_t> Sample(const tensor::Tensor& embeddings,
                              bool explore);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t m() const { return m_; }
  int64_t k() const { return k_; }

  /// Candidate row i (for tests; size M, distinct ids).
  const std::vector<int64_t>& candidates(int64_t row) const {
    EnsureCandidates();
    return candidates_[row];
  }

  /// Captures the sampler's mutable state — the exploration RNG and the
  /// candidate matrix C (re-sorted in place by every Sample() call) — as
  /// opaque words for checkpointing: Rng::kStateWords RNG words followed
  /// by the N*M candidate ids row-major.
  std::vector<uint64_t> SerializeState() const;

  /// Restores state captured by SerializeState() on a sampler built with
  /// the same (num_nodes, m, k); subsequent Sample() calls are
  /// bit-identical to the source sampler's. Rejects wrong-sized payloads
  /// and out-of-range candidate ids.
  utils::Status DeserializeState(const std::vector<uint64_t>& words);

 private:
  /// Materializes the seed-derived candidate matrix on first use. The
  /// draw order is identical to generating it in the constructor, so
  /// the deferral is unobservable — except in construction cost, which
  /// matters for eval-only loads (serve::FrozenModel never samples, so
  /// a 100k-node mapped load skips the N draws entirely). Logically
  /// const: the observable state afterward equals eager construction's.
  void EnsureCandidates() const;

  int64_t num_nodes_;
  int64_t m_;
  int64_t k_;
  mutable utils::Rng rng_;
  mutable bool candidates_ready_ = false;
  mutable std::vector<std::vector<int64_t>> candidates_;
};

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_SNS_H_
