#include "core/sagdfn.h"
#include <algorithm>


#include "obs/telemetry.h"
#include "tensor/tensor_ops.h"
#include "utils/check.h"

namespace sagdfn::core {

namespace ag = ::sagdfn::autograd;

SagdfnModel::SagdfnModel(const SagdfnConfig& config)
    : config_(config), rng_(config.seed) {
  SAGDFN_CHECK_GT(config_.num_nodes, 0);
  SAGDFN_CHECK_LE(config_.m, config_.num_nodes);
  SAGDFN_CHECK_LE(config_.k, config_.m);
  SAGDFN_CHECK_GT(config_.history, 0);
  SAGDFN_CHECK_GT(config_.horizon, 0);

  embeddings_ = RegisterParameter(
      "embeddings",
      ag::Variable(tensor::Tensor::Normal(
          tensor::Shape({config_.num_nodes, config_.embedding_dim}), rng_,
          0.0f, 1.0f)));

  sampler_ = std::make_unique<SignificantNeighborSampler>(
      config_.num_nodes, config_.m, config_.k, config_.seed + 1);

  SsmaConfig ssma;
  ssma.embedding_dim = config_.embedding_dim;
  ssma.m = config_.m;
  ssma.heads = config_.heads;
  ssma.ffn_hidden = config_.ffn_hidden;
  ssma.alpha = config_.alpha;
  ssma.use_entmax = config_.use_entmax;
  attention_ = std::make_unique<SparseSpatialAttention>(ssma, rng_);
  RegisterModule("attention", attention_.get());

  SAGDFN_CHECK_GE(config_.num_layers, 1);
  for (int64_t layer = 0; layer < config_.num_layers; ++layer) {
    const int64_t in_dim =
        layer == 0 ? config_.input_dim : config_.hidden_dim;
    cells_.push_back(std::make_unique<GConvGruCell>(
        in_dim, config_.hidden_dim, config_.diffusion_steps, rng_));
    RegisterModule("cell" + std::to_string(layer), cells_.back().get());
  }

  output_proj_ = std::make_unique<nn::Linear>(config_.hidden_dim, 1, rng_);
  RegisterModule("output_proj", output_proj_.get());

  // Checkpointed derived state: the selected index set plus the frozen
  // flag (entry m). -1 ids mean "not sampled yet".
  index_state_ = RegisterBuffer(
      "index_state",
      tensor::Tensor::Full(tensor::Shape({config_.m + 1}), -1.0f));
}

void SagdfnModel::OnStateLoaded() {
  if (index_state_[0] < 0.0f) {
    index_set_.clear();
    frozen_ = false;
    return;
  }
  index_set_.resize(config_.m);
  for (int64_t j = 0; j < config_.m; ++j) {
    index_set_[j] = static_cast<int64_t>(index_state_[j]);
    SAGDFN_CHECK_GE(index_set_[j], 0);
    SAGDFN_CHECK_LT(index_set_[j], config_.num_nodes);
  }
  frozen_ = index_state_[config_.m] > 0.5f;
}

std::vector<std::pair<std::string, std::vector<uint64_t>>>
SagdfnModel::ExportRuntimeState() const {
  return {{"rng", rng_.SerializeState()}, {"sns", sampler_->SerializeState()}};
}

utils::Status SagdfnModel::ImportRuntimeState(
    const std::vector<std::pair<std::string, std::vector<uint64_t>>>&
        state) {
  bool have_rng = false;
  bool have_sns = false;
  for (const auto& [name, words] : state) {
    if (name == "rng") {
      if (static_cast<int64_t>(words.size()) != utils::Rng::kStateWords) {
        return utils::Status::InvalidArgument(
            "SAGDFN rng state has wrong size");
      }
      rng_.DeserializeState(words);
      have_rng = true;
    } else if (name == "sns") {
      SAGDFN_RETURN_IF_ERROR(sampler_->DeserializeState(words));
      have_sns = true;
    } else {
      return utils::Status::InvalidArgument(
          "unknown SAGDFN runtime-state entry: " + name);
    }
  }
  if (!have_rng || !have_sns) {
    return utils::Status::InvalidArgument(
        "SAGDFN runtime state requires both 'rng' and 'sns' entries");
  }
  return utils::Status::Ok();
}

void SagdfnModel::OnTrainingPlan(int64_t total_iterations) {
  SAGDFN_CHECK_GT(total_iterations, 0);
  const int64_t cap =
      std::max<int64_t>(1, (total_iterations * 3) / 5);
  config_.convergence_iters = std::min(config_.convergence_iters, cap);
}

void SagdfnModel::MaybeResample(int64_t iteration) {
  if (!config_.use_sns) {
    if (index_set_.empty()) {
      // "w/o SNS" ablation: a random (but fixed) index set.
      index_set_ =
          rng_.SampleWithoutReplacement(config_.num_nodes, config_.m);
      SyncIndexState();
    }
    return;
  }
  if (!training() && index_set_.empty()) {
    // Cold-start inference (never trained / freshly loaded without a
    // sampled set): deterministic exploration-free draw.
    index_set_ = sampler_->Sample(embeddings_.value(), /*explore=*/false);
    SyncIndexState();
    return;
  }
  if (!training()) return;
  if (frozen_) return;
  if (iteration < config_.convergence_iters) {
    index_set_ = sampler_->Sample(embeddings_.value(), /*explore=*/true);
  } else {
    // Convergence reached: one final exploration-free draw, then freeze.
    index_set_ = sampler_->Sample(embeddings_.value(), /*explore=*/false);
    frozen_ = true;
  }
  SyncIndexState();
}

void SagdfnModel::SyncIndexState() {
  for (int64_t j = 0; j < config_.m; ++j) {
    index_state_[j] = static_cast<float>(index_set_[j]);
  }
  index_state_[config_.m] = frozen_ ? 1.0f : 0.0f;
}

ag::Variable SagdfnModel::Adjacency() {
  SAGDFN_SCOPED_TIMER("sagdfn.adjacency");
  if (config_.use_attention) {
    return attention_->Forward(embeddings_, index_set_);
  }
  return InnerProductAdjacency(embeddings_, index_set_);
}

ag::Variable SagdfnModel::Forward(const tensor::Tensor& x,
                                  const tensor::Tensor& future_tod,
                                  int64_t iteration,
                                  const tensor::Tensor* teacher,
                                  double teacher_prob) {
  // Training windows are exactly `history` frames; only the inference
  // path (Predict) accepts longer accumulated windows.
  SAGDFN_CHECK_EQ(x.ndim(), 4);
  SAGDFN_CHECK_EQ(x.dim(1), config_.history);
  MaybeResample(iteration);
  ag::Variable a_s = Adjacency();
  // (D + I)^{-1} depends only on a_s: compute once for the whole
  // encoder-decoder rollout instead of per conv per timestep.
  ag::Variable inv_deg = FastGraphConv::InverseDegree(a_s);
  return Rollout(a_s, inv_deg, index_set_, x, future_tod, teacher,
                 teacher_prob, &rng_);
}

ag::Variable SagdfnModel::Rollout(
    const ag::Variable& a_s, const ag::Variable& inv_deg,
    const std::vector<int64_t>& index_set, const tensor::Tensor& x,
    const tensor::Tensor& future_tod, const tensor::Tensor* teacher,
    double teacher_prob, utils::Rng* sampling_rng,
    const std::shared_ptr<const graph::CsrMatrix>& csr) const {
  SAGDFN_CHECK_EQ(x.ndim(), 4);
  const int64_t b = x.dim(0);
  const int64_t h = x.dim(1);
  const int64_t n = x.dim(2);
  const int64_t c = x.dim(3);
  // Training rollouts (via Forward, which checks) consume exactly
  // `history` frames. Inference (Predict) may pass a longer accumulated
  // window: the streaming differential tests re-encode every frame
  // received so far as the eager reference for incremental-tick replay.
  SAGDFN_CHECK_GE(h, 1);
  SAGDFN_CHECK_EQ(n, config_.num_nodes);
  SAGDFN_CHECK_EQ(c, config_.input_dim);
  const int64_t f = config_.horizon;
  SAGDFN_CHECK_EQ(future_tod.dim(0), b);
  SAGDFN_CHECK_EQ(future_tod.dim(1), f);
  SAGDFN_CHECK(teacher == nullptr || sampling_rng != nullptr)
      << "scheduled sampling needs an RNG";

  // Encoder over the h history steps; each layer consumes the previous
  // layer's state sequence.
  ag::Variable x_var{x};
  std::vector<ag::Variable> hidden(config_.num_layers);
  for (int64_t layer = 0; layer < config_.num_layers; ++layer) {
    hidden[layer] = cells_[layer]->InitialState(b, n);
  }
  ag::Variable step;
  {
    SAGDFN_SCOPED_TIMER("sagdfn.encoder");
    for (int64_t t = 0; t < h; ++t) {
      step = ag::Reshape(ag::Slice(x_var, 1, t, t + 1), {b, n, c});
      ag::Variable layer_input = step;
      for (int64_t layer = 0; layer < config_.num_layers; ++layer) {
        hidden[layer] = cells_[layer]->Forward(a_s, index_set,
                                               layer_input, hidden[layer],
                                               &inv_deg, csr);
        layer_input = hidden[layer];
      }
    }
  }

  // Decoder: first input is X_{t0} (the last observation, covariates
  // included); afterwards the previous prediction plus the known
  // time-of-day of the step being consumed. Covariate channels beyond
  // time-of-day (e.g. day-of-week) are carried forward from the last
  // observation — they change at most once within a horizon window.
  ag::Variable dec_input = step;
  ag::Variable extra_covariates;
  if (c > 2) extra_covariates = ag::Slice(step, 2, 2, c).Detach();
  std::vector<ag::Variable> predictions;
  predictions.reserve(f);
  SAGDFN_SCOPED_TIMER("sagdfn.decoder");
  for (int64_t t = 0; t < f; ++t) {
    ag::Variable layer_input = dec_input;
    for (int64_t layer = 0; layer < config_.num_layers; ++layer) {
      hidden[layer] = cells_[layer]->Forward(a_s, index_set, layer_input,
                                             hidden[layer], &inv_deg, csr);
      layer_input = hidden[layer];
    }
    ag::Variable pred = output_proj_->Forward(ag::Reshape(
        hidden[config_.num_layers - 1],
        {b * n, config_.hidden_dim}));  // [B*N, 1]
    pred = ag::Reshape(pred, {b, n});
    predictions.push_back(pred);
    if (t + 1 < f) {
      // Next decoder input: [value, tod of step t] per node, where value
      // is the model's prediction or — under scheduled sampling — the
      // ground truth.
      tensor::Tensor tod(tensor::Shape({b, n, 1}));
      const float* ft = future_tod.data();
      float* pt = tod.data();
      for (int64_t bi = 0; bi < b; ++bi) {
        const float v = ft[bi * f + t];
        for (int64_t i = 0; i < n; ++i) pt[bi * n + i] = v;
      }
      ag::Variable value = ag::Reshape(pred, {b, n, 1});
      if (teacher != nullptr && training() &&
          sampling_rng->Bernoulli(teacher_prob)) {
        value = ag::Variable(
            tensor::Slice(*teacher, 1, t, t + 1).Reshape({b, n, 1}));
      }
      if (c > 2) {
        dec_input = ag::Concat(
            {value, ag::Variable(tod), extra_covariates}, 2);
      } else {
        dec_input = ag::Concat({value, ag::Variable(tod)}, 2);
      }
    }
  }
  return ag::Stack(predictions, 1);  // [B, f, N]
}

tensor::Tensor SagdfnModel::ComputeSlimAdjacency() {
  ag::NoGradGuard guard;
  MaybeResample(/*iteration=*/0);
  return Adjacency().value();
}

AdjacencySnapshot SagdfnModel::Snapshot() {
  ag::NoGradGuard guard;
  // Freeze through the eval path: an already-sampled (trained or
  // restored) index set is kept as-is; a cold-start model gets one
  // deterministic exploration-free draw. A model snapshotted mid-training
  // must not advance its exploration RNG.
  const bool was_training = training();
  if (was_training) SetTraining(false);
  MaybeResample(/*iteration=*/0);
  if (was_training) SetTraining(true);
  AdjacencySnapshot snapshot;
  snapshot.index_set = index_set_;
  ag::Variable a_s = Adjacency();
  snapshot.a_s = a_s.value();
  snapshot.inv_deg = FastGraphConv::InverseDegree(a_s).value();
  snapshot.csr = std::make_shared<const graph::CsrMatrix>(
      graph::CsrFromDense(snapshot.a_s));
  return snapshot;
}

tensor::Tensor SagdfnModel::Predict(
    const tensor::Tensor& x, const tensor::Tensor& future_tod,
    const AdjacencySnapshot& snapshot) const {
  SAGDFN_CHECK_EQ(static_cast<int64_t>(snapshot.index_set.size()),
                  config_.m);
  ag::NoGradGuard guard;
  return Rollout(ag::Variable(snapshot.a_s), ag::Variable(snapshot.inv_deg),
                 snapshot.index_set, x, future_tod, /*teacher=*/nullptr,
                 /*teacher_prob=*/0.0, /*sampling_rng=*/nullptr,
                 snapshot.csr)
      .value();
}

tensor::Tensor SagdfnModel::DenseAdjacency() {
  tensor::Tensor slim = ComputeSlimAdjacency();
  const int64_t n = config_.num_nodes;
  const int64_t m = config_.m;
  tensor::Tensor dense = tensor::Tensor::Zeros(tensor::Shape({n, n}));
  const float* ps = slim.data();
  float* pd = dense.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      pd[i * n + index_set_[j]] = ps[i * m + j];
    }
  }
  return dense;
}

}  // namespace sagdfn::core
