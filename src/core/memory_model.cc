#include "core/memory_model.h"

#include "utils/check.h"

namespace sagdfn::core {
namespace {

constexpr double kBytesPerFloat = 4.0;
// Autograd keeps roughly forward value + gradient + workspace per
// activation-sized buffer.
constexpr double kTapeCopies = 3.0;
// Encoder + decoder, ~6 gate/candidate activations per recurrent step.
constexpr double kRecurrentBuffers = 12.0;
// Adam keeps two moments per parameter in addition to the gradient.
constexpr double kOptimizerCopies = 4.0;

double RecurrentActivations(const MemoryParams& p) {
  // B x T x N x D hidden state per buffered activation (Example 1's
  // "hidden state variables of size B x N x T x D").
  return static_cast<double>(p.batch) * p.window * p.num_nodes * p.hidden *
         kBytesPerFloat * kRecurrentBuffers * kTapeCopies;
}

double TemporalOnlyActivations(const MemoryParams& p) {
  // Attention-based temporal models keep B x T x N x D too, minus the
  // recurrence (fewer buffers).
  return static_cast<double>(p.batch) * p.window * p.num_nodes * p.hidden *
         kBytesPerFloat * 6.0 * kTapeCopies;
}

}  // namespace

const char* FamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kDcrnn:
      return "DCRNN";
    case ModelFamily::kStgcn:
      return "STGCN";
    case ModelFamily::kGraphWaveNet:
      return "GRAPH WaveNet";
    case ModelFamily::kGman:
      return "GMAN";
    case ModelFamily::kAgcrn:
      return "AGCRN";
    case ModelFamily::kMtgnn:
      return "MTGNN";
    case ModelFamily::kAstgcn:
      return "ASTGCN";
    case ModelFamily::kStsgcn:
      return "STSGCN";
    case ModelFamily::kGts:
      return "GTS";
    case ModelFamily::kStep:
      return "STEP";
    case ModelFamily::kD2stgnn:
      return "D2STGNN(c)";
    case ModelFamily::kSagdfn:
      return "SAGDFN";
  }
  return "?";
}

std::vector<ModelFamily> AllFamilies() {
  return {ModelFamily::kDcrnn,  ModelFamily::kStgcn,
          ModelFamily::kGraphWaveNet, ModelFamily::kGman,
          ModelFamily::kAgcrn,  ModelFamily::kMtgnn,
          ModelFamily::kAstgcn, ModelFamily::kStsgcn,
          ModelFamily::kGts,    ModelFamily::kStep,
          ModelFamily::kD2stgnn, ModelFamily::kSagdfn};
}

MemoryEstimate EstimateTrainingMemory(ModelFamily family,
                                      const MemoryParams& p) {
  MemoryEstimate est;
  const double n = static_cast<double>(p.num_nodes);
  const double b = static_cast<double>(p.batch);
  const double t = static_cast<double>(p.window);
  const double d_emb = static_cast<double>(p.embedding);
  const double hidden = static_cast<double>(p.hidden);
  const double m = static_cast<double>(p.m);
  const double heads = static_cast<double>(p.heads);

  est.activation_bytes = RecurrentActivations(p);
  // Generic parameter budget; refined per family below where the paper
  // reports wildly different counts (Table X).
  est.parameter_bytes =
      (hidden * hidden * 16.0 + n * d_emb) * kBytesPerFloat *
      kOptimizerCopies;

  switch (family) {
    case ModelFamily::kDcrnn:
      // Sparse predefined transition matrices: O(E) with E << N^2.
      est.graph_bytes = n * 32.0 * kBytesPerFloat * kTapeCopies;
      break;
    case ModelFamily::kStgcn:
      // Dense Chebyshev supports materialized per batched window.
      est.graph_bytes = b * t * n * n * kBytesPerFloat * kTapeCopies;
      est.activation_bytes = TemporalOnlyActivations(p);
      break;
    case ModelFamily::kGraphWaveNet:
    case ModelFamily::kMtgnn:
      // Adaptive adjacency from embedding inner products, shared across
      // the batch: O(N^2) plus O(N d) embeddings.
      est.graph_bytes =
          (n * n * 2.0 + n * d_emb) * kBytesPerFloat * kTapeCopies;
      est.activation_bytes = TemporalOnlyActivations(p);
      break;
    case ModelFamily::kGman:
    case ModelFamily::kAstgcn:
      // Spatial attention scores per head per time step per sample.
      est.graph_bytes = b * t * heads * n * n * kBytesPerFloat;
      est.activation_bytes = TemporalOnlyActivations(p);
      break;
    case ModelFamily::kStsgcn:
      // Localized spatial-temporal graph of 3 consecutive steps: (3N)^2
      // supports per window position.
      est.graph_bytes = b * t * 9.0 * n * n * kBytesPerFloat;
      est.activation_bytes = TemporalOnlyActivations(p);
      break;
    case ModelFamily::kAgcrn:
      // Node-adaptive supports materialized per batch element and step:
      // O(B T N^2) (paper Table I: O(N^2 + N d) memory per sample).
      est.graph_bytes = b * t * n * n * kBytesPerFloat * kTapeCopies;
      break;
    case ModelFamily::kGts:
    case ModelFamily::kStep: {
      // Pairwise concatenated sequence features: O(N^2 d) with d the
      // compressed full-sequence feature width (paper Table I memory
      // O(N^2 + N^2 d)).
      const double feat = static_cast<double>(p.sequence_feature);
      est.graph_bytes =
          (n * n * 2.0 * feat + n * n * d_emb) * kBytesPerFloat *
          kTapeCopies;
      break;
    }
    case ModelFamily::kD2stgnn:
      // Decoupled diffusion/inherent blocks with per-step spatial-temporal
      // attention: O(B T^2 N^2) activation-sized scores.
      est.graph_bytes = b * t * t * n * n * kBytesPerFloat * kTapeCopies;
      break;
    case ModelFamily::kSagdfn:
      // Slim pipeline: E_bar [N, M, 2d] per head plus A_s [N, M]
      // (Example 2: N x M x ... instead of N x N x ...).
      est.graph_bytes =
          (n * m * 2.0 * d_emb * heads + n * m) * kBytesPerFloat *
          kTapeCopies;
      // Hidden states shrink to B x M x T x D for the gathered rows plus
      // the per-node states.
      est.parameter_bytes =
          (hidden * hidden * 8.0 + n * d_emb) * kBytesPerFloat *
          kOptimizerCopies;
      break;
  }
  return est;
}

bool WouldOom(const MemoryEstimate& estimate, double budget_bytes) {
  SAGDFN_CHECK_GT(budget_bytes, 0.0);
  return estimate.total_bytes() > budget_bytes;
}

ComplexityFormula FormulaFor(ModelFamily family) {
  switch (family) {
    case ModelFamily::kAgcrn:
      return {"O(N^2 d + N^2 D)", "O(N^2 + N d)"};
    case ModelFamily::kGts:
    case ModelFamily::kStep:
      return {"O(N^2 d^2 + N^2 D)", "O(N^2 + N^2 d)"};
    case ModelFamily::kSagdfn:
      return {"O(N M d^2 + N M D)", "O(N M + N M d)"};
    case ModelFamily::kGman:
    case ModelFamily::kAstgcn:
      return {"O(N^2 D P)", "O(N^2 P)"};
    case ModelFamily::kD2stgnn:
      return {"O(N^2 T^2 D)", "O(N^2 T^2)"};
    case ModelFamily::kGraphWaveNet:
    case ModelFamily::kMtgnn:
      return {"O(N^2 d + N^2 D)", "O(N^2 + N d)"};
    case ModelFamily::kStgcn:
    case ModelFamily::kStsgcn:
      return {"O(N^2 D)", "O(N^2)"};
    case ModelFamily::kDcrnn:
      return {"O(E D)", "O(E)"};
  }
  return {"?", "?"};
}

double GraphComputeFlops(ModelFamily family, const MemoryParams& p) {
  const double n = static_cast<double>(p.num_nodes);
  const double d = static_cast<double>(p.embedding);
  const double hidden = static_cast<double>(p.hidden);
  const double m = static_cast<double>(p.m);
  switch (family) {
    case ModelFamily::kAgcrn:
    case ModelFamily::kGraphWaveNet:
    case ModelFamily::kMtgnn:
      return n * n * d + n * n * hidden;
    case ModelFamily::kGts:
    case ModelFamily::kStep:
      return n * n * d * d + n * n * hidden;
    case ModelFamily::kSagdfn:
      return n * m * d * d + n * m * hidden;
    case ModelFamily::kGman:
    case ModelFamily::kAstgcn:
      return n * n * hidden * p.heads;
    case ModelFamily::kD2stgnn:
      return n * n * p.window * p.window * hidden;
    case ModelFamily::kStgcn:
    case ModelFamily::kStsgcn:
      return n * n * hidden;
    case ModelFamily::kDcrnn:
      return n * 32.0 * hidden;
  }
  return 0.0;
}

}  // namespace sagdfn::core
