#ifndef SAGDFN_CORE_SEQ_MODEL_H_
#define SAGDFN_CORE_SEQ_MODEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "nn/module.h"
#include "utils/status.h"

namespace sagdfn::core {

/// Interface shared by SAGDFN and every neural baseline: a trainable model
/// mapping a history window to multi-step scaled predictions. One Trainer
/// (core/trainer.h) drives any SeqModel, so the paper's Tables III-X all
/// run through identical training/eval machinery.
class SeqModel : public nn::Module {
 public:
  /// `x`: [B, h, N, C] scaled inputs with covariates; `future_tod`:
  /// [B, f] time-of-day of the target steps. `iteration` is the global
  /// training step (models with curricula, like SAGDFN's neighbor
  /// sampling, key off it; ignored by most). Returns scaled predictions
  /// [B, f, N].
  ///
  /// `teacher` (optional, training only): scaled targets [B, f, N] for
  /// scheduled sampling — autoregressive decoders feed the ground-truth
  /// value instead of their own prediction with probability
  /// `teacher_prob` per decoder step (curriculum learning against
  /// exposure bias, as in DCRNN's training recipe). Models without an
  /// autoregressive decoder ignore it.
  virtual autograd::Variable Forward(const tensor::Tensor& x,
                                     const tensor::Tensor& future_tod,
                                     int64_t iteration,
                                     const tensor::Tensor* teacher = nullptr,
                                     double teacher_prob = 0.0) = 0;

  /// Human-readable model name for result tables.
  virtual std::string name() const = 0;

  /// Forecast horizon f this model was built for.
  virtual int64_t horizon() const = 0;

  /// Called by the Trainer before training with the planned number of
  /// optimizer iterations. Models with iteration-based curricula (SAGDFN's
  /// neighbor-sampling convergence r) can calibrate against it.
  virtual void OnTrainingPlan(int64_t total_iterations) {
    (void)total_iterations;
  }

  /// Named opaque 64-bit state that lives outside parameters and buffers
  /// but still determines the training trajectory — RNG streams
  /// (scheduled sampling, exploration) and derived sampler state. The
  /// Trainer bundles these into its checkpoints so a resumed run is
  /// bit-exact. Models without such state return nothing.
  virtual std::vector<std::pair<std::string, std::vector<uint64_t>>>
  ExportRuntimeState() const {
    return {};
  }

  /// Restores state captured by ExportRuntimeState() on an identically
  /// configured model. Unknown names or wrong-sized payloads are
  /// rejected; entries this model does not export are an error too.
  virtual utils::Status ImportRuntimeState(
      const std::vector<std::pair<std::string, std::vector<uint64_t>>>&
          state) {
    if (!state.empty()) {
      return utils::Status::InvalidArgument(
          name() + " has no runtime state but checkpoint carries " +
          std::to_string(state.size()) + " entries");
    }
    return utils::Status::Ok();
  }

 protected:
  /// Restores runtime state for models whose only such state is one RNG
  /// stream exported as {"rng", words} (the autoregressive baselines).
  static utils::Status ImportSingleRng(
      const std::vector<std::pair<std::string, std::vector<uint64_t>>>&
          state,
      utils::Rng* rng) {
    if (state.size() != 1 || state[0].first != "rng" ||
        static_cast<int64_t>(state[0].second.size()) !=
            utils::Rng::kStateWords) {
      return utils::Status::InvalidArgument(
          "expected a single 'rng' runtime-state entry of " +
          std::to_string(utils::Rng::kStateWords) + " words");
    }
    rng->DeserializeState(state[0].second);
    return utils::Status::Ok();
  }
};

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_SEQ_MODEL_H_
