#include "core/rollout_plan.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "core/fused_ops.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "utils/arena.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace sagdfn::core {

namespace simd = ::sagdfn::tensor::simd;

using tensor::Shape;
using tensor::Tensor;
using utils::ParallelFor;
using utils::ScratchArena;

namespace {

// Per-row work (in ~flops) a fused row-segment task should own. Matches
// kMatMulGrainFlops in tensor_ops.cc: segment tasks carry one or two
// small matmul rows plus the elementwise glue, so this keeps task sizes
// in the same regime as the eager matmuls without fragmenting the pool.
constexpr int64_t kSegmentGrainFlops = 1 << 16;

}  // namespace

RolloutPlan::RolloutPlan(const SagdfnModel& model,
                         const AdjacencySnapshot& snapshot, int64_t batch,
                         PlanKind kind) {
  const SagdfnConfig& cfg = model.config();
  SAGDFN_CHECK_GT(batch, 0);
  kind_ = kind;
  batch_ = batch;
  n_ = cfg.num_nodes;
  c_ = cfg.input_dim;
  hd_ = cfg.hidden_dim;
  layers_ = cfg.num_layers;
  // An incremental plan encodes exactly one new frame per replay; its
  // hidden state comes from the previous tick instead of a zero init.
  history_ = kind == PlanKind::kIncremental ? 1 : cfg.history;
  horizon_ = cfg.horizon;
  SAGDFN_CHECK_EQ(snapshot.a_s.dim(0), n_);
  SAGDFN_CHECK_EQ(snapshot.a_s.dim(1),
                  static_cast<int64_t>(snapshot.index_set.size()));
  SAGDFN_CHECK_EQ(snapshot.inv_deg.size(), n_);
  SAGDFN_CHECK_EQ(model.output_projection().in_features(), hd_);
  SAGDFN_CHECK_EQ(model.output_projection().out_features(), 1);

  // Local copies for capture (instructions must not reference `this`).
  const int64_t batch_n = batch_;
  const int64_t n = n_;
  const int64_t c = c_;
  const int64_t hd = hd_;
  const int64_t layers = layers_;
  const int64_t history = history_;
  const int64_t horizon = horizon_;
  const int64_t rows = batch_n * n;

  auto pin = [this](const Tensor& t) -> const float* {
    pinned_.push_back(t);
    return pinned_.back().data();
  };
  const float* pa = pin(snapshot.a_s);
  const float* pinv = pin(snapshot.inv_deg);
  auto idx = std::make_shared<const std::vector<int64_t>>(snapshot.index_set);
  // Frozen snapshots carry a CSR view of a_s; diffuse instructions then
  // run the node-sharded CSR gather (byte-identical to the dense slim
  // kernel, O(nnz) per step). Hand-built snapshots without one replay
  // through the dense kernel.
  auto csr = snapshot.csr;
  if (csr != nullptr) {
    SAGDFN_CHECK_EQ(csr->rows, n_);
    SAGDFN_CHECK_EQ(csr->cols, snapshot.a_s.dim(1));
  }

  // Scratch slab layout (float offsets). Buffers are reused across
  // timesteps and layers; xh / term_a / term_b are sized for the widest
  // layer input and packed tightly at each layer's own width.
  const int64_t max_in = std::max<int64_t>(c, hd) + hd;
  // Cache-aware node blocking for the CSR diffuse instructions: shards
  // sized so one shard's widest term rows fit in an L2 slice.
  std::shared_ptr<const graph::NodeShards> shards;
  if (csr != nullptr) {
    shards = std::make_shared<const graph::NodeShards>(
        graph::ComputeNodeShards(n, max_in *
                                        static_cast<int64_t>(sizeof(float))));
  }
  const int64_t off_h = 0;                            // layers * rows * hd
  const int64_t off_xh = off_h + layers * rows * hd;  // rows * max_in
  const int64_t off_ta = off_xh + rows * max_in;      // rows * max_in
  const int64_t off_tb = off_ta + rows * max_in;      // rows * max_in
  const int64_t off_mm = off_tb + rows * max_in;      // rows * 2hd
  const int64_t off_g = off_mm + rows * 2 * hd;       // rows * 2hd
  const int64_t off_cand = off_g + rows * 2 * hd;     // rows * hd
  const int64_t off_pred = off_cand + rows * hd;      // rows
  const int64_t off_dec = off_pred + rows;            // rows * c
  slab_floats_ = off_dec + rows * c;
  scratch_bytes_ = slab_floats_ * static_cast<int64_t>(sizeof(float));

  auto emit = [this](std::string label,
                     std::function<void(const RunCtx&)> fn) {
    instrs_.push_back({std::move(label), std::move(fn)});
  };

  // --- fused row-segment emitter -------------------------------------
  //
  // Every stage of the rollout except the graph-diffusion gather is
  // row-local: for rows [r0, r1) it reads only rows [r0, r1) of buffers
  // written earlier in the stream (plus run-wide constants) and writes
  // only rows [r0, r1). Such stages are queued as RowOps and flushed as
  // ONE instruction running a single ParallelFor whose tasks execute the
  // whole chain over their row range. This collapses the per-stage
  // dispatch cost (the dominant replay overhead at serving shapes) while
  // leaving every per-row value chain — and therefore every output
  // bit — identical to dispatching each stage separately.
  //
  // The diffusion gather reads arbitrary rows of its input, so it is a
  // barrier: the pending segment is flushed before it and it gets its
  // own instruction. Those gathers are the ONLY barriers in the rollout,
  // so segments span layer and timestep boundaries.
  using RowOp = std::function<void(const RunCtx&, int64_t, int64_t)>;
  struct Segment {
    std::vector<RowOp> ops;
    std::string first;
    std::string last;
    int64_t cost = 0;  // approx per-row flops, for grain selection
  };
  Segment seg;

  auto emit_row = [&](const std::string& label, int64_t cost_per_row,
                      RowOp op) {
    if (seg.ops.empty()) seg.first = label;
    seg.last = label;
    seg.cost += cost_per_row;
    seg.ops.push_back(std::move(op));
  };

  auto flush = [&]() {
    if (seg.ops.empty()) return;
    auto ops = std::make_shared<const std::vector<RowOp>>(std::move(seg.ops));
    const int64_t grain = std::max<int64_t>(
        1, kSegmentGrainFlops / std::max<int64_t>(1, seg.cost));
    std::string label =
        ops->size() == 1 ? seg.first
                         : "fuse{" + seg.first + ".." + seg.last + "}x" +
                               std::to_string(ops->size());
    seg = Segment{};
    emit(std::move(label), [=](const RunCtx& ctx) {
      ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
        for (const auto& op : *ops) op(ctx, r0, r1);
      });
    });
  };

  // Where a cell step reads its layer input from.
  enum class Src { kHistory, kDecoder, kHiddenBelow };

  // One FastGraphConv application: src (rows x in_w, packed) -> dst
  // (rows x out_w). Mirrors FastGraphConv::Forward exactly: W_0 matmul,
  // then per diffusion step a fused graph-diffusion (barrier), a W_j
  // matmul into mm scratch and an in-place accumulate, then the bias
  // row-add. Matmul rows use the same k-tile order as the eager
  // BatchedMatMul (see tensor::MatMulRowsInto).
  auto emit_conv = [&](const std::string& tag, const FastGraphConv& conv,
                       int64_t in_w, int64_t out_w, int64_t off_src,
                       int64_t off_dst) {
    SAGDFN_CHECK_EQ(conv.in_dim(), in_w);
    SAGDFN_CHECK_EQ(conv.out_dim(), out_w);
    const auto& ws = conv.weights();
    const float* w0 = pin(ws[0].value());
    emit_row(tag + ".mm0", 2 * in_w * out_w,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               tensor::MatMulRowsInto(ctx.slab + off_src, w0,
                                      ctx.slab + off_dst, r0, r1, in_w,
                                      out_w);
             });
    int64_t off_term = off_src;
    for (int64_t j = 1; j < conv.diffusion_steps(); ++j) {
      const int64_t off_next = (j % 2 == 1) ? off_ta : off_tb;
      flush();
      emit(tag + ".diffuse" + std::to_string(j), [=](const RunCtx& ctx) {
        if (csr != nullptr) {
          OneStepFastGConvCsrInto(*csr, ctx.slab + off_term, pinv, *idx,
                                  *shards, batch_n, n, in_w,
                                  ctx.slab + off_next);
        } else {
          OneStepFastGConvInto(pa, ctx.slab + off_term, pinv, *idx, batch_n,
                               n, in_w, ctx.slab + off_next);
        }
      });
      const float* wj = pin(ws[j].value());
      emit_row(tag + ".mm" + std::to_string(j), 2 * in_w * out_w,
               [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
                 tensor::MatMulRowsInto(ctx.slab + off_next, wj,
                                        ctx.slab + off_mm, r0, r1, in_w,
                                        out_w);
               });
      emit_row(tag + ".acc" + std::to_string(j), out_w,
               [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
                 simd::K().acc_add(ctx.slab + off_dst + r0 * out_w,
                                   ctx.slab + off_mm + r0 * out_w,
                                   (r1 - r0) * out_w);
               });
      off_term = off_next;
    }
    const float* bias = pin(conv.bias().value());
    emit_row(tag + ".bias", out_w,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               const simd::Kernels& kern = simd::K();
               float* dst = ctx.slab + off_dst;
               for (int64_t r = r0; r < r1; ++r) {
                 kern.add(dst + r * out_w, bias, dst + r * out_w, out_w);
               }
             });
  };

  // One GConvGruCell application for (timestep label `step`, layer l),
  // updating h[l] in place. Mirrors GConvGruCell::Forward; per-row
  // kernels match the *Into helpers in core/fused_ops.cc.
  auto emit_cell = [&](const std::string& step, int64_t l, Src src,
                       int64_t t) {
    const int64_t in_l = (l == 0) ? c : hd;
    const int64_t in_w = in_l + hd;
    const int64_t off_hl = off_h + l * rows * hd;
    const std::string tag = step + ".l" + std::to_string(l);

    // Stage [input | h] rows into the packed xh buffer.
    emit_row(tag + ".xh", in_w,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               float* xh = ctx.slab + off_xh;
               const float* hb = ctx.slab + off_hl;
               for (int64_t r = r0; r < r1; ++r) {
                 float* row = xh + r * in_w;
                 switch (src) {
                   case Src::kHistory: {
                     const int64_t bi = r / n;
                     const int64_t i = r - bi * n;
                     std::memcpy(row,
                                 ctx.x + ((bi * history + t) * n + i) * c,
                                 sizeof(float) * c);
                     break;
                   }
                   case Src::kDecoder:
                     std::memcpy(row, ctx.slab + off_dec + r * c,
                                 sizeof(float) * c);
                     break;
                   case Src::kHiddenBelow:
                     std::memcpy(
                         row, ctx.slab + off_h + (l - 1) * rows * hd + r * hd,
                         sizeof(float) * hd);
                     break;
                 }
                 std::memcpy(row + in_l, hb + r * hd, sizeof(float) * hd);
               }
             });

    const GConvGruCell& cell = model.cell(l);
    emit_conv(tag + ".gate", cell.gate_conv(), in_w, 2 * hd, off_xh, off_g);

    // Overwrite the h tail of xh with r*h: xh becomes [input | r*h], the
    // candidate conv input (the x head is already staged). Same per-row
    // kernel as GruCandidateInputInto with copy_x = false.
    emit_row(tag + ".cand_in", 8 * hd,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               const simd::Kernels& kern = simd::K();
               const float* g = ctx.slab + off_g;
               const float* hb = ctx.slab + off_hl;
               float* xh = ctx.slab + off_xh;
               for (int64_t r = r0; r < r1; ++r) {
                 kern.sigmoid_mul(g + r * 2 * hd, hb + r * hd,
                                  xh + r * in_w + in_l, /*r_out=*/nullptr,
                                  hd);
               }
             });

    emit_conv(tag + ".cand", cell.candidate_conv(), in_w, hd, off_xh,
              off_cand);

    // In-place GRU tail: h = z*h + (1-z)*tanh(candidate). Same per-row
    // kernel as GruTailBlendInto (gru_tail supports out == h).
    emit_row(tag + ".blend", 12 * hd,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               const simd::Kernels& kern = simd::K();
               const float* g = ctx.slab + off_g;
               const float* cp = ctx.slab + off_cand;
               float* hb = ctx.slab + off_hl;
               for (int64_t r = r0; r < r1; ++r) {
                 kern.gru_tail(g + r * 2 * hd + hd, hb + r * hd, cp + r * hd,
                               hb + r * hd, /*z_out=*/nullptr,
                               /*t_out=*/nullptr, hd);
               }
             });
  };

  if (kind == PlanKind::kIncremental) {
    // Resume point: import the previous tick's exported encoder state
    // byte-for-byte into the slab's hidden region. Row-local, so it fuses
    // into the first segment like init_h does.
    emit_row("load_h", layers * hd,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               for (int64_t l = 0; l < layers; ++l) {
                 std::memcpy(ctx.slab + off_h + l * rows * hd + r0 * hd,
                             ctx.h_in + l * rows * hd + r0 * hd,
                             sizeof(float) * (r1 - r0) * hd);
               }
             });
  } else {
    emit_row("init_h", layers * hd,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               for (int64_t l = 0; l < layers; ++l) {
                 std::memset(ctx.slab + off_h + l * rows * hd + r0 * hd, 0,
                             sizeof(float) * (r1 - r0) * hd);
               }
             });
  }

  const int64_t encode_steps = history_;
  for (int64_t t = 0; t < encode_steps; ++t) {
    const std::string step = "enc.t" + std::to_string(t);
    for (int64_t l = 0; l < layers; ++l) {
      emit_cell(step, l, l == 0 ? Src::kHistory : Src::kHiddenBelow, t);
    }
  }

  // Encoder-prefix resume point: export the post-encoder hidden state
  // before the decoder mutates it. Skipped per call when ctx.h_out is
  // null; row-local, so it rides in whatever segment is pending.
  emit_row("save_h", layers * hd,
           [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
             if (ctx.h_out == nullptr) return;
             for (int64_t l = 0; l < layers; ++l) {
               std::memcpy(ctx.h_out + l * rows * hd + r0 * hd,
                           ctx.slab + off_h + l * rows * hd + r0 * hd,
                           sizeof(float) * (r1 - r0) * hd);
             }
           });

  const nn::Linear& proj = model.output_projection();
  const float* wp = pin(proj.weight().value());
  const bool proj_bias = proj.has_bias();
  const float proj_bias_v =
      proj_bias ? proj.bias().value().data()[0] : 0.0f;
  const int64_t off_hlast = off_h + (layers - 1) * rows * hd;

  for (int64_t t = 0; t < horizon; ++t) {
    const std::string step = "dec.t" + std::to_string(t);
    for (int64_t l = 0; l < layers; ++l) {
      // The first decoder input is the last observation (all channels),
      // read straight from x; later steps consume the staged dec buffer.
      const Src src = (l > 0) ? Src::kHiddenBelow
                              : (t == 0 ? Src::kHistory : Src::kDecoder);
      emit_cell(step, l, src, history - 1);
    }
    emit_row(step + ".proj", 2 * hd,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               float* pred = ctx.slab + off_pred;
               tensor::MatMulRowsInto(ctx.slab + off_hlast, wp, pred, r0, r1,
                                      hd, 1);
               if (proj_bias) {
                 simd::K().add_s(pred + r0, proj_bias_v, pred + r0, r1 - r0);
               }
             });
    emit_row(step + ".store", 1,
             [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
               const float* pred = ctx.slab + off_pred;
               for (int64_t r = r0; r < r1; ++r) {
                 const int64_t bi = r / n;
                 ctx.out[(bi * horizon + t) * n + (r - bi * n)] = pred[r];
               }
             });
    if (t + 1 < horizon) {
      // Next decoder input rows: [prediction, tod of step t, carried
      // covariates from the last observation] (matches the eager
      // decoder's Concat).
      emit_row(step + ".next", c,
               [=](const RunCtx& ctx, int64_t r0, int64_t r1) {
                 float* dec = ctx.slab + off_dec;
                 const float* pred = ctx.slab + off_pred;
                 for (int64_t r = r0; r < r1; ++r) {
                   const int64_t bi = r / n;
                   const int64_t i = r - bi * n;
                   float* row = dec + r * c;
                   row[0] = pred[r];
                   row[1] = ctx.ft[bi * horizon + t];
                   const float* last =
                       ctx.x + ((bi * history + history - 1) * n + i) * c;
                   for (int64_t ch = 2; ch < c; ++ch) row[ch] = last[ch];
                 }
               });
    }
  }
  flush();

  // Dry run on zero inputs: validates the whole stream end to end and
  // warms the constructing thread's arena to the slab size. Incremental
  // plans resume from a zero state (and exercise the export path).
  if (kind_ == PlanKind::kIncremental) {
    Tensor state{Shape({state_floats()})};
    Run(Tensor{Shape({batch_, history_, n_, c_})},
        Tensor{Shape({batch_, horizon_})}, &state, &state);
  } else {
    Run(Tensor{Shape({batch_, history_, n_, c_})},
        Tensor{Shape({batch_, horizon_})});
  }
}

Tensor RolloutPlan::Run(const Tensor& x, const Tensor& future_tod) const {
  SAGDFN_CHECK(kind_ == PlanKind::kFull);
  return Run(x, future_tod, /*h_in=*/nullptr, /*h_out=*/nullptr);
}

Tensor RolloutPlan::Run(const Tensor& x, const Tensor& future_tod,
                        const Tensor* h_in, Tensor* h_out) const {
  SAGDFN_CHECK_EQ(x.ndim(), 4);
  SAGDFN_CHECK_EQ(x.dim(0), batch_);
  SAGDFN_CHECK_EQ(x.dim(1), history_);
  SAGDFN_CHECK_EQ(x.dim(2), n_);
  SAGDFN_CHECK_EQ(x.dim(3), c_);
  SAGDFN_CHECK_EQ(future_tod.ndim(), 2);
  SAGDFN_CHECK_EQ(future_tod.dim(0), batch_);
  SAGDFN_CHECK_EQ(future_tod.dim(1), horizon_);
  if (kind_ == PlanKind::kIncremental) {
    SAGDFN_CHECK(h_in != nullptr);
    SAGDFN_CHECK_EQ(h_in->size(), state_floats());
  } else {
    SAGDFN_CHECK(h_in == nullptr);
  }
  if (h_out != nullptr) {
    SAGDFN_CHECK_EQ(h_out->size(), state_floats());
  }

  Tensor out{Shape({batch_, horizon_, n_})};
  ScratchArena& arena = ScratchArena::ThreadLocal();
  ScratchArena::Scope scope(arena);
  RunCtx ctx;
  ctx.x = x.data();
  ctx.ft = future_tod.data();
  ctx.out = out.data();
  ctx.slab = arena.AllocArray<float>(slab_floats_);
  ctx.h_in = h_in != nullptr ? h_in->data() : nullptr;
  ctx.h_out = h_out != nullptr ? h_out->data() : nullptr;
  for (const Instr& ins : instrs_) ins.fn(ctx);
  return out;
}

std::string RolloutPlan::DebugString() const {
  std::ostringstream os;
  for (size_t i = 0; i < instrs_.size(); ++i) {
    os << i << ": " << instrs_[i].label << "\n";
  }
  return os.str();
}

}  // namespace sagdfn::core
