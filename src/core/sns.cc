#include "core/sns.h"

#include <algorithm>
#include <numeric>

#include "obs/telemetry.h"
#include "utils/check.h"

namespace sagdfn::core {

SignificantNeighborSampler::SignificantNeighborSampler(int64_t num_nodes,
                                                       int64_t m, int64_t k,
                                                       uint64_t seed)
    : num_nodes_(num_nodes), m_(m), k_(k), rng_(seed) {
  SAGDFN_CHECK_GT(k, 0);
  SAGDFN_CHECK_LE(k, m);
  SAGDFN_CHECK_LE(m, num_nodes);
}

void SignificantNeighborSampler::EnsureCandidates() const {
  if (candidates_ready_) return;
  candidates_ready_ = true;
  candidates_.resize(num_nodes_);
  for (int64_t i = 0; i < num_nodes_; ++i) {
    candidates_[i] = rng_.SampleWithoutReplacement(num_nodes_, m_);
  }
}

std::vector<int64_t> SignificantNeighborSampler::Sample(
    const tensor::Tensor& embeddings, bool explore) {
  SAGDFN_SCOPED_TIMER("sns.sample");
  EnsureCandidates();
  SAGDFN_CHECK_EQ(embeddings.ndim(), 2);
  SAGDFN_CHECK_EQ(embeddings.dim(0), num_nodes_);
  const int64_t d = embeddings.dim(1);
  const float* e = embeddings.data();

  // Lines 1-5: rank each row's candidates by embedding-space distance.
  std::vector<double> dist(m_);
  std::vector<int64_t> order(m_);
  std::vector<int64_t> sorted_row(m_);
  for (int64_t i = 0; i < num_nodes_; ++i) {
    auto& row = candidates_[i];
    const float* ei = e + i * d;
    for (int64_t j = 0; j < m_; ++j) {
      const float* ej = e + row[j] * d;
      double sq = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        const double diff = static_cast<double>(ei[c]) - ej[c];
        sq += diff * diff;
      }
      dist[j] = sq;
    }
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return dist[a] < dist[b];
    });
    for (int64_t j = 0; j < m_; ++j) sorted_row[j] = row[order[j]];
    row = sorted_row;
  }

  // Lines 6-7: global significance = frequency in the top-K prefix.
  std::vector<int64_t> frequency(num_nodes_, 0);
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t j = 0; j < k_; ++j) ++frequency[candidates_[i][j]];
  }
  std::vector<int64_t> by_freq(num_nodes_);
  std::iota(by_freq.begin(), by_freq.end(), 0);
  std::stable_sort(by_freq.begin(), by_freq.end(),
                   [&](int64_t a, int64_t b) {
                     return frequency[a] > frequency[b];
                   });

  std::vector<int64_t> index_set(by_freq.begin(), by_freq.begin() + k_);

  if (explore) {
    // Line 8: fill M - K slots from V \ V_K for exploration.
    std::vector<bool> taken(num_nodes_, false);
    for (int64_t v : index_set) taken[v] = true;
    std::vector<int64_t> rest;
    rest.reserve(num_nodes_ - k_);
    for (int64_t v = 0; v < num_nodes_; ++v) {
      if (!taken[v]) rest.push_back(v);
    }
    rng_.Shuffle(rest);
    for (int64_t j = 0; j < m_ - k_; ++j) index_set.push_back(rest[j]);
  } else {
    // Converged: take the top-M globally significant nodes outright.
    index_set.assign(by_freq.begin(), by_freq.begin() + m_);
  }
  SAGDFN_CHECK_EQ(static_cast<int64_t>(index_set.size()), m_);
  return index_set;
}

std::vector<uint64_t> SignificantNeighborSampler::SerializeState() const {
  EnsureCandidates();
  std::vector<uint64_t> words = rng_.SerializeState();
  words.reserve(words.size() + num_nodes_ * m_);
  for (const auto& row : candidates_) {
    for (int64_t id : row) words.push_back(static_cast<uint64_t>(id));
  }
  return words;
}

utils::Status SignificantNeighborSampler::DeserializeState(
    const std::vector<uint64_t>& words) {
  const int64_t expected = utils::Rng::kStateWords + num_nodes_ * m_;
  if (static_cast<int64_t>(words.size()) != expected) {
    return utils::Status::InvalidArgument(
        "SNS state size mismatch: got " + std::to_string(words.size()) +
        " words, expected " + std::to_string(expected));
  }
  std::vector<std::vector<int64_t>> candidates(num_nodes_);
  int64_t w = utils::Rng::kStateWords;
  for (int64_t i = 0; i < num_nodes_; ++i) {
    candidates[i].resize(m_);
    for (int64_t j = 0; j < m_; ++j) {
      const int64_t id = static_cast<int64_t>(words[w++]);
      if (id < 0 || id >= num_nodes_) {
        return utils::Status::InvalidArgument(
            "SNS state has out-of-range candidate id " + std::to_string(id));
      }
      candidates[i][j] = id;
    }
  }
  rng_.DeserializeState(std::vector<uint64_t>(
      words.begin(), words.begin() + utils::Rng::kStateWords));
  candidates_ = std::move(candidates);
  // The restored matrix replaces the seed-derived one wholesale; a
  // pending lazy materialization must not clobber it (and must not
  // burn draws from the restored rng stream).
  candidates_ready_ = true;
  return utils::Status::Ok();
}

}  // namespace sagdfn::core
