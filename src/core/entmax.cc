#include "core/entmax.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "utils/check.h"

namespace sagdfn::core {
namespace {

constexpr float kMinAlpha = 1.0f;
constexpr float kMaxAlpha = 4.0f;
// Below this distance from 1, entmax is numerically indistinguishable
// from softmax and the closed form is used.
constexpr float kSoftmaxEpsilon = 1e-4f;

/// Iterates (outer, inner) slices of a tensor along `axis`, presenting
/// each length-`axis_size` strided vector to `fn(read, write, stride)`.
struct AxisView {
  int64_t outer;
  int64_t axis_size;
  int64_t inner;
};

AxisView ViewAt(const tensor::Shape& shape, int64_t axis) {
  axis = shape.CanonicalAxis(axis);
  AxisView v{1, shape.dims()[axis], 1};
  for (int64_t i = 0; i < axis; ++i) v.outer *= shape.dims()[i];
  for (int64_t i = axis + 1; i < shape.ndim(); ++i) {
    v.inner *= shape.dims()[i];
  }
  return v;
}

/// Solves one entmax problem for the strided vector z[0], z[stride], ...
void SolveSlice(const float* z, float* out, int64_t n, int64_t stride,
                float alpha, int iterations) {
  const double am1 = alpha - 1.0;
  const double inv_am1 = 1.0 / am1;

  double z_max = -std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < n; ++i) {
    z_max = std::max(z_max, static_cast<double>(z[i * stride]));
  }

  // f(tau) = sum [( (alpha-1) z_i - tau )_+]^{1/(alpha-1)} - 1 is strictly
  // decreasing; it is >= 0 at tau_lo and < 0 at tau_hi.
  double tau_lo = am1 * z_max - 1.0;
  double tau_hi = am1 * z_max;
  auto mass = [&](double tau) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double t = am1 * z[i * stride] - tau;
      if (t > 0.0) total += std::pow(t, inv_am1);
    }
    return total;
  };
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (tau_lo + tau_hi);
    if (mass(mid) >= 1.0) {
      tau_lo = mid;
    } else {
      tau_hi = mid;
    }
  }
  const double tau = 0.5 * (tau_lo + tau_hi);

  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double t = am1 * z[i * stride] - tau;
    const double p = t > 0.0 ? std::pow(t, inv_am1) : 0.0;
    out[i * stride] = static_cast<float>(p);
    total += p;
  }
  // Renormalize the residual bisection error so the simplex constraint
  // holds exactly.
  if (total > 0.0) {
    const float inv = static_cast<float>(1.0 / total);
    for (int64_t i = 0; i < n; ++i) out[i * stride] *= inv;
  }
}

}  // namespace

tensor::Tensor EntmaxForward(const tensor::Tensor& z, float alpha,
                             int64_t axis, int iterations) {
  SAGDFN_CHECK_GE(alpha, kMinAlpha);
  SAGDFN_CHECK_LE(alpha, kMaxAlpha);
  SAGDFN_CHECK_GT(iterations, 0);
  if (alpha - 1.0f < kSoftmaxEpsilon) {
    return tensor::Softmax(z, axis);
  }
  const AxisView v = ViewAt(z.shape(), axis);
  tensor::Tensor out(z.shape());
  const float* pz = z.data();
  float* po = out.data();
  for (int64_t o = 0; o < v.outer; ++o) {
    for (int64_t i = 0; i < v.inner; ++i) {
      const int64_t base = o * v.axis_size * v.inner + i;
      SolveSlice(pz + base, po + base, v.axis_size, v.inner, alpha,
                 iterations);
    }
  }
  return out;
}

tensor::Tensor EntmaxBackward(const tensor::Tensor& p,
                              const tensor::Tensor& grad_output, float alpha,
                              int64_t axis) {
  SAGDFN_CHECK(p.shape() == grad_output.shape());
  const AxisView v = ViewAt(p.shape(), axis);
  tensor::Tensor grad_in(p.shape());
  const float* pp = p.data();
  const float* pg = grad_output.data();
  float* po = grad_in.data();
  const double exponent = 2.0 - alpha;

  for (int64_t o = 0; o < v.outer; ++o) {
    for (int64_t i = 0; i < v.inner; ++i) {
      const int64_t base = o * v.axis_size * v.inner + i;
      // s_i = p_i^(2 - alpha) on the support; J = diag(s) - s s^T / sum(s).
      double s_sum = 0.0;
      double sg_sum = 0.0;
      for (int64_t x = 0; x < v.axis_size; ++x) {
        const int64_t off = base + x * v.inner;
        if (pp[off] > 0.0f) {
          const double s = std::pow(static_cast<double>(pp[off]), exponent);
          s_sum += s;
          sg_sum += s * pg[off];
        }
      }
      const double ratio = s_sum > 0.0 ? sg_sum / s_sum : 0.0;
      for (int64_t x = 0; x < v.axis_size; ++x) {
        const int64_t off = base + x * v.inner;
        if (pp[off] > 0.0f) {
          const double s = std::pow(static_cast<double>(pp[off]), exponent);
          po[off] = static_cast<float>(s * (pg[off] - ratio));
        } else {
          po[off] = 0.0f;
        }
      }
    }
  }
  return grad_in;
}

autograd::Variable Entmax(const autograd::Variable& z, float alpha,
                          int64_t axis) {
  if (alpha - 1.0f < kSoftmaxEpsilon) {
    return autograd::Softmax(z, axis);
  }
  auto nz = z.node();
  tensor::Tensor out = EntmaxForward(z.value(), alpha, axis);
  return autograd::internal::MakeOp(
      "Entmax", out, {z}, [nz, out, alpha, axis](const tensor::Tensor& g) {
        if (!nz->requires_grad) return;
        nz->AccumulateGrad(EntmaxBackward(out, g, alpha, axis));
      });
}

}  // namespace sagdfn::core
