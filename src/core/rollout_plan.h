#ifndef SAGDFN_CORE_ROLLOUT_PLAN_H_
#define SAGDFN_CORE_ROLLOUT_PLAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sagdfn.h"
#include "tensor/tensor.h"

namespace sagdfn::core {

/// Precompiled eval-mode execution plan for the SAGDFN encoder/decoder
/// rollout.
///
/// SagdfnModel::Predict walks the autograd op layer every call: each of
/// the ~(h + f) * L cell steps rebuilds the same Concat/conv/blend
/// sequence, allocating a fresh output tensor per op and re-deriving
/// every shape. For a frozen model none of that can change between
/// requests, so the plan resolves it once at construction:
///
///   - the full kernel sequence (gather-free graph conv, fused GRU tail,
///     row-tiled matmuls) is flattened into a linear instruction list
///     with every weight pointer, buffer offset and row count baked in;
///   - row-local stages are fused into segments: everything between two
///     graph-diffusion gathers (the only stages that read other rows)
///     runs as ONE ParallelFor whose tasks execute the whole chain over
///     their row range, spanning layer and timestep boundaries — a
///     handful of pool dispatches per replay instead of one per op;
///   - all intermediates live in one scratch slab, sized at build time
///     and bump-allocated from the calling thread's ScratchArena per
///     Run — zero per-step heap allocation and no autograd-graph
///     construction during replay;
///   - a one-time dry run in the constructor validates the stream end to
///     end and warms the arena to the slab size.
///
/// Replay is bit-identical to SagdfnModel::Predict: every instruction
/// calls the same dispatched kernels with the same per-row accumulation
/// order as the eager ops it replaces (see tensor::MatMulInto and the
/// *Into helpers in core/fused_ops.h).
///
/// A plan is immutable after construction and safe to replay from many
/// threads concurrently (scratch is per-thread; the x/future_tod/output
/// buffers are per-call). It pins handle copies of every tensor it reads,
/// so it stays valid independent of the model's lifetime. Plans are
/// shape-specific: one plan serves exactly one batch size (serving
/// caches one per observed batch; see serve::FrozenModel).
class RolloutPlan {
 public:
  /// Builds the instruction stream for `batch`-sized requests against the
  /// frozen `snapshot`, then dry-runs it once on zero inputs.
  RolloutPlan(const SagdfnModel& model, const AdjacencySnapshot& snapshot,
              int64_t batch);

  /// Replays the plan: `x` [batch, history, N, C], `future_tod`
  /// [batch, horizon]; returns scaled predictions [batch, horizon, N],
  /// bit-identical to SagdfnModel::Predict on the same inputs.
  tensor::Tensor Run(const tensor::Tensor& x,
                     const tensor::Tensor& future_tod) const;

  int64_t batch() const { return batch_; }
  int64_t num_instructions() const {
    return static_cast<int64_t>(instrs_.size());
  }
  /// Bytes of per-thread arena scratch one replay bump-allocates.
  int64_t scratch_bytes() const { return scratch_bytes_; }
  /// One line per instruction: "<index>: <label>".
  std::string DebugString() const;

 private:
  /// Per-call state handed to every instruction.
  struct RunCtx {
    const float* x;    // [batch, history, N, C]
    const float* ft;   // [batch, horizon]
    float* out;        // [batch, horizon, N]
    float* slab;       // scratch_bytes() / 4 floats of arena scratch
  };
  struct Instr {
    std::string label;
    std::function<void(const RunCtx&)> fn;
  };

  int64_t batch_ = 0;
  int64_t n_ = 0;        // nodes
  int64_t c_ = 0;        // input channels
  int64_t hd_ = 0;       // hidden dim
  int64_t layers_ = 0;
  int64_t history_ = 0;
  int64_t horizon_ = 0;
  int64_t slab_floats_ = 0;
  int64_t scratch_bytes_ = 0;
  std::vector<Instr> instrs_;
  /// Handle copies pinning every tensor the instructions read (weights,
  /// biases, adjacency, inverse degrees).
  std::vector<tensor::Tensor> pinned_;
};

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_ROLLOUT_PLAN_H_
