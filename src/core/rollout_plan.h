#ifndef SAGDFN_CORE_ROLLOUT_PLAN_H_
#define SAGDFN_CORE_ROLLOUT_PLAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sagdfn.h"
#include "tensor/tensor.h"

namespace sagdfn::core {

/// Which rollout a plan compiles.
///
///   kFull        — the classic window rollout: zero-initialize the GRU
///                  hidden state, encode `history` frames, decode
///                  `horizon` steps. Optionally exports the post-encoder
///                  hidden state (the encoder-prefix resume point).
///   kIncremental — the streaming tick rollout: resume from an imported
///                  hidden state, encode exactly ONE new frame, decode
///                  `horizon` steps. A sliding window shares h-1 of its h
///                  encoder steps with the previous tick, so a tick costs
///                  O(1) encoder work instead of O(h). Chaining
///                  incremental ticks from a kFull run's exported state
///                  is bit-identical to re-encoding the whole accumulated
///                  frame sequence eagerly (same kernels, same per-row
///                  chains, the carried state is a byte copy of the slab).
enum class PlanKind { kFull, kIncremental };

/// Precompiled eval-mode execution plan for the SAGDFN encoder/decoder
/// rollout.
///
/// SagdfnModel::Predict walks the autograd op layer every call: each of
/// the ~(h + f) * L cell steps rebuilds the same Concat/conv/blend
/// sequence, allocating a fresh output tensor per op and re-deriving
/// every shape. For a frozen model none of that can change between
/// requests, so the plan resolves it once at construction:
///
///   - the full kernel sequence (gather-free graph conv, fused GRU tail,
///     row-tiled matmuls) is flattened into a linear instruction list
///     with every weight pointer, buffer offset and row count baked in;
///   - row-local stages are fused into segments: everything between two
///     graph-diffusion gathers (the only stages that read other rows)
///     runs as ONE ParallelFor whose tasks execute the whole chain over
///     their row range, spanning layer and timestep boundaries — a
///     handful of pool dispatches per replay instead of one per op;
///   - all intermediates live in one scratch slab, sized at build time
///     and bump-allocated from the calling thread's ScratchArena per
///     Run — zero per-step heap allocation and no autograd-graph
///     construction during replay;
///   - a one-time dry run in the constructor validates the stream end to
///     end and warms the arena to the slab size.
///
/// Replay is bit-identical to SagdfnModel::Predict: every instruction
/// calls the same dispatched kernels with the same per-row accumulation
/// order as the eager ops it replaces (see tensor::MatMulInto and the
/// *Into helpers in core/fused_ops.h).
///
/// A plan is immutable after construction and safe to replay from many
/// threads concurrently (scratch is per-thread; the x/future_tod/output
/// buffers are per-call). It pins handle copies of every tensor it reads,
/// so it stays valid independent of the model's lifetime. Plans are
/// shape-specific: one plan serves exactly one batch size (serving
/// caches one per observed batch; see serve::FrozenModel).
class RolloutPlan {
 public:
  /// Builds the instruction stream for `batch`-sized requests against the
  /// frozen `snapshot`, then dry-runs it once on zero inputs (and, for
  /// kIncremental, a zero imported state).
  RolloutPlan(const SagdfnModel& model, const AdjacencySnapshot& snapshot,
              int64_t batch, PlanKind kind = PlanKind::kFull);

  /// Replays a kFull plan: `x` [batch, history, N, C], `future_tod`
  /// [batch, horizon]; returns scaled predictions [batch, horizon, N],
  /// bit-identical to SagdfnModel::Predict on the same inputs.
  tensor::Tensor Run(const tensor::Tensor& x,
                     const tensor::Tensor& future_tod) const;

  /// Replays with encoder-state I/O — the streaming tick entry point.
  /// `x` is [batch, encoded_steps(), N, C] (one frame for kIncremental).
  /// `h_in` must be a tensor of state_floats() floats for kIncremental
  /// (the previous tick's exported state) and null for kFull; `h_out`,
  /// when non-null, receives the post-encoder hidden state — the resume
  /// point the NEXT tick's kIncremental replay imports. `h_in` and
  /// `h_out` may alias: every state row is consumed before it is
  /// rewritten. The decoder never touches the exported copy.
  tensor::Tensor Run(const tensor::Tensor& x,
                     const tensor::Tensor& future_tod,
                     const tensor::Tensor* h_in, tensor::Tensor* h_out) const;

  PlanKind kind() const { return kind_; }
  /// Encoder steps one replay consumes: `history` for kFull, 1 for
  /// kIncremental.
  int64_t encoded_steps() const { return history_; }
  /// Floats in the carried encoder state: layers * batch * N * hidden.
  /// Layout matches the slab's hidden region (layer-major, then row).
  int64_t state_floats() const { return layers_ * batch_ * n_ * hd_; }

  int64_t batch() const { return batch_; }
  int64_t num_instructions() const {
    return static_cast<int64_t>(instrs_.size());
  }
  /// Bytes of per-thread arena scratch one replay bump-allocates.
  int64_t scratch_bytes() const { return scratch_bytes_; }
  /// One line per instruction: "<index>: <label>".
  std::string DebugString() const;

 private:
  /// Per-call state handed to every instruction.
  struct RunCtx {
    const float* x;    // [batch, encoded_steps, N, C]
    const float* ft;   // [batch, horizon]
    float* out;        // [batch, horizon, N]
    float* slab;       // scratch_bytes() / 4 floats of arena scratch
    const float* h_in = nullptr;  // imported encoder state (kIncremental)
    float* h_out = nullptr;       // exported resume point (optional)
  };
  struct Instr {
    std::string label;
    std::function<void(const RunCtx&)> fn;
  };

  PlanKind kind_ = PlanKind::kFull;
  int64_t batch_ = 0;
  int64_t n_ = 0;        // nodes
  int64_t c_ = 0;        // input channels
  int64_t hd_ = 0;       // hidden dim
  int64_t layers_ = 0;
  int64_t history_ = 0;
  int64_t horizon_ = 0;
  int64_t slab_floats_ = 0;
  int64_t scratch_bytes_ = 0;
  std::vector<Instr> instrs_;
  /// Handle copies pinning every tensor the instructions read (weights,
  /// biases, adjacency, inverse degrees).
  std::vector<tensor::Tensor> pinned_;
};

}  // namespace sagdfn::core

#endif  // SAGDFN_CORE_ROLLOUT_PLAN_H_
