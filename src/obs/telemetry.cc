#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "utils/arena.h"
#include "utils/logging.h"

namespace sagdfn::obs {
namespace {

/// Monotonic epoch shared by every "ts" field; anchored at first use.
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// JSON string escaping (control characters, quote, backslash).
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

int BucketOf(int64_t nanos) {
  const int64_t micros = nanos / 1000;
  int b = 0;
  while (b + 1 < kTimerBuckets && micros >= (int64_t{1} << (b + 1))) ++b;
  return b;
}

void AtomicMin(std::atomic<int64_t>& slot, int64_t value) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void TimerStats::Merge(const TimerStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  total_seconds += other.total_seconds;
  min_seconds = std::min(min_seconds, other.min_seconds);
  max_seconds = std::max(max_seconds, other.max_seconds);
  for (int i = 0; i < kTimerBuckets; ++i) buckets[i] += other.buckets[i];
}

// -- Event --------------------------------------------------------------

Event::Event(std::string_view type) : type_(type) {}

Event& Event::Str(std::string_view key, std::string_view value) {
  fields_.emplace_back(std::string(key),
                       "\"" + EscapeJson(value) + "\"");
  return *this;
}

Event& Event::Int(std::string_view key, int64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

Event& Event::Double(std::string_view key, double value) {
  fields_.emplace_back(std::string(key), JsonNumber(value));
  return *this;
}

Event& Event::Bool(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

std::string Event::ToJson() const {
  std::string out = "{\"ts\":" + JsonNumber(Telemetry::NowSeconds()) +
                    ",\"event\":\"" + EscapeJson(type_) + "\"";
  for (const auto& [key, value] : fields_) {
    out += ",\"" + EscapeJson(key) + "\":" + value;
  }
  out += "}";
  return out;
}

// -- TimerSite ----------------------------------------------------------

TimerSite::TimerSite(const char* name) : name_(name) {
  Telemetry::Global().RegisterSite(this);
}

TimerSite::~TimerSite() { Telemetry::Global().RetireSite(this); }

void TimerSite::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(min_nanos_, nanos);
  AtomicMax(max_nanos_, nanos);
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
}

TimerStats TimerSite::Snapshot() const {
  TimerStats stats;
  stats.count = count_.load(std::memory_order_relaxed);
  if (stats.count == 0) return stats;
  stats.total_seconds =
      total_nanos_.load(std::memory_order_relaxed) * 1e-9;
  stats.min_seconds = min_nanos_.load(std::memory_order_relaxed) * 1e-9;
  stats.max_seconds = max_nanos_.load(std::memory_order_relaxed) * 1e-9;
  for (int i = 0; i < kTimerBuckets; ++i) {
    stats.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return stats;
}

// -- Telemetry ----------------------------------------------------------

std::atomic<bool> Telemetry::collect_{false};

struct Telemetry::Impl {
  mutable std::mutex mu;
  std::FILE* sink = nullptr;
  std::string sink_path;
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<TimerSite*> sites;
  /// Totals of destroyed TimerSites, keyed by scope name.
  std::map<std::string, TimerStats> retired;
};

Telemetry::Telemetry() : impl_(new Impl) {}

Telemetry& Telemetry::Global() {
  static Telemetry* instance = [] {
    ProcessEpoch();  // anchor ts=0 at first telemetry touch
    auto* t = new Telemetry();
    if (const char* path = std::getenv("SAGDFN_TELEMETRY");
        path != nullptr && path[0] != '\0') {
      utils::Status status = t->Configure(path);
      if (!status.ok()) {
        SAGDFN_LOG(Warning) << "SAGDFN_TELEMETRY: " << status.ToString()
                            << "; telemetry sink disabled";
      }
    }
    return t;
  }();
  return *instance;
}

double Telemetry::NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessEpoch())
      .count();
}

utils::Status Telemetry::Configure(const std::string& jsonl_path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->sink != nullptr) {
    std::fclose(impl_->sink);
    impl_->sink = nullptr;
    impl_->sink_path.clear();
  }
  if (jsonl_path.empty()) return utils::Status::Ok();
  std::FILE* f = std::fopen(jsonl_path.c_str(), "a");
  if (f == nullptr) {
    return utils::Status::NotFound("cannot open telemetry sink " +
                                  jsonl_path);
  }
  impl_->sink = f;
  impl_->sink_path = jsonl_path;
  SetCollectionEnabled(true);
  const std::string line =
      Event("run.start").Str("sink", jsonl_path).ToJson();
  std::fputs(line.c_str(), f);
  std::fputc('\n', f);
  std::fflush(f);
  return utils::Status::Ok();
}

bool Telemetry::sink_open() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->sink != nullptr;
}

std::string Telemetry::sink_path() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->sink_path;
}

void Telemetry::Emit(const Event& event) {
  const std::string line = event.ToJson();
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->sink == nullptr) return;
  std::fputs(line.c_str(), impl_->sink);
  std::fputc('\n', impl_->sink);
  std::fflush(impl_->sink);
}

void Telemetry::AddCounter(std::string_view name, int64_t delta) {
  if (!CollectionEnabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->counters[std::string(name)] += delta;
}

void Telemetry::SetGauge(std::string_view name, double value) {
  if (!CollectionEnabled()) return;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->gauges[std::string(name)] = value;
}

void Telemetry::RecordDuration(std::string_view name, double seconds) {
  if (!CollectionEnabled()) return;
  TimerStats one;
  one.count = 1;
  one.total_seconds = seconds;
  one.min_seconds = seconds;
  one.max_seconds = seconds;
  one.buckets[BucketOf(static_cast<int64_t>(seconds * 1e9))] = 1;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->retired[std::string(name)].Merge(one);
}

int64_t Telemetry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  return it != impl_->counters.end() ? it->second : 0;
}

double Telemetry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  return it != impl_->gauges.end() ? it->second : 0.0;
}

TimerStats Telemetry::timer(const std::string& name) const {
  TimerStats stats;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->retired.find(name);
  if (it != impl_->retired.end()) stats.Merge(it->second);
  for (TimerSite* site : impl_->sites) {
    if (name == site->name()) stats.Merge(site->Snapshot());
  }
  return stats;
}

std::vector<std::pair<std::string, int64_t>> Telemetry::counters() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return {impl_->counters.begin(), impl_->counters.end()};
}

std::vector<std::pair<std::string, double>> Telemetry::gauges() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return {impl_->gauges.begin(), impl_->gauges.end()};
}

std::vector<std::pair<std::string, TimerStats>> Telemetry::timers() const {
  std::map<std::string, TimerStats> merged;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    merged = impl_->retired;
    for (TimerSite* site : impl_->sites) {
      merged[site->name()].Merge(site->Snapshot());
    }
  }
  std::vector<std::pair<std::string, TimerStats>> out;
  out.reserve(merged.size());
  for (auto& [name, stats] : merged) {
    if (stats.count > 0) out.emplace_back(name, stats);
  }
  return out;
}

void Telemetry::EmitSnapshot(std::string_view label) {
  // Scratch-arena telemetry rides along with every snapshot: the
  // process-wide bump-allocator high-water mark shows the peak transient
  // footprint of the fused kernels' backing buffers.
  SetGauge("arena.high_water_bytes",
           static_cast<double>(utils::ScratchArena::ProcessHighWater()));
  Event event("timers.snapshot");
  event.Str("label", label);
  for (const auto& [name, stats] : timers()) {
    event.Int(std::string(name) + ".count", stats.count)
        .Double(std::string(name) + ".total_s", stats.total_seconds)
        .Double(std::string(name) + ".mean_s", stats.mean_seconds())
        .Double(std::string(name) + ".min_s", stats.min_seconds)
        .Double(std::string(name) + ".max_s", stats.max_seconds);
  }
  for (const auto& [name, value] : counters()) event.Int(name, value);
  for (const auto& [name, value] : gauges()) event.Double(name, value);
  Emit(event);
}

utils::Status Telemetry::WriteRegistryJson(const std::string& path,
                                           std::string_view title) const {
  // Refresh the scratch-arena gauge at flush time: benches and jobs that
  // never call EmitSnapshot would otherwise persist a stale (or absent)
  // `arena.high_water_bytes`, and the process-wide max over every
  // thread's arena is only meaningful once the workload has run.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->gauges["arena.high_water_bytes"] =
        static_cast<double>(utils::ScratchArena::ProcessHighWater());
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return utils::Status::NotFound("cannot write registry json " + path);
  }
  std::string out = "{\n  \"title\": \"" + EscapeJson(title) + "\",\n";
  out += "  \"timers\": {\n";
  const auto timer_list = timers();
  for (size_t i = 0; i < timer_list.size(); ++i) {
    const auto& [name, stats] = timer_list[i];
    out += "    \"" + EscapeJson(name) + "\": {\"count\": " +
           std::to_string(stats.count) +
           ", \"total_s\": " + JsonNumber(stats.total_seconds) +
           ", \"mean_s\": " + JsonNumber(stats.mean_seconds()) +
           ", \"min_s\": " + JsonNumber(stats.min_seconds) +
           ", \"max_s\": " + JsonNumber(stats.max_seconds) + "}";
    out += i + 1 < timer_list.size() ? ",\n" : "\n";
  }
  out += "  },\n  \"counters\": {\n";
  const auto counter_list = counters();
  for (size_t i = 0; i < counter_list.size(); ++i) {
    out += "    \"" + EscapeJson(counter_list[i].first) +
           "\": " + std::to_string(counter_list[i].second);
    out += i + 1 < counter_list.size() ? ",\n" : "\n";
  }
  out += "  },\n  \"gauges\": {\n";
  const auto gauge_list = gauges();
  for (size_t i = 0; i < gauge_list.size(); ++i) {
    out += "    \"" + EscapeJson(gauge_list[i].first) +
           "\": " + JsonNumber(gauge_list[i].second);
    out += i + 1 < gauge_list.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  const bool ok = std::fputs(out.c_str(), f) >= 0;
  std::fclose(f);
  if (!ok) return utils::Status::NotFound("short write to " + path);
  return utils::Status::Ok();
}

void Telemetry::ResetRegistry() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->counters.clear();
  impl_->gauges.clear();
  impl_->retired.clear();
  // Live sites cannot be zeroed race-free from here; fold them into a
  // baseline would complicate snapshots, so tests simply read deltas or
  // use fresh scope names. Retired totals and counters do reset.
}

void Telemetry::RegisterSite(TimerSite* site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sites.push_back(site);
}

void Telemetry::RetireSite(TimerSite* site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = std::find(impl_->sites.begin(), impl_->sites.end(), site);
  if (it != impl_->sites.end()) impl_->sites.erase(it);
  impl_->retired[site->name()].Merge(site->Snapshot());
}

}  // namespace sagdfn::obs
