#ifndef SAGDFN_OBS_TELEMETRY_H_
#define SAGDFN_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "utils/status.h"

namespace sagdfn::obs {

/// Log2-microsecond duration buckets kept per timer scope (bucket i counts
/// durations in [2^i, 2^(i+1)) microseconds; bucket 0 also absorbs < 1 us).
inline constexpr int kTimerBuckets = 24;

/// Aggregate statistics for one timer scope.
struct TimerStats {
  int64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  int64_t buckets[kTimerBuckets] = {};

  double mean_seconds() const {
    return count > 0 ? total_seconds / count : 0.0;
  }
  /// Folds `other` into this aggregate (for merging call sites that share
  /// a scope name).
  void Merge(const TimerStats& other);
};

/// One JSONL telemetry record: an ordered list of key/value fields
/// serialized as a single JSON object. Every record carries "ts" (seconds
/// on the process-wide monotonic clock) and "event" (the record type).
class Event {
 public:
  explicit Event(std::string_view type);

  Event& Str(std::string_view key, std::string_view value);
  Event& Int(std::string_view key, int64_t value);
  Event& Double(std::string_view key, double value);
  Event& Bool(std::string_view key, bool value);

  /// The record as one JSON object (no trailing newline). NaN/Inf doubles
  /// serialize as null (JSON has no literal for them).
  std::string ToJson() const;

  const std::string& type() const { return type_; }

 private:
  std::string type_;
  /// Field values are pre-rendered JSON fragments (quoted/escaped for
  /// strings, literals for numbers and bools).
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Per-call-site timer accumulator behind SAGDFN_SCOPED_TIMER. Sites are
/// function-local statics: they register with the global registry on first
/// execution and fold their totals back into it on destruction, so
/// snapshots never read freed memory. All updates are relaxed atomics —
/// safe from inside parallel regions (e.g. per-head SSMA workers).
class TimerSite {
 public:
  explicit TimerSite(const char* name);
  ~TimerSite();

  TimerSite(const TimerSite&) = delete;
  TimerSite& operator=(const TimerSite&) = delete;

  const char* name() const { return name_; }

  void Record(int64_t nanos);

  /// A point-in-time copy of this site's aggregates.
  TimerStats Snapshot() const;

 private:
  const char* name_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> total_nanos_{0};
  std::atomic<int64_t> min_nanos_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_nanos_{0};
  std::atomic<int64_t> buckets_[kTimerBuckets] = {};
};

/// Process-wide telemetry registry and JSONL sink.
///
/// Collection (scoped timers, counters, gauges) is off by default and
/// costs one relaxed atomic load per probe; it turns on when a JSONL sink
/// is configured — via the SAGDFN_TELEMETRY environment variable (read at
/// first Global() access) or Configure() — or explicitly via
/// SetCollectionEnabled(true) (benches use this to collect a cost
/// breakdown without streaming events). Defining SAGDFN_DISABLE_TELEMETRY
/// at compile time turns SAGDFN_SCOPED_TIMER into a no-op token-for-token,
/// removing even the atomic load.
///
/// Events are appended to the sink as one JSON object per line (JSONL) and
/// flushed per record; the schema is documented in DESIGN.md §5e.
class Telemetry {
 public:
  /// The process-wide instance (leaked singleton: safe to touch from
  /// static destructors). First access honors SAGDFN_TELEMETRY=path.
  static Telemetry& Global();

  /// True when timer sites / counters are recording.
  static bool CollectionEnabled() {
    return collect_.load(std::memory_order_relaxed);
  }
  static void SetCollectionEnabled(bool on) {
    collect_.store(on, std::memory_order_relaxed);
  }

  /// Opens (appends to) `jsonl_path` as the event sink and enables
  /// collection; an empty path closes the sink. Emits a "run.start"
  /// record on success.
  utils::Status Configure(const std::string& jsonl_path);

  /// True when a JSONL sink is open.
  bool sink_open() const;
  std::string sink_path() const;

  /// Appends one record to the sink (no-op without a sink). Thread-safe;
  /// each record is written and flushed atomically with respect to other
  /// Emit calls.
  void Emit(const Event& event);

  // -- Registry ------------------------------------------------------------

  /// Adds `delta` to the named monotonic counter.
  void AddCounter(std::string_view name, int64_t delta = 1);
  /// Sets the named gauge to its latest value.
  void SetGauge(std::string_view name, double value);
  /// Folds one duration into the named timer scope (the non-macro path;
  /// SAGDFN_SCOPED_TIMER is cheaper on hot paths).
  void RecordDuration(std::string_view name, double seconds);

  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  /// Aggregate over every live and retired call site with this scope name.
  TimerStats timer(const std::string& name) const;

  std::vector<std::pair<std::string, int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  /// Name-sorted, per-name-merged timer aggregates.
  std::vector<std::pair<std::string, TimerStats>> timers() const;

  /// Emits one "timers.snapshot" record with every timer scope (count,
  /// total/mean/min/max seconds) plus all counters and gauges. `label`
  /// distinguishes multiple snapshots in one run.
  void EmitSnapshot(std::string_view label);

  /// Writes the full registry as a single pretty-stable JSON document to
  /// `path` (for BENCH_*.json cost breakdowns). Overwrites.
  utils::Status WriteRegistryJson(const std::string& path,
                                  std::string_view title) const;

  /// Clears counters, gauges, and retired timer totals. Live timer sites
  /// keep accumulating (tests read deltas or use fresh scope names).
  /// Collection/sink state is untouched.
  void ResetRegistry();

  /// Seconds since the process-wide monotonic telemetry epoch.
  static double NowSeconds();

  // Internal: TimerSite lifecycle (public for the macro machinery).
  void RegisterSite(TimerSite* site);
  void RetireSite(TimerSite* site);

 private:
  Telemetry();
  ~Telemetry() = delete;  // leaked singleton

  static std::atomic<bool> collect_;

  struct Impl;
  Impl* impl_;
};

/// RAII timer recording into a TimerSite on scope exit. When collection is
/// disabled at construction the destructor does nothing (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerSite& site)
      : site_(Telemetry::CollectionEnabled() ? &site : nullptr) {
    if (site_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (site_ != nullptr) {
      site_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerSite* site_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sagdfn::obs

#define SAGDFN_OBS_CONCAT_INNER(a, b) a##b
#define SAGDFN_OBS_CONCAT(a, b) SAGDFN_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal). One static
/// TimerSite per call site; ~one relaxed atomic load when collection is
/// off. Compiles away entirely under -DSAGDFN_DISABLE_TELEMETRY.
#if defined(SAGDFN_DISABLE_TELEMETRY)
#define SAGDFN_SCOPED_TIMER(name) \
  do {                            \
  } while (false)
#else
#define SAGDFN_SCOPED_TIMER(name)                                       \
  static ::sagdfn::obs::TimerSite SAGDFN_OBS_CONCAT(sagdfn_obs_site_,   \
                                                    __LINE__){name};    \
  ::sagdfn::obs::ScopedTimer SAGDFN_OBS_CONCAT(sagdfn_obs_timer_,       \
                                               __LINE__)(              \
      SAGDFN_OBS_CONCAT(sagdfn_obs_site_, __LINE__))
#endif

#endif  // SAGDFN_OBS_TELEMETRY_H_
