#ifndef SAGDFN_DATA_WINDOW_DATASET_H_
#define SAGDFN_DATA_WINDOW_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/scaler.h"
#include "data/time_series.h"
#include "utils/rng.h"

namespace sagdfn::data {

/// Which chronological partition a window belongs to.
enum class Split { kTrain, kValidation, kTest };

/// History/horizon lengths (h and f in the paper) plus covariate options.
struct WindowSpec {
  int64_t history = 12;
  int64_t horizon = 12;
  /// Adds a day-of-week fraction channel (Definition 3 mentions both
  /// time-of-day and day-of-week covariates).
  bool include_day_of_week = false;
};

/// One minibatch of forecasting samples.
struct Batch {
  /// Scaled inputs with covariates: [B, h, N, C] where channel 0 is the
  /// z-scored reading, channel 1 the time-of-day fraction, and (when
  /// enabled) channel 2 the day-of-week fraction.
  tensor::Tensor x;
  /// Targets in the original (unscaled) units: [B, f, N].
  tensor::Tensor y;
  /// Scaled targets: [B, f, N] (training loss is computed in scaled space).
  tensor::Tensor y_scaled;
  /// Time-of-day fraction of each target step: [B, f]. A known future
  /// covariate fed to autoregressive decoders.
  tensor::Tensor future_tod;

  int64_t batch_size() const { return x.dim(0); }
};

/// Sliding-window forecasting dataset over a TimeSeries with chronological
/// 70/10/20 train/val/test splits (the paper's protocol). The scaler is
/// fitted on the training portion only. Windows never cross split
/// boundaries.
class ForecastDataset {
 public:
  /// `train_frac` + `val_frac` must be < 1; the remainder is test.
  ForecastDataset(TimeSeries series, WindowSpec spec,
                  double train_frac = 0.7, double val_frac = 0.1);

  /// Same splits, but normalizes with `pinned_scaler` instead of fitting
  /// one on the training slice. The online fine-tuner pins the original
  /// deployment's scaler here: serving requests and forecasts live in
  /// that scaled space, so a buffer of freshly arrived ticks must be
  /// scaled with the same mean/std or the fine-tuned weights would learn
  /// a shifted input distribution.
  ForecastDataset(TimeSeries series, WindowSpec spec,
                  const StandardScaler& pinned_scaler,
                  double train_frac = 0.7, double val_frac = 0.1);

  /// Number of complete windows in a split.
  int64_t NumSamples(Split split) const;

  /// Number of batches of `batch_size` (last partial batch included).
  int64_t NumBatches(Split split, int64_t batch_size) const;

  /// Assembles the `batch_index`-th batch in sequence order.
  Batch GetBatch(Split split, int64_t batch_index, int64_t batch_size) const;

  /// Assembles a batch from explicit window offsets within the split.
  Batch GetBatchAt(Split split, const std::vector<int64_t>& offsets) const;

  /// Shuffled window offsets for one training epoch.
  std::vector<int64_t> ShuffledTrainOrder(utils::Rng& rng) const;

  const StandardScaler& scaler() const { return scaler_; }
  const TimeSeries& series() const { return series_; }
  const WindowSpec& spec() const { return spec_; }
  int64_t num_nodes() const { return series_.num_nodes(); }

  /// First time step after the training region (classical baselines fit
  /// directly on raw training steps [0, TrainEndStep())).
  int64_t TrainEndStep() const { return val_.begin; }

  /// Scaled (z-scored) full series [T, N].
  const tensor::Tensor& scaled_values() const { return scaled_values_; }

  /// Number of input channels (reading + time-of-day
  /// [+ day-of-week when enabled]).
  int64_t num_input_channels() const {
    return spec_.include_day_of_week ? 3 : 2;
  }

 private:
  /// First time index of split windows and count of windows in the split.
  struct Range {
    int64_t begin = 0;
    int64_t count = 0;
  };
  Range RangeOf(Split split) const;

  TimeSeries series_;
  WindowSpec spec_;
  StandardScaler scaler_;
  tensor::Tensor scaled_values_;  // [T, N]
  Range train_;
  Range val_;
  Range test_;
};

}  // namespace sagdfn::data

#endif  // SAGDFN_DATA_WINDOW_DATASET_H_
