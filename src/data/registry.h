#ifndef SAGDFN_DATA_REGISTRY_H_
#define SAGDFN_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "data/time_series.h"
#include "data/window_dataset.h"
#include "graph/generators.h"

namespace sagdfn::data {

/// Scale knob for the named datasets: kQuick shrinks node counts and time
/// ranges so CPU-only benches finish in seconds while preserving each
/// dataset's character; kFull matches the paper's sizes.
enum class DatasetScale { kQuick, kFull };

/// Descriptor of a named benchmark dataset (paper Table II analogue).
struct DatasetInfo {
  std::string name;
  std::string data_type;   // "Traffic speed" or "Carpark lots"
  int64_t num_nodes = 0;
  int64_t num_steps = 0;
  int64_t steps_per_day = 0;
  std::string time_range;  // descriptive, mirrors the paper's column
};

/// Names understood by MakeDataset: "metr-la-sim", "london2000-sim",
/// "newyork2000-sim", "carpark1918-sim".
std::vector<std::string> KnownDatasets();

/// Names of the >= 10k-node scale scenarios: "traffic10k-sim" (N=10000)
/// and "traffic100k-sim" (N=100000). Deliberately not part of
/// KnownDatasets(): tier-1 sweeps over the paper datasets must not
/// generate them by accident — they are driven by the `scale`-labeled
/// tests, the graphsize bench, and the nightly 100k CI leg.
std::vector<std::string> ScaleDatasets();

/// Generates a scale scenario by name (see ScaleDatasets()). The latent
/// graph stays sparse end to end — a dense [N, N] latent would not fit —
/// so the ground truth comes back as CSR for graph-recovery metrics.
/// kQuick trims the series length, not the node count (node count is the
/// point of these scenarios). Mean latent degree is held at ~20
/// independent of N (radius ~ sqrt(20 / (pi N))), matching the slim
/// adjacency's per-row budget.
TimeSeries MakeScaleDataset(
    const std::string& name, DatasetScale scale,
    graph::SparseSpatialGraph* latent_graph = nullptr);

/// Generates a named dataset at the requested scale. Fatal on unknown
/// name. `latent_graph`, when non-null and the generator is graph-based,
/// receives the ground-truth spatial graph.
TimeSeries MakeDataset(const std::string& name, DatasetScale scale,
                       graph::SpatialGraph* latent_graph = nullptr);

/// Table II-style metadata for a named dataset at the given scale.
DatasetInfo GetDatasetInfo(const std::string& name, DatasetScale scale);

/// The paper's window setup for a dataset: h=12,f=12 for traffic,
/// h=24,f=12 for carpark.
WindowSpec DefaultWindowSpec(const std::string& name);

/// Deterministic distribution shift applied to an existing series — the
/// synthetic stand-in for the structure/level drift that motivates
/// online continual learning (per-dataset dynamics change over time;
/// see Chen et al. / Xu et al. in PAPERS.md). Each node gets a seeded
/// multiplicative gain and additive offset jitter around the configured
/// means, plus a phase-shifted diurnal ripple, so a model trained on the
/// base series measurably regresses on the drifted one while the graph
/// structure (node identity, spatial correlation) is preserved.
struct DriftOptions {
  /// Mean multiplicative level shift (per-node jittered around this).
  double gain = 0.85;
  /// Mean additive level shift in original units.
  double offset = 3.0;
  /// Relative per-node jitter on gain/offset, uniform in [-jitter, +jitter].
  double node_jitter = 0.1;
  /// Amplitude of the added time-of-day ripple (original units).
  double diurnal_amplitude = 2.0;
  /// Phase shift of the ripple, in fractions of a day.
  double diurnal_phase = 0.3;
  uint64_t seed = 77;
};

/// Returns a drifted copy of `series` (same shape, name suffixed
/// "-drift"). Deterministic in (series, options).
TimeSeries ApplyDrift(const TimeSeries& series, const DriftOptions& options);

}  // namespace sagdfn::data

#endif  // SAGDFN_DATA_REGISTRY_H_
