#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/adjacency.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace sagdfn::data {
namespace {

double GaussianBump(double t, double center, double width) {
  const double d = t - center;
  return std::exp(-0.5 * d * d / (width * width));
}

void CheckTrafficOptions(const TrafficOptions& options) {
  SAGDFN_CHECK_GT(options.num_nodes, 0);
  SAGDFN_CHECK_GT(options.num_days, 0);
  SAGDFN_CHECK_GT(options.steps_per_day, 0);
  SAGDFN_CHECK_GE(options.spatial_rho, 0.0);
  SAGDFN_CHECK_LT(options.spatial_rho, 1.0);
}

// Shared traffic core: evolves the AR(1) congestion field over the
// row-normalized latent transition matrix `p` (CSR) and renders speeds.
// Both the dense and the sparse generator funnel through this, so they
// agree bit for bit whenever their latent graphs do. `rng` arrives
// having drawn exactly the graph coordinates.
TimeSeries TrafficFromTransition(const TrafficOptions& options,
                                 utils::Rng& rng,
                                 const graph::CsrMatrix& p) {
  const int64_t n = options.num_nodes;
  const int64_t total = options.num_days * options.steps_per_day;

  // Per-sensor regime.
  std::vector<double> base(n);
  std::vector<double> amp_morning(n);
  std::vector<double> amp_evening(n);
  std::vector<double> phase_morning(n);
  std::vector<double> phase_evening(n);
  for (int64_t i = 0; i < n; ++i) {
    base[i] = rng.Uniform(55.0, 68.0);
    amp_morning[i] = rng.Uniform(10.0, 25.0);
    amp_evening[i] = rng.Uniform(8.0, 22.0);
    phase_morning[i] = 8.0 / 24.0 + rng.Uniform(-0.03, 0.03);
    phase_evening[i] = 17.5 / 24.0 + rng.Uniform(-0.03, 0.03);
  }

  TimeSeries series;
  series.name = options.name;
  series.steps_per_day = options.steps_per_day;
  series.values = tensor::Tensor::Zeros(tensor::Shape({total, n}));
  float* out = series.values.data();

  std::vector<double> w(n, 0.0);
  std::vector<double> w_next(n, 0.0);
  const double rho = options.spatial_rho;
  const double bump_width = 1.3 / 24.0;

  for (int64_t t = 0; t < total; ++t) {
    const double tod =
        static_cast<double>(t % options.steps_per_day) /
        options.steps_per_day;
    const bool weekend = ((t / options.steps_per_day) % 7) >= 5;
    const double day_scale = weekend ? options.weekend_factor : 1.0;

    // Latent field step: w <- rho * P w + innovations (+ shocks).
    for (int64_t i = 0; i < n; ++i) {
      double diffused = 0.0;
      const int64_t row_begin = p.row_ptr[i];
      const int64_t row_end = p.row_ptr[i + 1];
      if (row_begin != row_end) {
        for (int64_t e = row_begin; e < row_end; ++e) {
          diffused += p.val[e] * w[p.col[e]];
        }
      } else {
        diffused = w[i];
      }
      double v = rho * diffused + rng.Normal(0.0, options.innovation_std);
      if (rng.Bernoulli(options.event_rate)) {
        v -= rng.Uniform(0.5, 1.5) * options.event_magnitude;
      }
      w_next[i] = v;
    }
    std::swap(w, w_next);

    for (int64_t i = 0; i < n; ++i) {
      const double rush =
          amp_morning[i] * GaussianBump(tod, phase_morning[i], bump_width) +
          amp_evening[i] * GaussianBump(tod, phase_evening[i], bump_width);
      double speed = base[i] - day_scale * rush + 3.0 * w[i] +
                     rng.Normal(0.0, options.noise_std);
      out[t * n + i] =
          static_cast<float>(std::clamp(speed, 3.0, 80.0));
    }
  }

  return series;
}

}  // namespace

TimeSeries GenerateTraffic(const TrafficOptions& options,
                           graph::SpatialGraph* latent_graph) {
  CheckTrafficOptions(options);
  utils::Rng rng(options.seed);
  graph::SpatialGraph g = graph::RandomGeometric(
      options.num_nodes, options.radius, options.kernel_sigma, rng);
  // Random-walk transition matrix of the latent graph, in CSR so the
  // field step is O(E) instead of O(N^2).
  graph::CsrMatrix p =
      graph::CsrFromDense(graph::RowNormalize(g.adjacency));
  TimeSeries series = TrafficFromTransition(options, rng, p);
  if (latent_graph != nullptr) *latent_graph = std::move(g);
  return series;
}

TimeSeries GenerateTrafficSparse(const TrafficOptions& options,
                                 graph::SparseSpatialGraph* latent_graph) {
  CheckTrafficOptions(options);
  utils::Rng rng(options.seed);
  graph::SparseSpatialGraph g = graph::RandomGeometricSparse(
      options.num_nodes, options.radius, options.kernel_sigma, rng);
  graph::CsrMatrix p = graph::RowNormalizeCsr(g.adjacency);
  TimeSeries series = TrafficFromTransition(options, rng, p);
  if (latent_graph != nullptr) *latent_graph = std::move(g);
  return series;
}

TimeSeries GenerateCarpark(const CarparkOptions& options,
                           std::vector<int64_t>* cluster_of) {
  SAGDFN_CHECK_GT(options.num_nodes, 0);
  SAGDFN_CHECK_GT(options.num_clusters, 0);
  SAGDFN_CHECK_GE(options.cluster_rho, 0.0);
  SAGDFN_CHECK_LT(options.cluster_rho, 1.0);

  utils::Rng rng(options.seed);
  const int64_t n = options.num_nodes;
  const int64_t k = options.num_clusters;
  const int64_t total = options.num_days * options.steps_per_day;

  // Cluster assignment; even clusters are "business" (full by day),
  // odd clusters "residential" (full by night).
  std::vector<int64_t> clusters(n);
  for (int64_t i = 0; i < n; ++i) clusters[i] = i % k;
  rng.Shuffle(clusters);

  std::vector<double> capacity(n);
  std::vector<double> offset(n);
  for (int64_t i = 0; i < n; ++i) {
    capacity[i] = static_cast<double>(
        rng.UniformInt(options.min_capacity, options.max_capacity + 1));
    offset[i] = rng.Uniform(-0.4, 0.4);
  }

  TimeSeries series;
  series.name = options.name;
  series.steps_per_day = options.steps_per_day;
  series.values = tensor::Tensor::Zeros(tensor::Shape({total, n}));
  float* out = series.values.data();

  std::vector<double> cluster_state(k, 0.0);
  for (int64_t t = 0; t < total; ++t) {
    const double tod =
        static_cast<double>(t % options.steps_per_day) /
        options.steps_per_day;
    const bool weekend = ((t / options.steps_per_day) % 7) >= 5;
    // Business occupancy peaks around 13:00; residential around 02:00.
    const double business =
        (weekend ? 0.4 : 1.0) * GaussianBump(tod, 13.0 / 24.0, 3.0 / 24.0);
    const double residential =
        GaussianBump(tod, 2.0 / 24.0, 4.0 / 24.0) +
        GaussianBump(tod, 26.0 / 24.0, 4.0 / 24.0);  // wraps past midnight

    for (int64_t c = 0; c < k; ++c) {
      cluster_state[c] = options.cluster_rho * cluster_state[c] +
                         rng.Normal(0.0, options.cluster_std);
    }

    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = clusters[i];
      const double daily = (c % 2 == 0) ? business : residential;
      const double logit =
          -0.8 + 2.6 * daily + offset[i] + cluster_state[c];
      const double occupancy_frac = 1.0 / (1.0 + std::exp(-logit));
      double available =
          capacity[i] * (1.0 - occupancy_frac) +
          rng.Normal(0.0, options.noise_std);
      available = std::clamp(available, 0.0, capacity[i]);
      out[t * n + i] = static_cast<float>(std::round(available));
    }
  }

  if (cluster_of != nullptr) *cluster_of = std::move(clusters);
  return series;
}

}  // namespace sagdfn::data
