#include "data/scaler.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "utils/check.h"

namespace sagdfn::data {

void StandardScaler::Fit(const tensor::Tensor& values) {
  SAGDFN_CHECK_GT(values.size(), 0);
  const float* p = values.data();
  double sum = 0.0;
  for (int64_t i = 0; i < values.size(); ++i) sum += p[i];
  const double mean = sum / values.size();
  double sq = 0.0;
  for (int64_t i = 0; i < values.size(); ++i) {
    const double d = p[i] - mean;
    sq += d * d;
  }
  mean_ = static_cast<float>(mean);
  std_ = static_cast<float>(std::sqrt(sq / values.size()));
  if (std_ < 1e-6f) std_ = 1.0f;  // constant series degrade to centering
  fitted_ = true;
}

tensor::Tensor StandardScaler::Transform(const tensor::Tensor& values) const {
  SAGDFN_CHECK(fitted_);
  return tensor::MulScalar(tensor::AddScalar(values, -mean_), 1.0f / std_);
}

tensor::Tensor StandardScaler::InverseTransform(
    const tensor::Tensor& values) const {
  SAGDFN_CHECK(fitted_);
  return tensor::AddScalar(tensor::MulScalar(values, std_), mean_);
}

}  // namespace sagdfn::data
