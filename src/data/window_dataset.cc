#include "data/window_dataset.h"

#include <algorithm>
#include <numeric>

#include "tensor/tensor_ops.h"
#include "utils/check.h"

namespace sagdfn::data {

ForecastDataset::ForecastDataset(TimeSeries series, WindowSpec spec,
                                 double train_frac, double val_frac)
    : series_(std::move(series)), spec_(spec) {
  SAGDFN_CHECK_GT(spec_.history, 0);
  SAGDFN_CHECK_GT(spec_.horizon, 0);
  SAGDFN_CHECK_GT(train_frac, 0.0);
  SAGDFN_CHECK_GT(val_frac, 0.0);
  SAGDFN_CHECK_LT(train_frac + val_frac, 1.0);

  const int64_t total = series_.num_steps();
  const int64_t window = spec_.history + spec_.horizon;
  SAGDFN_CHECK_GE(total, 3 * window)
      << "series too short for split: " << total << " steps";

  const int64_t train_end = static_cast<int64_t>(total * train_frac);
  const int64_t val_end =
      static_cast<int64_t>(total * (train_frac + val_frac));

  train_ = {0, train_end - window + 1};
  val_ = {train_end, val_end - train_end - window + 1};
  test_ = {val_end, total - val_end - window + 1};
  SAGDFN_CHECK_GT(train_.count, 0);
  SAGDFN_CHECK_GT(val_.count, 0);
  SAGDFN_CHECK_GT(test_.count, 0);

  scaler_.Fit(tensor::Slice(series_.values, 0, 0, train_end));
  scaled_values_ = scaler_.Transform(series_.values);
}

ForecastDataset::ForecastDataset(TimeSeries series, WindowSpec spec,
                                 const StandardScaler& pinned_scaler,
                                 double train_frac, double val_frac)
    : ForecastDataset(std::move(series), spec, train_frac, val_frac) {
  SAGDFN_CHECK(pinned_scaler.fitted())
      << "pinned scaler must be fitted before constructing a dataset on it";
  scaler_ = pinned_scaler;
  scaled_values_ = scaler_.Transform(series_.values);
}

ForecastDataset::Range ForecastDataset::RangeOf(Split split) const {
  switch (split) {
    case Split::kTrain:
      return train_;
    case Split::kValidation:
      return val_;
    case Split::kTest:
      return test_;
  }
  SAGDFN_CHECK(false);
  return {};
}

int64_t ForecastDataset::NumSamples(Split split) const {
  return RangeOf(split).count;
}

int64_t ForecastDataset::NumBatches(Split split, int64_t batch_size) const {
  SAGDFN_CHECK_GT(batch_size, 0);
  return (NumSamples(split) + batch_size - 1) / batch_size;
}

Batch ForecastDataset::GetBatch(Split split, int64_t batch_index,
                                int64_t batch_size) const {
  const int64_t n = NumSamples(split);
  const int64_t start = batch_index * batch_size;
  SAGDFN_CHECK_LT(start, n);
  const int64_t end = std::min(start + batch_size, n);
  std::vector<int64_t> offsets(end - start);
  std::iota(offsets.begin(), offsets.end(), start);
  return GetBatchAt(split, offsets);
}

Batch ForecastDataset::GetBatchAt(Split split,
                                  const std::vector<int64_t>& offsets) const {
  const Range range = RangeOf(split);
  const int64_t b = static_cast<int64_t>(offsets.size());
  SAGDFN_CHECK_GT(b, 0);
  const int64_t h = spec_.history;
  const int64_t f = spec_.horizon;
  const int64_t n = series_.num_nodes();

  const int64_t channels = num_input_channels();
  Batch batch;
  batch.x = tensor::Tensor::Zeros(tensor::Shape({b, h, n, channels}));
  batch.y = tensor::Tensor::Zeros(tensor::Shape({b, f, n}));
  batch.y_scaled = tensor::Tensor::Zeros(tensor::Shape({b, f, n}));
  batch.future_tod = tensor::Tensor::Zeros(tensor::Shape({b, f}));

  const float* raw = series_.values.data();
  const float* scaled = scaled_values_.data();
  float* px = batch.x.data();
  float* py = batch.y.data();
  float* pys = batch.y_scaled.data();

  for (int64_t bi = 0; bi < b; ++bi) {
    SAGDFN_CHECK_GE(offsets[bi], 0);
    SAGDFN_CHECK_LT(offsets[bi], range.count);
    const int64_t t0 = range.begin + offsets[bi];
    for (int64_t t = 0; t < h; ++t) {
      const int64_t ts = t0 + t;
      const float tod = static_cast<float>(series_.TimeOfDay(ts));
      const float dow =
          static_cast<float>(series_.DayOfWeek(ts)) / 7.0f;
      for (int64_t i = 0; i < n; ++i) {
        const int64_t base = ((bi * h + t) * n + i) * channels;
        px[base] = scaled[ts * n + i];
        px[base + 1] = tod;
        if (channels > 2) px[base + 2] = dow;
      }
    }
    for (int64_t t = 0; t < f; ++t) {
      const int64_t ts = t0 + h + t;
      batch.future_tod.data()[bi * f + t] =
          static_cast<float>(series_.TimeOfDay(ts));
      for (int64_t i = 0; i < n; ++i) {
        py[(bi * f + t) * n + i] = raw[ts * n + i];
        pys[(bi * f + t) * n + i] = scaled[ts * n + i];
      }
    }
  }
  return batch;
}

std::vector<int64_t> ForecastDataset::ShuffledTrainOrder(
    utils::Rng& rng) const {
  return rng.Permutation(train_.count);
}

}  // namespace sagdfn::data
