#ifndef SAGDFN_DATA_TIME_SERIES_H_
#define SAGDFN_DATA_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sagdfn::data {

/// A multivariate time series: T time steps of N scalar sensor readings at
/// a fixed interval (Definition 1 of the paper with C = 1; covariates such
/// as time-of-day are derived from `steps_per_day` at batching time).
struct TimeSeries {
  std::string name;
  /// [T, N] observations.
  tensor::Tensor values;
  /// Steps per 24 hours (288 for 5-minute data, 24 for hourly).
  int64_t steps_per_day = 288;

  int64_t num_steps() const { return values.dim(0); }
  int64_t num_nodes() const { return values.dim(1); }

  /// Fraction of day in [0, 1) for time step `t`.
  double TimeOfDay(int64_t t) const {
    return static_cast<double>(t % steps_per_day) / steps_per_day;
  }

  /// Day-of-week index in [0, 7) for step `t` (day 0 is a Monday).
  int64_t DayOfWeek(int64_t t) const { return (t / steps_per_day) % 7; }
};

/// Restricts a series to its first `num_nodes` sensors (used for the
/// graph-size study, e.g. London200 from London2000).
TimeSeries SliceNodes(const TimeSeries& series, int64_t num_nodes);

/// Restricts a series to an explicit sensor index set.
TimeSeries SelectNodes(const TimeSeries& series,
                       const std::vector<int64_t>& indices);

/// Restricts a series to time steps [start, end).
TimeSeries SliceTime(const TimeSeries& series, int64_t start, int64_t end);

}  // namespace sagdfn::data

#endif  // SAGDFN_DATA_TIME_SERIES_H_
