#include "data/time_series.h"

#include <numeric>

#include "tensor/tensor_ops.h"
#include "utils/check.h"

namespace sagdfn::data {

TimeSeries SliceNodes(const TimeSeries& series, int64_t num_nodes) {
  SAGDFN_CHECK_GT(num_nodes, 0);
  SAGDFN_CHECK_LE(num_nodes, series.num_nodes());
  std::vector<int64_t> indices(num_nodes);
  std::iota(indices.begin(), indices.end(), 0);
  return SelectNodes(series, indices);
}

TimeSeries SelectNodes(const TimeSeries& series,
                       const std::vector<int64_t>& indices) {
  TimeSeries out;
  out.name = series.name;
  out.steps_per_day = series.steps_per_day;
  out.values = tensor::IndexSelect(series.values, 1, indices);
  return out;
}

TimeSeries SliceTime(const TimeSeries& series, int64_t start, int64_t end) {
  TimeSeries out;
  out.name = series.name;
  out.steps_per_day = series.steps_per_day;
  out.values = tensor::Slice(series.values, 0, start, end);
  return out;
}

}  // namespace sagdfn::data
