#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "utils/string_util.h"

namespace sagdfn::data {

utils::Status WriteCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return utils::Status::NotFound("cannot open for write: " + path);
  }
  const int64_t t_steps = series.num_steps();
  const int64_t n = series.num_nodes();
  out << "t";
  for (int64_t i = 0; i < n; ++i) out << ",node_" << i;
  out << "\n";
  const float* p = series.values.data();
  for (int64_t t = 0; t < t_steps; ++t) {
    out << t;
    for (int64_t i = 0; i < n; ++i) out << "," << p[t * n + i];
    out << "\n";
  }
  if (!out.good()) {
    return utils::Status::Internal("write failed: " + path);
  }
  return utils::Status::Ok();
}

utils::StatusOr<TimeSeries> ReadCsv(const std::string& path,
                                    int64_t steps_per_day) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return utils::Status::NotFound("cannot open: " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return utils::Status::InvalidArgument("empty csv: " + path);
  }
  const auto columns = utils::Split(header, ',');
  if (columns.size() < 2 || columns[0] != "t") {
    return utils::Status::InvalidArgument("bad csv header: " + path);
  }
  const int64_t n = static_cast<int64_t>(columns.size()) - 1;

  std::vector<float> values;
  std::string line;
  int64_t rows = 0;
  while (std::getline(in, line)) {
    if (utils::Trim(line).empty()) continue;
    const auto fields = utils::Split(line, ',');
    if (static_cast<int64_t>(fields.size()) != n + 1) {
      std::ostringstream os;
      os << "row " << rows << " has " << fields.size()
         << " fields, expected " << (n + 1);
      return utils::Status::InvalidArgument(os.str());
    }
    for (int64_t i = 1; i <= n; ++i) {
      double v = 0.0;
      if (!utils::ParseDouble(fields[i], &v)) {
        return utils::Status::InvalidArgument("bad value: " + fields[i]);
      }
      values.push_back(static_cast<float>(v));
    }
    ++rows;
  }
  if (rows == 0) {
    return utils::Status::InvalidArgument("csv has no data rows: " + path);
  }
  TimeSeries series;
  series.name = path;
  series.steps_per_day = steps_per_day;
  series.values = tensor::Tensor::FromVector(std::move(values),
                                             tensor::Shape({rows, n}));
  return series;
}

}  // namespace sagdfn::data
