#ifndef SAGDFN_DATA_CSV_H_
#define SAGDFN_DATA_CSV_H_

#include <string>

#include "data/time_series.h"
#include "utils/status.h"

namespace sagdfn::data {

/// Writes a TimeSeries as CSV: header "t,node_0,...,node_{N-1}", one row
/// per time step.
utils::Status WriteCsv(const TimeSeries& series, const std::string& path);

/// Reads a TimeSeries from the CSV layout produced by WriteCsv.
/// `steps_per_day` is stored out-of-band and must be supplied.
utils::StatusOr<TimeSeries> ReadCsv(const std::string& path,
                                    int64_t steps_per_day);

}  // namespace sagdfn::data

#endif  // SAGDFN_DATA_CSV_H_
