#include "data/registry.h"

#include <cmath>

#include "utils/check.h"
#include "utils/rng.h"

namespace sagdfn::data {
namespace {

// Quick-scale sizes keep each dataset's character (relative node counts,
// resolution class, generator regime) while letting CPU-only benches
// finish in seconds. Full-scale matches the paper's Table II.

TrafficOptions MetrLaOptions(DatasetScale scale) {
  TrafficOptions o;
  o.name = "metr-la-sim";
  if (scale == DatasetScale::kQuick) {
    o.num_nodes = 64;
    // 13 days so train/val/test splits each contain weekday and weekend
    // regimes (the full METR-LA spans four months).
    o.num_days = 13;
    o.steps_per_day = 96;  // 15-minute quick stand-in
    o.radius = 0.2;
    o.kernel_sigma = 0.14;
  } else {
    o.num_nodes = 207;
    o.num_days = 28;
    o.steps_per_day = 288;
  }
  o.seed = 11;
  return o;
}

TrafficOptions LondonOptions(DatasetScale scale) {
  TrafficOptions o;
  o.name = "london2000-sim";
  o.steps_per_day = 24;  // hourly
  if (scale == DatasetScale::kQuick) {
    o.num_nodes = 256;
    o.num_days = 60;
    o.radius = 0.1;
    o.kernel_sigma = 0.07;
  } else {
    o.num_nodes = 2000;
    o.num_days = 90;
    o.radius = 0.04;
    o.kernel_sigma = 0.028;
  }
  // London regime: smoother, lower speeds (urban).
  o.spatial_rho = 0.9;
  o.innovation_std = 0.8;
  o.noise_std = 0.7;
  o.event_rate = 0.0004;
  o.seed = 22;
  return o;
}

TrafficOptions NewYorkOptions(DatasetScale scale) {
  TrafficOptions o = LondonOptions(scale);
  o.name = "newyork2000-sim";
  // NewYork regime: burstier traffic with stronger shocks.
  o.spatial_rho = 0.8;
  o.innovation_std = 1.4;
  o.noise_std = 1.1;
  o.event_rate = 0.0012;
  o.event_magnitude = 8.0;
  o.seed = 33;
  return o;
}

CarparkOptions CarparkOptionsFor(DatasetScale scale) {
  CarparkOptions o;
  o.name = "carpark1918-sim";
  if (scale == DatasetScale::kQuick) {
    o.num_nodes = 240;
    o.num_days = 13;  // cover weekday + weekend in every split
    o.steps_per_day = 96;
    o.num_clusters = 12;
  } else {
    o.num_nodes = 1918;
    o.num_days = 61;
    o.steps_per_day = 288;
    o.num_clusters = 24;
  }
  o.seed = 44;
  return o;
}

TrafficOptions ScaleTrafficOptions(const std::string& name,
                                   DatasetScale scale) {
  TrafficOptions o;
  o.name = name;
  o.num_nodes = name == "traffic10k-sim" ? 10000 : 100000;
  // Hold the latent mean degree at ~20 regardless of N: a node's
  // expected neighbor count in a random geometric graph is pi r^2 N.
  o.radius = std::sqrt(20.0 / (3.141592653589793 * o.num_nodes));
  o.kernel_sigma = 0.7 * o.radius;
  // 15-minute resolution; quick keeps two days (weekday regimes only),
  // full adds enough days for weekday + weekend splits.
  o.steps_per_day = 96;
  o.num_days = scale == DatasetScale::kQuick ? 2 : 9;
  o.seed = 55;
  return o;
}

}  // namespace

std::vector<std::string> KnownDatasets() {
  return {"metr-la-sim", "london2000-sim", "newyork2000-sim",
          "carpark1918-sim"};
}

std::vector<std::string> ScaleDatasets() {
  return {"traffic10k-sim", "traffic100k-sim"};
}

TimeSeries MakeScaleDataset(const std::string& name, DatasetScale scale,
                            graph::SparseSpatialGraph* latent_graph) {
  SAGDFN_CHECK(name == "traffic10k-sim" || name == "traffic100k-sim")
      << "unknown scale dataset: " << name;
  return GenerateTrafficSparse(ScaleTrafficOptions(name, scale),
                               latent_graph);
}

TimeSeries MakeDataset(const std::string& name, DatasetScale scale,
                       graph::SpatialGraph* latent_graph) {
  if (name == "metr-la-sim") {
    return GenerateTraffic(MetrLaOptions(scale), latent_graph);
  }
  if (name == "london2000-sim") {
    return GenerateTraffic(LondonOptions(scale), latent_graph);
  }
  if (name == "newyork2000-sim") {
    return GenerateTraffic(NewYorkOptions(scale), latent_graph);
  }
  if (name == "carpark1918-sim") {
    SAGDFN_CHECK(latent_graph == nullptr)
        << "carpark generator has cluster structure, not a spatial graph";
    return GenerateCarpark(CarparkOptionsFor(scale));
  }
  SAGDFN_CHECK(false) << "unknown dataset: " << name;
  return {};
}

DatasetInfo GetDatasetInfo(const std::string& name, DatasetScale scale) {
  DatasetInfo info;
  info.name = name;
  auto fill_traffic = [&](const TrafficOptions& o, const char* range) {
    info.data_type = "Traffic speed";
    info.num_nodes = o.num_nodes;
    info.num_steps = o.num_days * o.steps_per_day;
    info.steps_per_day = o.steps_per_day;
    info.time_range = range;
  };
  if (name == "metr-la-sim") {
    fill_traffic(MetrLaOptions(scale), "simulated, METR-LA regime");
    return info;
  }
  if (name == "london2000-sim") {
    fill_traffic(LondonOptions(scale), "simulated, London hourly regime");
    return info;
  }
  if (name == "newyork2000-sim") {
    fill_traffic(NewYorkOptions(scale), "simulated, NewYork hourly regime");
    return info;
  }
  if (name == "traffic10k-sim" || name == "traffic100k-sim") {
    fill_traffic(ScaleTrafficOptions(name, scale),
                 "simulated, sparse-latent scale regime");
    return info;
  }
  if (name == "carpark1918-sim") {
    CarparkOptions o = CarparkOptionsFor(scale);
    info.data_type = "Carpark lots";
    info.num_nodes = o.num_nodes;
    info.num_steps = o.num_days * o.steps_per_day;
    info.steps_per_day = o.steps_per_day;
    info.time_range = "simulated, Singapore carpark regime";
    return info;
  }
  SAGDFN_CHECK(false) << "unknown dataset: " << name;
  return info;
}

WindowSpec DefaultWindowSpec(const std::string& name) {
  WindowSpec spec;
  if (name == "carpark1918-sim") {
    spec.history = 24;
    spec.horizon = 12;
  } else {
    spec.history = 12;
    spec.horizon = 12;
  }
  return spec;
}

TimeSeries ApplyDrift(const TimeSeries& series, const DriftOptions& options) {
  const int64_t t_steps = series.num_steps();
  const int64_t n = series.num_nodes();
  SAGDFN_CHECK_GT(t_steps, 0);
  SAGDFN_CHECK_GT(n, 0);

  // Per-node gain/offset jitter drawn once, so the shift is a stable
  // property of each node rather than extra noise.
  utils::Rng rng(options.seed);
  std::vector<float> gains(n);
  std::vector<float> offsets(n);
  for (int64_t i = 0; i < n; ++i) {
    const double j = options.node_jitter;
    gains[i] = static_cast<float>(options.gain * rng.Uniform(1.0 - j, 1.0 + j));
    offsets[i] =
        static_cast<float>(options.offset * rng.Uniform(1.0 - j, 1.0 + j));
  }

  TimeSeries out;
  out.name = series.name + "-drift";
  out.steps_per_day = series.steps_per_day;
  out.values = tensor::Tensor::Zeros(series.values.shape());
  const float* src = series.values.data();
  float* dst = out.values.data();
  constexpr double kTwoPi = 6.283185307179586;
  for (int64_t t = 0; t < t_steps; ++t) {
    const double tod = series.TimeOfDay(t);
    const float ripple = static_cast<float>(
        options.diurnal_amplitude *
        std::sin(kTwoPi * (tod + options.diurnal_phase)));
    for (int64_t i = 0; i < n; ++i) {
      dst[t * n + i] = gains[i] * src[t * n + i] + offsets[i] + ripple;
    }
  }
  return out;
}

}  // namespace sagdfn::data
