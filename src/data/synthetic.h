#ifndef SAGDFN_DATA_SYNTHETIC_H_
#define SAGDFN_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/time_series.h"
#include "graph/generators.h"

namespace sagdfn::data {

/// Parameters of the synthetic traffic-speed generator (the METR-LA /
/// London2000 / NewYork2000 stand-in).
///
/// The generator draws a latent random-geometric road graph, then evolves
/// speeds as: free-flow base per sensor, minus rush-hour dips (with
/// per-sensor phase jitter and a weekend attenuation), plus a latent
/// graph-coupled AR(1) field that diffuses congestion between neighboring
/// sensors, plus observation noise and sporadic congestion shocks.
/// Learning the latent graph is exactly what lets a model denoise a sensor
/// from its neighbors, which is the ability the paper's evaluation probes.
struct TrafficOptions {
  std::string name = "traffic-sim";
  int64_t num_nodes = 207;
  int64_t num_days = 8;
  int64_t steps_per_day = 288;  // 5-minute resolution
  /// Latent graph geometry.
  double radius = 0.12;
  double kernel_sigma = 0.08;
  /// Spatial AR(1) coupling strength in [0, 1).
  double spatial_rho = 0.85;
  /// Innovation and observation noise scales (mph).
  double innovation_std = 1.2;
  double noise_std = 1.0;
  /// Congestion shock probability per node per step, and magnitude (mph).
  double event_rate = 0.0008;
  double event_magnitude = 6.0;
  /// Weekend rush attenuation in [0, 1].
  double weekend_factor = 0.35;
  uint64_t seed = 1;
};

/// Generates a traffic-speed series; optionally exposes the latent graph
/// so tests can verify that learned adjacencies recover it.
TimeSeries GenerateTraffic(const TrafficOptions& options,
                           graph::SpatialGraph* latent_graph = nullptr);

/// The >= 10k-node regime of the traffic generator: identical model,
/// but the latent graph is built and kept sparse (CSR), so memory and
/// time are O(N * degree + N * steps) instead of the dense O(N^2).
/// Bit-identical to GenerateTraffic for the same options at any size
/// where the dense generator fits — same rng draw order, same latent
/// transition weights, same field arithmetic — so tests can pin the
/// sparse path against the dense one at small N. The latent graph comes
/// back in CSR over global node ids; graph-recovery metrics go through
/// graph::TopKOverlapCsr.
TimeSeries GenerateTrafficSparse(
    const TrafficOptions& options,
    graph::SparseSpatialGraph* latent_graph = nullptr);

/// Parameters of the synthetic carpark-availability generator (the
/// CARPARK1918 stand-in): available-lot counts with capacity saturation,
/// strong daily cycles that differ between "business" and "residential"
/// clusters, and cluster-level correlated fluctuations.
struct CarparkOptions {
  std::string name = "carpark-sim";
  int64_t num_nodes = 1918;
  int64_t num_days = 8;
  int64_t steps_per_day = 288;
  int64_t num_clusters = 24;
  /// Capacity range (lots).
  int64_t min_capacity = 80;
  int64_t max_capacity = 600;
  /// Cluster AR(1) persistence and innovation scale (logit units).
  double cluster_rho = 0.9;
  double cluster_std = 0.15;
  /// Per-carpark observation noise (lots).
  double noise_std = 3.0;
  uint64_t seed = 2;
};

/// Generates a carpark availability series; optionally exposes the cluster
/// assignment (the latent correlation structure).
TimeSeries GenerateCarpark(const CarparkOptions& options,
                           std::vector<int64_t>* cluster_of = nullptr);

}  // namespace sagdfn::data

#endif  // SAGDFN_DATA_SYNTHETIC_H_
