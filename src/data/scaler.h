#ifndef SAGDFN_DATA_SCALER_H_
#define SAGDFN_DATA_SCALER_H_

#include "tensor/tensor.h"

namespace sagdfn::data {

/// Z-score normalization fitted on training data only (the standard
/// protocol for METR-LA-style benchmarks): x' = (x - mean) / std.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Computes mean/std over every element of `values`.
  void Fit(const tensor::Tensor& values);

  /// Returns (x - mean) / std.
  tensor::Tensor Transform(const tensor::Tensor& values) const;

  /// Returns x * std + mean.
  tensor::Tensor InverseTransform(const tensor::Tensor& values) const;

  float mean() const { return mean_; }
  float stddev() const { return std_; }
  bool fitted() const { return fitted_; }

 private:
  float mean_ = 0.0f;
  float std_ = 1.0f;
  bool fitted_ = false;
};

}  // namespace sagdfn::data

#endif  // SAGDFN_DATA_SCALER_H_
