#ifndef SAGDFN_UTILS_ARENA_H_
#define SAGDFN_UTILS_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace sagdfn::utils {

/// Per-thread bump allocator for kernel-internal temporaries.
///
/// Hot loops (encoder/decoder rollout steps, fused gconv backward, block
/// reductions) need short-lived buffers every timestep; allocating them
/// through the heap costs a malloc + zero-fill per step. A ScratchArena
/// hands out pointers from reusable chunks: allocation is a pointer bump,
/// deallocation is restoring an offset when a Scope exits. Chunks are
/// never returned to the heap mid-run, so the second and every later
/// rollout step reuses the first step's memory.
///
/// Rules (see DESIGN.md §5f "Arena lifetime"):
///  * Arena pointers are valid only inside the innermost enclosing Scope;
///    anything that outlives the op must be a real Tensor.
///  * Each thread owns its arena (ThreadLocal()); a buffer allocated on
///    the calling thread may be written by pool workers (the pointer is
///    stable), but workers must not allocate from another thread's arena.
///  * Scopes nest; they must be destroyed in LIFO order (automatic with
///    block scoping).
class ScratchArena {
 public:
  ScratchArena() = default;
  ~ScratchArena() = default;

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena.
  static ScratchArena& ThreadLocal();

  /// RAII marker: restores the arena to its construction-time offset on
  /// destruction, releasing every allocation made inside the scope.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(arena),
          saved_chunk_(arena.active_),
          saved_used_(arena.chunks_.empty()
                          ? 0
                          : arena.chunks_[arena.active_].used),
          saved_total_(arena.total_used_) {}
    ~Scope() { arena_.RestoreTo(saved_chunk_, saved_used_, saved_total_); }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    int64_t saved_chunk_;
    int64_t saved_used_;
    int64_t saved_total_;
  };

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// The memory is uninitialized and owned by the arena.
  void* Alloc(int64_t bytes, int64_t align = 64);

  /// Typed convenience for trivially-destructible element types.
  template <typename T>
  T* AllocArray(int64_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destructed");
    return static_cast<T*>(
        Alloc(n * static_cast<int64_t>(sizeof(T)),
              alignof(T) > 64 ? static_cast<int64_t>(alignof(T)) : 64));
  }

  /// Bytes currently handed out (live allocations).
  int64_t bytes_in_use() const { return total_used_; }

  /// Largest bytes_in_use() this arena ever reached.
  int64_t high_water() const { return high_water_; }

  /// Total chunk capacity currently held (never shrinks mid-run).
  int64_t bytes_reserved() const;

  /// Largest high_water() across every thread's arena, process-wide.
  /// Exported as the `arena.high_water_bytes` telemetry gauge.
  static int64_t ProcessHighWater();

  /// Frees every chunk (tests only; outstanding pointers become invalid).
  void ReleaseAll();

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    int64_t capacity = 0;
    int64_t used = 0;
  };

  void RestoreTo(int64_t chunk, int64_t used, int64_t total);

  std::vector<Chunk> chunks_;
  int64_t active_ = 0;
  int64_t total_used_ = 0;
  int64_t high_water_ = 0;
};

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_ARENA_H_
