#include "utils/rng.h"

#include <cmath>
#include <cstring>
#include <numeric>


#include "utils/check.h"

namespace sagdfn::utils {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::UniformInt(int64_t n) {
  SAGDFN_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return static_cast<int64_t>(v % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SAGDFN_CHECK_LT(lo, hi);
  return lo + UniformInt(hi - lo);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  SAGDFN_CHECK_GE(k, 0);
  SAGDFN_CHECK_LE(k, n);
  // Partial Fisher-Yates over [0, n). For k << n, materializing and
  // iota-ing the full pool is the dominant cost (the SNS sampler calls
  // this once per node, which made model construction O(N^2) at scale),
  // so the sparse branch simulates the same shuffle through a map of
  // displaced entries — identical rng draws, identical output, O(k)
  // time and memory.
  if (k * 4 >= n) {
    std::vector<int64_t> pool(n);
    std::iota(pool.begin(), pool.end(), 0);
    for (int64_t i = 0; i < k; ++i) {
      int64_t j = UniformInt(i, n);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }
  std::vector<int64_t> out(k);
  // At most 2k entries are ever displaced; a flat O(k) scan beats a hash
  // map by a wide margin at the k's that take this branch (the SNS
  // sampler calls this once per node with k = M ~ tens).
  std::vector<std::pair<int64_t, int64_t>> displaced;  // (index, value)
  displaced.reserve(2 * k);
  auto value_at = [&](int64_t idx) {
    for (const auto& [di, dv] : displaced) {
      if (di == idx) return dv;
    }
    return idx;
  };
  auto set_value = [&](int64_t idx, int64_t value) {
    for (auto& [di, dv] : displaced) {
      if (di == idx) {
        dv = value;
        return;
      }
    }
    displaced.emplace_back(idx, value);
  };
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = UniformInt(i, n);
    const int64_t vi = value_at(i);
    const int64_t vj = value_at(j);
    set_value(i, vj);
    set_value(j, vi);
    out[i] = vj;
  }
  return out;
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  return SampleWithoutReplacement(n, n);
}

std::vector<uint64_t> Rng::SerializeState() const {
  std::vector<uint64_t> words(kStateWords, 0);
  for (int i = 0; i < 4; ++i) words[i] = state_[i];
  words[4] = has_cached_normal_ ? 1 : 0;
  static_assert(sizeof(cached_normal_) == sizeof(uint64_t));
  std::memcpy(&words[5], &cached_normal_, sizeof(uint64_t));
  return words;
}

void Rng::DeserializeState(const std::vector<uint64_t>& words) {
  SAGDFN_CHECK_EQ(static_cast<int64_t>(words.size()), kStateWords);
  for (int i = 0; i < 4; ++i) state_[i] = words[i];
  has_cached_normal_ = words[4] != 0;
  std::memcpy(&cached_normal_, &words[5], sizeof(uint64_t));
}

}  // namespace sagdfn::utils
