#include "utils/status.h"

namespace sagdfn::utils {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace sagdfn::utils
