#include "utils/fault.h"

#include <cstdlib>

#include "utils/logging.h"
#include "utils/string_util.h"

namespace sagdfn::utils {
namespace {

const char* SiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kLoss:
      return "nan_loss";
    case FaultSite::kGrad:
      return "nan_grad";
    case FaultSite::kCrash:
      return "crash";
    case FaultSite::kSaveFail:
      return "io_fail@save";
    case FaultSite::kLoadFail:
      return "io_fail@load";
    case FaultSite::kTruncate:
      return "truncate_ckpt";
    case FaultSite::kBadCandidate:
      return "bad_candidate";
    case FaultSite::kNanForecast:
      return "nan_forecast";
    case FaultSite::kSlowBatch:
      return "slow_batch";
    case FaultSite::kSwapRace:
      return "swap_race";
  }
  return "?";
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    Status status = fi->ConfigureFromEnv();
    SAGDFN_CHECK(status.ok()) << status.ToString();
    return fi;
  }();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  std::vector<Rule> rules;
  uint64_t seed = 42;
  Status parsed = ParseSpec(spec, &rules, &seed);
  std::lock_guard<std::mutex> lock(mu_);
  if (!parsed.ok()) {
    // A mistyped spec must not leave stale rules armed.
    spec_.clear();
    rules_.clear();
    enabled_.store(false, std::memory_order_relaxed);
    return parsed;
  }
  spec_ = spec;
  rules_ = std::move(rules);
  seed_ = seed;
  rng_ = Rng(seed_);
  enabled_.store(!rules_.empty(), std::memory_order_relaxed);
  return Status::Ok();
}

Status FaultInjector::ParseSpec(const std::string& spec,
                                std::vector<Rule>* out_rules,
                                uint64_t* out_seed) {
  std::vector<Rule>& rules = *out_rules;
  uint64_t& seed = *out_seed;
  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == ';') c = ',';
  }
  for (const std::string& raw : Split(normalized, ',')) {
    const std::string term = Trim(raw);
    if (term.empty()) continue;

    // Split "kind[@key=value]...": a term is the site kind followed by
    // any number of @key=value qualifiers. At most one non-tenant
    // qualifier is meaningful per site; `tenant=ID` may ride along on
    // any serve-side term.
    const std::vector<std::string> segments = Split(term, '@');
    std::string kind = segments[0];
    std::string key;
    std::string value;
    std::string tenant;
    for (size_t s = 1; s < segments.size(); ++s) {
      const std::string& seg = segments[s];
      const size_t eq = seg.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault term '" + term +
                                       "': expected @key=value");
      }
      const std::string seg_key = seg.substr(0, eq);
      const std::string seg_value = seg.substr(eq + 1);
      if (seg_key == "tenant") {
        if (seg_value.empty()) {
          return Status::InvalidArgument("fault term '" + term +
                                         "': empty tenant id");
        }
        tenant = seg_value;
      } else if (key.empty()) {
        key = seg_key;
        value = seg_value;
      } else {
        return Status::InvalidArgument("fault term '" + term +
                                       "': more than one non-tenant "
                                       "qualifier");
      }
    }
    if (segments.size() == 1) {
      // "seed=K" has no site; handle before site mapping.
      const size_t eq = term.find('=');
      if (eq != std::string::npos) {
        kind = term.substr(0, eq);
        value = term.substr(eq + 1);
        if (kind == "seed") {
          int64_t parsed = 0;
          if (!ParseInt64(value, &parsed) || parsed < 0) {
            return Status::InvalidArgument("fault term '" + term +
                                           "': bad seed");
          }
          seed = static_cast<uint64_t>(parsed);
          continue;
        }
        return Status::InvalidArgument("fault term '" + term +
                                       "': unknown assignment");
      }
    }

    Rule rule;
    rule.term = term;
    rule.tenant = tenant;
    int64_t index = -1;
    double prob = -1.0;
    if (!value.empty() && key != "prob") {
      if (!ParseInt64(value, &index) || index < 0) {
        return Status::InvalidArgument("fault term '" + term +
                                       "': bad index '" + value + "'");
      }
    }
    if (key == "prob") {
      if (!ParseDouble(value, &prob) || prob < 0.0 || prob > 1.0) {
        return Status::InvalidArgument("fault term '" + term +
                                       "': prob must be in [0, 1]");
      }
    }

    if (kind == "nan_loss" || kind == "nan_grad") {
      rule.site = kind == "nan_loss" ? FaultSite::kLoss : FaultSite::kGrad;
      if (key == "iter") {
        rule.index = index;
      } else if (key == "prob") {
        rule.prob = prob;
      } else {
        return Status::InvalidArgument("fault term '" + term +
                                       "': expected @iter=N or @prob=P");
      }
    } else if (kind == "crash") {
      if (key != "epoch") {
        return Status::InvalidArgument("fault term '" + term +
                                       "': expected crash@epoch=N");
      }
      rule.site = FaultSite::kCrash;
      rule.index = index;
    } else if (kind == "io_fail") {
      if (key == "save") {
        rule.site = FaultSite::kSaveFail;
      } else if (key == "load") {
        rule.site = FaultSite::kLoadFail;
      } else {
        return Status::InvalidArgument(
            "fault term '" + term + "': expected io_fail@save=N or @load=N");
      }
      if (index < 1) {
        return Status::InvalidArgument("fault term '" + term +
                                       "': occurrence is 1-based");
      }
      rule.index = index;
    } else if (kind == "truncate_ckpt") {
      rule.site = FaultSite::kTruncate;
      if (key.empty()) {
        rule.index = 1;  // default: the first checkpoint written
      } else if (key == "save" && index >= 1) {
        rule.index = index;
      } else {
        return Status::InvalidArgument("fault term '" + term +
                                       "': expected truncate_ckpt[@save=N]");
      }
    } else if (kind == "bad_candidate") {
      rule.site = FaultSite::kBadCandidate;
      if (key.empty()) {
        rule.index = 1;  // default: the first candidate published
      } else if (key == "publish" && index >= 1) {
        rule.index = index;
      } else {
        return Status::InvalidArgument(
            "fault term '" + term + "': expected bad_candidate[@publish=N]");
      }
    } else if (kind == "nan_forecast") {
      rule.site = FaultSite::kNanForecast;
      if (key == "prob") {
        rule.prob = prob;
      } else if (key == "batch" && index >= 1) {
        rule.index = index;
      } else {
        return Status::InvalidArgument(
            "fault term '" + term + "': expected @batch=N or @prob=P");
      }
    } else if (kind == "slow_batch") {
      rule.site = FaultSite::kSlowBatch;
      if (key != "us" || index < 1) {
        return Status::InvalidArgument("fault term '" + term +
                                       "': expected slow_batch@us=N");
      }
      rule.param = index;
    } else if (kind == "swap_race") {
      rule.site = FaultSite::kSwapRace;
      if (key.empty()) {
        rule.param = 2000;  // default race-window width in microseconds
      } else if (key == "us" && index >= 1) {
        rule.param = index;
      } else {
        return Status::InvalidArgument("fault term '" + term +
                                       "': expected swap_race[@us=N]");
      }
    } else {
      return Status::InvalidArgument("unknown fault kind '" + kind +
                                     "' in term '" + term + "'");
    }
    rules.push_back(rule);
  }
  return Status::Ok();
}

Status FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("SAGDFN_FAULT_SPEC");
  return Configure(spec == nullptr ? "" : spec);
}

void FaultInjector::Reset() {
  Status status = Configure("");
  (void)status;  // "" always parses
}

std::string FaultInjector::active_spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

bool FaultInjector::TenantMatches(const Rule& rule, std::string_view tenant) {
  return rule.tenant.empty() || rule.tenant == tenant;
}

bool FaultInjector::FireLocked(FaultSite site, int64_t index,
                               std::string_view tenant) {
  for (Rule& rule : rules_) {
    if (rule.site != site || !TenantMatches(rule, tenant)) continue;
    if (rule.index >= 0) {
      if (!rule.fired && index == rule.index) {
        rule.fired = true;
        SAGDFN_LOG(Warning) << "FaultInjector: firing '" << rule.term
                            << "' at " << SiteName(site) << " index "
                            << index;
        return true;
      }
    } else if (rng_.Bernoulli(rule.prob)) {
      SAGDFN_LOG(Warning) << "FaultInjector: firing '" << rule.term
                          << "' at " << SiteName(site) << " index " << index;
      return true;
    }
  }
  return false;
}

bool FaultInjector::Fire(FaultSite site, int64_t index) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return FireLocked(site, index, std::string_view());
}

bool FaultInjector::FireCounted(FaultSite site) {
  return FireCounted(site, std::string_view());
}

bool FaultInjector::FireCounted(FaultSite site, std::string_view tenant) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // Every matching rule advances its own occurrence counter even when an
  // earlier rule fires, so two rules for the same site count the same
  // probe stream.
  bool any_fired = false;
  for (Rule& rule : rules_) {
    if (rule.site != site || !TenantMatches(rule, tenant)) continue;
    const int64_t occurrence = ++rule.seen;
    if (rule.index >= 0) {
      if (!rule.fired && occurrence == rule.index) {
        rule.fired = true;
        SAGDFN_LOG(Warning) << "FaultInjector: firing '" << rule.term
                            << "' at " << SiteName(site) << " occurrence "
                            << occurrence;
        any_fired = true;
      }
    } else if (rng_.Bernoulli(rule.prob)) {
      SAGDFN_LOG(Warning) << "FaultInjector: firing '" << rule.term
                          << "' at " << SiteName(site) << " occurrence "
                          << occurrence;
      any_fired = true;
    }
  }
  return any_fired;
}

bool FaultInjector::FireParam(FaultSite site, int64_t* out_param) {
  return FireParam(site, std::string_view(), out_param);
}

bool FaultInjector::FireParam(FaultSite site, std::string_view tenant,
                              int64_t* out_param) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Rule& rule : rules_) {
    if (rule.site != site || !TenantMatches(rule, tenant)) continue;
    *out_param = rule.param;
    return true;
  }
  return false;
}

}  // namespace sagdfn::utils
