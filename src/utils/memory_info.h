#ifndef SAGDFN_UTILS_MEMORY_INFO_H_
#define SAGDFN_UTILS_MEMORY_INFO_H_

#include <cstdint>

namespace sagdfn::utils {

/// Returns the process peak resident set size in bytes (from
/// /proc/self/status VmHWM), or 0 if unavailable.
int64_t PeakRssBytes();

/// Returns the current resident set size in bytes (VmRSS), or 0 if
/// unavailable.
int64_t CurrentRssBytes();

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_MEMORY_INFO_H_
