#ifndef SAGDFN_UTILS_STRING_UTIL_H_
#define SAGDFN_UTILS_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sagdfn::utils {

/// Splits `text` on `delim`; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Formats a byte count with a binary-unit suffix, e.g. "1.50 GiB".
std::string FormatBytes(double bytes);

/// Parses a string as double; returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

/// Parses a string as int64; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_STRING_UTIL_H_
