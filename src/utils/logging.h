#ifndef SAGDFN_UTILS_LOGGING_H_
#define SAGDFN_UTILS_LOGGING_H_

#include <sstream>
#include <string>

namespace sagdfn::utils {

/// Severity levels for the lightweight logger.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum severity that is actually emitted. Messages below the
/// threshold are formatted but discarded. Default is kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

/// Returns a short human-readable tag ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sagdfn::utils

#define SAGDFN_LOG(level)                                        \
  ::sagdfn::utils::internal::LogMessage(                         \
      ::sagdfn::utils::LogLevel::k##level, __FILE__, __LINE__)   \
      .stream()

#endif  // SAGDFN_UTILS_LOGGING_H_
