#include "utils/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

namespace sagdfn::utils {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << basename << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      static_cast<int>(GetLogLevel())) {
    return;
  }
  std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace sagdfn::utils
