#ifndef SAGDFN_UTILS_FAULT_H_
#define SAGDFN_UTILS_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "utils/rng.h"
#include "utils/status.h"

namespace sagdfn::utils {

/// Where a fault can be injected. Each site is probed by exactly one
/// component of the training runtime (core/trainer.cc and
/// nn/serialization.cc) or the serving runtime (src/serve), so a spec
/// term maps to one well-defined failure.
enum class FaultSite {
  kLoss = 0,      // nan_loss:      poison the training loss before the guard
  kGrad,          // nan_grad:      poison parameter gradients after backward
  kCrash,         // crash:         abort the training loop after a checkpoint
  kSaveFail,      // io_fail@save:  checkpoint write reports an I/O error
  kLoadFail,      // io_fail@load:  checkpoint read reports an I/O error
  kTruncate,      // truncate_ckpt: checkpoint bytes cut before publication
  kBadCandidate,  // bad_candidate: registry quality gate fails a candidate
  kNanForecast,   // nan_forecast:  poison a served micro-batch's forecasts
  kSlowBatch,     // slow_batch:    stall a served micro-batch's compute
  kSwapRace,      // swap_race:     widen the snapshot->compute race window
};

/// Number of distinct FaultSite values (for counter arrays).
inline constexpr int kNumFaultSites = 10;

/// Deterministic fault-injection harness for the fault-tolerant training
/// runtime. Configured from a spec string (usually the SAGDFN_FAULT_SPEC
/// environment variable) of comma- or semicolon-separated terms:
///
///   nan_loss@iter=7     poison the loss at global iteration 7 (once)
///   nan_grad@iter=7     poison the gradients at iteration 7 (once)
///   nan_grad@prob=0.25  poison gradients with probability 0.25 per batch
///   crash@epoch=3       abort Train() right after epoch 3's checkpoint
///   io_fail@save=2      the 2nd checkpoint save fails like a full disk
///   io_fail@load=1      the 1st checkpoint load fails like a read error
///   truncate_ckpt       truncate the 1st checkpoint's bytes pre-publish
///   truncate_ckpt@save=2  ... the 2nd checkpoint's bytes
///   bad_candidate       fail the 1st registry publish's quality gate
///   bad_candidate@publish=2  ... the 2nd publish's gate
///   nan_forecast@prob=0.5  poison a micro-batch's forecast with NaN
///   nan_forecast@batch=3   ... exactly the 3rd micro-batch (1-based)
///   slow_batch@us=500   stall every micro-batch's compute by 500 us
///   swap_race           sleep between model-snapshot grab and compute
///   swap_race@us=2000   ... with an explicit window width
///   seed=99             seed for the probabilistic (@prob) terms
///
/// Serve-side terms additionally accept a `@tenant=ID` qualifier so a
/// multi-tenant process can fault exactly one tenant's lane:
///
///   nan_forecast@batch=1@tenant=carpark   only carpark's 1st micro-batch
///   slow_batch@us=500@tenant=london2000   stall only london2000's batches
///   bad_candidate@publish=1@tenant=newyork2000
///
/// A tenant-qualified rule fires only on probes carrying that tenant id;
/// an unqualified rule fires on every probe of its site (including
/// tenant-less single-tenant probes). Occurrence counting (`@save=N`,
/// `@publish=N`, `@batch=N`) is per rule, so `@publish=1@tenant=X`
/// means X's first publish, not the process's first.
///
/// Indexed terms (@iter/@epoch/@save/@load) fire exactly once;
/// probabilistic terms fire on a seeded Bernoulli draw per probe, so a
/// given (spec, seed) always yields the same fault sequence. An empty
/// spec disables every probe at near-zero cost.
class FaultInjector {
 public:
  /// Process-wide injector, shared by the trainer and serialization. On
  /// first access it configures itself from SAGDFN_FAULT_SPEC (a parse
  /// error aborts: a mistyped fault spec should never pass silently).
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Replaces the active spec (and resets all counters/one-shot latches).
  /// An empty spec disables injection; a spec that fails to parse also
  /// disables injection (stale rules are never left armed) and returns
  /// the parse error.
  Status Configure(const std::string& spec);

  /// Configures from the SAGDFN_FAULT_SPEC environment variable (absent
  /// or empty disables injection).
  Status ConfigureFromEnv();

  /// Disables injection and clears counters, latches, and the spec.
  void Reset();

  /// True if any rule is active.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The spec this injector was last configured with.
  std::string active_spec() const;

  /// Probes an index-triggered site (kLoss/kGrad by iteration, kCrash by
  /// epoch). Returns true if a fault fires now; one-shot rules latch.
  bool Fire(FaultSite site, int64_t index);

  /// Probes an occurrence-counted site (kSaveFail/kLoadFail/kTruncate/
  /// kBadCandidate/kNanForecast@batch): each matching rule advances its
  /// own 1-based counter, and a rule with index N fires on the Nth probe
  /// it matches. The tenant-less overload matches only unqualified rules.
  bool FireCounted(FaultSite site);
  bool FireCounted(FaultSite site, std::string_view tenant);

  /// Probes a parameterized always-on site (kSlowBatch/kSwapRace).
  /// Returns true when a rule for the site matches this probe's tenant
  /// and writes the rule's parameter (microseconds) to `*out_param`.
  bool FireParam(FaultSite site, int64_t* out_param);
  bool FireParam(FaultSite site, std::string_view tenant,
                 int64_t* out_param);

 private:
  struct Rule {
    FaultSite site;
    int64_t index = -1;   // trigger index; -1 for probabilistic rules
    double prob = 0.0;    // used when index < 0
    int64_t param = 0;    // payload for parameterized sites (microseconds)
    bool fired = false;   // one-shot latch for indexed rules
    int64_t seen = 0;     // per-rule probe count for occurrence sites
    std::string tenant;   // empty = matches every probe of the site
    std::string term;     // original spec term, for log lines
  };

  static Status ParseSpec(const std::string& spec,
                          std::vector<Rule>* out_rules, uint64_t* out_seed);
  /// True when `rule` applies to a probe carrying `tenant` (empty for
  /// tenant-less probes): unqualified rules match everything,
  /// tenant-qualified rules only their own tenant's probes.
  static bool TenantMatches(const Rule& rule, std::string_view tenant);
  bool FireLocked(FaultSite site, int64_t index, std::string_view tenant);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::string spec_;
  std::vector<Rule> rules_;
  uint64_t seed_ = 42;
  Rng rng_{42};
};

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_FAULT_H_
