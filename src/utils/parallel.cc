#include "utils/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "utils/check.h"

namespace sagdfn::utils {
namespace {

thread_local bool t_in_parallel_region = false;

int64_t DefaultNumThreads() {
  if (const char* env = std::getenv("SAGDFN_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int64_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

}  // namespace

/// One parallel region. Workers hold a shared_ptr snapshot, so a worker
/// that wakes late (after the region completed and a new one started)
/// still sees its own exhausted task counter and never claims tasks from
/// a newer job.
struct ThreadPool::Job {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t total = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
};

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Job> job;  // guarded by mu
  uint64_t generation = 0;   // guarded by mu
  bool shutdown = false;     // guarded by mu
};

ThreadPool::ThreadPool(int64_t num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads), impl_(new Impl) {
  for (int64_t i = 1; i < num_threads_; ++i) {
    impl_->workers.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(impl_->mu);
  while (true) {
    impl_->work_cv.wait(lock, [&] {
      return impl_->shutdown || impl_->generation != seen_generation;
    });
    if (impl_->shutdown) return;
    seen_generation = impl_->generation;
    std::shared_ptr<Job> job = impl_->job;
    lock.unlock();

    t_in_parallel_region = true;
    int64_t task;
    while ((task = job->next.fetch_add(1, std::memory_order_relaxed)) <
           job->total) {
      (*job->fn)(task);
      if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job->total) {
        std::lock_guard<std::mutex> g(impl_->mu);
        impl_->done_cv.notify_all();
      }
    }
    t_in_parallel_region = false;

    lock.lock();
  }
}

void ThreadPool::Run(int64_t num_tasks,
                     const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return;
  if (num_threads_ == 1 || num_tasks == 1 || t_in_parallel_region) {
    for (int64_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->total = num_tasks;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  // The calling thread participates in the region.
  t_in_parallel_region = true;
  int64_t task;
  while ((task = job->next.fetch_add(1, std::memory_order_relaxed)) <
         job->total) {
    fn(task);
    job->completed.fetch_add(1, std::memory_order_acq_rel);
  }
  t_in_parallel_region = false;

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == job->total;
  });
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(DefaultNumThreads());
  return *g_pool;
}

int64_t GetNumThreads() { return GlobalThreadPool().num_threads(); }

void SetNumThreads(int64_t n) {
  SAGDFN_CHECK_GE(n, 0) << "SetNumThreads expects n >= 0";
  SAGDFN_CHECK(!ThreadPool::InParallelRegion())
      << "SetNumThreads inside a parallel region";
  const int64_t target = n == 0 ? DefaultNumThreads() : n;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool && g_pool->num_threads() == target) return;
  g_pool.reset();  // join old workers before spawning the new pool
  g_pool = std::make_unique<ThreadPool>(target);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n <= grain || ThreadPool::InParallelRegion()) {
    body(begin, end);
    return;
  }
  ThreadPool& pool = GlobalThreadPool();
  const int64_t threads = pool.num_threads();
  if (threads == 1) {
    body(begin, end);
    return;
  }
  // Static partition: at most 4 tasks per thread (load balancing for
  // irregular work), each covering at least `grain` iterations.
  int64_t num_tasks = (n + grain - 1) / grain;
  if (num_tasks > threads * 4) num_tasks = threads * 4;
  const int64_t chunk = (n + num_tasks - 1) / num_tasks;
  num_tasks = (n + chunk - 1) / chunk;
  pool.Run(num_tasks, [&](int64_t task) {
    const int64_t b = begin + task * chunk;
    const int64_t e = b + chunk < end ? b + chunk : end;
    body(b, e);
  });
}

void ParallelFor2D(int64_t rows, int64_t cols, int64_t row_grain,
                   int64_t col_grain,
                   const std::function<void(int64_t, int64_t, int64_t,
                                            int64_t)>& body) {
  if (rows <= 0 || cols <= 0) return;
  if (row_grain < 1) row_grain = 1;
  if (col_grain < 1) col_grain = 1;
  if ((rows <= row_grain && cols <= col_grain) ||
      ThreadPool::InParallelRegion()) {
    body(0, rows, 0, cols);
    return;
  }
  ThreadPool& pool = GlobalThreadPool();
  const int64_t threads = pool.num_threads();
  if (threads == 1) {
    body(0, rows, 0, cols);
    return;
  }
  int64_t row_tasks = (rows + row_grain - 1) / row_grain;
  int64_t col_tasks = (cols + col_grain - 1) / col_grain;
  // Prefer splitting rows (outer dimension, better locality); split
  // columns only as far as needed to reach one task per thread.
  if (row_tasks > threads * 4) row_tasks = threads * 4;
  const int64_t max_col_tasks =
      row_tasks >= threads ? 1 : (threads + row_tasks - 1) / row_tasks;
  if (col_tasks > max_col_tasks) col_tasks = max_col_tasks;
  const int64_t row_chunk = (rows + row_tasks - 1) / row_tasks;
  const int64_t col_chunk = (cols + col_tasks - 1) / col_tasks;
  row_tasks = (rows + row_chunk - 1) / row_chunk;
  col_tasks = (cols + col_chunk - 1) / col_chunk;
  pool.Run(row_tasks * col_tasks, [&](int64_t task) {
    const int64_t rt = task / col_tasks;
    const int64_t ct = task % col_tasks;
    const int64_t r0 = rt * row_chunk;
    const int64_t r1 = r0 + row_chunk < rows ? r0 + row_chunk : rows;
    const int64_t c0 = ct * col_chunk;
    const int64_t c1 = c0 + col_chunk < cols ? c0 + col_chunk : cols;
    body(r0, r1, c0, c1);
  });
}

}  // namespace sagdfn::utils
