#ifndef SAGDFN_UTILS_STOPWATCH_H_
#define SAGDFN_UTILS_STOPWATCH_H_

#include <chrono>

namespace sagdfn::utils {

/// Wall-clock stopwatch for timing epochs, benches, and profiling blocks.
class Stopwatch {
 public:
  /// Starts timing immediately.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the clock.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_STOPWATCH_H_
