#ifndef SAGDFN_UTILS_STATUS_H_
#define SAGDFN_UTILS_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "utils/check.h"

namespace sagdfn::utils {

/// Error categories for recoverable failures (I/O, malformed input,
/// configuration errors). Programming errors use SAGDFN_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a short human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Value-semantic result of an operation that can fail recoverably.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SAGDFN_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; fatal if this holds an error.
  const T& value() const& {
    SAGDFN_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    SAGDFN_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SAGDFN_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sagdfn::utils

/// Propagates a non-OK status from the enclosing function.
#define SAGDFN_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::sagdfn::utils::Status _status = (expr);     \
    if (!_status.ok()) return _status;            \
  } while (false)

#endif  // SAGDFN_UTILS_STATUS_H_
