#include "utils/table_printer.h"

#include <algorithm>
#include <sstream>

#include "utils/check.h"

namespace sagdfn::utils {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SAGDFN_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SAGDFN_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(std::initializer_list<std::string> row) {
  AddRow(std::vector<std::string>(row));
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& out) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c]
          << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };

  std::ostringstream out;
  render_row(headers_, out);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) render_row(row, out);
  return out.str();
}

}  // namespace sagdfn::utils
