#ifndef SAGDFN_UTILS_PARALLEL_H_
#define SAGDFN_UTILS_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace sagdfn::utils {

/// Fork-join thread pool behind ParallelFor / ParallelFor2D.
///
/// Design goals (see DESIGN.md "Threading model"):
///  * reusable workers — no thread spawn on the hot path;
///  * static, grain-size-aware partitioning — a caller-supplied `grain`
///    bounds the minimum work per task, so tiny tensors never pay pool
///    overhead (they run inline on the calling thread);
///  * deterministic results for any thread count — every output element is
///    written by exactly one task and the iteration order inside a task is
///    the sequential order, so disjoint-write kernels are bit-identical to
///    the single-threaded run. Reductions must use fixed-size blocks
///    (independent of the thread count) combined in index order; see
///    `kReduceBlock`.
///  * nested parallel regions run inline: a ParallelFor issued from inside
///    a worker executes sequentially on that worker, so callers may freely
///    compose parallel layers (e.g. per-head SSMA over parallel matmuls).
///
/// The pool size comes from, in priority order: SetNumThreads(),
/// the SAGDFN_NUM_THREADS environment variable (read once at first use),
/// then std::thread::hardware_concurrency().
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total execution slots (the calling
  /// thread participates, so `num_threads - 1` workers are spawned).
  explicit ThreadPool(int64_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution slots, including the calling thread. Always >= 1.
  int64_t num_threads() const { return num_threads_; }

  /// Runs fn(0) .. fn(num_tasks - 1), distributing tasks over the workers
  /// and the calling thread; blocks until every task finished. Tasks are
  /// claimed dynamically but outputs are deterministic as long as tasks
  /// write disjoint data. Called from inside a worker, runs inline.
  void Run(int64_t num_tasks, const std::function<void(int64_t)>& fn);

  /// True on threads currently executing a pool task (used to inline
  /// nested parallel regions).
  static bool InParallelRegion();

 private:
  struct Job;
  void WorkerLoop();

  int64_t num_threads_;
  struct Impl;
  Impl* impl_;
};

/// Process-global pool accessors. Not thread-safe against each other: call
/// SetNumThreads from the main thread, between parallel regions.
ThreadPool& GlobalThreadPool();

/// Returns the current global pool size (>= 1).
int64_t GetNumThreads();

/// Resizes the global pool. `n >= 1` sets an explicit size; `n == 0`
/// resets to the default (SAGDFN_NUM_THREADS env var, else hardware
/// concurrency).
void SetNumThreads(int64_t n);

/// Fixed reduction block size (elements). Reduction kernels accumulate one
/// partial per block and combine partials in block order, making results
/// independent of the thread count (and of scheduling).
inline constexpr int64_t kReduceBlock = 16384;

/// Default minimum elements per task for elementwise kernels; below this
/// the loop runs inline.
inline constexpr int64_t kElementwiseGrain = 32768;

/// Splits [begin, end) into contiguous chunks of at least `grain`
/// iterations and runs `body(chunk_begin, chunk_end)` across the pool.
/// Runs inline when the range fits in one grain, the pool has one thread,
/// or the caller is already inside a parallel region.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

/// 2-D variant: tiles [0, rows) x [0, cols) into blocks of at least
/// `row_grain` x `col_grain` and runs `body(r0, r1, c0, c1)` per tile.
/// Useful when the outer extent alone is too small to saturate the pool
/// (e.g. batch x row parallelism for small-batch matmuls).
void ParallelFor2D(int64_t rows, int64_t cols, int64_t row_grain,
                   int64_t col_grain,
                   const std::function<void(int64_t, int64_t, int64_t,
                                            int64_t)>& body);

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_PARALLEL_H_
