#include "utils/arena.h"

#include <algorithm>

#include "utils/check.h"

namespace sagdfn::utils {
namespace {

/// First chunk size; later chunks double until allocations fit.
constexpr int64_t kMinChunkBytes = 1 << 16;  // 64 KiB

std::atomic<int64_t>& ProcessHighWaterAtomic() {
  static std::atomic<int64_t> high_water{0};
  return high_water;
}

}  // namespace

ScratchArena& ScratchArena::ThreadLocal() {
  thread_local ScratchArena arena;
  return arena;
}

void* ScratchArena::Alloc(int64_t bytes, int64_t align) {
  SAGDFN_CHECK_GE(bytes, 0);
  SAGDFN_CHECK_GT(align, 0);
  SAGDFN_CHECK_EQ(align & (align - 1), 0) << "alignment must be a power of 2";
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for empty arrays

  // Try the active chunk, then any later (already-reset) chunk, growing the
  // chunk list only when nothing fits.
  for (;;) {
    if (active_ < static_cast<int64_t>(chunks_.size())) {
      Chunk& chunk = chunks_[active_];
      char* base = chunk.data.get();
      intptr_t cursor = reinterpret_cast<intptr_t>(base) + chunk.used;
      intptr_t aligned_cursor = (cursor + (align - 1)) & ~(align - 1);
      const int64_t padding = aligned_cursor - cursor;
      if (chunk.used + padding + bytes <= chunk.capacity) {
        chunk.used += padding + bytes;
        total_used_ += padding + bytes;
        if (total_used_ > high_water_) {
          high_water_ = total_used_;
          auto& process = ProcessHighWaterAtomic();
          int64_t seen = process.load(std::memory_order_relaxed);
          while (seen < high_water_ &&
                 !process.compare_exchange_weak(seen, high_water_,
                                                std::memory_order_relaxed)) {
          }
        }
        return reinterpret_cast<void*>(aligned_cursor);
      }
      if (active_ + 1 < static_cast<int64_t>(chunks_.size())) {
        ++active_;  // next chunk is reset (used == 0 past the active one)
        continue;
      }
    }
    // Need a new chunk: double the last capacity until the request fits
    // (with headroom for alignment padding).
    int64_t capacity =
        chunks_.empty() ? kMinChunkBytes : chunks_.back().capacity * 2;
    capacity = std::max(capacity, bytes + align);
    Chunk chunk;
    chunk.data = std::make_unique<char[]>(capacity);
    chunk.capacity = capacity;
    chunks_.push_back(std::move(chunk));
    active_ = static_cast<int64_t>(chunks_.size()) - 1;
  }
}

void ScratchArena::RestoreTo(int64_t chunk, int64_t used, int64_t total) {
  for (int64_t c = chunk + 1; c < static_cast<int64_t>(chunks_.size()); ++c) {
    chunks_[c].used = 0;
  }
  if (chunk < static_cast<int64_t>(chunks_.size())) {
    chunks_[chunk].used = used;
  }
  active_ = std::min(chunk,
                     std::max<int64_t>(
                         0, static_cast<int64_t>(chunks_.size()) - 1));
  total_used_ = total;
}

int64_t ScratchArena::bytes_reserved() const {
  int64_t total = 0;
  for (const Chunk& c : chunks_) total += c.capacity;
  return total;
}

int64_t ScratchArena::ProcessHighWater() {
  return ProcessHighWaterAtomic().load(std::memory_order_relaxed);
}

void ScratchArena::ReleaseAll() {
  chunks_.clear();
  active_ = 0;
  total_used_ = 0;
}

}  // namespace sagdfn::utils
