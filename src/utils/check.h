#ifndef SAGDFN_UTILS_CHECK_H_
#define SAGDFN_UTILS_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

// Fatal-check macros for programming errors (shape mismatches, broken
// invariants). These abort the process with a message; they are not meant
// for recoverable runtime errors, which use sagdfn::utils::Status instead.

namespace sagdfn::utils::internal {

/// Collects a streamed message and aborts on destruction. Used by the
/// SAGDFN_CHECK* macros; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line << " Check failed: "
            << condition << " ";
  }
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Converts a streamed expression to void so the ternary in the CHECK
/// macros type-checks; `&` binds looser than `<<`, letting user messages
/// chain onto the stream first.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace sagdfn::utils::internal

#define SAGDFN_CHECK(condition)                                \
  (condition) ? (void)0                                        \
              : ::sagdfn::utils::internal::Voidify() &         \
                    ::sagdfn::utils::internal::FatalMessage(   \
                        __FILE__, __LINE__, #condition)        \
                        .stream()

#define SAGDFN_CHECK_OP(op, a, b)                                     \
  ((a)op(b)) ? (void)0                                                \
             : ::sagdfn::utils::internal::Voidify() &                 \
                   (::sagdfn::utils::internal::FatalMessage(          \
                        __FILE__, __LINE__, #a " " #op " " #b)        \
                        .stream()                                     \
                    << "(" << (a) << " vs " << (b) << ") ")

#define SAGDFN_CHECK_EQ(a, b) SAGDFN_CHECK_OP(==, a, b)
#define SAGDFN_CHECK_NE(a, b) SAGDFN_CHECK_OP(!=, a, b)
#define SAGDFN_CHECK_LT(a, b) SAGDFN_CHECK_OP(<, a, b)
#define SAGDFN_CHECK_LE(a, b) SAGDFN_CHECK_OP(<=, a, b)
#define SAGDFN_CHECK_GT(a, b) SAGDFN_CHECK_OP(>, a, b)
#define SAGDFN_CHECK_GE(a, b) SAGDFN_CHECK_OP(>=, a, b)

#ifndef NDEBUG
#define SAGDFN_DCHECK(condition) SAGDFN_CHECK(condition)
#define SAGDFN_DCHECK_EQ(a, b) SAGDFN_CHECK_EQ(a, b)
#define SAGDFN_DCHECK_LT(a, b) SAGDFN_CHECK_LT(a, b)
#define SAGDFN_DCHECK_GE(a, b) SAGDFN_CHECK_GE(a, b)
#else
#define SAGDFN_DCHECK(condition) \
  while (false) SAGDFN_CHECK(condition)
#define SAGDFN_DCHECK_EQ(a, b) \
  while (false) SAGDFN_CHECK_EQ(a, b)
#define SAGDFN_DCHECK_LT(a, b) \
  while (false) SAGDFN_CHECK_LT(a, b)
#define SAGDFN_DCHECK_GE(a, b) \
  while (false) SAGDFN_CHECK_GE(a, b)
#endif

#endif  // SAGDFN_UTILS_CHECK_H_
