#ifndef SAGDFN_UTILS_BLOCK_REDUCE_H_
#define SAGDFN_UTILS_BLOCK_REDUCE_H_

#include <cstdint>
#include <type_traits>

#include "utils/arena.h"
#include "utils/parallel.h"

namespace sagdfn::utils {

/// Deterministic parallel reduction over [0, n).
///
/// The range is cut into fixed kReduceBlock-sized blocks (independent of
/// the thread count), `block_fn(lo, hi)` produces one partial per block on
/// whichever worker claims it, and `merge(total, partial)` folds the
/// partials back in ascending block order on the calling thread. Because
/// both the block boundaries and the merge order are fixed, the result is
/// bit-identical for every pool size — the single contract shared by the
/// loss reductions (SumAll), the masked metrics, and ClipGradNorm, so a
/// kernel change (e.g. a SIMD dispatch switch) can never make those three
/// disagree on how elements are grouped.
///
/// Single-block ranges run inline with no arena traffic; the partial
/// buffer for larger ranges comes from the calling thread's ScratchArena.
///
/// `Acc` must be trivially copyable (partials live in arena storage).
/// `block_fn` must not depend on execution order; `merge` runs serially.
template <typename Acc, typename BlockFn, typename MergeFn>
Acc DeterministicBlockReduce(int64_t n, Acc init, BlockFn block_fn,
                             MergeFn merge) {
  static_assert(std::is_trivially_copyable_v<Acc>,
                "block-reduce partials live in arena storage");
  if (n <= 0) return init;
  const int64_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
  if (num_blocks <= 1) {
    Acc total = init;
    merge(total, block_fn(int64_t{0}, n));
    return total;
  }
  ScratchArena& arena = ScratchArena::ThreadLocal();
  ScratchArena::Scope scope(arena);
  Acc* partials = arena.AllocArray<Acc>(num_blocks);
  ParallelFor(0, num_blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t blk = b0; blk < b1; ++blk) {
      const int64_t lo = blk * kReduceBlock;
      const int64_t hi =
          lo + kReduceBlock < n ? lo + kReduceBlock : n;
      partials[blk] = block_fn(lo, hi);
    }
  });
  Acc total = init;
  for (int64_t blk = 0; blk < num_blocks; ++blk) merge(total, partials[blk]);
  return total;
}

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_BLOCK_REDUCE_H_
