#ifndef SAGDFN_UTILS_MMAP_FILE_H_
#define SAGDFN_UTILS_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "utils/status.h"

namespace sagdfn::utils {

/// Read-only memory-mapped file. The mapping is PROT_READ / MAP_PRIVATE:
/// pages are shared with every other process mapping the same file until
/// someone writes (which faults — callers must treat the bytes as
/// immutable). Held by shared_ptr so tensors can alias into the mapping
/// and keep it alive past the loader's scope.
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files map successfully with size 0.
  static Status Open(const std::string& path,
                     std::shared_ptr<MappedFile>* out);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_MMAP_FILE_H_
