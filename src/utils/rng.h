#ifndef SAGDFN_UTILS_RNG_H_
#define SAGDFN_UTILS_RNG_H_

#include <cstdint>
#include <vector>

namespace sagdfn::utils {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (weight init, dataset
/// synthesis, neighbor exploration) takes an explicit Rng so experiments
/// are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; the seed is expanded with splitmix64 so nearby
  /// seeds produce uncorrelated streams.
  explicit Rng(uint64_t seed = 42);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a double uniform in [0, 1).
  double Uniform();

  /// Returns a double uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a standard normal sample (Box-Muller, cached pair).
  double Normal();

  /// Returns a normal sample with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Returns an integer uniform in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Returns an integer uniform in [lo, hi). Requires lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (int64_t i = static_cast<int64_t>(values.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(values[i], values[j]);
    }
  }

  /// Returns k distinct indices sampled uniformly from [0, n) without
  /// replacement. Requires 0 <= k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Returns a random permutation of [0, n).
  std::vector<int64_t> Permutation(int64_t n);

  /// Number of 64-bit words SerializeState() produces.
  static constexpr int64_t kStateWords = 6;

  /// Captures the full generator state (xoshiro words plus the cached
  /// Box-Muller sample) as kStateWords opaque words, for checkpointing.
  std::vector<uint64_t> SerializeState() const;

  /// Restores state captured by SerializeState(); the next draws are
  /// bit-identical to those the source generator would have produced.
  /// Requires exactly kStateWords words.
  void DeserializeState(const std::vector<uint64_t>& words);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_RNG_H_
