#include "utils/memory_info.h"

#include <fstream>
#include <sstream>
#include <string>

namespace sagdfn::utils {
namespace {

int64_t ReadStatusKb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream iss(line.substr(std::string(key).size()));
      int64_t kb = 0;
      iss >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

int64_t PeakRssBytes() { return ReadStatusKb("VmHWM:") * 1024; }

int64_t CurrentRssBytes() { return ReadStatusKb("VmRSS:") * 1024; }

}  // namespace sagdfn::utils
