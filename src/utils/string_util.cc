#include "utils/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace sagdfn::utils {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) return false;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(
      trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace sagdfn::utils
