#include "utils/cli.h"

#include "utils/string_util.h"

namespace sagdfn::utils {

CommandLine::CommandLine(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not a flag; else bare boolean.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

bool CommandLine::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  int64_t value = 0;
  return ParseInt64(it->second, &value) ? value : fallback;
}

double CommandLine::GetDouble(const std::string& name,
                              double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double value = 0;
  return ParseDouble(it->second, &value) ? value : fallback;
}

bool CommandLine::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace sagdfn::utils
