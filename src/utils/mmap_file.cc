#include "utils/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sagdfn::utils {

Status MappedFile::Open(const std::string& path,
                        std::shared_ptr<MappedFile>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("mmap open failed for " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("fstat failed for " + path + ": " +
                            std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap failed for " + path + ": " +
                              std::strerror(err));
    }
    data = static_cast<const uint8_t*>(map);
  }
  // The mapping survives the descriptor; closing here keeps the fd table
  // flat when many engine processes map the same weight file.
  ::close(fd);

  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->data_ = data;
  file->size_ = size;
  file->path_ = path;
  *out = std::move(file);
  return Status::Ok();
}

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace sagdfn::utils
