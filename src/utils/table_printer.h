#ifndef SAGDFN_UTILS_TABLE_PRINTER_H_
#define SAGDFN_UTILS_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace sagdfn::utils {

/// Renders aligned ASCII tables. Used by every bench binary so the
/// regenerated paper tables share one visual format.
class TablePrinter {
 public:
  /// Constructs a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must match the header count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: appends a row of already-stringified cells.
  void AddRow(std::initializer_list<std::string> row);

  /// Writes the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_TABLE_PRINTER_H_
