#ifndef SAGDFN_UTILS_CLI_H_
#define SAGDFN_UTILS_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace sagdfn::utils {

/// Minimal command-line flag parser for bench binaries and examples.
///
/// Supports `--name=value`, `--name value`, and bare boolean `--name`.
/// Unknown flags are kept and can be listed for error reporting.
class CommandLine {
 public:
  /// Parses argv (skipping argv[0]).
  CommandLine(int argc, char** argv);

  /// True if the flag was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Returns the string value or `fallback` if absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Returns the integer value or `fallback` if absent/malformed.
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Returns the double value or `fallback` if absent/malformed.
  double GetDouble(const std::string& name, double fallback) const;

  /// Returns the boolean value; bare `--name` counts as true.
  bool GetBool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sagdfn::utils

#endif  // SAGDFN_UTILS_CLI_H_
