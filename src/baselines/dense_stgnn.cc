#include "baselines/dense_stgnn.h"

#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "graph/adjacency.h"
#include "nn/init.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace sagdfn::baselines {

namespace ag = ::sagdfn::autograd;

DenseStgnn::DenseStgnn(const DenseStgnnConfig& config,
                       tensor::Tensor predefined)
    : config_(config) {
  SAGDFN_CHECK_GT(config_.num_nodes, 0);
  utils::Rng rng(config_.seed);
  const int64_t n = config_.num_nodes;
  const int64_t d = config_.embedding_dim;

  const bool needs_predefined = config_.source == GraphSource::kPredefined ||
                                config_.source == GraphSource::kBoth;
  if (needs_predefined) {
    SAGDFN_CHECK_EQ(predefined.ndim(), 2) << "predefined adjacency required";
    SAGDFN_CHECK_EQ(predefined.dim(0), n);
    SAGDFN_CHECK_EQ(predefined.dim(1), n);
    predefined_ = graph::RowNormalize(predefined);
  }

  const bool needs_embeddings = config_.source != GraphSource::kPredefined;
  if (needs_embeddings) {
    embeddings_ = RegisterParameter(
        "embeddings", ag::Variable(tensor::Tensor::Normal(
                          tensor::Shape({n, d}), rng, 0.0f, 1.0f)));
    if (config_.directional) {
      embeddings_dst_ = RegisterParameter(
          "embeddings_dst", ag::Variable(tensor::Tensor::Normal(
                                tensor::Shape({n, d}), rng, 0.0f, 1.0f)));
    }
  }
  if (config_.source == GraphSource::kAttention) {
    attn_query_ = std::make_unique<nn::Linear>(d, d, rng, false);
    attn_key_ = std::make_unique<nn::Linear>(d, d, rng, false);
    RegisterModule("attn_query", attn_query_.get());
    RegisterModule("attn_key", attn_key_.get());
  }
  if (config_.source == GraphSource::kPairwiseFfn) {
    pair_ffn_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{2 * d, 2 * d, 1}, nn::Activation::kRelu, rng);
    RegisterModule("pair_ffn", pair_ffn_.get());
  }

  const int64_t in = config_.input_dim + config_.hidden_dim;
  for (int64_t j = 0; j < config_.diffusion_steps; ++j) {
    gate_w_.push_back(RegisterParameter(
        "gate_w" + std::to_string(j),
        ag::Variable(nn::XavierUniform(
            tensor::Shape({in, 2 * config_.hidden_dim}), rng))));
    cand_w_.push_back(RegisterParameter(
        "cand_w" + std::to_string(j),
        ag::Variable(nn::XavierUniform(
            tensor::Shape({in, config_.hidden_dim}), rng))));
  }
  gate_b_ = RegisterParameter(
      "gate_b", ag::Variable(tensor::Tensor::Zeros(
                    tensor::Shape({2 * config_.hidden_dim}))));
  cand_b_ = RegisterParameter(
      "cand_b", ag::Variable(tensor::Tensor::Zeros(
                    tensor::Shape({config_.hidden_dim}))));
  output_proj_ = std::make_unique<nn::Linear>(config_.hidden_dim, 1, rng);
  RegisterModule("output_proj", output_proj_.get());
}

ag::Variable DenseStgnn::Adjacency() const {
  const int64_t n = config_.num_nodes;
  const int64_t d = config_.embedding_dim;
  switch (config_.source) {
    case GraphSource::kPredefined:
      return ag::Variable(predefined_);
    case GraphSource::kAdaptive: {
      const ag::Variable& dst =
          config_.directional ? embeddings_dst_ : embeddings_;
      ag::Variable scores =
          ag::Relu(ag::MatMul(embeddings_, ag::Transpose(dst, 0, 1)));
      return ag::Softmax(scores, 1);
    }
    case GraphSource::kBoth: {
      const ag::Variable& dst =
          config_.directional ? embeddings_dst_ : embeddings_;
      ag::Variable scores =
          ag::Relu(ag::MatMul(embeddings_, ag::Transpose(dst, 0, 1)));
      ag::Variable adaptive = ag::Softmax(scores, 1);
      return ag::MulScalar(
          ag::Add(adaptive, ag::Variable(predefined_)), 0.5f);
    }
    case GraphSource::kPairwiseFfn: {
      // [N, N, 2d] pairwise concat -> MLP -> sigmoid weights. This is the
      // deliberately O(N^2 d) construction of the GTS/STEP class.
      ag::Variable rows = ag::Expand(ag::Reshape(embeddings_, {n, 1, d}),
                                     tensor::Shape({n, n, d}));
      ag::Variable cols = ag::Expand(ag::Reshape(embeddings_, {1, n, d}),
                                     tensor::Shape({n, n, d}));
      ag::Variable pair = ag::Concat({rows, cols}, 2);
      ag::Variable scores = pair_ffn_->Forward(pair);  // [N, N, 1]
      return ag::Sigmoid(ag::Reshape(scores, {n, n}));
    }
    case GraphSource::kAttention: {
      ag::Variable q = attn_query_->Forward(embeddings_);
      ag::Variable k = attn_key_->Forward(embeddings_);
      ag::Variable scores = ag::MulScalar(
          ag::MatMul(q, ag::Transpose(k, 0, 1)),
          1.0f / std::sqrt(static_cast<float>(d)));
      return ag::Softmax(scores, 1);
    }
  }
  SAGDFN_CHECK(false);
  return ag::Variable();
}

ag::Variable DenseStgnn::GraphConv(
    const ag::Variable& a, const ag::Variable& x,
    const std::vector<ag::Variable>& w, const ag::Variable& bias) const {
  const int64_t n = config_.num_nodes;
  ag::Variable inv_deg = ag::Div(
      ag::Variable(tensor::Tensor::Ones(tensor::Shape({n, 1}))),
      ag::AddScalar(ag::Sum(ag::Abs(a), 1, /*keepdim=*/true), 1.0f));
  ag::Variable term = x;
  ag::Variable out = ag::BatchedMatMul(term, w[0]);
  for (size_t j = 1; j < w.size(); ++j) {
    ag::Variable mixed = ag::Add(ag::BatchedMatMul(a, term), term);
    term = ag::Mul(mixed, inv_deg);
    out = ag::Add(out, ag::BatchedMatMul(term, w[j]));
  }
  return ag::Add(out, bias);
}

ag::Variable DenseStgnn::CellStep(const ag::Variable& a,
                                  const ag::Variable& x,
                                  const ag::Variable& h) const {
  const int64_t hd = config_.hidden_dim;
  ag::Variable xh = ag::Concat({x, h}, 2);
  ag::Variable gates = GraphConv(a, xh, gate_w_, gate_b_);
  ag::Variable r = ag::Sigmoid(ag::Slice(gates, 2, 0, hd));
  ag::Variable z = ag::Sigmoid(ag::Slice(gates, 2, hd, 2 * hd));
  ag::Variable x_rh = ag::Concat({x, ag::Mul(r, h)}, 2);
  ag::Variable cand = ag::Tanh(GraphConv(a, x_rh, cand_w_, cand_b_));
  ag::Variable one_minus_z =
      ag::Sub(ag::Variable(tensor::Tensor::Ones(z.shape())), z);
  return ag::Add(ag::Mul(z, h), ag::Mul(one_minus_z, cand));
}

ag::Variable DenseStgnn::Forward(const tensor::Tensor& x,
                                 const tensor::Tensor& future_tod,
                                 int64_t iteration,
                                 const tensor::Tensor* teacher,
                                 double teacher_prob) {
  (void)iteration;
  SAGDFN_CHECK_EQ(x.ndim(), 4);
  const int64_t b = x.dim(0);
  const int64_t h = x.dim(1);
  const int64_t n = x.dim(2);
  const int64_t c = x.dim(3);
  SAGDFN_CHECK_EQ(h, config_.history);
  SAGDFN_CHECK_EQ(n, config_.num_nodes);
  const int64_t f = config_.horizon;

  ag::Variable a = Adjacency();

  ag::Variable x_var{x};
  ag::Variable hidden{tensor::Tensor::Zeros(
      tensor::Shape({b, n, config_.hidden_dim}))};
  ag::Variable step;
  for (int64_t t = 0; t < h; ++t) {
    step = ag::Reshape(ag::Slice(x_var, 1, t, t + 1), {b, n, c});
    hidden = CellStep(a, step, hidden);
  }

  ag::Variable dec_input = step;
  ag::Variable extra_covariates;  // day-of-week etc., carried forward
  if (c > 2) extra_covariates = ag::Slice(step, 2, 2, c).Detach();
  std::vector<ag::Variable> predictions;
  predictions.reserve(f);
  const float* ft = future_tod.data();
  for (int64_t t = 0; t < f; ++t) {
    hidden = CellStep(a, dec_input, hidden);
    ag::Variable pred = output_proj_->Forward(
        ag::Reshape(hidden, {b * n, config_.hidden_dim}));
    predictions.push_back(ag::Reshape(pred, {b, n}));
    if (t + 1 < f) {
      tensor::Tensor tod(tensor::Shape({b, n, 1}));
      float* pt = tod.data();
      for (int64_t bi = 0; bi < b; ++bi) {
        const float v = ft[bi * f + t];
        for (int64_t i = 0; i < n; ++i) pt[bi * n + i] = v;
      }
      ag::Variable value = ag::Reshape(pred, {b, n, 1});
      if (teacher != nullptr && training() &&
          teacher_rng_.Bernoulli(teacher_prob)) {
        value = ag::Variable(
            tensor::Slice(*teacher, 1, t, t + 1).Reshape({b, n, 1}));
      }
      if (c > 2) {
        dec_input = ag::Concat(
            {value, ag::Variable(tod), extra_covariates}, 2);
      } else {
        dec_input = ag::Concat({value, ag::Variable(tod)}, 2);
      }
    }
  }
  return ag::Stack(predictions, 1);
}

tensor::Tensor DenseStgnn::ComputeAdjacency() {
  ag::NoGradGuard guard;
  return Adjacency().value();
}

}  // namespace sagdfn::baselines
