#include "baselines/linalg.h"

#include <cmath>

#include "utils/check.h"

namespace sagdfn::baselines {

std::vector<double> RidgeSolve(std::vector<double> gram, int64_t p,
                               const std::vector<double>& rhs, int64_t q,
                               double lambda) {
  SAGDFN_CHECK_GT(p, 0);
  SAGDFN_CHECK_GT(q, 0);
  SAGDFN_CHECK_GT(lambda, 0.0);
  SAGDFN_CHECK_EQ(static_cast<int64_t>(gram.size()), p * p);
  SAGDFN_CHECK_EQ(static_cast<int64_t>(rhs.size()), p * q);

  for (int64_t i = 0; i < p; ++i) gram[i * p + i] += lambda;

  // In-place Cholesky: gram = L L^T (lower triangle of gram holds L).
  for (int64_t j = 0; j < p; ++j) {
    double diag = gram[j * p + j];
    for (int64_t k = 0; k < j; ++k) {
      diag -= gram[j * p + k] * gram[j * p + k];
    }
    SAGDFN_CHECK_GT(diag, 0.0) << "Cholesky breakdown at " << j;
    const double ljj = std::sqrt(diag);
    gram[j * p + j] = ljj;
    for (int64_t i = j + 1; i < p; ++i) {
      double v = gram[i * p + j];
      for (int64_t k = 0; k < j; ++k) {
        v -= gram[i * p + k] * gram[j * p + k];
      }
      gram[i * p + j] = v / ljj;
    }
  }

  // Solve L Z = R, then L^T W = Z, column by column.
  std::vector<double> w(rhs);
  for (int64_t c = 0; c < q; ++c) {
    for (int64_t i = 0; i < p; ++i) {
      double v = w[i * q + c];
      for (int64_t k = 0; k < i; ++k) {
        v -= gram[i * p + k] * w[k * q + c];
      }
      w[i * q + c] = v / gram[i * p + i];
    }
    for (int64_t i = p - 1; i >= 0; --i) {
      double v = w[i * q + c];
      for (int64_t k = i + 1; k < p; ++k) {
        v -= gram[k * p + i] * w[k * q + c];
      }
      w[i * q + c] = v / gram[i * p + i];
    }
  }
  return w;
}

}  // namespace sagdfn::baselines
