#ifndef SAGDFN_BASELINES_REGISTRY_H_
#define SAGDFN_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "core/memory_model.h"
#include "core/sagdfn.h"

namespace sagdfn::baselines {

/// Shared sizing for all models in one experiment, so table comparisons
/// are apples-to-apples. Defaults are the CPU quick scale; benches pass
/// larger values under --full.
struct ModelSizing {
  int64_t hidden = 16;
  int64_t embedding = 8;
  int64_t diffusion_steps = 2;
  /// SAGDFN-specific knobs (paper defaults M=100, K=80, 8 heads, d=100).
  int64_t sagdfn_m = 20;
  int64_t sagdfn_k = 16;
  int64_t sagdfn_heads = 2;
  int64_t sagdfn_ffn_hidden = 8;
  int64_t sagdfn_embedding = 16;
  float alpha = 1.5f;
  int64_t convergence_iters = 30;
  /// k of the correlation-kNN predefined graph.
  int64_t corr_knn = 8;
  uint64_t seed = 5;
};

/// The baselines of paper Table III in table order (classical + STGNN).
std::vector<std::string> PaperBaselineNames();

/// The non-GNN baselines of paper Table IX.
std::vector<std::string> NonGnnBaselineNames();

/// Builds a forecaster by its paper-table name ("ARIMA", "DCRNN",
/// "GRAPH WaveNet", ..., "SAGDFN"). Fatal on unknown names.
std::unique_ptr<Forecaster> MakeForecaster(const std::string& name,
                                           const ModelSizing& sizing);

/// Builds a SAGDFN forecaster with an explicit config override applied on
/// top of the sizing (used by the ablation and sensitivity benches).
std::unique_ptr<Forecaster> MakeSagdfnForecaster(
    const std::string& display_name, const ModelSizing& sizing,
    const std::function<void(core::SagdfnConfig*)>& tweak);

/// Memory-model family of a named baseline (for OOM prediction).
core::ModelFamily FamilyOf(const std::string& name);

/// True if the memory model knows this name (classical baselines are
/// excluded — they never OOM on GPU budgets).
bool HasFamily(const std::string& name);

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_REGISTRY_H_
