#include "baselines/temporal_only.h"

#include <cmath>

#include "autograd/ops.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace sagdfn::baselines {

namespace ag = ::sagdfn::autograd;

TemporalOnlyModel::TemporalOnlyModel(Kind kind, int64_t history,
                                     int64_t horizon, int64_t hidden,
                                     int64_t period, uint64_t seed)
    : kind_(kind),
      history_(history),
      horizon_(horizon),
      period_(std::min(period, history)) {
  SAGDFN_CHECK_GT(history, 0);
  SAGDFN_CHECK_GT(horizon, 0);
  SAGDFN_CHECK_GT(period_, 0);
  utils::Rng rng(seed);

  int64_t in_dim = history;
  switch (kind_) {
    case Kind::kTimesNet:
      // Window plus its period-folded positional means.
      in_dim = history + period_;
      break;
    case Kind::kFedformer: {
      // First min(h, 16) DCT-II coefficients of the window.
      const int64_t num_freq = std::min<int64_t>(history, 16);
      dct_basis_ = tensor::Tensor::Zeros(
          tensor::Shape({history, num_freq}));
      float* basis = dct_basis_.data();
      for (int64_t t = 0; t < history; ++t) {
        for (int64_t k = 0; k < num_freq; ++k) {
          basis[t * num_freq + k] = static_cast<float>(
              std::cos(M_PI * (t + 0.5) * k / history) *
              std::sqrt(2.0 / history));
        }
      }
      in_dim = num_freq;
      break;
    }
    case Kind::kEtsformer:
      // Smoothed level + detrended residual window.
      in_dim = history + 1;
      smoothing_logit_ = RegisterParameter(
          "smoothing_logit",
          ag::Variable(tensor::Tensor::Scalar(0.0f).Reshape({1, 1})));
      break;
  }
  trunk_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{in_dim, hidden, horizon_},
      nn::Activation::kRelu, rng);
  RegisterModule("trunk", trunk_.get());
}

std::string TemporalOnlyModel::name() const {
  switch (kind_) {
    case Kind::kTimesNet:
      return "TimesNet";
    case Kind::kFedformer:
      return "FEDformer";
    case Kind::kEtsformer:
      return "ETSformer";
  }
  return "?";
}

ag::Variable TemporalOnlyModel::ForwardWindow(const ag::Variable& window) {
  const int64_t rows = window.dim(0);
  const int64_t h = history_;
  switch (kind_) {
    case Kind::kTimesNet: {
      // Period folding: mean of positions sharing t mod period.
      std::vector<ag::Variable> slots;
      slots.reserve(period_);
      for (int64_t s = 0; s < period_; ++s) {
        std::vector<int64_t> positions;
        for (int64_t t = s; t < h; t += period_) positions.push_back(t);
        ag::Variable cols = ag::IndexSelect(window, 1, positions);
        slots.push_back(ag::Mean(cols, 1, /*keepdim=*/true));
      }
      ag::Variable folded = ag::Concat(slots, 1);  // [rows, period]
      return trunk_->Forward(ag::Concat({window, folded}, 1));
    }
    case Kind::kFedformer: {
      ag::Variable coeffs =
          ag::MatMul(window, ag::Variable(dct_basis_));
      return trunk_->Forward(coeffs);
    }
    case Kind::kEtsformer: {
      // Exponentially-smoothed level with learnable alpha, computed as a
      // fixed-length weighted sum (weights differentiable through alpha).
      ag::Variable alpha = ag::Sigmoid(smoothing_logit_);  // [1, 1]
      ag::Variable one_minus =
          ag::Sub(ag::Variable(tensor::Tensor::Ones(alpha.shape())), alpha);
      ag::Variable level = ag::Slice(window, 1, 0, 1);  // l_0 = x_0
      for (int64_t t = 1; t < h; ++t) {
        ag::Variable xt = ag::Slice(window, 1, t, t + 1);
        level = ag::Add(ag::Mul(alpha, xt), ag::Mul(one_minus, level));
      }
      ag::Variable features = ag::Concat({window, level}, 1);
      // Predict residuals around the level, then add it back.
      ag::Variable residual = trunk_->Forward(features);
      return ag::Add(residual,
                     ag::Expand(level, tensor::Shape({rows, horizon_})));
    }
  }
  SAGDFN_CHECK(false);
  return window;
}

ag::Variable TemporalOnlyModel::Forward(const tensor::Tensor& x,
                                        const tensor::Tensor& future_tod,
                                        int64_t iteration,
                                        const tensor::Tensor* teacher,
                                        double teacher_prob) {
  (void)future_tod;
  (void)iteration;
  // Direct multi-horizon head: no autoregressive decoder, no exposure
  // bias, teacher forcing does not apply.
  (void)teacher;
  (void)teacher_prob;
  SAGDFN_CHECK_EQ(x.ndim(), 4);
  const int64_t b = x.dim(0);
  const int64_t h = x.dim(1);
  const int64_t n = x.dim(2);
  SAGDFN_CHECK_EQ(h, history_);

  // Channel 0 (the scaled reading), rearranged to [B*N, h].
  tensor::Tensor window(tensor::Shape({b * n, h}));
  const float* px = x.data();
  const int64_t c = x.dim(3);
  float* pw = window.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t t = 0; t < h; ++t) {
      for (int64_t i = 0; i < n; ++i) {
        pw[(bi * n + i) * h + t] = px[((bi * h + t) * n + i) * c];
      }
    }
  }

  ag::Variable pred = ForwardWindow(ag::Variable(window));  // [B*N, f]
  // [B*N, f] -> [B, f, N].
  return ag::Transpose(ag::Reshape(pred, {b, n, horizon_}), 1, 2);
}

}  // namespace sagdfn::baselines
