#include "baselines/rnn_seq2seq.h"

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace sagdfn::baselines {

namespace ag = ::sagdfn::autograd;

RnnSeq2Seq::RnnSeq2Seq(CellType cell_type, int64_t input_dim,
                       int64_t hidden_dim, int64_t history, int64_t horizon,
                       uint64_t seed)
    : cell_type_(cell_type),
      input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      history_(history),
      horizon_(horizon),
      teacher_rng_(seed + 1) {
  utils::Rng rng(seed);
  if (cell_type_ == CellType::kLstm) {
    lstm_ = std::make_unique<nn::LstmCell>(input_dim, hidden_dim, rng);
    RegisterModule("cell", lstm_.get());
  } else {
    gru_ = std::make_unique<nn::GruCell>(input_dim, hidden_dim, rng);
    RegisterModule("cell", gru_.get());
  }
  output_proj_ = std::make_unique<nn::Linear>(hidden_dim, 1, rng);
  RegisterModule("output_proj", output_proj_.get());
}

ag::Variable RnnSeq2Seq::Forward(const tensor::Tensor& x,
                                 const tensor::Tensor& future_tod,
                                 int64_t iteration,
                                 const tensor::Tensor* teacher,
                                 double teacher_prob) {
  (void)iteration;
  SAGDFN_CHECK_EQ(x.ndim(), 4);
  const int64_t b = x.dim(0);
  const int64_t h = x.dim(1);
  const int64_t n = x.dim(2);
  const int64_t c = x.dim(3);
  SAGDFN_CHECK_EQ(h, history_);
  SAGDFN_CHECK_EQ(c, input_dim_);
  const int64_t f = horizon_;
  const int64_t flat = b * n;

  // Fold nodes into the batch: [B, h, N, C] -> per-step [B*N, C].
  ag::Variable x_var{x};
  ag::Variable hidden;
  ag::Variable cell_state;
  if (cell_type_ == CellType::kLstm) {
    auto [h0, c0] = lstm_->InitialState(flat);
    hidden = h0;
    cell_state = c0;
  } else {
    hidden = gru_->InitialState(flat);
  }

  ag::Variable step;
  for (int64_t t = 0; t < h; ++t) {
    step = ag::Reshape(ag::Slice(x_var, 1, t, t + 1), {flat, c});
    if (cell_type_ == CellType::kLstm) {
      auto [hn, cn] = lstm_->Forward(step, hidden, cell_state);
      hidden = hn;
      cell_state = cn;
    } else {
      hidden = gru_->Forward(step, hidden);
    }
  }

  ag::Variable dec_input = step;
  ag::Variable extra_covariates;  // day-of-week etc., carried forward
  if (c > 2) extra_covariates = ag::Slice(step, 1, 2, c).Detach();
  std::vector<ag::Variable> predictions;
  predictions.reserve(f);
  const float* ft = future_tod.data();
  for (int64_t t = 0; t < f; ++t) {
    if (cell_type_ == CellType::kLstm) {
      auto [hn, cn] = lstm_->Forward(dec_input, hidden, cell_state);
      hidden = hn;
      cell_state = cn;
    } else {
      hidden = gru_->Forward(dec_input, hidden);
    }
    ag::Variable pred = output_proj_->Forward(hidden);  // [B*N, 1]
    predictions.push_back(ag::Reshape(pred, {b, n}));
    if (t + 1 < f) {
      tensor::Tensor tod(tensor::Shape({flat, 1}));
      float* pt = tod.data();
      for (int64_t bi = 0; bi < b; ++bi) {
        const float v = ft[bi * f + t];
        for (int64_t i = 0; i < n; ++i) pt[bi * n + i] = v;
      }
      ag::Variable value = pred;
      if (teacher != nullptr && training() &&
          teacher_rng_.Bernoulli(teacher_prob)) {
        value = ag::Variable(
            tensor::Slice(*teacher, 1, t, t + 1).Reshape({flat, 1}));
      }
      if (c > 2) {
        dec_input = ag::Concat(
            {value, ag::Variable(tod), extra_covariates}, 1);
      } else {
        dec_input = ag::Concat({value, ag::Variable(tod)}, 1);
      }
    }
  }
  return ag::Stack(predictions, 1);  // [B, f, N]
}

}  // namespace sagdfn::baselines
