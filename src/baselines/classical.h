#ifndef SAGDFN_BASELINES_CLASSICAL_H_
#define SAGDFN_BASELINES_CLASSICAL_H_

#include <string>
#include <vector>

#include "baselines/forecaster.h"

namespace sagdfn::baselines {

/// Historical average: predicts the per-(node, time-of-day) training mean.
/// Nonparametric; the weakest sensible reference.
class HistoricalAverage : public Forecaster {
 public:
  std::string name() const override { return "HistoricalAverage"; }
  void Fit(const data::ForecastDataset& dataset,
           const FitOptions& options) override;
  tensor::Tensor Predict(const data::ForecastDataset& dataset,
                         data::Split split, int64_t max_windows) override;
  double LastFitSeconds() const override { return fit_seconds_; }

 private:
  int64_t steps_per_day_ = 0;
  /// [steps_per_day, N] training means.
  tensor::Tensor means_;
  double fit_seconds_ = 0.0;
};

/// AR(p) per node with intercept, fitted by ridge least squares on the
/// scaled training series and rolled out recursively — the paper's
/// "ARIMA" entry (integration/MA terms omitted; the data are stationary
/// after z-scoring, which is where ARIMA's AR core does its work).
class ArForecaster : public Forecaster {
 public:
  explicit ArForecaster(int64_t order = 6, double ridge = 1e-3);
  std::string name() const override { return "ARIMA"; }
  void Fit(const data::ForecastDataset& dataset,
           const FitOptions& options) override;
  tensor::Tensor Predict(const data::ForecastDataset& dataset,
                         data::Split split, int64_t max_windows) override;
  int64_t ParameterCount() const override;
  double LastFitSeconds() const override { return fit_seconds_; }

 private:
  int64_t order_;
  double ridge_;
  /// [N, order + 1] per-node coefficients (last entry is the intercept).
  std::vector<double> coef_;
  int64_t num_nodes_ = 0;
  double fit_seconds_ = 0.0;
};

/// VAR(p): X_{t+1} = sum_l A_l X_{t-l} + c with full N x N lag matrices,
/// fitted by ridge least squares. All N equations share one Gram
/// factorization, so the fit is a single Cholesky of size (N p + 1).
class VarForecaster : public Forecaster {
 public:
  explicit VarForecaster(int64_t order = 2, double ridge = 1e-1);
  std::string name() const override { return "VAR"; }
  void Fit(const data::ForecastDataset& dataset,
           const FitOptions& options) override;
  tensor::Tensor Predict(const data::ForecastDataset& dataset,
                         data::Split split, int64_t max_windows) override;
  int64_t ParameterCount() const override;
  double LastFitSeconds() const override { return fit_seconds_; }

 private:
  int64_t order_;
  double ridge_;
  /// [N p + 1, N] stacked coefficients (row-major), column j = equation j.
  std::vector<double> coef_;
  int64_t num_nodes_ = 0;
  double fit_seconds_ = 0.0;
};

/// Linear epsilon-insensitive SVR on the scaled history window, shared
/// across nodes, direct multi-horizon output (one weight row per horizon
/// step); trained by subgradient descent.
class SvrForecaster : public Forecaster {
 public:
  explicit SvrForecaster(double epsilon = 0.05, double l2 = 1e-4);
  std::string name() const override { return "SVR"; }
  void Fit(const data::ForecastDataset& dataset,
           const FitOptions& options) override;
  tensor::Tensor Predict(const data::ForecastDataset& dataset,
                         data::Split split, int64_t max_windows) override;
  int64_t ParameterCount() const override;
  double LastFitSeconds() const override { return fit_seconds_; }

 private:
  double epsilon_;
  double l2_;
  int64_t history_ = 0;
  int64_t horizon_ = 0;
  /// [horizon, history + 1] weights (+ intercept).
  std::vector<double> weights_;
  double fit_seconds_ = 0.0;
};

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_CLASSICAL_H_
