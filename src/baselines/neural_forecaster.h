#ifndef SAGDFN_BASELINES_NEURAL_FORECASTER_H_
#define SAGDFN_BASELINES_NEURAL_FORECASTER_H_

#include <functional>
#include <memory>
#include <string>

#include "baselines/forecaster.h"
#include "core/seq_model.h"
#include "core/trainer.h"

namespace sagdfn::baselines {

/// Adapts any core::SeqModel to the Forecaster interface: Fit() runs the
/// shared Trainer (Adam + L1), Predict() rolls the model over a split.
class NeuralForecaster : public Forecaster {
 public:
  /// Builds the model lazily at Fit() time (so the dataset's node count is
  /// known). The factory receives the dataset.
  NeuralForecaster(
      std::string name,
      std::function<std::unique_ptr<core::SeqModel>(
          const data::ForecastDataset&)>
          factory);

  std::string name() const override { return name_; }
  void Fit(const data::ForecastDataset& dataset,
           const FitOptions& options) override;
  tensor::Tensor Predict(const data::ForecastDataset& dataset,
                         data::Split split, int64_t max_windows) override;
  int64_t ParameterCount() const override;
  double LastFitSeconds() const override { return fit_seconds_; }

  /// Training telemetry from the last Fit() (Table X columns).
  const core::TrainResult& train_result() const { return train_result_; }

  /// The live model (null before Fit()).
  core::SeqModel* model() { return model_.get(); }

 private:
  std::string name_;
  std::function<std::unique_ptr<core::SeqModel>(
      const data::ForecastDataset&)>
      factory_;
  std::unique_ptr<core::SeqModel> model_;
  std::unique_ptr<core::Trainer> trainer_;
  core::TrainResult train_result_;
  double fit_seconds_ = 0.0;
};

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_NEURAL_FORECASTER_H_
