#include "baselines/neural_forecaster.h"

#include "utils/check.h"
#include "utils/stopwatch.h"

namespace sagdfn::baselines {

NeuralForecaster::NeuralForecaster(
    std::string name,
    std::function<std::unique_ptr<core::SeqModel>(
        const data::ForecastDataset&)>
        factory)
    : name_(std::move(name)), factory_(std::move(factory)) {}

void NeuralForecaster::Fit(const data::ForecastDataset& dataset,
                           const FitOptions& options) {
  utils::Stopwatch watch;
  model_ = factory_(dataset);
  SAGDFN_CHECK(model_ != nullptr);

  core::TrainOptions train_options;
  train_options.epochs = options.epochs;
  train_options.batch_size = options.batch_size;
  train_options.learning_rate = options.learning_rate;
  train_options.max_train_batches_per_epoch =
      options.max_train_batches_per_epoch;
  train_options.max_eval_batches = options.max_eval_batches;
  train_options.verbose = options.verbose;
  train_options.seed = options.seed;

  trainer_ = std::make_unique<core::Trainer>(model_.get(), &dataset,
                                             train_options);
  train_result_ = trainer_->Train();
  fit_seconds_ = watch.ElapsedSeconds();
}

tensor::Tensor NeuralForecaster::Predict(
    const data::ForecastDataset& dataset, data::Split split,
    int64_t max_windows) {
  SAGDFN_CHECK(trainer_ != nullptr) << "Fit() before Predict()";
  (void)dataset;
  (void)max_windows;  // the trainer's max_eval_batches caps evaluation
  return trainer_->Predict(split);
}

int64_t NeuralForecaster::ParameterCount() const {
  return model_ != nullptr ? model_->ParameterCount() : 0;
}

}  // namespace sagdfn::baselines
