#include "baselines/registry.h"

#include "baselines/classical.h"
#include "baselines/dense_stgnn.h"
#include "baselines/neural_forecaster.h"
#include "baselines/rnn_seq2seq.h"
#include "baselines/temporal_only.h"
#include "graph/correlation.h"
#include "utils/check.h"

namespace sagdfn::baselines {
namespace {

std::unique_ptr<Forecaster> MakeDenseStgnn(const std::string& name,
                                           const ModelSizing& sizing,
                                           GraphSource source,
                                           bool directional,
                                           int64_t diffusion_steps,
                                           bool needs_predefined) {
  return std::make_unique<NeuralForecaster>(
      name, [=](const data::ForecastDataset& dataset) {
        DenseStgnnConfig config;
        config.name = name;
        config.num_nodes = dataset.num_nodes();
        config.history = dataset.spec().history;
        config.horizon = dataset.spec().horizon;
        config.input_dim = dataset.num_input_channels();
        config.hidden_dim = sizing.hidden;
        config.embedding_dim = sizing.embedding;
        config.diffusion_steps = diffusion_steps;
        config.source = source;
        config.directional = directional;
        config.seed = sizing.seed;
        tensor::Tensor predefined;
        if (needs_predefined) {
          predefined = graph::CorrelationKnnGraph(
              tensor::Slice(dataset.series().values, 0, 0,
                            dataset.TrainEndStep()),
              sizing.corr_knn);
        }
        return std::make_unique<DenseStgnn>(config, predefined);
      });
}

std::unique_ptr<Forecaster> MakeTemporal(const std::string& name,
                                         const ModelSizing& sizing,
                                         TemporalOnlyModel::Kind kind) {
  return std::make_unique<NeuralForecaster>(
      name, [=](const data::ForecastDataset& dataset) {
        const int64_t period = std::min<int64_t>(
            dataset.series().steps_per_day, dataset.spec().history);
        return std::make_unique<TemporalOnlyModel>(
            kind, dataset.spec().history, dataset.spec().horizon,
            4 * sizing.hidden, period, sizing.seed);
      });
}

core::SagdfnConfig BaseSagdfnConfig(const ModelSizing& sizing,
                                    const data::ForecastDataset& dataset) {
  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = sizing.sagdfn_embedding;
  config.m = std::min<int64_t>(sizing.sagdfn_m, dataset.num_nodes());
  config.k = std::min<int64_t>(sizing.sagdfn_k, config.m);
  config.hidden_dim = sizing.hidden;
  config.heads = sizing.sagdfn_heads;
  config.ffn_hidden = sizing.sagdfn_ffn_hidden;
  config.diffusion_steps = sizing.diffusion_steps;
  config.alpha = sizing.alpha;
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  config.input_dim = dataset.num_input_channels();
  config.convergence_iters = sizing.convergence_iters;
  config.seed = sizing.seed;
  return config;
}

}  // namespace

std::vector<std::string> PaperBaselineNames() {
  return {"ARIMA",  "VAR",    "SVR",        "LSTM",
          "DCRNN",  "STGCN",  "GRAPH WaveNet", "GMAN",
          "AGCRN",  "MTGNN",  "ASTGCN",     "STSGCN",
          "GTS",    "STEP",   "D2STGNN(c)"};
}

std::vector<std::string> NonGnnBaselineNames() {
  return {"TimesNet", "FEDformer", "ETSformer"};
}

std::unique_ptr<Forecaster> MakeForecaster(const std::string& name,
                                           const ModelSizing& sizing) {
  if (name == "HistoricalAverage") {
    return std::make_unique<HistoricalAverage>();
  }
  if (name == "ARIMA") return std::make_unique<ArForecaster>();
  if (name == "VAR") return std::make_unique<VarForecaster>();
  if (name == "SVR") return std::make_unique<SvrForecaster>();
  if (name == "LSTM") {
    return std::make_unique<NeuralForecaster>(
        name, [sizing](const data::ForecastDataset& dataset) {
          return std::make_unique<RnnSeq2Seq>(
              RnnSeq2Seq::CellType::kLstm, dataset.num_input_channels(),
              sizing.hidden, dataset.spec().history,
              dataset.spec().horizon, sizing.seed);
        });
  }
  if (name == "DCRNN") {
    return MakeDenseStgnn(name, sizing, GraphSource::kPredefined, false,
                          sizing.diffusion_steps, true);
  }
  if (name == "STGCN") {
    return MakeDenseStgnn(name, sizing, GraphSource::kPredefined, false, 1,
                          true);
  }
  if (name == "GRAPH WaveNet") {
    return MakeDenseStgnn(name, sizing, GraphSource::kBoth, true,
                          sizing.diffusion_steps, true);
  }
  if (name == "GMAN") {
    return MakeDenseStgnn(name, sizing, GraphSource::kAttention, false,
                          sizing.diffusion_steps, false);
  }
  if (name == "AGCRN") {
    return MakeDenseStgnn(name, sizing, GraphSource::kAdaptive, false,
                          sizing.diffusion_steps, false);
  }
  if (name == "MTGNN") {
    return MakeDenseStgnn(name, sizing, GraphSource::kAdaptive, true,
                          sizing.diffusion_steps, false);
  }
  if (name == "ASTGCN") {
    return MakeDenseStgnn(name, sizing, GraphSource::kAttention, false, 1,
                          false);
  }
  if (name == "STSGCN") {
    return MakeDenseStgnn(name, sizing, GraphSource::kPredefined, false, 3,
                          true);
  }
  if (name == "GTS") {
    return MakeDenseStgnn(name, sizing, GraphSource::kPairwiseFfn, false,
                          sizing.diffusion_steps, false);
  }
  if (name == "STEP") {
    ModelSizing deep = sizing;
    deep.embedding = 2 * sizing.embedding;
    return MakeDenseStgnn(name, deep, GraphSource::kPairwiseFfn, false,
                          sizing.diffusion_steps, false);
  }
  if (name == "D2STGNN(c)") {
    return MakeDenseStgnn(name, sizing, GraphSource::kBoth, false, 3, true);
  }
  if (name == "TimesNet") {
    return MakeTemporal(name, sizing, TemporalOnlyModel::Kind::kTimesNet);
  }
  if (name == "FEDformer") {
    return MakeTemporal(name, sizing, TemporalOnlyModel::Kind::kFedformer);
  }
  if (name == "ETSformer") {
    return MakeTemporal(name, sizing, TemporalOnlyModel::Kind::kEtsformer);
  }
  if (name == "SAGDFN") {
    return MakeSagdfnForecaster(name, sizing,
                                [](core::SagdfnConfig*) {});
  }
  SAGDFN_CHECK(false) << "unknown forecaster: " << name;
  return nullptr;
}

std::unique_ptr<Forecaster> MakeSagdfnForecaster(
    const std::string& display_name, const ModelSizing& sizing,
    const std::function<void(core::SagdfnConfig*)>& tweak) {
  return std::make_unique<NeuralForecaster>(
      display_name, [sizing, tweak](const data::ForecastDataset& dataset) {
        core::SagdfnConfig config = BaseSagdfnConfig(sizing, dataset);
        tweak(&config);
        return std::make_unique<core::SagdfnModel>(config);
      });
}

core::ModelFamily FamilyOf(const std::string& name) {
  if (name == "DCRNN") return core::ModelFamily::kDcrnn;
  if (name == "STGCN") return core::ModelFamily::kStgcn;
  if (name == "GRAPH WaveNet") return core::ModelFamily::kGraphWaveNet;
  if (name == "GMAN") return core::ModelFamily::kGman;
  if (name == "AGCRN") return core::ModelFamily::kAgcrn;
  if (name == "MTGNN") return core::ModelFamily::kMtgnn;
  if (name == "ASTGCN") return core::ModelFamily::kAstgcn;
  if (name == "STSGCN") return core::ModelFamily::kStsgcn;
  if (name == "GTS") return core::ModelFamily::kGts;
  if (name == "STEP") return core::ModelFamily::kStep;
  if (name == "D2STGNN(c)") return core::ModelFamily::kD2stgnn;
  if (name == "SAGDFN") return core::ModelFamily::kSagdfn;
  SAGDFN_CHECK(false) << "no memory-model family for " << name;
  return core::ModelFamily::kSagdfn;
}

bool HasFamily(const std::string& name) {
  static const std::vector<std::string> kWithFamily = {
      "DCRNN",  "STGCN", "GRAPH WaveNet", "GMAN",   "AGCRN",     "MTGNN",
      "ASTGCN", "STSGCN", "GTS",          "STEP",   "D2STGNN(c)", "SAGDFN"};
  for (const auto& n : kWithFamily) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace sagdfn::baselines
