#ifndef SAGDFN_BASELINES_FORECASTER_H_
#define SAGDFN_BASELINES_FORECASTER_H_

#include <cstdint>
#include <string>

#include "data/window_dataset.h"
#include "tensor/tensor.h"

namespace sagdfn::baselines {

/// Options shared by every baseline's fitting procedure. Neural baselines
/// interpret these as training-loop knobs; classical ones use what
/// applies.
struct FitOptions {
  int64_t epochs = 3;
  int64_t batch_size = 8;
  double learning_rate = 0.01;
  /// 0 = unlimited.
  int64_t max_train_batches_per_epoch = 0;
  int64_t max_eval_batches = 0;
  bool verbose = false;
  uint64_t seed = 5;
};

/// Uniform interface every baseline (classical and neural) and SAGDFN
/// itself implement, so the bench harness runs the paper's tables with a
/// single loop.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Model name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Fits on the dataset's training split.
  virtual void Fit(const data::ForecastDataset& dataset,
                   const FitOptions& options) = 0;

  /// Predicts up to `max_windows` windows (0 = all) of `split` in original
  /// units: [S, f, N].
  virtual tensor::Tensor Predict(const data::ForecastDataset& dataset,
                                 data::Split split,
                                 int64_t max_windows) = 0;

  /// Trainable parameter count (0 for nonparametric models).
  virtual int64_t ParameterCount() const { return 0; }

  /// Seconds spent in the last Fit() (filled by implementations).
  virtual double LastFitSeconds() const { return 0.0; }
};

/// Collects ground truth aligned with Predict(): [S, f, N].
tensor::Tensor CollectTruth(const data::ForecastDataset& dataset,
                            data::Split split, int64_t max_windows);

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_FORECASTER_H_
