#ifndef SAGDFN_BASELINES_DENSE_STGNN_H_
#define SAGDFN_BASELINES_DENSE_STGNN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/seq_model.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "utils/rng.h"

namespace sagdfn::baselines {

/// How the full N x N adjacency is obtained — the axis along which the
/// paper classifies the STGNN baselines (Section V-A "Baselines").
enum class GraphSource {
  /// Fixed, data-independent topology (DCRNN / STGCN / STSGCN class).
  kPredefined,
  /// Inner product of learned node embeddings (AGCRN / MTGNN /
  /// GraphWaveNet class). `directional` picks MTGNN's E1 E2^T form.
  kAdaptive,
  /// Mean of predefined and adaptive supports (GraphWaveNet / D2STGNN
  /// class, which combine both).
  kBoth,
  /// Pairwise feed-forward scoring of concatenated embeddings (GTS / STEP
  /// class). Materializes an [N, N, 2d] tensor — the O(N^2 d) memory the
  /// paper calls out.
  kPairwiseFfn,
  /// Scaled dot-product attention over projected embeddings (GMAN /
  /// ASTGCN class).
  kAttention,
};

/// Configuration of a dense-adjacency STGNN baseline.
struct DenseStgnnConfig {
  std::string name = "DenseSTGNN";
  int64_t num_nodes = 0;
  int64_t history = 12;
  int64_t horizon = 12;
  int64_t input_dim = 2;
  int64_t hidden_dim = 32;
  int64_t embedding_dim = 8;
  int64_t diffusion_steps = 2;
  GraphSource source = GraphSource::kAdaptive;
  bool directional = false;
  uint64_t seed = 9;
};

/// Encoder-decoder GRU whose gates use dense graph diffusion over a full
/// N x N adjacency — the O(N^2) counterpart of SAGDFN's slim pipeline.
/// One implementation parameterized by GraphSource stands in for the
/// paper's dense STGNN baselines: the temporal backbone is unified (GRU
/// encoder-decoder) so the tables compare graph-learning mechanisms, which
/// is the distinction the paper's analysis rests on.
class DenseStgnn : public core::SeqModel {
 public:
  /// `predefined` is required (row-normalized internally) for kPredefined
  /// and kBoth; ignored otherwise.
  DenseStgnn(const DenseStgnnConfig& config,
             tensor::Tensor predefined = tensor::Tensor());

  autograd::Variable Forward(const tensor::Tensor& x,
                             const tensor::Tensor& future_tod,
                             int64_t iteration,
                             const tensor::Tensor* teacher = nullptr,
                             double teacher_prob = 0.0) override;

  std::string name() const override { return config_.name; }
  int64_t horizon() const override { return config_.horizon; }

  /// The scheduled-sampling RNG is the only non-parameter training state.
  std::vector<std::pair<std::string, std::vector<uint64_t>>>
  ExportRuntimeState() const override {
    return {{"rng", teacher_rng_.SerializeState()}};
  }
  utils::Status ImportRuntimeState(
      const std::vector<std::pair<std::string, std::vector<uint64_t>>>&
          state) override {
    return ImportSingleRng(state, &teacher_rng_);
  }

  /// The dense adjacency the current parameters produce (inference mode).
  tensor::Tensor ComputeAdjacency();

  const DenseStgnnConfig& config() const { return config_; }

 private:
  autograd::Variable Adjacency() const;
  /// One dense graph-convolution: sum_j W_j [(D+I)^{-1} (A X + X)]^(j).
  autograd::Variable GraphConv(const autograd::Variable& a,
                               const autograd::Variable& x,
                               const std::vector<autograd::Variable>& w,
                               const autograd::Variable& bias) const;
  autograd::Variable CellStep(const autograd::Variable& a,
                              const autograd::Variable& x,
                              const autograd::Variable& h) const;

  DenseStgnnConfig config_;
  tensor::Tensor predefined_;               // [N, N] row-normalized
  autograd::Variable embeddings_;           // E1
  autograd::Variable embeddings_dst_;       // E2 (directional variants)
  std::unique_ptr<nn::Linear> attn_query_;  // kAttention
  std::unique_ptr<nn::Linear> attn_key_;
  std::unique_ptr<nn::Mlp> pair_ffn_;       // kPairwiseFfn
  // GRU-gate graph convolutions (r|z combined, then candidate).
  std::vector<autograd::Variable> gate_w_;
  autograd::Variable gate_b_;
  std::vector<autograd::Variable> cand_w_;
  autograd::Variable cand_b_;
  std::unique_ptr<nn::Linear> output_proj_;
  utils::Rng teacher_rng_{12345};
};

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_DENSE_STGNN_H_
