#include "baselines/forecaster.h"

#include <algorithm>

#include "utils/check.h"

namespace sagdfn::baselines {

tensor::Tensor CollectTruth(const data::ForecastDataset& dataset,
                            data::Split split, int64_t max_windows) {
  int64_t windows = dataset.NumSamples(split);
  if (max_windows > 0) windows = std::min(windows, max_windows);
  const int64_t f = dataset.spec().horizon;
  const int64_t n = dataset.num_nodes();
  tensor::Tensor all =
      tensor::Tensor::Zeros(tensor::Shape({windows, f, n}));
  constexpr int64_t kChunk = 64;
  int64_t written = 0;
  while (written < windows) {
    const int64_t take = std::min(kChunk, windows - written);
    std::vector<int64_t> offsets(take);
    for (int64_t i = 0; i < take; ++i) offsets[i] = written + i;
    data::Batch batch = dataset.GetBatchAt(split, offsets);
    std::copy(batch.y.data(), batch.y.data() + batch.y.size(),
              all.data() + written * f * n);
    written += take;
  }
  return all;
}

}  // namespace sagdfn::baselines
