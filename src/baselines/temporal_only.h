#ifndef SAGDFN_BASELINES_TEMPORAL_ONLY_H_
#define SAGDFN_BASELINES_TEMPORAL_ONLY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/seq_model.h"
#include "nn/mlp.h"

namespace sagdfn::baselines {

/// The three non-GNN long-sequence forecasters of paper Table IX, as
/// "lite" per-node models with shared weights. Each keeps the mechanism
/// that defines its family — period folding (TimesNet), frequency-domain
/// mixing (FEDformer), exponential smoothing decomposition (ETSformer) —
/// while staying CPU-sized. None of them sees other nodes, which is the
/// property Table IX isolates.
class TemporalOnlyModel : public core::SeqModel {
 public:
  enum class Kind { kTimesNet, kFedformer, kEtsformer };

  /// `period` is the fold length for TimesNet-lite (e.g. steps per day,
  /// capped to the history length).
  TemporalOnlyModel(Kind kind, int64_t history, int64_t horizon,
                    int64_t hidden, int64_t period, uint64_t seed);

  autograd::Variable Forward(const tensor::Tensor& x,
                             const tensor::Tensor& future_tod,
                             int64_t iteration,
                             const tensor::Tensor* teacher = nullptr,
                             double teacher_prob = 0.0) override;

  std::string name() const override;
  int64_t horizon() const override { return horizon_; }

 private:
  /// History window per node: [B*N, h] -> predictions [B*N, f].
  autograd::Variable ForwardWindow(const autograd::Variable& window);

  Kind kind_;
  int64_t history_;
  int64_t horizon_;
  int64_t period_;
  std::unique_ptr<nn::Mlp> trunk_;
  /// FEDformer-lite: fixed DCT-II basis [h, num_freq].
  tensor::Tensor dct_basis_;
  /// ETSformer-lite: learnable smoothing logit (alpha = sigmoid(.)).
  autograd::Variable smoothing_logit_;
};

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_TEMPORAL_ONLY_H_
