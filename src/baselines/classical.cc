#include "baselines/classical.h"

#include <algorithm>
#include <cmath>

#include "baselines/linalg.h"
#include "utils/check.h"
#include "utils/rng.h"
#include "utils/stopwatch.h"

namespace sagdfn::baselines {
namespace {

/// Runs `predict_window` over every evaluated window of `split` and
/// assembles [S, f, N] unscaled predictions. `predict_window` receives the
/// batch and the window index within the batch and writes f * N floats.
template <typename Fn>
tensor::Tensor PredictWindows(const data::ForecastDataset& dataset,
                              data::Split split, int64_t max_windows,
                              Fn&& predict_window) {
  int64_t windows = dataset.NumSamples(split);
  if (max_windows > 0) windows = std::min(windows, max_windows);
  const int64_t f = dataset.spec().horizon;
  const int64_t n = dataset.num_nodes();
  tensor::Tensor all =
      tensor::Tensor::Zeros(tensor::Shape({windows, f, n}));
  constexpr int64_t kChunk = 64;
  int64_t written = 0;
  while (written < windows) {
    const int64_t take = std::min(kChunk, windows - written);
    std::vector<int64_t> offsets(take);
    for (int64_t i = 0; i < take; ++i) offsets[i] = written + i;
    data::Batch batch = dataset.GetBatchAt(split, offsets);
    for (int64_t bi = 0; bi < take; ++bi) {
      predict_window(batch, bi, all.data() + (written + bi) * f * n);
    }
    written += take;
  }
  return all;
}

}  // namespace

// ---------------------------------------------------------------------------
// HistoricalAverage

void HistoricalAverage::Fit(const data::ForecastDataset& dataset,
                            const FitOptions& options) {
  (void)options;
  utils::Stopwatch watch;
  const data::TimeSeries& series = dataset.series();
  steps_per_day_ = series.steps_per_day;
  const int64_t n = series.num_nodes();
  const int64_t train_end = dataset.TrainEndStep();

  means_ = tensor::Tensor::Zeros(tensor::Shape({steps_per_day_, n}));
  std::vector<int64_t> counts(steps_per_day_, 0);
  const float* v = series.values.data();
  float* m = means_.data();
  for (int64_t t = 0; t < train_end; ++t) {
    const int64_t slot = t % steps_per_day_;
    ++counts[slot];
    for (int64_t i = 0; i < n; ++i) m[slot * n + i] += v[t * n + i];
  }
  for (int64_t slot = 0; slot < steps_per_day_; ++slot) {
    if (counts[slot] == 0) continue;
    const float inv = 1.0f / counts[slot];
    for (int64_t i = 0; i < n; ++i) m[slot * n + i] *= inv;
  }
  fit_seconds_ = watch.ElapsedSeconds();
}

tensor::Tensor HistoricalAverage::Predict(
    const data::ForecastDataset& dataset, data::Split split,
    int64_t max_windows) {
  SAGDFN_CHECK_GT(steps_per_day_, 0) << "Fit() before Predict()";
  const int64_t f = dataset.spec().horizon;
  const int64_t n = dataset.num_nodes();
  const float* m = means_.data();
  return PredictWindows(
      dataset, split, max_windows,
      [&](const data::Batch& batch, int64_t bi, float* out) {
        const float* tod = batch.future_tod.data();
        for (int64_t t = 0; t < f; ++t) {
          int64_t slot = static_cast<int64_t>(
              std::lround(tod[bi * f + t] * steps_per_day_));
          slot = ((slot % steps_per_day_) + steps_per_day_) % steps_per_day_;
          for (int64_t i = 0; i < n; ++i) {
            out[t * n + i] = m[slot * n + i];
          }
        }
      });
}

// ---------------------------------------------------------------------------
// ArForecaster

ArForecaster::ArForecaster(int64_t order, double ridge)
    : order_(order), ridge_(ridge) {
  SAGDFN_CHECK_GT(order, 0);
}

void ArForecaster::Fit(const data::ForecastDataset& dataset,
                       const FitOptions& options) {
  (void)options;
  utils::Stopwatch watch;
  const tensor::Tensor& scaled = dataset.scaled_values();
  const int64_t train_end = dataset.TrainEndStep();
  const int64_t n = dataset.num_nodes();
  const int64_t p = std::min(order_, dataset.spec().history);
  order_ = p;
  num_nodes_ = n;
  const int64_t dim = p + 1;  // lags + intercept
  coef_.assign(n * dim, 0.0);

  const float* v = scaled.data();
  std::vector<double> gram(dim * dim);
  std::vector<double> rhs(dim);
  std::vector<double> x(dim);
  for (int64_t node = 0; node < n; ++node) {
    std::fill(gram.begin(), gram.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (int64_t t = p; t < train_end; ++t) {
      for (int64_t l = 0; l < p; ++l) x[l] = v[(t - 1 - l) * n + node];
      x[p] = 1.0;
      const double y = v[t * n + node];
      for (int64_t a = 0; a < dim; ++a) {
        rhs[a] += x[a] * y;
        for (int64_t b = 0; b < dim; ++b) gram[a * dim + b] += x[a] * x[b];
      }
    }
    std::vector<double> w = RidgeSolve(gram, dim, rhs, 1, ridge_);
    std::copy(w.begin(), w.end(), coef_.begin() + node * dim);
  }
  fit_seconds_ = watch.ElapsedSeconds();
}

tensor::Tensor ArForecaster::Predict(const data::ForecastDataset& dataset,
                                     data::Split split,
                                     int64_t max_windows) {
  SAGDFN_CHECK_EQ(num_nodes_, dataset.num_nodes()) << "Fit() first";
  const int64_t f = dataset.spec().horizon;
  const int64_t h = dataset.spec().history;
  const int64_t n = dataset.num_nodes();
  const int64_t p = order_;
  const int64_t dim = p + 1;
  const int64_t c = dataset.num_input_channels();
  const data::StandardScaler& scaler = dataset.scaler();

  return PredictWindows(
      dataset, split, max_windows,
      [&](const data::Batch& batch, int64_t bi, float* out) {
        const float* x = batch.x.data();
        std::vector<double> lags(p);
        for (int64_t node = 0; node < n; ++node) {
          // lags[0] = most recent scaled observation.
          for (int64_t l = 0; l < p; ++l) {
            lags[l] = x[((bi * h + (h - 1 - l)) * n + node) * c];
          }
          const double* w = coef_.data() + node * dim;
          for (int64_t t = 0; t < f; ++t) {
            double pred = w[p];
            for (int64_t l = 0; l < p; ++l) pred += w[l] * lags[l];
            for (int64_t l = p - 1; l > 0; --l) lags[l] = lags[l - 1];
            lags[0] = pred;
            out[t * n + node] = scaler.mean() +
                                scaler.stddev() * static_cast<float>(pred);
          }
        }
      });
}

int64_t ArForecaster::ParameterCount() const {
  return static_cast<int64_t>(coef_.size());
}

// ---------------------------------------------------------------------------
// VarForecaster

VarForecaster::VarForecaster(int64_t order, double ridge)
    : order_(order), ridge_(ridge) {
  SAGDFN_CHECK_GT(order, 0);
}

void VarForecaster::Fit(const data::ForecastDataset& dataset,
                        const FitOptions& options) {
  (void)options;
  utils::Stopwatch watch;
  const tensor::Tensor& scaled = dataset.scaled_values();
  const int64_t train_end = dataset.TrainEndStep();
  const int64_t n = dataset.num_nodes();
  const int64_t p = std::min(order_, dataset.spec().history);
  order_ = p;
  num_nodes_ = n;
  const int64_t dim = n * p + 1;

  const float* v = scaled.data();
  std::vector<double> gram(dim * dim, 0.0);
  std::vector<double> rhs(dim * n, 0.0);
  std::vector<double> x(dim);
  for (int64_t t = p; t < train_end; ++t) {
    for (int64_t l = 0; l < p; ++l) {
      for (int64_t i = 0; i < n; ++i) {
        x[l * n + i] = v[(t - 1 - l) * n + i];
      }
    }
    x[dim - 1] = 1.0;
    for (int64_t a = 0; a < dim; ++a) {
      const double xa = x[a];
      if (xa == 0.0) continue;
      double* gram_row = gram.data() + a * dim;
      for (int64_t b = 0; b < dim; ++b) gram_row[b] += xa * x[b];
      double* rhs_row = rhs.data() + a * n;
      const float* y = v + t * n;
      for (int64_t j = 0; j < n; ++j) rhs_row[j] += xa * y[j];
    }
  }
  coef_ = RidgeSolve(std::move(gram), dim, rhs, n, ridge_);
  fit_seconds_ = watch.ElapsedSeconds();
}

tensor::Tensor VarForecaster::Predict(const data::ForecastDataset& dataset,
                                      data::Split split,
                                      int64_t max_windows) {
  SAGDFN_CHECK_EQ(num_nodes_, dataset.num_nodes()) << "Fit() first";
  const int64_t f = dataset.spec().horizon;
  const int64_t h = dataset.spec().history;
  const int64_t n = dataset.num_nodes();
  const int64_t p = order_;
  const int64_t dim = n * p + 1;
  const int64_t c = dataset.num_input_channels();
  const data::StandardScaler& scaler = dataset.scaler();

  return PredictWindows(
      dataset, split, max_windows,
      [&](const data::Batch& batch, int64_t bi, float* out) {
        const float* x = batch.x.data();
        // lag_state[l * n + i]: lag-l value of node i (l = 0 newest).
        std::vector<double> lag_state(p * n);
        for (int64_t l = 0; l < p; ++l) {
          for (int64_t i = 0; i < n; ++i) {
            lag_state[l * n + i] =
                x[((bi * h + (h - 1 - l)) * n + i) * c];
          }
        }
        std::vector<double> pred(n);
        for (int64_t t = 0; t < f; ++t) {
          for (int64_t j = 0; j < n; ++j) {
            pred[j] = coef_[(dim - 1) * n + j];  // intercept row
          }
          for (int64_t a = 0; a < p * n; ++a) {
            const double xa = lag_state[a];
            if (xa == 0.0) continue;
            const double* w_row = coef_.data() + a * n;
            for (int64_t j = 0; j < n; ++j) pred[j] += xa * w_row[j];
          }
          for (int64_t l = p - 1; l > 0; --l) {
            std::copy(lag_state.begin() + (l - 1) * n,
                      lag_state.begin() + l * n,
                      lag_state.begin() + l * n);
          }
          std::copy(pred.begin(), pred.end(), lag_state.begin());
          for (int64_t j = 0; j < n; ++j) {
            out[t * n + j] = scaler.mean() +
                             scaler.stddev() * static_cast<float>(pred[j]);
          }
        }
      });
}

int64_t VarForecaster::ParameterCount() const {
  return static_cast<int64_t>(coef_.size());
}

// ---------------------------------------------------------------------------
// SvrForecaster

SvrForecaster::SvrForecaster(double epsilon, double l2)
    : epsilon_(epsilon), l2_(l2) {
  SAGDFN_CHECK_GE(epsilon, 0.0);
  SAGDFN_CHECK_GE(l2, 0.0);
}

void SvrForecaster::Fit(const data::ForecastDataset& dataset,
                        const FitOptions& options) {
  utils::Stopwatch watch;
  const tensor::Tensor& scaled = dataset.scaled_values();
  const int64_t train_end = dataset.TrainEndStep();
  const int64_t n = dataset.num_nodes();
  history_ = dataset.spec().history;
  horizon_ = dataset.spec().horizon;
  const int64_t dim = history_ + 1;
  weights_.assign(horizon_ * dim, 0.0);

  utils::Rng rng(options.seed);
  const float* v = scaled.data();
  const int64_t max_start = train_end - history_ - horizon_;
  SAGDFN_CHECK_GT(max_start, 0);
  const int64_t sgd_steps =
      std::max<int64_t>(options.epochs, 1) * 2000;
  double lr = options.learning_rate > 0 ? options.learning_rate : 0.01;

  std::vector<double> x(dim);
  for (int64_t step = 0; step < sgd_steps; ++step) {
    const int64_t t0 = rng.UniformInt(max_start);
    const int64_t node = rng.UniformInt(n);
    for (int64_t l = 0; l < history_; ++l) {
      x[l] = v[(t0 + l) * n + node];
    }
    x[history_] = 1.0;
    const double step_lr = lr / (1.0 + step * 1e-3);
    for (int64_t hstep = 0; hstep < horizon_; ++hstep) {
      double* w = weights_.data() + hstep * dim;
      double pred = 0.0;
      for (int64_t a = 0; a < dim; ++a) pred += w[a] * x[a];
      const double y = v[(t0 + history_ + hstep) * n + node];
      const double err = pred - y;
      // Epsilon-insensitive subgradient + L2 shrinkage.
      double g = 0.0;
      if (err > epsilon_) g = 1.0;
      if (err < -epsilon_) g = -1.0;
      for (int64_t a = 0; a < dim; ++a) {
        w[a] -= step_lr * (g * x[a] + l2_ * w[a]);
      }
    }
  }
  fit_seconds_ = watch.ElapsedSeconds();
}

tensor::Tensor SvrForecaster::Predict(const data::ForecastDataset& dataset,
                                      data::Split split,
                                      int64_t max_windows) {
  SAGDFN_CHECK_GT(history_, 0) << "Fit() first";
  const int64_t f = dataset.spec().horizon;
  const int64_t h = dataset.spec().history;
  const int64_t n = dataset.num_nodes();
  const int64_t dim = h + 1;
  const int64_t c = dataset.num_input_channels();
  const data::StandardScaler& scaler = dataset.scaler();

  return PredictWindows(
      dataset, split, max_windows,
      [&](const data::Batch& batch, int64_t bi, float* out) {
        const float* x = batch.x.data();
        std::vector<double> window(dim);
        for (int64_t node = 0; node < n; ++node) {
          for (int64_t l = 0; l < h; ++l) {
            window[l] = x[((bi * h + l) * n + node) * c];
          }
          window[h] = 1.0;
          for (int64_t t = 0; t < f; ++t) {
            const double* w = weights_.data() + t * dim;
            double pred = 0.0;
            for (int64_t a = 0; a < dim; ++a) pred += w[a] * window[a];
            out[t * n + node] = scaler.mean() +
                                scaler.stddev() * static_cast<float>(pred);
          }
        }
      });
}

int64_t SvrForecaster::ParameterCount() const {
  return static_cast<int64_t>(weights_.size());
}

}  // namespace sagdfn::baselines
