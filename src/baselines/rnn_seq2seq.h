#ifndef SAGDFN_BASELINES_RNN_SEQ2SEQ_H_
#define SAGDFN_BASELINES_RNN_SEQ2SEQ_H_

#include <memory>
#include <string>

#include "core/seq_model.h"
#include "nn/linear.h"
#include "nn/rnn.h"
#include "utils/rng.h"

namespace sagdfn::baselines {

/// Per-node LSTM (or GRU) sequence-to-sequence forecaster with weights
/// shared across nodes — the paper's "LSTM" baseline. Nodes are treated
/// independently (the B and N axes fold into one batch), so the model
/// captures temporal structure only; its gap to the graph models on
/// spatially-correlated data is exactly what the paper's tables surface.
class RnnSeq2Seq : public core::SeqModel {
 public:
  enum class CellType { kLstm, kGru };

  RnnSeq2Seq(CellType cell_type, int64_t input_dim, int64_t hidden_dim,
             int64_t history, int64_t horizon, uint64_t seed);

  autograd::Variable Forward(const tensor::Tensor& x,
                             const tensor::Tensor& future_tod,
                             int64_t iteration,
                             const tensor::Tensor* teacher = nullptr,
                             double teacher_prob = 0.0) override;

  std::string name() const override {
    return cell_type_ == CellType::kLstm ? "LSTM" : "GRU-seq2seq";
  }
  int64_t horizon() const override { return horizon_; }

  /// The scheduled-sampling RNG is the only non-parameter training state.
  std::vector<std::pair<std::string, std::vector<uint64_t>>>
  ExportRuntimeState() const override {
    return {{"rng", teacher_rng_.SerializeState()}};
  }
  utils::Status ImportRuntimeState(
      const std::vector<std::pair<std::string, std::vector<uint64_t>>>&
          state) override {
    return ImportSingleRng(state, &teacher_rng_);
  }

 private:
  CellType cell_type_;
  int64_t input_dim_;
  int64_t hidden_dim_;
  int64_t history_;
  int64_t horizon_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> output_proj_;
  utils::Rng teacher_rng_;
};

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_RNN_SEQ2SEQ_H_
