#ifndef SAGDFN_BASELINES_LINALG_H_
#define SAGDFN_BASELINES_LINALG_H_

#include <cstdint>
#include <vector>

namespace sagdfn::baselines {

/// Solves the ridge regression normal equations
///   (X^T X + lambda I) W = X^T Y
/// for W [p, q], given the Gram matrix G = X^T X [p, p] (row-major) and
/// right-hand side R = X^T Y [p, q], via in-place Cholesky. The Gram
/// matrix must be symmetric positive semi-definite; `lambda` > 0
/// guarantees a solution. Used by the AR/VAR classical baselines, whose
/// equations share one Gram factorization.
std::vector<double> RidgeSolve(std::vector<double> gram, int64_t p,
                               const std::vector<double>& rhs, int64_t q,
                               double lambda);

}  // namespace sagdfn::baselines

#endif  // SAGDFN_BASELINES_LINALG_H_
