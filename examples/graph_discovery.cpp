// Scenario: latent-graph discovery. SAGDFN learns its spatial structure
// from data alone — here we train on synthetic traffic whose generator
// graph is known, then inspect (a) which nodes the Significant Neighbors
// Sampling module selected, (b) how sparse the entmax attention is, and
// (c) how well the learned adjacency overlaps the ground-truth network.
//
// Build & run:  ./build/examples/graph_discovery
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "graph/adjacency.h"
#include "tensor/tensor_ops.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

int main() {
  using namespace sagdfn;

  data::TrafficOptions traffic;
  traffic.num_nodes = 40;
  traffic.num_days = 6;
  traffic.steps_per_day = 96;
  traffic.radius = 0.25;
  traffic.kernel_sigma = 0.18;
  traffic.spatial_rho = 0.9;
  traffic.noise_std = 1.0;
  traffic.seed = 29;
  graph::SpatialGraph latent;
  data::TimeSeries series = data::GenerateTraffic(traffic, &latent);
  data::ForecastDataset dataset(series, data::WindowSpec{12, 12});

  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 10;
  config.m = 12;
  config.k = 9;
  config.hidden_dim = 16;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.alpha = 2.0f;
  config.history = 12;
  config.horizon = 12;
  core::SagdfnModel model(config);

  core::TrainOptions train;
  train.epochs = 6;
  train.batch_size = 8;
  train.learning_rate = 0.02;
  train.max_train_batches_per_epoch = 25;
  train.max_eval_batches = 6;
  core::Trainer trainer(&model, &dataset, train);
  trainer.Train();
  std::cout << "trained on " << dataset.num_nodes()
            << " sensors whose latent road graph is known to the "
               "generator but hidden from the model\n\n";

  // (a) The selected significant-node set I.
  std::cout << "significant nodes I (|I| = " << config.m << "): ";
  for (int64_t v : model.index_set()) std::cout << v << " ";
  std::cout << "\n\n";

  // (b) Entmax sparsity of the slim adjacency.
  tensor::Tensor slim = model.ComputeSlimAdjacency();
  std::cout << "slim adjacency A_s: " << slim.dim(0) << " x "
            << slim.dim(1) << ", exact-zero fraction "
            << utils::FormatDouble(graph::Sparsity(slim) * 100, 1)
            << "% (alpha-entmax prunes weak links outright)\n\n";

  // (c) Overlap with the ground-truth graph, against a random baseline.
  tensor::Tensor learned = model.DenseAdjacency();
  const double overlap =
      graph::TopKOverlap(learned, latent.adjacency, 4);
  utils::Rng rng(99);
  tensor::Tensor random_adj = tensor::Tensor::Uniform(
      tensor::Shape({config.num_nodes, config.num_nodes}), rng);
  const double random_overlap =
      graph::TopKOverlap(random_adj, latent.adjacency, 4);
  std::cout << "top-4 neighbor overlap with the latent graph: "
            << utils::FormatDouble(overlap, 3) << " (random baseline "
            << utils::FormatDouble(random_overlap, 3) << ")\n\n";

  // Show one sensor's strongest learned links vs its true neighbors.
  const int64_t sensor = 3;
  std::vector<int64_t> order(config.num_nodes);
  std::iota(order.begin(), order.end(), 0);
  const float* row = learned.data() + sensor * config.num_nodes;
  std::partial_sort(order.begin(), order.begin() + 4, order.end(),
                    [row](int64_t a, int64_t b) { return row[a] > row[b]; });
  utils::TablePrinter table({"rank", "learned neighbor", "weight",
                             "true edge weight"});
  for (int64_t r = 0; r < 4; ++r) {
    const int64_t nb = order[r];
    table.AddRow({std::to_string(r + 1), std::to_string(nb),
                  utils::FormatDouble(row[nb], 4),
                  utils::FormatDouble(
                      latent.adjacency.At({sensor, nb}), 4)});
  }
  std::cout << "sensor " << sensor << " strongest learned links:\n"
            << table.ToString();
  return 0;
}
