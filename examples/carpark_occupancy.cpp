// Scenario: carpark availability forecasting (the paper's CARPARK1918
// workload): predict the next hour of free-lot counts from the previous
// two hours, with capacity saturation and business/residential daily
// cycles. Demonstrates the asymmetric window setup (h = 24 -> f = 12)
// and per-carpark inspection of predictions.
//
// Build & run:  ./build/examples/carpark_occupancy
#include <iostream>

#include "baselines/registry.h"
#include "data/registry.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

int main() {
  using namespace sagdfn;

  data::TimeSeries series =
      data::MakeDataset("carpark1918-sim", data::DatasetScale::kQuick);
  series = data::SliceNodes(series, 48);
  data::ForecastDataset dataset(
      series, data::DefaultWindowSpec("carpark1918-sim"));
  std::cout << "carpark dataset: " << dataset.num_nodes()
            << " carparks; history " << dataset.spec().history
            << " steps (2h), horizon " << dataset.spec().horizon
            << " steps (1h)\n\n";

  baselines::FitOptions fit;
  fit.epochs = 4;
  fit.batch_size = 8;
  fit.learning_rate = 0.02;
  fit.max_train_batches_per_epoch = 25;
  fit.max_eval_batches = 8;

  baselines::ModelSizing sizing;
  sizing.hidden = 16;
  sizing.sagdfn_m = 12;
  sizing.sagdfn_k = 9;
  sizing.sagdfn_embedding = 10;

  auto model = baselines::MakeForecaster("SAGDFN", sizing);
  model->Fit(dataset, fit);
  tensor::Tensor pred = model->Predict(
      dataset, data::Split::kTest, fit.max_eval_batches * fit.batch_size);
  tensor::Tensor truth = baselines::CollectTruth(
      dataset, data::Split::kTest, pred.dim(0));

  auto scores = metrics::EvaluateHorizons(pred, truth, {3, 6, 12});
  utils::TablePrinter table({"Horizon", "MAE (lots)", "RMSE", "MAPE"});
  const int64_t horizons[] = {3, 6, 12};
  for (size_t i = 0; i < scores.size(); ++i) {
    table.AddRow({std::to_string(horizons[i]),
                  utils::FormatDouble(scores[i].mae, 2),
                  utils::FormatDouble(scores[i].rmse, 2),
                  utils::FormatDouble(scores[i].mape * 100, 1) + "%"});
  }
  std::cout << table.ToString() << "\n";

  // Inspect one carpark: predicted vs actual free lots for the next hour.
  const int64_t carpark = 5;
  std::cout << "carpark " << carpark
            << ", first test window, next 12 steps:\n";
  utils::TablePrinter preview({"step", "actual free lots", "predicted"});
  for (int64_t t = 0; t < dataset.spec().horizon; ++t) {
    preview.AddRow({std::to_string(t + 1),
                    utils::FormatDouble(truth.At({0, t, carpark}), 0),
                    utils::FormatDouble(pred.At({0, t, carpark}), 0)});
  }
  std::cout << preview.ToString();
  return 0;
}
