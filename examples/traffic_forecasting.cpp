// Scenario: city-scale traffic-speed forecasting (the paper's motivating
// workload). Trains SAGDFN on the METR-LA-regime simulated dataset and
// compares it against a naive historical average and a per-sensor LSTM,
// using the shared Forecaster interface the benches also use.
//
// Build & run:  ./build/examples/traffic_forecasting [--nodes N]
#include <iostream>

#include "baselines/registry.h"
#include "data/registry.h"
#include "metrics/metrics.h"
#include "utils/cli.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

int main(int argc, char** argv) {
  using namespace sagdfn;
  utils::CommandLine cli(argc, argv);
  const int64_t max_nodes = cli.GetInt("nodes", 48);

  data::TimeSeries series =
      data::MakeDataset("metr-la-sim", data::DatasetScale::kQuick);
  if (max_nodes > 0 && max_nodes < series.num_nodes()) {
    series = data::SliceNodes(series, max_nodes);
  }
  data::ForecastDataset dataset(series,
                                data::DefaultWindowSpec("metr-la-sim"));
  std::cout << "traffic dataset: " << dataset.num_nodes() << " sensors, "
            << dataset.series().num_steps() << " five-minute-class steps\n"
            << "task: " << dataset.spec().history << " steps in -> "
            << dataset.spec().horizon << " steps out\n\n";

  baselines::FitOptions fit;
  fit.epochs = 4;
  fit.batch_size = 8;
  fit.learning_rate = 0.02;
  fit.max_train_batches_per_epoch = 25;
  fit.max_eval_batches = 10;

  baselines::ModelSizing sizing;
  sizing.hidden = 16;
  sizing.sagdfn_m = 12;
  sizing.sagdfn_k = 9;
  sizing.sagdfn_embedding = 10;

  utils::TablePrinter table({"Model", "H3 MAE", "H6 MAE", "H12 MAE",
                             "H12 RMSE", "H12 MAPE", "fit (s)"});
  for (const std::string name :
       {"HistoricalAverage", "LSTM", "SAGDFN"}) {
    auto model = baselines::MakeForecaster(name, sizing);
    model->Fit(dataset, fit);
    tensor::Tensor pred = model->Predict(
        dataset, data::Split::kTest, fit.max_eval_batches * fit.batch_size);
    tensor::Tensor truth = baselines::CollectTruth(
        dataset, data::Split::kTest, pred.dim(0));
    auto scores = metrics::EvaluateHorizons(pred, truth, {3, 6, 12});
    table.AddRow({name, utils::FormatDouble(scores[0].mae, 2),
                  utils::FormatDouble(scores[1].mae, 2),
                  utils::FormatDouble(scores[2].mae, 2),
                  utils::FormatDouble(scores[2].rmse, 2),
                  utils::FormatDouble(scores[2].mape * 100, 1) + "%",
                  utils::FormatDouble(model->LastFitSeconds(), 1)});
    std::cout << "finished " << name << "\n";
  }
  std::cout << "\n" << table.ToString();
  std::cout << "\nSAGDFN uses the latent road-network correlation LSTM "
               "cannot see; the historical average is a surprisingly "
               "strong reference on strongly daily-periodic data and "
               "takes longer training budgets (--epochs, more batches) "
               "for the neural models to overtake.\n";
  return 0;
}
