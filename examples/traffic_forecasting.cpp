// Scenario: city-scale traffic-speed forecasting (the paper's motivating
// workload). Trains SAGDFN on the METR-LA-regime simulated dataset and
// compares it against a naive historical average and a per-sensor LSTM,
// using the shared Forecaster interface the benches also use.
//
// Build & run:  ./build/examples/traffic_forecasting [--nodes N]
//
// Fault-tolerant mode: pass --ckpt_dir DIR to train SAGDFN with atomic
// full-state checkpoints. Interrupt the run (Ctrl-C, power loss, or a
// simulated crash via SAGDFN_FAULT_SPEC=crash@epoch=2), then re-run the
// same command: it resumes from the newest checkpoint and finishes with
// the exact parameters an uninterrupted run would have produced. See the
// README's "interrupt and resume" walkthrough.
#include <iostream>

#include "baselines/registry.h"
#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/registry.h"
#include "metrics/metrics.h"
#include "obs/telemetry.h"
#include "utils/cli.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

namespace {

// Trains SAGDFN through core::Trainer with checkpointing enabled,
// auto-resuming from the newest checkpoint in `ckpt_dir` if one exists.
int RunFaultTolerantDemo(const sagdfn::data::ForecastDataset& dataset,
                         const std::string& ckpt_dir, int64_t epochs) {
  using namespace sagdfn;
  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 10;
  config.m = 12;
  config.k = 9;
  config.hidden_dim = 16;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  core::SagdfnModel model(config);

  core::TrainOptions options;
  options.epochs = epochs;
  options.batch_size = 8;
  options.learning_rate = 0.02;
  options.max_train_batches_per_epoch = 25;
  options.max_eval_batches = 10;
  options.verbose = true;
  options.checkpoint_dir = ckpt_dir;
  core::Trainer trainer(&model, &dataset, options);

  const std::string latest = core::Trainer::LatestCheckpoint(ckpt_dir);
  if (!latest.empty()) {
    utils::Status status = trainer.Resume(latest);
    if (!status.ok()) {
      std::cerr << "resume failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "resuming from " << latest << "\n";
  } else {
    std::cout << "no checkpoint in " << ckpt_dir << ", starting fresh\n";
  }

  core::TrainResult result = trainer.Train();
  if (result.skipped_batches > 0 || result.rollbacks > 0) {
    std::cout << "recovered from faults: " << result.skipped_batches
              << " skipped batch(es), " << result.rollbacks
              << " rollback(s)\n";
  }
  if (!result.status.ok()) {
    std::cout << "training stopped early: " << result.status.ToString()
              << "\nre-run this command to resume from "
              << core::Trainer::LatestCheckpoint(ckpt_dir) << "\n";
    return 1;
  }

  auto scores = trainer.EvaluateSplit(data::Split::kTest, {3});
  std::cout << "done: best val MAE " << result.best_val_mae
            << ", test H3 MAE " << scores[0].mae << "\n"
            << "checkpoints in " << ckpt_dir << " (best model: "
            << trainer.BestCheckpointPath() << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sagdfn;
  utils::CommandLine cli(argc, argv);
  const int64_t max_nodes = cli.GetInt("nodes", 48);

  data::TimeSeries series =
      data::MakeDataset("metr-la-sim", data::DatasetScale::kQuick);
  if (max_nodes > 0 && max_nodes < series.num_nodes()) {
    series = data::SliceNodes(series, max_nodes);
  }
  data::ForecastDataset dataset(series,
                                data::DefaultWindowSpec("metr-la-sim"));
  std::cout << "traffic dataset: " << dataset.num_nodes() << " sensors, "
            << dataset.series().num_steps() << " five-minute-class steps\n"
            << "task: " << dataset.spec().history << " steps in -> "
            << dataset.spec().horizon << " steps out\n\n";

  if (obs::Telemetry::Global().sink_open()) {
    std::cout << "telemetry: appending JSONL events to "
              << obs::Telemetry::Global().sink_path() << "\n\n";
  }

  const std::string ckpt_dir = cli.GetString("ckpt_dir", "");
  if (!ckpt_dir.empty()) {
    return RunFaultTolerantDemo(dataset, ckpt_dir,
                                cli.GetInt("epochs", 6));
  }

  baselines::FitOptions fit;
  fit.epochs = 4;
  fit.batch_size = 8;
  fit.learning_rate = 0.02;
  fit.max_train_batches_per_epoch = 25;
  fit.max_eval_batches = 10;

  baselines::ModelSizing sizing;
  sizing.hidden = 16;
  sizing.sagdfn_m = 12;
  sizing.sagdfn_k = 9;
  sizing.sagdfn_embedding = 10;

  utils::TablePrinter table({"Model", "H3 MAE", "H6 MAE", "H12 MAE",
                             "H12 RMSE", "H12 MAPE", "fit (s)"});
  for (const std::string name :
       {"HistoricalAverage", "LSTM", "SAGDFN"}) {
    auto model = baselines::MakeForecaster(name, sizing);
    model->Fit(dataset, fit);
    tensor::Tensor pred = model->Predict(
        dataset, data::Split::kTest, fit.max_eval_batches * fit.batch_size);
    tensor::Tensor truth = baselines::CollectTruth(
        dataset, data::Split::kTest, pred.dim(0));
    auto scores = metrics::EvaluateHorizons(pred, truth, {3, 6, 12});
    table.AddRow({name, utils::FormatDouble(scores[0].mae, 2),
                  utils::FormatDouble(scores[1].mae, 2),
                  utils::FormatDouble(scores[2].mae, 2),
                  utils::FormatDouble(scores[2].rmse, 2),
                  utils::FormatDouble(scores[2].mape * 100, 1) + "%",
                  utils::FormatDouble(model->LastFitSeconds(), 1)});
    std::cout << "finished " << name << "\n";
  }
  std::cout << "\n" << table.ToString();
  std::cout << "\nSAGDFN uses the latent road-network correlation LSTM "
               "cannot see; the historical average is a surprisingly "
               "strong reference on strongly daily-periodic data and "
               "takes longer training budgets (--epochs, more batches) "
               "for the neural models to overtake.\n";
  return 0;
}
