// Serving: train a small SAGDFN, freeze it, and run the batched
// inference engine.
//
//   1. Train briefly on synthetic traffic and save a checkpoint.
//   2. Load the checkpoint into a FrozenModel (eval mode, adjacency
//      snapshot computed once, shared read-only across workers).
//   3. Start an InferenceEngine with several workers and replay test
//      windows from concurrent client threads.
//   4. Verify the engine's forecasts are byte-identical to running the
//      same windows one at a time, then print latency stats.
//   5. Hot-swap: train the model a little further, publish the improved
//      checkpoint through the ModelRegistry while clients are still
//      submitting, and verify every in-flight forecast matches one of
//      the two snapshots exactly — no drain, no failures, no blends.
//   6. Multi-tenant + online learning: serve the same snapshot to two
//      tenants on a TenantRouter (each with its own engine, registry,
//      and telemetry namespace), stream a day of fresh ticks into an
//      OnlineTrainer for one tenant, fine-tune from its LIVE snapshot,
//      and publish the candidate through that tenant's gate — the other
//      tenant's live pointer never moves.
//
// Build & run:  ./build/examples/serve_forecasts
#include <chrono>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "nn/serialization.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "serve/online_trainer.h"
#include "serve/registry.h"
#include "serve/tenant_router.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

int main() {
  using namespace sagdfn;

  // 1. A small model trained for a few epochs, then checkpointed.
  data::TrafficOptions traffic;
  traffic.num_nodes = 24;
  traffic.num_days = 5;
  traffic.steps_per_day = 96;
  traffic.seed = 11;
  data::ForecastDataset dataset(data::GenerateTraffic(traffic),
                                data::WindowSpec{12, 12});

  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 8;
  config.m = 8;
  config.k = 6;
  config.hidden_dim = 12;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.history = 12;
  config.horizon = 12;

  const std::string path = "serve_forecasts_model.ckpt";
  {
    core::SagdfnModel model(config);
    core::TrainOptions train;
    train.epochs = 2;
    train.batch_size = 8;
    train.max_train_batches_per_epoch = 10;
    train.max_eval_batches = 4;
    core::Trainer trainer(&model, &dataset, train);
    trainer.Train();
    utils::Status status = nn::SaveModule(model, path);
    if (!status.ok()) {
      std::cerr << "save failed: " << status.ToString() << "\n";
      return 1;
    }
  }

  // 2. Restore into a frozen serving snapshot. The training model above
  //    is gone; serving owns an independent eval-mode instance.
  std::unique_ptr<serve::FrozenModel> frozen;
  utils::Status status = serve::FrozenModel::Load(config, path, &frozen);
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }
  std::shared_ptr<const serve::FrozenModel> model(std::move(frozen));

  // Reference forecasts: each window alone through the frozen model.
  const int64_t num_requests =
      std::min<int64_t>(32, dataset.NumSamples(data::Split::kTest));
  std::vector<tensor::Tensor> xs, tods, reference;
  for (int64_t i = 0; i < num_requests; ++i) {
    data::Batch batch = dataset.GetBatch(data::Split::kTest, i, 1);
    tensor::Tensor x(tensor::Shape(
        {batch.x.dim(1), batch.x.dim(2), batch.x.dim(3)}));
    std::memcpy(x.data(), batch.x.data(), x.size() * sizeof(float));
    tensor::Tensor tod(tensor::Shape({batch.future_tod.dim(1)}));
    std::memcpy(tod.data(), batch.future_tod.data(),
                tod.size() * sizeof(float));
    reference.push_back(model->Predict(batch.x, batch.future_tod));
    xs.push_back(std::move(x));
    tods.push_back(std::move(tod));
  }

  // 3. Batched engine: 4 workers, micro-batches of up to 8 requests.
  serve::EngineOptions options;
  options.num_workers = 4;
  options.max_batch = 8;
  options.max_wait_us = 500;
  serve::InferenceEngine engine(model, options);

  std::vector<std::future<serve::Forecast>> futures(num_requests);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int64_t c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (int64_t i = c; i < num_requests; i += 2) {
        futures[i] = engine.Submit(xs[i], tods[i]);
      }
    });
  }
  for (auto& client : clients) client.join();

  // 4. Every forecast must match the one-at-a-time reference exactly:
  //    batching and concurrency never change the bytes.
  int64_t mismatches = 0;
  for (int64_t i = 0; i < num_requests; ++i) {
    serve::Forecast forecast = futures[i].get();
    if (!forecast.status.ok()) {
      std::cerr << "request " << i << " failed: "
                << forecast.status.ToString() << "\n";
      return 1;
    }
    if (std::memcmp(forecast.prediction.data(), reference[i].data(),
                    forecast.prediction.size() * sizeof(float)) != 0) {
      ++mismatches;
    }
  }
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (mismatches > 0) {
    std::cerr << mismatches << " forecasts differed from the serial "
              << "reference -- determinism contract broken\n";
    return 1;
  }

  // 5. Live hot-swap under load. Train a second, better candidate by
  //    resuming from the first checkpoint for a few more epochs, then
  //    publish it through the registry while clients keep submitting.
  const std::string candidate_path = "serve_forecasts_candidate.ckpt";
  {
    core::SagdfnModel improved(config);
    utils::Status restore = nn::LoadModule(&improved, path);
    if (!restore.ok()) {
      std::cerr << "restore failed: " << restore.ToString() << "\n";
      return 1;
    }
    core::TrainOptions more;
    more.epochs = 2;
    more.batch_size = 8;
    more.max_train_batches_per_epoch = 10;
    more.max_eval_batches = 4;
    core::Trainer trainer(&improved, &dataset, more);
    trainer.Train();
    utils::Status save = nn::SaveModule(improved, candidate_path);
    if (!save.ok()) {
      std::cerr << "save failed: " << save.ToString() << "\n";
      return 1;
    }
  }
  // Reference forecasts for the candidate, for the post-swap check.
  std::unique_ptr<serve::FrozenModel> frozen_b;
  status = serve::FrozenModel::Load(config, candidate_path, &frozen_b);
  if (!status.ok()) {
    std::cerr << "candidate load failed: " << status.ToString() << "\n";
    return 1;
  }
  std::vector<tensor::Tensor> reference_b;
  for (int64_t i = 0; i < num_requests; ++i) {
    data::Batch batch = dataset.GetBatch(data::Split::kTest, i, 1);
    reference_b.push_back(frozen_b->Predict(batch.x, batch.future_tod));
  }
  frozen_b.reset();

  // Gate candidates against a held-out slice of the test split so a
  // regressed checkpoint could never reach the engine.
  serve::RegistryOptions registry_options;
  {
    data::Batch eval = dataset.GetBatch(
        data::Split::kTest, 0,
        std::min<int64_t>(8, dataset.NumSamples(data::Split::kTest)));
    registry_options.eval_x = eval.x;
    registry_options.eval_tod = eval.future_tod;
    registry_options.eval_y = eval.y_scaled;
    registry_options.max_mae_regression = 0.05;
  }
  serve::ModelRegistry registry(&engine, registry_options);

  std::vector<std::future<serve::Forecast>> swap_futures(num_requests);
  std::vector<std::thread> swap_clients;
  for (int64_t c = 0; c < 2; ++c) {
    swap_clients.emplace_back([&, c] {
      for (int64_t i = c; i < num_requests; i += 2) {
        swap_futures[i] = engine.Submit(xs[i], tods[i]);
        // Pace the stream so it is still flowing when the publish below
        // (whose gate runs held-out eval first) swaps the model.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  utils::Status published = registry.Publish(candidate_path);
  for (auto& client : swap_clients) client.join();
  if (!published.ok()) {
    std::cerr << "publish failed: " << published.ToString() << "\n";
    return 1;
  }

  // Every request submitted across the swap completed, and each matches
  // one of the two snapshots byte-for-byte.
  int64_t on_old = 0, on_new = 0;
  for (int64_t i = 0; i < num_requests; ++i) {
    serve::Forecast forecast = swap_futures[i].get();
    if (!forecast.status.ok()) {
      std::cerr << "request " << i << " failed across the swap: "
                << forecast.status.ToString() << "\n";
      return 1;
    }
    const size_t bytes = forecast.prediction.size() * sizeof(float);
    if (std::memcmp(forecast.prediction.data(), reference[i].data(),
                    bytes) == 0) {
      ++on_old;
    } else if (std::memcmp(forecast.prediction.data(),
                           reference_b[i].data(), bytes) == 0) {
      ++on_new;
    } else {
      std::cerr << "request " << i << " matches neither snapshot -- "
                << "swap atomicity broken\n";
      return 1;
    }
  }

  serve::EngineStats stats = engine.stats();
  utils::TablePrinter table({"metric", "value"});
  table.AddRow({"requests", std::to_string(stats.completed)});
  table.AddRow({"micro-batches", std::to_string(stats.batches)});
  table.AddRow({"throughput",
                utils::FormatDouble(num_requests / wall_s, 1) + " req/s"});
  table.AddRow({"determinism", "byte-identical to serial"});
  table.AddRow({"swaps", std::to_string(stats.swaps)});
  table.AddRow({"served on old snapshot", std::to_string(on_old)});
  table.AddRow({"served on new snapshot", std::to_string(on_new)});
  table.AddRow({"swap failures", "0 (no drain, no dangling futures)"});
  std::cout << table.ToString();

  // 6. Multi-tenant serving with online continual learning. Two tenants
  //    start from the same snapshot; only "east" observes fresh ticks
  //    and fine-tunes. Each tenant owns its engine and registry, so the
  //    candidate publish moves east's live pointer alone.
  serve::TenantRouter router;
  serve::TenantConfig tenant_config;
  tenant_config.engine.num_workers = 2;
  tenant_config.engine.max_batch = 8;
  tenant_config.engine.max_wait_us = 500;
  for (const char* id : {"east", "west"}) {
    utils::Status added = router.AddTenant(id, model, tenant_config);
    if (!added.ok()) {
      std::cerr << "AddTenant failed: " << added.ToString() << "\n";
      return 1;
    }
  }
  // Per-tenant routing keeps the byte contract: east's forecasts equal
  // the single-tenant reference while west serves concurrently.
  for (int64_t i = 0; i < num_requests; ++i) {
    serve::Forecast east = router.Submit("east", xs[i], tods[i]).get();
    serve::Forecast west = router.Submit("west", xs[i], tods[i]).get();
    if (!east.status.ok() || !west.status.ok() ||
        std::memcmp(east.prediction.data(), reference[i].data(),
                    east.prediction.size() * sizeof(float)) != 0) {
      std::cerr << "tenant routing broke the byte contract at " << i << "\n";
      return 1;
    }
  }

  // Close the loop: a day of fresh raw ticks (regenerated — the traffic
  // simulator is deterministic in its seed) flows into the online
  // trainer, which fine-tunes a clone of east's live snapshot in the
  // deployment's pinned scaled space and offers the result to east's
  // registry gate.
  serve::OnlineTrainerOptions online;
  online.candidate_dir = "serve_forecasts_online";
  online.train.epochs = 2;
  online.train.batch_size = 8;
  online.train.max_train_batches_per_epoch = 10;
  serve::OnlineTrainer online_trainer(&router, online);
  utils::Status tracked = online_trainer.Track(
      "east", dataset.scaler(), dataset.spec(), traffic.steps_per_day);
  if (!tracked.ok()) {
    std::cerr << "Track failed: " << tracked.ToString() << "\n";
    return 1;
  }
  const data::TimeSeries fresh = data::GenerateTraffic(traffic);
  const int64_t nodes = fresh.num_nodes();
  // Three days of ticks: the fine-tune buffer becomes a 70/10/20
  // dataset, so it needs ~10x the (history + horizon) window.
  for (int64_t t = 0; t < 3 * traffic.steps_per_day; ++t) {
    tensor::Tensor frame(tensor::Shape({nodes}));
    std::memcpy(frame.data(), fresh.values.data() + t * nodes,
                nodes * sizeof(float));
    (void)online_trainer.Observe("east", frame);
  }
  const serve::FrozenModel* west_before = router.live("west").get();
  const serve::FrozenModel* east_before = router.live("east").get();
  utils::Status round = online_trainer.FineTuneOnce("east");
  if (!round.ok()) {
    std::cerr << "fine-tune round failed: " << round.ToString() << "\n";
    return 1;
  }
  if (router.live("east").get() == east_before ||
      router.live("west").get() != west_before) {
    std::cerr << "continual learning moved the wrong live pointer\n";
    return 1;
  }

  utils::TablePrinter tenant_table({"tenant", "live model", "published"});
  const serve::OnlineTenantStats east_stats = online_trainer.stats("east");
  tenant_table.AddRow({"east", "fine-tuned (swapped via its gate)",
                       std::to_string(east_stats.published)});
  tenant_table.AddRow({"west", "original (untouched by east's publish)",
                       "0"});
  std::cout << tenant_table.ToString();
  return 0;
}
