// Quickstart: the smallest end-to-end SAGDFN workflow.
//
//   1. Generate a small multivariate time series (synthetic traffic).
//   2. Window it into a forecasting dataset (12 steps in -> 12 out).
//   3. Build and train a SAGDFN model.
//   4. Evaluate with the paper's masked MAE/RMSE/MAPE at several horizons.
//   5. Save the model and reload it into a fresh instance.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/window_dataset.h"
#include "nn/serialization.h"
#include "utils/table_printer.h"
#include "utils/string_util.h"

int main() {
  using namespace sagdfn;

  // 1. Synthetic traffic over a latent road network: 32 sensors, 6 days
  //    at 15-minute resolution.
  data::TrafficOptions traffic;
  traffic.num_nodes = 32;
  traffic.num_days = 6;
  traffic.steps_per_day = 96;
  traffic.seed = 7;
  data::TimeSeries series = data::GenerateTraffic(traffic);
  std::cout << "generated " << series.num_steps() << " steps x "
            << series.num_nodes() << " sensors\n";

  // 2. 70/10/20 chronological split, 12-step history -> 12-step horizon.
  data::ForecastDataset dataset(series, data::WindowSpec{12, 12});

  // 3. A small SAGDFN: M = 8 significant neighbors out of 32 nodes.
  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 8;
  config.m = 8;
  config.k = 6;
  config.hidden_dim = 16;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.alpha = 1.5f;
  config.history = 12;
  config.horizon = 12;
  core::SagdfnModel model(config);
  std::cout << "model: " << model.ParameterCount()
            << " trainable parameters\n";

  core::TrainOptions train;
  train.epochs = 5;
  train.batch_size = 8;
  train.learning_rate = 0.02;
  train.max_train_batches_per_epoch = 20;
  train.max_eval_batches = 8;
  train.verbose = true;
  core::Trainer trainer(&model, &dataset, train);
  core::TrainResult result = trainer.Train();
  std::cout << "trained " << result.epochs_run << " epochs in "
            << utils::FormatDouble(result.total_seconds, 1) << "s; best "
            << "validation MAE "
            << utils::FormatDouble(result.best_val_mae, 2) << "\n\n";

  // 4. Paper-style evaluation at horizons 3 / 6 / 12.
  utils::TablePrinter table({"Horizon", "MAE", "RMSE", "MAPE"});
  auto scores = trainer.EvaluateSplit(data::Split::kTest, {3, 6, 12});
  const int64_t horizons[] = {3, 6, 12};
  for (size_t i = 0; i < scores.size(); ++i) {
    table.AddRow({std::to_string(horizons[i]),
                  utils::FormatDouble(scores[i].mae, 2),
                  utils::FormatDouble(scores[i].rmse, 2),
                  utils::FormatDouble(scores[i].mape * 100, 1) + "%"});
  }
  std::cout << table.ToString() << "\n";

  // 5. Checkpoint round-trip.
  const std::string path = "quickstart_model.ckpt";
  utils::Status status = nn::SaveModule(model, path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  core::SagdfnModel restored(config);
  status = nn::LoadModule(&restored, path);
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "checkpoint round-trip OK (" << path << ")\n";
  return 0;
}
