#!/usr/bin/env bash
# Builds the core numeric, serialization, and scale suites under
# UndefinedBehaviorSanitizer and runs them. The suites were chosen for
# where UB hides in this codebase: the mmap'd weight-file reader
# (misaligned loads through raw byte offsets), the CSR index arithmetic
# (int32 columns x int64 row pointers), and the autograd kernels (signed
# index math in gather/scatter). -fno-sanitize-recover means the first
# report aborts the run.
#
# Usage: tools/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-ubsan}"

LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                  -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSAGDFN_SANITIZE=undefined \
  ${LAUNCHER_ARGS[@]+"${LAUNCHER_ARGS[@]}"}
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target tensor_ops_test autograd_test serialization_test \
  fast_gconv_test csr_test mmap_model_test scale_smoke_test

export UBSAN_OPTIONS="print_stacktrace=1 ${UBSAN_OPTIONS:-}"

echo "== tensor op + autograd kernels (UBSan) =="
"${BUILD_DIR}/tests/tensor_ops_test"
"${BUILD_DIR}/tests/autograd_test"

echo "== checkpoint + mapped weight-file serialization (UBSan) =="
"${BUILD_DIR}/tests/serialization_test"
"${BUILD_DIR}/tests/mmap_model_test"

echo "== CSR diffusion differential suite (UBSan) =="
"${BUILD_DIR}/tests/fast_gconv_test"
"${BUILD_DIR}/tests/csr_test"

echo "== N=10k scale smoke (UBSan: sharded diffusion, sparse generator, mmap round trip) =="
"${BUILD_DIR}/tests/scale_smoke_test"

echo "UBSan check passed: no undefined behavior detected."
