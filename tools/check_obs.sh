#!/usr/bin/env bash
# Telemetry acceptance check: builds the obs-labeled unit suite, then runs
# a short 2-epoch training job with SAGDFN_TELEMETRY pointed at a JSONL
# sink and validates the stream end to end — every line must parse as
# JSON, and the stream must cover the run lifecycle (run.start), per-epoch
# training records (train.epoch with loss/val/lr/grad-norm), checkpoint
# saves, and a timers.snapshot whose scoped-timer keys include the
# instrumented kernels (sns.sample, ssma.forward, gconv.forward). An
# empty or missing sink fails the script.
#
# Usage: tools/check_obs.sh [build-dir]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

# ccache keeps CI reruns of this from-scratch build cheap; harmless
# locally when ccache is absent.
LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                  -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  ${LAUNCHER_ARGS[@]+"${LAUNCHER_ARGS[@]}"} >/dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target obs_test traffic_forecasting

echo "== obs-labeled ctest targets (telemetry unit suite) =="
ctest --test-dir "${BUILD_DIR}" -L obs --output-on-failure

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT
SINK="${WORK_DIR}/telemetry.jsonl"

echo "== 2-epoch training run with SAGDFN_TELEMETRY=${SINK} =="
SAGDFN_TELEMETRY="${SINK}" "${BUILD_DIR}/examples/traffic_forecasting" \
  --ckpt_dir "${WORK_DIR}/ckpt" --epochs 2 --nodes 24

if [[ ! -s "${SINK}" ]]; then
  echo "FAIL: telemetry sink ${SINK} is missing or empty" >&2
  exit 1
fi

echo "== validating JSONL schema ($(wc -l < "${SINK}") records) =="
if command -v jq >/dev/null 2>&1; then
  # Every line parses (a malformed line aborts jq), and every record has a
  # numeric ts and an event string.
  jq -e -s 'all((.ts | type) == "number" and (.event | type) == "string")' \
    < "${SINK}" >/dev/null
else
  python3 - "${SINK}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        record = json.loads(line)
        assert isinstance(record["ts"], (int, float)), f"line {i}: bad ts"
        assert isinstance(record["event"], str), f"line {i}: bad event"
EOF
fi

require_events() {
  local event="$1" minimum="$2"
  local count
  count="$(grep -c "\"event\":\"${event}\"" "${SINK}" || true)"
  if [[ "${count}" -lt "${minimum}" ]]; then
    echo "FAIL: expected >= ${minimum} '${event}' record(s), got ${count}" >&2
    exit 1
  fi
  echo "  ${event}: ${count} record(s)"
}

require_events "run.start" 1
require_events "train.epoch" 2
require_events "ckpt.save" 1
require_events "train.done" 1
require_events "timers.snapshot" 1

echo "== checking instrumented-kernel timer coverage in the snapshot =="
SNAPSHOT="$(grep '"event":"timers.snapshot"' "${SINK}" | tail -n 1)"
for scope in sns.sample ssma.forward gconv.forward sagdfn.encoder \
             sagdfn.decoder trainer.train_epoch; do
  if ! grep -q "\"${scope}.count\"" <<<"${SNAPSHOT}"; then
    echo "FAIL: timers.snapshot lacks scope '${scope}'" >&2
    exit 1
  fi
  echo "  ${scope}: present"
done

echo "Obs check passed: JSONL telemetry is valid and covers the run."
