#!/usr/bin/env python3
"""Compare fresh benchmark JSON against the committed baselines.

Usage:
    tools/check_bench_regression.py [--fresh PATH] [--baseline PATH]
        [--threshold PCT] [--require-simd-speedup]
    tools/check_bench_regression.py --serve-fresh BENCH_serve_latency.json
        [--serve-baseline PATH] [--threshold PCT]
    tools/check_bench_regression.py --rollout-fresh BENCH_rollout_fusion.json
        [--rollout-baseline PATH] [--threshold PCT] [--min-fusion-speedup X]
    tools/check_bench_regression.py --graphsize-fresh \
        BENCH_graphsize_scaling.json [--graphsize-baseline PATH]
        [--threshold PCT] [--max-superlinear-ratio X] [--max-mmap-load-ms MS]

The cost JSON is the per-kernel timer registry written by
bench/bench_micro_ops (obs::WriteRegistryJson): for every timer it records
count / total_s / mean_s / min_s / max_s. This script:

  * fails (exit 1) if any timer present in both files got more than
    --threshold percent slower by mean_s;
  * ignores timers faster than 1 microsecond in the baseline — at that
    scale the registry clock's quantization noise exceeds any real
    regression;
  * with --require-simd-speedup, additionally requires at least two
    `simd.<kernel>.avx2` timers to be >= 2x faster than their
    `simd.<kernel>.scalar` partner in the FRESH run (skipped with a
    warning when the fresh run carries no avx2 timers, e.g. a
    SAGDFN_SIMD=off host).

With --serve-fresh the script instead compares a BENCH_serve_latency.json
written by bench/bench_serve (per-scenario p50/p99 request latency and
throughput) against --serve-baseline: it fails if any scenario's p50 or
p99 latency grew by more than --threshold percent, or its throughput
dropped by more than --threshold percent. It additionally checks — on
the FRESH run alone, so it holds at any reader count — that every
serve.cached_reads.* scenario's p99 read latency is within
--max-cached-read-ratio (default 5) times the serve.unbatched p50: a
cache hit is one atomic shared_ptr load and must stay in the same
order of magnitude as a single uncontended request, not drift toward
recomputation cost. A second fresh-run-only criterion bounds the
multi-tenant router's fairness: every serve.tenant.multi.* scenario's
p99 must stay within --max-tenant-fairness-ratio (default 2) times the
serve.tenant.single p99 — four concurrent tenants may cost at most one
doubling over an idle router. Serve latency is wall-clock and queue-time
dominated, so CI runs this comparison NON-BLOCKING (informational) — a
failure there flags a trend to look at, not a gate.

With --rollout-fresh the script compares a BENCH_rollout_fusion.json
written by bench/bench_rollout (per-batch eager vs plan-replay rollout
latency) against --rollout-baseline: it fails if any scenario's plan
latency grew by more than --threshold percent, if any scenario's
fused+planned speedup over eager fell below --min-fusion-speedup, or if
the bench reported a broken invariant (replay-vs-eager mismatch, arena
high-water drift). Like the serve comparison this is wall-clock bound,
so CI runs it NON-BLOCKING with the JSON uploaded as an artifact.

With --graphsize-fresh the script checks a BENCH_graphsize_scaling.json
written by bench/bench_table4_graphsize --scaling (per-N CSR diffusion
step time, frozen-model load time, and serve tick latency). The load-
bearing criterion is LINEARITY: ns_per_nm is the CSR diffusion cost
normalized by N*M, so it must stay roughly flat as N grows. Between
consecutive sizes it may grow by at most --max-superlinear-ratio
(default 2.0; an O(N^2) kernel would show ~5x from 2k to 10k). The
script also requires every scenario's mmap_load_ms to stay under
--max-mmap-load-ms (default 100 — the mapped frozen-model load must be
milliseconds even at 100k nodes), requires the bench's byte-identity
invariants (csr_matches_dense, mmap_matches_heap) to hold, and compares
ns_per_nm against --graphsize-baseline with the usual --threshold. The
linearity and invariant checks are fresh-run-only and PR-BLOCKING; the
baseline comparison is wall-clock bound and advisory like the others.

Exit codes: 0 ok, 1 regression (or speedup requirement unmet), 2 bad
invocation or unreadable input.
"""

import argparse
import json
import sys

# Timers below this baseline mean are pure clock noise.
MIN_COMPARABLE_S = 1e-6
DEFAULT_THRESHOLD_PCT = 25.0
REQUIRED_SPEEDUP = 2.0
REQUIRED_SPEEDUP_PAIRS = 2


def load_timers(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    timers = doc.get("timers")
    if not isinstance(timers, dict):
        print(f"error: {path} has no 'timers' object", file=sys.stderr)
        sys.exit(2)
    return timers


def check_regressions(fresh, baseline, threshold_pct):
    failures = []
    compared = skipped = 0
    for name in sorted(baseline):
        if name not in fresh:
            print(f"note: timer '{name}' missing from fresh run; skipping")
            continue
        base_mean = baseline[name].get("mean_s", 0.0)
        fresh_mean = fresh[name].get("mean_s", 0.0)
        if base_mean < MIN_COMPARABLE_S:
            skipped += 1
            continue
        compared += 1
        delta_pct = 100.0 * (fresh_mean - base_mean) / base_mean
        marker = "REGRESSION" if delta_pct > threshold_pct else "ok"
        print(f"  {name:40s} base {base_mean:.3e}s  fresh {fresh_mean:.3e}s "
              f"({delta_pct:+6.1f}%)  {marker}")
        if delta_pct > threshold_pct:
            failures.append((name, delta_pct))
    print(f"compared {compared} timer(s), skipped {skipped} sub-microsecond")
    return failures


def check_simd_speedups(fresh):
    """Counts simd.<kernel> pairs where avx2 beats scalar by >= 2x."""
    kernels = {}
    for name, stats in fresh.items():
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "simd":
            kernels.setdefault(parts[1], {})[parts[2]] = stats.get("mean_s")
    pairs = {k: v for k, v in kernels.items()
             if v.get("scalar") and v.get("avx2")}
    if not pairs:
        print("warning: no scalar/avx2 timer pairs in fresh run "
              "(SAGDFN_SIMD=off host?); speedup check skipped")
        return True
    fast = 0
    for kernel in sorted(pairs):
        ratio = pairs[kernel]["scalar"] / pairs[kernel]["avx2"]
        qualifies = ratio >= REQUIRED_SPEEDUP
        fast += qualifies
        print(f"  simd.{kernel:12s} scalar/avx2 = {ratio:5.2f}x"
              f"{'  >= 2x' if qualifies else ''}")
    ok = fast >= REQUIRED_SPEEDUP_PAIRS
    print(f"{fast} kernel(s) at >= {REQUIRED_SPEEDUP:.0f}x "
          f"(need {REQUIRED_SPEEDUP_PAIRS})")
    return ok


def load_serve_scenarios(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    scenarios = doc.get("serve")
    if not isinstance(scenarios, dict):
        print(f"error: {path} has no 'serve' object", file=sys.stderr)
        sys.exit(2)
    return scenarios


def check_serve_latency(fresh, baseline, threshold_pct):
    """Per-scenario p50/p99 growth and throughput drop vs baseline."""
    failures = []
    for name in sorted(baseline):
        if name not in fresh:
            print(f"note: scenario '{name}' missing from fresh run; skipping")
            continue
        for metric, worse_when in (("p50_us", "higher"), ("p99_us", "higher"),
                                   ("throughput_rps", "lower")):
            base = baseline[name].get(metric, 0.0)
            new = fresh[name].get(metric, 0.0)
            if base <= 0.0:
                continue
            delta_pct = 100.0 * (new - base) / base
            regressed = (delta_pct > threshold_pct if worse_when == "higher"
                         else delta_pct < -threshold_pct)
            marker = "REGRESSION" if regressed else "ok"
            print(f"  {name:20s} {metric:14s} base {base:12.1f}  "
                  f"fresh {new:12.1f} ({delta_pct:+6.1f}%)  {marker}")
            if regressed:
                failures.append((f"{name}.{metric}", delta_pct))
    return failures


def check_cached_read_ratio(fresh, max_ratio):
    """Fresh-run-only criterion: cached-read p99 vs unbatched p50.

    The lock-free cache's whole point is that a hit costs an atomic
    load, not a model replay; this bounds the hit path at max_ratio x
    the single-request p50 regardless of reader count.
    """
    failures = []
    unbatched_p50 = fresh.get("serve.unbatched", {}).get("p50_us", 0.0)
    cached = {k: v for k, v in fresh.items()
              if k.startswith("serve.cached_reads.")}
    if unbatched_p50 <= 0.0 or not cached:
        print("note: cached-read ratio check skipped (missing "
              "serve.unbatched p50 or serve.cached_reads.* scenarios)")
        return failures
    bound = max_ratio * unbatched_p50
    for name in sorted(cached):
        p99 = cached[name].get("p99_us", 0.0)
        ratio = p99 / unbatched_p50
        ok = p99 <= bound
        marker = "ok" if ok else "TOO SLOW"
        print(f"  {name:28s} p99 {p99:10.1f}us = {ratio:6.2f}x unbatched "
              f"p50 {unbatched_p50:.1f}us (bound {max_ratio:.1f}x)  {marker}")
        if not ok:
            failures.append((f"{name}.cached_read_ratio", ratio))
    return failures


def check_tenant_fairness(fresh, max_ratio):
    """Fresh-run-only criterion: multi-tenant p99 vs single-tenant p99.

    The tenant router's isolation claim in latency terms: with four
    tenants under full concurrent load, no tenant's p99 may exceed
    max_ratio x the p99 the same replay sees on an otherwise idle
    single-tenant router. Computed within one run on one machine, so it
    is stable enough to block on (unlike absolute latencies).
    """
    failures = []
    single_p99 = fresh.get("serve.tenant.single", {}).get("p99_us", 0.0)
    multi = {k: v for k, v in fresh.items()
             if k.startswith("serve.tenant.multi.")}
    if single_p99 <= 0.0 or not multi:
        print("note: tenant fairness check skipped (missing "
              "serve.tenant.single p99 or serve.tenant.multi.* scenarios)")
        return failures
    bound = max_ratio * single_p99
    for name in sorted(multi):
        p99 = multi[name].get("p99_us", 0.0)
        ratio = p99 / single_p99
        ok = p99 <= bound
        marker = "ok" if ok else "UNFAIR"
        print(f"  {name:32s} p99 {p99:10.1f}us = {ratio:5.2f}x single-tenant "
              f"p99 {single_p99:.1f}us (bound {max_ratio:.1f}x)  {marker}")
        if not ok:
            failures.append((f"{name}.tenant_fairness_ratio", ratio))
    return failures


def load_rollout(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    scenarios = doc.get("rollout")
    if not isinstance(scenarios, dict):
        print(f"error: {path} has no 'rollout' object", file=sys.stderr)
        sys.exit(2)
    return scenarios, doc.get("invariants", {})


def check_rollout(fresh, baseline, invariants, threshold_pct, min_speedup):
    """Plan-latency growth, fusion speedup floor, and bench invariants."""
    failures = []
    for name in sorted(fresh):
        speedup = fresh[name].get("speedup", 0.0)
        marker = "ok" if speedup >= min_speedup else "TOO SLOW"
        print(f"  {name:20s} eager {fresh[name].get('eager_ms', 0.0):8.3f}ms"
              f"  plan {fresh[name].get('plan_ms', 0.0):8.3f}ms"
              f"  speedup {speedup:5.2f}x (need {min_speedup:.2f}x)  {marker}")
        if speedup < min_speedup:
            failures.append((f"{name}.speedup", speedup))
    for name in sorted(baseline):
        if name not in fresh:
            print(f"note: scenario '{name}' missing from fresh run; skipping")
            continue
        base = baseline[name].get("plan_ms", 0.0)
        new = fresh[name].get("plan_ms", 0.0)
        if base <= 0.0:
            continue
        delta_pct = 100.0 * (new - base) / base
        regressed = delta_pct > threshold_pct
        marker = "REGRESSION" if regressed else "ok"
        print(f"  {name:20s} plan_ms base {base:8.3f}  fresh {new:8.3f} "
              f"({delta_pct:+6.1f}%)  {marker}")
        if regressed:
            failures.append((f"{name}.plan_ms", delta_pct))
    for key in ("replay_matches_eager", "arena_stable_across_ticks"):
        value = invariants.get(key, 0)
        print(f"  invariant {key}: {value}")
        if value != 1:
            failures.append((f"invariants.{key}", value))
    return failures


def load_graphsize(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    scenarios = doc.get("graphsize")
    if not isinstance(scenarios, dict):
        print(f"error: {path} has no 'graphsize' object", file=sys.stderr)
        sys.exit(2)
    return scenarios, doc.get("invariants", {})


def check_graphsize(fresh, baseline, invariants, threshold_pct,
                    max_superlinear_ratio, max_mmap_load_ms):
    """Linearity in N*M, mmap load bound, invariants, baseline drift."""
    failures = []
    # Sort by the node count VALUE — the "n10000" key sorts before
    # "n2000" lexically.
    ordered = sorted(fresh, key=lambda k: fresh[k].get("nodes", 0))
    prev = None
    for name in ordered:
        row = fresh[name]
        nodes = row.get("nodes", 0)
        ns = row.get("ns_per_nm", 0.0)
        line = (f"  {name:8s} N={nodes:<7d} csr {row.get('csr_step_ms', 0.0):8.3f}ms"
                f"  ns/(N*M) {ns:7.3f}")
        if prev is not None and prev[1] > 0.0:
            ratio = ns / prev[1]
            superlinear = ratio > max_superlinear_ratio
            line += (f"  x{ratio:.2f} vs {prev[0]}"
                     f" (bound {max_superlinear_ratio:.2f}x)"
                     f"{'  SUPERLINEAR' if superlinear else ''}")
            if superlinear:
                failures.append((f"{name}.ns_per_nm_ratio", ratio))
        print(line)
        prev = (name, ns)
    for name in ordered:
        mmap_ms = fresh[name].get("mmap_load_ms", 0.0)
        ok = mmap_ms <= max_mmap_load_ms
        print(f"  {name:8s} mmap load {mmap_ms:8.2f}ms "
              f"(bound {max_mmap_load_ms:.0f}ms)  {'ok' if ok else 'TOO SLOW'}")
        if not ok:
            failures.append((f"{name}.mmap_load_ms", mmap_ms))
    for key in ("csr_matches_dense", "mmap_matches_heap"):
        value = invariants.get(key, 0)
        print(f"  invariant {key}: {value}")
        if value != 1:
            failures.append((f"invariants.{key}", value))
    for name in sorted(baseline):
        if name not in fresh:
            print(f"note: scenario '{name}' missing from fresh run; skipping")
            continue
        base = baseline[name].get("ns_per_nm", 0.0)
        new = fresh[name].get("ns_per_nm", 0.0)
        if base <= 0.0:
            continue
        delta_pct = 100.0 * (new - base) / base
        regressed = delta_pct > threshold_pct
        marker = "REGRESSION" if regressed else "ok"
        print(f"  {name:8s} ns/(N*M) base {base:7.3f}  fresh {new:7.3f} "
              f"({delta_pct:+6.1f}%)  {marker}")
        if regressed:
            failures.append((f"{name}.ns_per_nm", delta_pct))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default="BENCH_micro_ops_cost.json",
                        help="cost JSON from the run under test")
    parser.add_argument("--baseline",
                        default="bench/baselines/BENCH_micro_ops_cost.json",
                        help="committed baseline cost JSON")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD_PCT,
                        help="max tolerated per-timer slowdown, percent")
    parser.add_argument("--require-simd-speedup", action="store_true",
                        help="also require >= 2 simd kernels at >= 2x "
                             "avx2-over-scalar in the fresh run")
    parser.add_argument("--serve-fresh", default=None,
                        help="BENCH_serve_latency.json from the run under "
                             "test; selects the serve-latency comparison "
                             "instead of the micro-ops one")
    parser.add_argument("--serve-baseline",
                        default="bench/baselines/BENCH_serve_latency.json",
                        help="committed baseline serve latency JSON")
    parser.add_argument("--max-cached-read-ratio", type=float, default=5.0,
                        help="max tolerated serve.cached_reads.* p99 as a "
                             "multiple of the fresh serve.unbatched p50")
    parser.add_argument("--max-tenant-fairness-ratio", type=float,
                        default=2.0,
                        help="max tolerated serve.tenant.multi.* p99 as a "
                             "multiple of the fresh serve.tenant.single p99")
    parser.add_argument("--rollout-fresh", default=None,
                        help="BENCH_rollout_fusion.json from the run under "
                             "test; selects the rollout fused-vs-eager "
                             "comparison")
    parser.add_argument("--rollout-baseline",
                        default="bench/baselines/BENCH_rollout_fusion.json",
                        help="committed baseline rollout fusion JSON")
    parser.add_argument("--min-fusion-speedup", type=float, default=1.3,
                        help="minimum fused+planned speedup over the eager "
                             "rollout, per scenario")
    parser.add_argument("--graphsize-fresh", default=None,
                        help="BENCH_graphsize_scaling.json from the run "
                             "under test; selects the N*M linearity check")
    parser.add_argument("--graphsize-baseline",
                        default="bench/baselines/BENCH_graphsize_scaling.json",
                        help="committed baseline graphsize scaling JSON")
    parser.add_argument("--max-superlinear-ratio", type=float, default=2.0,
                        help="max tolerated growth of ns_per_nm between "
                             "consecutive graph sizes (linear => ~1.0)")
    parser.add_argument("--max-mmap-load-ms", type=float, default=100.0,
                        help="max tolerated mapped frozen-model load time "
                             "at any graph size, milliseconds")
    args = parser.parse_args()
    if args.threshold <= 0:
        print("error: --threshold must be positive", file=sys.stderr)
        return 2

    if args.graphsize_fresh is not None:
        fresh, invariants = load_graphsize(args.graphsize_fresh)
        baseline, _ = load_graphsize(args.graphsize_baseline)
        print(f"== graphsize scaling check (threshold {args.threshold:.0f}%, "
              f"superlinear bound {args.max_superlinear_ratio:.2f}x, "
              f"mmap bound {args.max_mmap_load_ms:.0f}ms) ==")
        failures = check_graphsize(fresh, baseline, invariants,
                                   args.threshold,
                                   args.max_superlinear_ratio,
                                   args.max_mmap_load_ms)
        if failures:
            for name, value in failures:
                print(f"FAIL: {name} = {value}", file=sys.stderr)
            return 1
        print("graphsize scaling check passed")
        return 0

    if args.rollout_fresh is not None:
        fresh, invariants = load_rollout(args.rollout_fresh)
        baseline, _ = load_rollout(args.rollout_baseline)
        print(f"== rollout fusion check (threshold {args.threshold:.0f}%, "
              f"min speedup {args.min_fusion_speedup:.2f}x) ==")
        failures = check_rollout(fresh, baseline, invariants, args.threshold,
                                 args.min_fusion_speedup)
        if failures:
            for name, value in failures:
                print(f"FAIL: {name} = {value}", file=sys.stderr)
            return 1
        print("rollout fusion check passed")
        return 0

    if args.serve_fresh is not None:
        fresh = load_serve_scenarios(args.serve_fresh)
        baseline = load_serve_scenarios(args.serve_baseline)
        print(f"== serve latency check (threshold {args.threshold:.0f}%) ==")
        failures = check_serve_latency(fresh, baseline, args.threshold)
        print(f"== cached-read hit-path check (bound "
              f"{args.max_cached_read_ratio:.1f}x unbatched p50) ==")
        failures += check_cached_read_ratio(fresh,
                                            args.max_cached_read_ratio)
        print(f"== multi-tenant fairness check (bound "
              f"{args.max_tenant_fairness_ratio:.1f}x single-tenant p99) ==")
        failures += check_tenant_fairness(fresh,
                                          args.max_tenant_fairness_ratio)
        if failures:
            for name, delta in failures:
                print(f"FAIL: {name} moved {delta:+.1f}%", file=sys.stderr)
            return 1
        print("serve latency check passed")
        return 0

    fresh = load_timers(args.fresh)
    baseline = load_timers(args.baseline)

    print(f"== regression check (threshold {args.threshold:.0f}%) ==")
    failures = check_regressions(fresh, baseline, args.threshold)

    speedup_ok = True
    if args.require_simd_speedup:
        print("== simd speedup check ==")
        speedup_ok = check_simd_speedups(fresh)

    if failures:
        for name, delta in failures:
            print(f"FAIL: {name} slowed down {delta:.1f}%", file=sys.stderr)
        return 1
    if not speedup_ok:
        print("FAIL: simd speedup requirement unmet", file=sys.stderr)
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
