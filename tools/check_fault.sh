#!/usr/bin/env bash
# Builds the fault-tolerance suites under AddressSanitizer and runs every
# ctest target labeled `fault`, plus the checkpoint serialization and
# trainer resume suites. Exercises the whole injected-fault matrix —
# trainer sites (nan_loss / nan_grad / crash / io_fail / truncate_ckpt)
# and serve sites (bad_candidate / nan_forecast / slow_batch / swap_race)
# — with ASan watching the recovery paths: any leak, use-after-free, or
# buffer overflow on a rollback/restore/rollback-swap path fails the
# script.
#
# Usage: tools/check_fault.sh [build-dir]   (default: build-asan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-asan}"

# ccache makes the from-scratch sanitizer configure cheap on CI reruns;
# harmless locally when ccache is absent.
LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                  -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSAGDFN_SANITIZE=address \
  ${LAUNCHER_ARGS[@]+"${LAUNCHER_ARGS[@]}"}
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target fault_injection_test serialization_test trainer_test \
  serve_engine_test rollout_plan_test registry_test tick_stream_test \
  tenant_router_test

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"

echo "== fault-labeled ctest targets (injected fault matrix, ASan) =="
ctest --test-dir "${BUILD_DIR}" -L fault --output-on-failure

echo "== checkpoint serialization robustness (ASan) =="
"${BUILD_DIR}/tests/serialization_test"

echo "== inference engine lifecycle (ASan: shutdown, destroy-under-load) =="
"${BUILD_DIR}/tests/serve_engine_test"

echo "== registry serve-side fault sites (ASan: bad_candidate, nan_forecast, slow_batch, swap_race) =="
"${BUILD_DIR}/tests/registry_test"

echo "== tenant router isolation suite (ASan: tenant-qualified faults, deregister-with-in-flight drain, online-trainer kill/resume) =="
ctest --test-dir "${BUILD_DIR}" -L tenant --output-on-failure

echo "== registry corrupt-candidate fuzz corpus (ASan) =="
"${BUILD_DIR}/tests/serialization_test" \
  --gtest_filter='SerializationFuzzTest.RegistryGateRejectsCorruptCandidates'

echo "== rollout-plan replay (ASan: arena slab reuse, pinned weights) =="
ctest --test-dir "${BUILD_DIR}" -L plan --output-on-failure

echo "== streaming tick loop (ASan: cache slot churn, carried-state slabs, swap-observer lifetime) =="
ctest --test-dir "${BUILD_DIR}" -L stream --output-on-failure

echo "== trainer checkpoint/resume suites (ASan) =="
"${BUILD_DIR}/tests/trainer_test" \
  --gtest_filter='TrainerTest.KillAndResume*:TrainerTest.Resume*:TrainerTest.Checkpoint*:TrainerTest.Latest*'

echo "Fault check passed: every injected fault was recovered or reported."
