#!/usr/bin/env bash
# Builds the parallel-kernel and serving tests under ThreadSanitizer and
# runs the thread-pool / determinism suites at 8 threads. Any data race
# in the ParallelFor backend, the parallel tensor kernels, or the
# inference engine's queue/worker/shutdown machinery fails the script.
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"

# ccache makes the from-scratch sanitizer configure cheap on CI reruns;
# harmless locally when ccache is absent.
LAUNCHER_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_ARGS+=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                  -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSAGDFN_SANITIZE=thread \
  ${LAUNCHER_ARGS[@]+"${LAUNCHER_ARGS[@]}"}
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target utils_test tensor_reference_test serve_engine_test \
  rollout_plan_test registry_test tick_stream_test tenant_router_test

# halt_on_error so the first race aborts with a non-zero exit code.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export SAGDFN_NUM_THREADS=8

echo "== ThreadPool / ParallelFor tests (8 threads) =="
"${BUILD_DIR}/tests/utils_test" --gtest_filter='ParallelTest.*'

echo "== Parallel kernel determinism tests (8 threads) =="
"${BUILD_DIR}/tests/tensor_reference_test" \
  --gtest_filter='ThreadCountDeterminism.*:ScalarOpDifferential.*'

echo "== Inference engine concurrency suite (workers, shutdown, destroy-under-load) =="
"${BUILD_DIR}/tests/serve_engine_test"

echo "== Rollout-plan replay suite (concurrent plan replay, plan cache) =="
"${BUILD_DIR}/tests/rollout_plan_test"

echo "== Hot-swap registry suite (swap-under-load, probation rollback from worker threads) =="
"${BUILD_DIR}/tests/registry_test"

echo "== Streaming tick loop (lock-free forecast cache: concurrent readers vs tick writer, swap invalidation) =="
"${BUILD_DIR}/tests/tick_stream_test"

echo "== Multi-tenant router suite (per-tenant byte equality under concurrent load, online fine-tune sweeps) =="
"${BUILD_DIR}/tests/tenant_router_test"

echo "TSan check passed: no data races detected."
