// Command-line interface for the SAGDFN library.
//
// Subcommands:
//   generate --dataset <name> [--full] --out series.csv
//       Generate a synthetic benchmark dataset and write it as CSV.
//   info --dataset <name> [--full]
//       Print Table II-style statistics for a dataset.
//   train --dataset <name> [--full] [--nodes N] [--epochs E] [--m M]
//         [--k K] [--alpha A] [--hidden H] [--heads P] [--out model.ckpt]
//       Train SAGDFN and report per-horizon test metrics; optionally
//       save a checkpoint.
//   evaluate --dataset <name> --model model.ckpt [--nodes N] [...]
//       Load a checkpoint (built with the same flags) and evaluate it.
//   serve --dataset <name> --model model.ckpt [--workers W] [--batch B]
//         [--max-wait-us U] [--requests R] [--clients C]
//         [--registry_dir DIR] [--deadline_ms MS]
//         [--tenants a,b,c] [--worker-budget T]
//       Replay test-split windows through the batched inference engine
//       from C concurrent clients and report latency percentiles.
//       --registry_dir watches DIR for candidate checkpoints and
//       hot-swaps any that pass the quality gate while the replay runs;
//       --deadline_ms applies a per-request deadline (expired requests
//       are rejected, never executed). --tenants switches to the
//       multi-tenant router: one isolated engine per listed tenant id,
//       all serving the checkpoint, replayed concurrently with the
//       shared --worker-budget (0 = unlimited) divided across tenants;
//       the report becomes a per-tenant table.
//
// Examples:
//   sagdfn_cli generate --dataset metr-la-sim --out metr.csv
//   sagdfn_cli train --dataset metr-la-sim --epochs 8 --out model.ckpt
//   sagdfn_cli evaluate --dataset metr-la-sim --model model.ckpt
//   sagdfn_cli serve --dataset metr-la-sim --model model.ckpt --workers 4
#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "data/registry.h"
#include "nn/serialization.h"
#include "obs/telemetry.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "serve/registry.h"
#include "serve/tenant_router.h"
#include "utils/cli.h"
#include "utils/string_util.h"
#include "utils/table_printer.h"

namespace sagdfn::cli {
namespace {

int Usage() {
  std::cerr
      << "usage: sagdfn_cli <generate|info|train|evaluate|serve> [flags]\n"
         "  common flags: --dataset <name> --full --nodes N\n"
         "                --telemetry <file.jsonl>  (or SAGDFN_TELEMETRY "
         "env var)\n"
         "  datasets: ";
  for (const auto& name : data::KnownDatasets()) std::cerr << name << " ";
  std::cerr << "\n";
  return 2;
}

data::DatasetScale ScaleOf(const utils::CommandLine& cli) {
  return cli.GetBool("full", false) ? data::DatasetScale::kFull
                                    : data::DatasetScale::kQuick;
}

bool KnownDataset(const std::string& name) {
  for (const auto& known : data::KnownDatasets()) {
    if (known == name) return true;
  }
  return false;
}

data::ForecastDataset LoadDataset(const utils::CommandLine& cli,
                                  const std::string& name) {
  data::TimeSeries series = data::MakeDataset(name, ScaleOf(cli));
  const int64_t nodes = cli.GetInt("nodes", 0);
  if (nodes > 0 && nodes < series.num_nodes()) {
    series = data::SliceNodes(series, nodes);
  }
  return data::ForecastDataset(std::move(series),
                               data::DefaultWindowSpec(name));
}

core::SagdfnConfig ConfigFromFlags(const utils::CommandLine& cli,
                                   const data::ForecastDataset& dataset) {
  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.m = std::min<int64_t>(cli.GetInt("m", 16), config.num_nodes);
  config.k = std::min<int64_t>(cli.GetInt("k", (config.m * 4) / 5),
                               config.m);
  config.embedding_dim = cli.GetInt("embedding", 12);
  config.hidden_dim = cli.GetInt("hidden", 16);
  config.heads = cli.GetInt("heads", 2);
  config.ffn_hidden = cli.GetInt("ffn-hidden", 8);
  config.diffusion_steps = cli.GetInt("diffusion", 2);
  config.alpha = static_cast<float>(cli.GetDouble("alpha", 1.5));
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  return config;
}

void PrintScores(core::Trainer& trainer) {
  auto scores = trainer.EvaluateSplit(data::Split::kTest, {3, 6, 12});
  utils::TablePrinter table({"Horizon", "MAE", "RMSE", "MAPE"});
  const int64_t horizons[] = {3, 6, 12};
  for (size_t i = 0; i < scores.size(); ++i) {
    table.AddRow({std::to_string(horizons[i]),
                  utils::FormatDouble(scores[i].mae, 2),
                  utils::FormatDouble(scores[i].rmse, 2),
                  utils::FormatDouble(scores[i].mape * 100, 1) + "%"});
  }
  std::cout << table.ToString();
}

int Generate(const utils::CommandLine& cli, const std::string& name) {
  const std::string out = cli.GetString("out", name + ".csv");
  data::TimeSeries series = data::MakeDataset(name, ScaleOf(cli));
  utils::Status status = data::WriteCsv(series, out);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << series.num_steps() << " steps x "
            << series.num_nodes() << " nodes to " << out << "\n";
  return 0;
}

int Info(const utils::CommandLine& cli, const std::string& name) {
  data::DatasetInfo info = data::GetDatasetInfo(name, ScaleOf(cli));
  data::WindowSpec spec = data::DefaultWindowSpec(name);
  utils::TablePrinter table({"field", "value"});
  table.AddRow({"dataset", info.name});
  table.AddRow({"data type", info.data_type});
  table.AddRow({"sensors", std::to_string(info.num_nodes)});
  table.AddRow({"steps", std::to_string(info.num_steps)});
  table.AddRow({"steps/day", std::to_string(info.steps_per_day)});
  table.AddRow({"window", std::to_string(spec.history) + " -> " +
                              std::to_string(spec.horizon)});
  table.AddRow({"time range", info.time_range});
  std::cout << table.ToString();
  return 0;
}

int Train(const utils::CommandLine& cli, const std::string& name) {
  data::ForecastDataset dataset = LoadDataset(cli, name);
  core::SagdfnConfig config = ConfigFromFlags(cli, dataset);
  core::SagdfnModel model(config);
  std::cout << "SAGDFN: " << model.ParameterCount() << " parameters, N="
            << config.num_nodes << ", M=" << config.m << ", K=" << config.k
            << ", alpha=" << config.alpha << "\n";

  core::TrainOptions train;
  train.epochs = cli.GetInt("epochs", 6);
  train.batch_size = cli.GetInt("batch", 8);
  train.learning_rate = cli.GetDouble("lr", 0.02);
  train.max_train_batches_per_epoch = cli.GetInt("train-batches", 25);
  train.max_eval_batches = cli.GetInt("eval-batches", 8);
  train.patience = cli.GetInt("patience", 0);
  train.verbose = true;
  core::Trainer trainer(&model, &dataset, train);
  core::TrainResult result = trainer.Train();
  std::cout << "trained " << result.epochs_run << " epochs ("
            << utils::FormatDouble(result.seconds_per_epoch, 1)
            << " s/epoch); best val MAE "
            << utils::FormatDouble(result.best_val_mae, 2) << "\n";
  PrintScores(trainer);

  const std::string out = cli.GetString("out", "");
  if (!out.empty()) {
    utils::Status status = nn::SaveModule(model, out);
    if (!status.ok()) {
      std::cerr << "error: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "saved checkpoint to " << out << "\n";
  }
  return 0;
}

int Evaluate(const utils::CommandLine& cli, const std::string& name) {
  const std::string path = cli.GetString("model", "");
  if (path.empty()) {
    std::cerr << "error: --model <checkpoint> required\n";
    return 2;
  }
  data::ForecastDataset dataset = LoadDataset(cli, name);
  core::SagdfnConfig config = ConfigFromFlags(cli, dataset);
  core::SagdfnModel model(config);
  utils::Status status = nn::LoadModule(&model, path);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString()
              << " (were the model flags identical to training?)\n";
    return 1;
  }
  core::TrainOptions eval_options;
  eval_options.batch_size = cli.GetInt("batch", 8);
  eval_options.max_eval_batches = cli.GetInt("eval-batches", 8);
  core::Trainer trainer(&model, &dataset, eval_options);
  PrintScores(trainer);
  return 0;
}

// One serving request: a single test window, sliced out of its batch.
struct ServeRequest {
  tensor::Tensor x;           // [h, N, C]
  tensor::Tensor future_tod;  // [f]
};

std::vector<ServeRequest> TestWindows(const data::ForecastDataset& dataset,
                                      int64_t count) {
  std::vector<ServeRequest> requests;
  const int64_t available = dataset.NumSamples(data::Split::kTest);
  count = std::min(count, available);
  requests.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    data::Batch batch = dataset.GetBatch(data::Split::kTest, i, 1);
    ServeRequest request;
    request.x = tensor::Tensor(tensor::Shape(
        {batch.x.dim(1), batch.x.dim(2), batch.x.dim(3)}));
    std::memcpy(request.x.data(), batch.x.data(),
                request.x.size() * sizeof(float));
    request.future_tod =
        tensor::Tensor(tensor::Shape({batch.future_tod.dim(1)}));
    std::memcpy(request.future_tod.data(), batch.future_tod.data(),
                request.future_tod.size() * sizeof(float));
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Multi-tenant replay: every listed tenant gets its own engine (and
/// registry namespace) on one TenantRouter serving the same checkpoint;
/// all tenants replay the window stream at once, each from `clients`
/// concurrent submitter threads, and the report is per-tenant — workers
/// granted under the shared budget, failures, p50/p99 — so a skew
/// between tenants is visible at a glance.
int ServeTenants(const utils::CommandLine& cli,
                 const std::vector<std::string>& tenants,
                 std::shared_ptr<const serve::FrozenModel> model,
                 const serve::EngineOptions& engine_options,
                 const std::vector<ServeRequest>& requests, int64_t clients) {
  serve::TenantRouterOptions router_options;
  router_options.worker_budget = cli.GetInt("worker-budget", 0);
  serve::TenantRouter router(router_options);
  for (const std::string& id : tenants) {
    serve::TenantConfig config;
    config.engine = engine_options;
    utils::Status status = router.AddTenant(id, model, config);
    if (!status.ok()) {
      std::cerr << "error: " << status.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "serving " << requests.size() << " requests x "
            << tenants.size() << " tenants (" << clients
            << " clients each, worker budget "
            << (router_options.worker_budget > 0
                    ? std::to_string(router_options.worker_budget)
                    : std::string("unlimited"))
            << ")\n";

  using Clock = std::chrono::steady_clock;
  std::map<std::string, std::vector<double>> latencies_us;
  std::map<std::string, int64_t> failures;
  for (const std::string& id : tenants) {
    latencies_us[id].resize(requests.size(), 0.0);
    failures[id] = 0;
  }
  std::mutex failure_mu;
  std::vector<std::thread> threads;
  for (const std::string& id : tenants) {
    std::vector<double>* tenant_latencies = &latencies_us[id];
    int64_t* tenant_failures = &failures[id];
    for (int64_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, id, c, tenant_latencies, tenant_failures] {
        int64_t failed = 0;
        for (size_t i = c; i < requests.size(); i += clients) {
          const auto start = Clock::now();
          serve::Forecast forecast =
              router.Submit(id, requests[i].x, requests[i].future_tod).get();
          // clients never share an index i, so the writes don't race.
          (*tenant_latencies)[i] =
              std::chrono::duration_cast<
                  std::chrono::duration<double, std::micro>>(Clock::now() -
                                                             start)
                  .count();
          if (!forecast.status.ok()) ++failed;
        }
        std::lock_guard<std::mutex> lock(failure_mu);
        *tenant_failures += failed;
      });
    }
  }
  for (auto& thread : threads) thread.join();

  int64_t total_failures = 0;
  utils::TablePrinter table(
      {"tenant", "workers", "requests", "failures", "p50 (us)", "p99 (us)"});
  for (const std::string& id : tenants) {
    std::vector<double>& sample = latencies_us[id];
    std::sort(sample.begin(), sample.end());
    const auto percentile = [&](double p) {
      const size_t index =
          static_cast<size_t>(p * static_cast<double>(sample.size() - 1));
      return sample[index];
    };
    total_failures += failures[id];
    table.AddRow({id, std::to_string(router.WorkersGranted(id)),
                  std::to_string(sample.size()),
                  std::to_string(failures[id]),
                  utils::FormatDouble(percentile(0.5), 0),
                  utils::FormatDouble(percentile(0.99), 0)});
  }
  std::cout << table.ToString();
  return total_failures == 0 ? 0 : 1;
}

int Serve(const utils::CommandLine& cli, const std::string& name) {
  const std::string path = cli.GetString("model", "");
  if (path.empty()) {
    std::cerr << "error: --model <checkpoint> required\n";
    return 2;
  }
  data::ForecastDataset dataset = LoadDataset(cli, name);
  core::SagdfnConfig config = ConfigFromFlags(cli, dataset);
  std::unique_ptr<serve::FrozenModel> frozen;
  utils::Status status = serve::FrozenModel::Load(config, path, &frozen);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString()
              << " (were the model flags identical to training?)\n";
    return 1;
  }
  std::shared_ptr<const serve::FrozenModel> model(std::move(frozen));

  serve::EngineOptions options;
  options.num_workers = cli.GetInt("workers", 2);
  options.max_batch = cli.GetInt("batch", 8);
  options.max_wait_us = cli.GetInt("max-wait-us", 1000);
  const int64_t deadline_ms = cli.GetInt("deadline_ms", 0);
  options.default_deadline_us = deadline_ms * 1000;

  // --tenants switches to the multi-tenant router path.
  const std::string tenants_flag = cli.GetString("tenants", "");
  if (!tenants_flag.empty()) {
    std::vector<std::string> tenants;
    for (const std::string& id : utils::Split(tenants_flag, ',')) {
      if (!id.empty()) tenants.push_back(id);
    }
    if (tenants.empty()) {
      std::cerr << "error: --tenants needs at least one non-empty id\n";
      return 2;
    }
    const int64_t clients = std::max<int64_t>(1, cli.GetInt("clients", 4));
    std::vector<ServeRequest> tenant_requests =
        TestWindows(dataset, cli.GetInt("requests", 64));
    if (tenant_requests.empty()) {
      std::cerr << "error: no test windows available\n";
      return 1;
    }
    return ServeTenants(cli, tenants, model, options, tenant_requests,
                        clients);
  }

  serve::InferenceEngine engine(model, options);

  // Optional hot-swap registry: watch --registry_dir for candidate
  // checkpoints, gate them against a held-out slice of the test split,
  // and swap winners in while the replay below is running.
  const std::string registry_dir = cli.GetString("registry_dir", "");
  std::unique_ptr<serve::ModelRegistry> registry;
  if (!registry_dir.empty()) {
    serve::RegistryOptions registry_options;
    registry_options.watch_dir = registry_dir;
    const int64_t eval_windows =
        std::min<int64_t>(8, dataset.NumSamples(data::Split::kTest));
    if (eval_windows > 0) {
      data::Batch eval = dataset.GetBatch(data::Split::kTest, 0, eval_windows);
      registry_options.eval_x = eval.x;
      registry_options.eval_tod = eval.future_tod;
      registry_options.eval_y = eval.y_scaled;
    }
    registry = std::make_unique<serve::ModelRegistry>(&engine,
                                                      registry_options);
    registry->StartWatching(/*interval_ms=*/200);
    std::cout << "registry: watching " << registry_dir
              << " for candidate checkpoints\n";
  }

  const int64_t clients = std::max<int64_t>(1, cli.GetInt("clients", 4));
  std::vector<ServeRequest> requests =
      TestWindows(dataset, cli.GetInt("requests", 64));
  if (requests.empty()) {
    std::cerr << "error: no test windows available\n";
    return 1;
  }
  std::cout << "serving " << requests.size() << " requests from " << clients
            << " clients (" << options.num_workers << " workers, max batch "
            << options.max_batch << ", max wait " << options.max_wait_us
            << " us)\n";

  // Each client replays an interleaved slice of the windows and records
  // end-to-end (submit -> future ready) latency per request.
  using Clock = std::chrono::steady_clock;
  std::vector<double> latencies_us(requests.size(), 0.0);
  std::vector<int64_t> failures_per_client(clients, 0);
  const auto wall_start = Clock::now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (size_t i = c; i < requests.size(); i += clients) {
        const auto start = Clock::now();
        std::future<serve::Forecast> future =
            engine.Submit(requests[i].x, requests[i].future_tod);
        serve::Forecast forecast = future.get();
        latencies_us[i] =
            std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
                Clock::now() - start)
                .count();
        if (!forecast.status.ok()) ++failures_per_client[c];
      }
    });
  }
  for (auto& thread : client_threads) thread.join();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - wall_start)
          .count();

  int64_t failures = 0;
  for (int64_t f : failures_per_client) failures += f;
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto percentile = [&](double p) {
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[index];
  };
  const serve::EngineStats stats = engine.stats();
  utils::TablePrinter table({"metric", "value"});
  table.AddRow({"requests", std::to_string(requests.size())});
  table.AddRow({"failures", std::to_string(failures)});
  table.AddRow({"batches", std::to_string(stats.batches)});
  table.AddRow({"timed out", std::to_string(stats.timed_out)});
  table.AddRow({"shed", std::to_string(stats.shed)});
  table.AddRow({"swaps", std::to_string(stats.swaps)});
  table.AddRow({"rollbacks", std::to_string(stats.rollbacks)});
  if (registry != nullptr) {
    const serve::RegistryStats rstats = registry->stats();
    table.AddRow({"candidates published", std::to_string(rstats.published)});
    table.AddRow({"candidates rejected", std::to_string(rstats.rejected)});
  }
  table.AddRow({"p50 latency", utils::FormatDouble(percentile(0.5), 0) +
                                   " us"});
  table.AddRow({"p99 latency", utils::FormatDouble(percentile(0.99), 0) +
                                   " us"});
  table.AddRow(
      {"throughput",
       utils::FormatDouble(static_cast<double>(requests.size()) / wall_s, 1) +
           " req/s"});
  std::cout << table.ToString();
  return failures == 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  utils::CommandLine cli(argc - 1, argv + 1);
  const std::string dataset = cli.GetString("dataset", "metr-la-sim");
  if (!KnownDataset(dataset)) {
    std::cerr << "error: unknown dataset '" << dataset << "'\n";
    return Usage();
  }
  const std::string telemetry_path = cli.GetString("telemetry", "");
  if (!telemetry_path.empty()) {
    utils::Status status =
        obs::Telemetry::Global().Configure(telemetry_path);
    if (!status.ok()) {
      std::cerr << "error: " << status.ToString() << "\n";
      return 1;
    }
    std::cerr << "telemetry: appending JSONL events to " << telemetry_path
              << "\n";
  }
  if (command == "generate") return Generate(cli, dataset);
  if (command == "info") return Info(cli, dataset);
  if (command == "train") return Train(cli, dataset);
  if (command == "evaluate") return Evaluate(cli, dataset);
  if (command == "serve") return Serve(cli, dataset);
  return Usage();
}

}  // namespace
}  // namespace sagdfn::cli

int main(int argc, char** argv) { return sagdfn::cli::Run(argc, argv); }
