// The SIMD determinism contract (DESIGN.md §5f), pinned:
//   1. kernel-level scalar-vs-avx2 equivalence at awkward lengths
//      (length 1, vector-width +/- 1, odd strides through tensor views);
//   2. per-level thread-count determinism — memcmp-identical outputs for
//      1, 2, 4 threads at a FIXED dispatch level;
//   3. full-model forward+backward agreement across levels to tolerance;
//   4. fused ops (OneStepFastGConv, GruBlend) against their composed
//      reference chains, plus finite-difference gradients;
//   5. ScratchArena reuse/reset/high-water semantics;
//   6. DeterministicBlockReduce correctness and the kReduceBlock pin.
#include "tensor/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "core/fused_ops.h"
#include "core/sagdfn.h"
#include "tensor/tensor_ops.h"
#include "utils/arena.h"
#include "utils/block_reduce.h"
#include "utils/parallel.h"
#include "utils/rng.h"

namespace sagdfn {
namespace {

namespace ag = ::sagdfn::autograd;
namespace simd = ::sagdfn::tensor::simd;
using tensor::Shape;
using tensor::Tensor;

// Lengths straddling every lane boundary the AVX2 kernels care about.
const std::vector<int64_t> kAwkwardLengths = {1,  2,  3,  7,   8,    9,
                                              15, 16, 17, 31,  32,   33,
                                              100, 255, 1000, 1023, 16400};

/// RAII pin of the dispatch level (restores the previous level).
class LevelScope {
 public:
  explicit LevelScope(simd::Level level) : previous_(simd::ActiveLevel()) {
    ok_ = simd::SetActiveLevel(level);
  }
  ~LevelScope() { simd::SetActiveLevel(previous_); }
  bool ok() const { return ok_; }

 private:
  simd::Level previous_;
  bool ok_ = false;
};

class ThreadScope {
 public:
  explicit ThreadScope(int64_t n) : previous_(utils::GetNumThreads()) {
    utils::SetNumThreads(n);
  }
  ~ThreadScope() { utils::SetNumThreads(previous_); }

 private:
  int64_t previous_;
};

bool SkipWithoutAvx2() {
  if (!simd::Avx2Available()) {
    GTEST_LOG_(INFO) << "AVX2 unavailable; cross-level checks degenerate";
    return true;
  }
  return false;
}

std::vector<float> RandomVec(int64_t n, uint64_t seed, float lo = -4.0f,
                             float hi = 4.0f) {
  utils::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = lo + (hi - lo) * rng.Uniform();
  return v;
}

void ExpectClose(const float* a, const float* b, int64_t n, double atol,
                 double rtol, const char* what) {
  for (int64_t i = 0; i < n; ++i) {
    const double diff = std::fabs(double(a[i]) - double(b[i]));
    EXPECT_LE(diff, atol + rtol * std::fabs(double(b[i])))
        << what << " at i=" << i << " n=" << n << ": " << a[i] << " vs "
        << b[i];
    if (testing::Test::HasFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// 1. Kernel-level scalar-vs-avx2 equivalence
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, DispatchReportsALevel) {
  const simd::Level level = simd::ActiveLevel();
  EXPECT_TRUE(level == simd::Level::kScalar || level == simd::Level::kAvx2);
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  // KernelsFor never returns a null entry.
  EXPECT_NE(simd::KernelsFor(level).add, nullptr);
  EXPECT_NE(simd::KernelsFor(level).masked_err, nullptr);
}

TEST(SimdKernelTest, LevelFromStringParsesOverrides) {
  EXPECT_EQ(simd::LevelFromString("off"), simd::Level::kScalar);
  EXPECT_EQ(simd::LevelFromString("scalar"), simd::Level::kScalar);
  if (simd::Avx2Available()) {
    EXPECT_EQ(simd::LevelFromString("avx2"), simd::Level::kAvx2);
  }
  // auto / unknown fall back to detection; must not crash.
  simd::LevelFromString("auto");
  simd::LevelFromString("bogus");
}

TEST(SimdKernelTest, SetActiveLevelRoundTrips) {
  const simd::Level original = simd::ActiveLevel();
  ASSERT_TRUE(simd::SetActiveLevel(simd::Level::kScalar));
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_EQ(&simd::K(), &simd::KernelsFor(simd::Level::kScalar));
  if (simd::Avx2Available()) {
    ASSERT_TRUE(simd::SetActiveLevel(simd::Level::kAvx2));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
  }
  simd::SetActiveLevel(original);
}

TEST(SimdKernelTest, BinaryKernelsMatchScalarExactly) {
  if (SkipWithoutAvx2()) return;
  const auto& sc = simd::KernelsFor(simd::Level::kScalar);
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  using BinVV = void (*)(const float*, const float*, float*, int64_t);
  const std::vector<std::pair<BinVV, BinVV>> pairs = {
      {sc.add, vx.add}, {sc.sub, vx.sub}, {sc.mul, vx.mul},
      {sc.div, vx.div}, {sc.vmax, vx.vmax}, {sc.vmin, vx.vmin},
  };
  for (int64_t n : kAwkwardLengths) {
    const auto a = RandomVec(n, 100 + n);
    const auto b = RandomVec(n, 200 + n, 0.5f, 4.0f);  // nonzero divisor
    std::vector<float> o1(n), o2(n);
    for (const auto& [ks, kv] : pairs) {
      ks(a.data(), b.data(), o1.data(), n);
      kv(a.data(), b.data(), o2.data(), n);
      // +,-,*,/,min,max are single IEEE operations: bit-identical.
      EXPECT_EQ(0, std::memcmp(o1.data(), o2.data(), sizeof(float) * n))
          << "binary kernel mismatch at n=" << n;
    }
  }
}

TEST(SimdKernelTest, ScalarOperandKernelsMatchExactly) {
  if (SkipWithoutAvx2()) return;
  const auto& sc = simd::KernelsFor(simd::Level::kScalar);
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  using BinVS = void (*)(const float*, float, float*, int64_t);
  const std::vector<std::pair<BinVS, BinVS>> pairs = {
      {sc.add_s, vx.add_s},   {sc.sub_s, vx.sub_s},
      {sc.rsub_s, vx.rsub_s}, {sc.mul_s, vx.mul_s},
      {sc.div_s, vx.div_s},   {sc.rdiv_s, vx.rdiv_s},
      {sc.max_s, vx.max_s},   {sc.min_s, vx.min_s},
  };
  for (int64_t n : kAwkwardLengths) {
    const auto a = RandomVec(n, 300 + n, 0.5f, 4.0f);
    std::vector<float> o1(n), o2(n);
    for (const auto& [ks, kv] : pairs) {
      ks(a.data(), 1.75f, o1.data(), n);
      kv(a.data(), 1.75f, o2.data(), n);
      EXPECT_EQ(0, std::memcmp(o1.data(), o2.data(), sizeof(float) * n))
          << "scalar-operand kernel mismatch at n=" << n;
    }
  }
}

TEST(SimdKernelTest, UnaryKernelsMatchWithinTolerance) {
  if (SkipWithoutAvx2()) return;
  const auto& sc = simd::KernelsFor(simd::Level::kScalar);
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  for (int64_t n : kAwkwardLengths) {
    const auto a = RandomVec(n, 400 + n, -6.0f, 6.0f);
    std::vector<float> o1(n), o2(n);

    // neg/abs/relu are sign-bit games: exact.
    using UnK = void (*)(const float*, float*, int64_t);
    for (auto [ks, kv] : std::vector<std::pair<UnK, UnK>>{
             {sc.neg, vx.neg}, {sc.vabs, vx.vabs}, {sc.relu, vx.relu}}) {
      ks(a.data(), o1.data(), n);
      kv(a.data(), o2.data(), n);
      EXPECT_EQ(0, std::memcmp(o1.data(), o2.data(), sizeof(float) * n));
    }
    // sqrt is IEEE-correctly-rounded in both: exact.
    const auto pos = RandomVec(n, 500 + n, 0.0f, 10.0f);
    sc.vsqrt(pos.data(), o1.data(), n);
    vx.vsqrt(pos.data(), o2.data(), n);
    EXPECT_EQ(0, std::memcmp(o1.data(), o2.data(), sizeof(float) * n));

    // Polynomial exp vs libm: relative tolerance; sigmoid/tanh are
    // bounded, so absolute tolerance dominates.
    sc.vexp(a.data(), o1.data(), n);
    vx.vexp(a.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 3e-7, "exp");
    sc.sigmoid(a.data(), o1.data(), n);
    vx.sigmoid(a.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "sigmoid");
    sc.vtanh(a.data(), o1.data(), n);
    vx.vtanh(a.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 3e-7, 1e-6, "tanh");
  }
}

TEST(SimdKernelTest, ExpEdgeCases) {
  if (SkipWithoutAvx2()) return;
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // Out-of-range inputs in every lane position.
  std::vector<float> in = {200.0f, -200.0f, inf,  -inf,
                           nan,    0.0f,    1.0f, -1.0f};
  std::vector<float> out(in.size());
  vx.vexp(in.data(), out.data(), static_cast<int64_t>(in.size()));
  EXPECT_TRUE(std::isinf(out[0]) && out[0] > 0);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_TRUE(std::isinf(out[2]) && out[2] > 0);
  EXPECT_EQ(out[3], 0.0f);
  EXPECT_TRUE(std::isnan(out[4]));
  EXPECT_EQ(out[5], 1.0f);
  // Saturated sigmoid/tanh stay exact at the rails.
  std::vector<float> big = {100.0f, -100.0f, 30.0f, -30.0f};
  std::vector<float> s(big.size()), t(big.size());
  vx.sigmoid(big.data(), s.data(), 4);
  vx.vtanh(big.data(), t.data(), 4);
  EXPECT_EQ(s[0], 1.0f);
  EXPECT_LE(s[1], 1e-40f);  // sigmoid(-100) = exp(-100), a denormal
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[1], -1.0f);
}

TEST(SimdKernelTest, GradAndFusedKernelsMatchWithinTolerance) {
  if (SkipWithoutAvx2()) return;
  const auto& sc = simd::KernelsFor(simd::Level::kScalar);
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  for (int64_t n : kAwkwardLengths) {
    const auto g = RandomVec(n, 600 + n);
    const auto a = RandomVec(n, 700 + n);
    const auto b = RandomVec(n, 800 + n);
    const auto z = RandomVec(n, 900 + n, 0.0f, 1.0f);
    std::vector<float> o1(n), o2(n);

    sc.sigmoid_grad(g.data(), z.data(), o1.data(), n);
    vx.sigmoid_grad(g.data(), z.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "sigmoid_grad");

    sc.tanh_grad(g.data(), z.data(), o1.data(), n);
    vx.tanh_grad(g.data(), z.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "tanh_grad");

    sc.relu_grad(g.data(), a.data(), o1.data(), n);
    vx.relu_grad(g.data(), a.data(), o2.data(), n);
    EXPECT_EQ(0, std::memcmp(o1.data(), o2.data(), sizeof(float) * n));

    sc.mul_sub(g.data(), a.data(), b.data(), o1.data(), n);
    vx.mul_sub(g.data(), a.data(), b.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "mul_sub");

    sc.mul_one_minus(g.data(), z.data(), o1.data(), n);
    vx.mul_one_minus(g.data(), z.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "mul_one_minus");

    sc.gru_blend(z.data(), a.data(), b.data(), o1.data(), n);
    vx.gru_blend(z.data(), a.data(), b.data(), o2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "gru_blend");

    // axpy / scale: FMA contraction only.
    std::vector<float> d1 = b, d2 = b;
    sc.axpy(0.37f, a.data(), d1.data(), n);
    vx.axpy(0.37f, a.data(), d2.data(), n);
    ExpectClose(d2.data(), d1.data(), n, 1e-6, 1e-6, "axpy");
    sc.scale(d1.data(), 1.21f, n);
    vx.scale(d2.data(), 1.21f, n);
    ExpectClose(d2.data(), d1.data(), n, 1e-6, 1e-6, "scale");
  }
}

TEST(SimdKernelTest, ReductionsMatchWithinTolerance) {
  if (SkipWithoutAvx2()) return;
  const auto& sc = simd::KernelsFor(simd::Level::kScalar);
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  for (int64_t n : kAwkwardLengths) {
    const auto a = RandomVec(n, 1000 + n);
    const auto b = RandomVec(n, 1100 + n);
    const double rel = 1e-12 * n + 1e-10;
    EXPECT_NEAR(sc.sum(a.data(), n), vx.sum(a.data(), n),
                rel * (1.0 + std::fabs(sc.sum(a.data(), n))));
    EXPECT_NEAR(sc.dot(a.data(), b.data(), n), vx.dot(a.data(), b.data(), n),
                rel * (1.0 + std::fabs(sc.dot(a.data(), b.data(), n))));
  }
}

TEST(SimdKernelTest, MaskedErrMatchesScalarSemantics) {
  if (SkipWithoutAvx2()) return;
  const auto& sc = simd::KernelsFor(simd::Level::kScalar);
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  for (int64_t n : kAwkwardLengths) {
    auto pred = RandomVec(n, 1200 + n, 0.0f, 10.0f);
    auto truth = RandomVec(n, 1300 + n, 0.0f, 10.0f);
    // Sprinkle missing readings (exact zeros) and sub-floor magnitudes.
    for (int64_t i = 0; i < n; i += 3) truth[i] = 0.0f;
    for (int64_t i = 1; i < n; i += 5) truth[i] = 1e-4f;
    const auto s = sc.masked_err(pred.data(), truth.data(), n, 1e-3);
    const auto v = vx.masked_err(pred.data(), truth.data(), n, 1e-3);
    EXPECT_EQ(s.count, v.count) << "n=" << n;
    EXPECT_EQ(s.ape_count, v.ape_count) << "n=" << n;
    EXPECT_NEAR(s.abs, v.abs, 1e-9 * (1.0 + s.abs));
    EXPECT_NEAR(s.sq, v.sq, 1e-9 * (1.0 + s.sq));
    EXPECT_NEAR(s.ape, v.ape, 1e-9 * (1.0 + s.ape));
  }
}

TEST(SimdKernelTest, MaskedErrNanTruthFollowsScalarConvention) {
  if (SkipWithoutAvx2()) return;
  // NaN truth: included in count (NaN != 0) but excluded from MAPE —
  // exactly what the scalar branches do.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> pred = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  std::vector<float> truth = {nan, 0.0f, 2.0f, nan, 1.0f};
  const auto s = simd::KernelsFor(simd::Level::kScalar)
                     .masked_err(pred.data(), truth.data(), 5, 1e-3);
  const auto v = simd::KernelsFor(simd::Level::kAvx2)
                     .masked_err(pred.data(), truth.data(), 5, 1e-3);
  EXPECT_EQ(s.count, 4);  // the zero is skipped, NaNs are not
  EXPECT_EQ(s.ape_count, 2);
  EXPECT_EQ(v.count, s.count);
  EXPECT_EQ(v.ape_count, s.ape_count);
  EXPECT_TRUE(std::isnan(v.abs));
  EXPECT_TRUE(std::isnan(s.abs));
  EXPECT_NEAR(v.ape, s.ape, 1e-12);
}

// ---------------------------------------------------------------------------
// 2. Tensor-op equivalence across levels (broadcast and odometer paths)
// ---------------------------------------------------------------------------

TEST(SimdTensorOpTest, BroadcastPathsAgreeAcrossLevels) {
  if (SkipWithoutAvx2()) return;
  utils::Rng rng(21);
  Tensor a = Tensor::Normal(Shape({3, 5, 7}), rng);
  Tensor row = Tensor::Normal(Shape({7}), rng);        // odometer path
  Tensor col = Tensor::Normal(Shape({5, 1}), rng);     // odometer path
  Tensor scalar = Tensor::Scalar(1.5f);                // scalar fast path
  for (auto make : {+[](const Tensor& x, const Tensor& y) {
                      return tensor::Add(x, y);
                    },
                    +[](const Tensor& x, const Tensor& y) {
                      return tensor::Mul(x, y);
                    },
                    +[](const Tensor& x, const Tensor& y) {
                      return tensor::Sub(x, y);
                    }}) {
    for (const Tensor* rhs : {&row, &col, &scalar}) {
      Tensor r_scalar, r_avx2;
      {
        LevelScope scope(simd::Level::kScalar);
        r_scalar = make(a, *rhs);
      }
      {
        LevelScope scope(simd::Level::kAvx2);
        r_avx2 = make(a, *rhs);
      }
      EXPECT_EQ(0, std::memcmp(r_scalar.data(), r_avx2.data(),
                               sizeof(float) * r_scalar.size()));
    }
  }
}

TEST(SimdTensorOpTest, SlicedViewsFeedKernelsCorrectly) {
  if (SkipWithoutAvx2()) return;
  // Slice/Transpose produce odd-length, shifted-base buffers — awkward
  // alignments for 8-lane kernels.
  utils::Rng rng(22);
  Tensor a = Tensor::Normal(Shape({4, 9, 5}), rng);
  Tensor sliced = tensor::Slice(a, 1, 2, 9);     // length-7 axis
  Tensor transposed = tensor::Transpose(a, 0, 2);
  Tensor r1, r2;
  {
    LevelScope scope(simd::Level::kScalar);
    r1 = tensor::Mul(sliced, sliced);
    r2 = tensor::Sigmoid(transposed);
  }
  Tensor q1, q2;
  {
    LevelScope scope(simd::Level::kAvx2);
    q1 = tensor::Mul(sliced, sliced);
    q2 = tensor::Sigmoid(transposed);
  }
  EXPECT_EQ(0, std::memcmp(r1.data(), q1.data(), sizeof(float) * r1.size()));
  EXPECT_TRUE(tensor::AllClose(q2, r2, 1e-6f, 1e-6f));
}

TEST(SimdTensorOpTest, MatMulAgreesAcrossLevels) {
  if (SkipWithoutAvx2()) return;
  utils::Rng rng(23);
  Tensor a = Tensor::Normal(Shape({17, 33}), rng);
  Tensor b = Tensor::Normal(Shape({33, 9}), rng);
  Tensor r1, r2;
  {
    LevelScope scope(simd::Level::kScalar);
    r1 = tensor::MatMul(a, b);
  }
  {
    LevelScope scope(simd::Level::kAvx2);
    r2 = tensor::MatMul(a, b);
  }
  EXPECT_TRUE(tensor::AllClose(r2, r1, 1e-5f, 1e-5f));
}

// ---------------------------------------------------------------------------
// 3. Thread-count determinism at a fixed level
// ---------------------------------------------------------------------------

Tensor ModelLossGrads(int64_t threads, std::vector<Tensor>* grads) {
  ThreadScope tscope(threads);
  core::SagdfnConfig config;
  config.num_nodes = 40;
  config.embedding_dim = 8;
  config.m = 10;
  config.k = 8;
  config.hidden_dim = 8;
  config.heads = 2;
  config.ffn_hidden = 8;
  config.diffusion_steps = 2;
  config.history = 4;
  config.horizon = 4;
  config.seed = 7;
  core::SagdfnModel model(config);
  utils::Rng rng(31);
  Tensor x = Tensor::Normal(Shape({2, 4, 40, 2}), rng);
  Tensor tod = Tensor::Uniform(Shape({2, 4}), rng);
  ag::Variable pred = model.Forward(x, tod, 0);
  ag::Variable loss = ag::MeanAll(ag::Abs(pred));
  loss.Backward();
  if (grads != nullptr) {
    grads->clear();
    for (const auto& p : model.Parameters()) grads->push_back(p.grad());
  }
  return loss.value();
}

void ExpectThreadCountDeterminism() {
  std::vector<Tensor> g1, g2, g4;
  Tensor l1 = ModelLossGrads(1, &g1);
  Tensor l2 = ModelLossGrads(2, &g2);
  Tensor l4 = ModelLossGrads(4, &g4);
  EXPECT_EQ(0, std::memcmp(l1.data(), l2.data(), sizeof(float)));
  EXPECT_EQ(0, std::memcmp(l1.data(), l4.data(), sizeof(float)));
  ASSERT_EQ(g1.size(), g2.size());
  ASSERT_EQ(g1.size(), g4.size());
  for (size_t i = 0; i < g1.size(); ++i) {
    ASSERT_EQ(g1[i].size(), g2[i].size());
    EXPECT_EQ(0, std::memcmp(g1[i].data(), g2[i].data(),
                             sizeof(float) * g1[i].size()))
        << "grad " << i << " differs between 1 and 2 threads";
    EXPECT_EQ(0, std::memcmp(g1[i].data(), g4[i].data(),
                             sizeof(float) * g1[i].size()))
        << "grad " << i << " differs between 1 and 4 threads";
  }
}

TEST(SimdDeterminismTest, ScalarLevelBitIdenticalAcrossThreadCounts) {
  LevelScope scope(simd::Level::kScalar);
  ASSERT_TRUE(scope.ok());
  ExpectThreadCountDeterminism();
}

TEST(SimdDeterminismTest, Avx2LevelBitIdenticalAcrossThreadCounts) {
  if (SkipWithoutAvx2()) return;
  LevelScope scope(simd::Level::kAvx2);
  ASSERT_TRUE(scope.ok());
  ExpectThreadCountDeterminism();
}

// ---------------------------------------------------------------------------
// 4. Full-model forward+backward agreement across levels
// ---------------------------------------------------------------------------

TEST(SimdDeterminismTest, FullModelForwardBackwardAgreesAcrossLevels) {
  if (SkipWithoutAvx2()) return;
  std::vector<Tensor> g_scalar, g_avx2;
  Tensor l_scalar, l_avx2;
  {
    LevelScope scope(simd::Level::kScalar);
    l_scalar = ModelLossGrads(0, &g_scalar);
  }
  {
    LevelScope scope(simd::Level::kAvx2);
    l_avx2 = ModelLossGrads(0, &g_avx2);
  }
  EXPECT_NEAR(l_scalar.Item(), l_avx2.Item(),
              1e-5 * (1.0 + std::fabs(l_scalar.Item())));
  ASSERT_EQ(g_scalar.size(), g_avx2.size());
  for (size_t i = 0; i < g_scalar.size(); ++i) {
    EXPECT_TRUE(
        tensor::AllClose(g_avx2[i], g_scalar[i], 1e-4f, 1e-3f))
        << "grad " << i << " diverges across levels";
  }
}

// ---------------------------------------------------------------------------
// 5. Fused ops vs composed reference
// ---------------------------------------------------------------------------

std::vector<int64_t> ShuffledIndices(int64_t n, int64_t k, uint64_t seed) {
  utils::Rng rng(seed);
  std::vector<int64_t> all(n);
  for (int64_t i = 0; i < n; ++i) all[i] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    std::swap(all[i], all[rng.UniformInt(0, i + 1)]);
  }
  all.resize(k);
  return all;
}

ag::Variable ComposedGconvStep(const ag::Variable& a_s,
                               const ag::Variable& term,
                               const std::vector<int64_t>& idx,
                               const ag::Variable& inv) {
  ag::Variable gathered = ag::IndexSelect(term, 1, idx);
  ag::Variable mixed = ag::Add(ag::BatchedMatMul(a_s, gathered), term);
  return ag::Mul(mixed, inv);
}

TEST(FusedOpsTest, OneStepFastGConvMatchesComposedChain) {
  utils::Rng rng(41);
  const int64_t n = 11, k = 5, c = 7, batch = 3;
  const auto idx = ShuffledIndices(n, k, 42);
  ag::Variable a_s(Tensor::Uniform(Shape({n, k}), rng), true);
  ag::Variable term(Tensor::Normal(Shape({batch, n, c}), rng), true);
  ag::Variable inv(Tensor::Uniform(Shape({n, 1}), rng), true);

  Tensor fused = core::OneStepFastGConv(a_s, term, idx, inv).value();
  Tensor composed = ComposedGconvStep(a_s, term, idx, inv).value();
  EXPECT_TRUE(tensor::AllClose(fused, composed, 1e-5f, 1e-5f));
}

TEST(FusedOpsTest, OneStepFastGConvBackwardMatchesComposedChain) {
  utils::Rng rng(43);
  const int64_t n = 9, k = 4, c = 5, batch = 2;
  const auto idx = ShuffledIndices(n, k, 44);
  Tensor a0 = Tensor::Uniform(Shape({n, k}), rng);
  Tensor t0 = Tensor::Normal(Shape({batch, n, c}), rng);
  Tensor i0 = Tensor::Uniform(Shape({n, 1}), rng);

  auto run = [&](bool fused) {
    ag::Variable a_s(a0.Clone(), true);
    ag::Variable term(t0.Clone(), true);
    ag::Variable inv(i0.Clone(), true);
    ag::Variable out = fused
                           ? core::OneStepFastGConv(a_s, term, idx, inv)
                           : ComposedGconvStep(a_s, term, idx, inv);
    ag::MeanAll(ag::Mul(out, out)).Backward();
    return std::vector<Tensor>{a_s.grad(), term.grad(), inv.grad()};
  };
  const auto gf = run(true);
  const auto gc = run(false);
  for (size_t i = 0; i < gf.size(); ++i) {
    EXPECT_TRUE(tensor::AllClose(gf[i], gc[i], 1e-5f, 1e-4f))
        << "fused grad " << i << " diverges from composed reference";
  }
}

TEST(FusedOpsTest, OneStepFastGConvRepeatedIndicesAccumulate) {
  // idx may hit the same node twice (sampling with replacement); the
  // scatter must accumulate, not overwrite.
  utils::Rng rng(45);
  const int64_t n = 6, c = 3, batch = 2;
  const std::vector<int64_t> idx = {2, 2, 4};
  Tensor a0 = Tensor::Uniform(Shape({n, 3}), rng);
  Tensor t0 = Tensor::Normal(Shape({batch, n, c}), rng);
  Tensor i0 = Tensor::Uniform(Shape({n, 1}), rng);
  ag::Variable a_f(a0.Clone(), true), t_f(t0.Clone(), true),
      i_f(i0.Clone(), true);
  ag::MeanAll(core::OneStepFastGConv(a_f, t_f, idx, i_f)).Backward();
  ag::Variable a_c(a0.Clone(), true), t_c(t0.Clone(), true),
      i_c(i0.Clone(), true);
  ag::MeanAll(ComposedGconvStep(a_c, t_c, idx, i_c)).Backward();
  EXPECT_TRUE(tensor::AllClose(t_f.grad(), t_c.grad(), 1e-6f, 1e-5f));
  EXPECT_TRUE(tensor::AllClose(a_f.grad(), a_c.grad(), 1e-6f, 1e-5f));
}

TEST(FusedOpsTest, OneStepFastGConvPassesGradCheck) {
  const int64_t n = 5, k = 3, c = 2, batch = 2;
  const std::vector<int64_t> idx = {4, 0, 2};
  utils::Rng rng(46);
  std::vector<Tensor> inputs = {
      Tensor::Uniform(Shape({n, k}), rng),
      Tensor::Normal(Shape({batch, n, c}), rng),
      // Keep inv away from zero: d_inv recomputes mixed as out / inv.
      tensor::AddScalar(Tensor::Uniform(Shape({n, 1}), rng), 0.5f),
  };
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        return ag::MeanAll(
            ag::Mul(core::OneStepFastGConv(v[0], v[1], idx, v[2]),
                    core::OneStepFastGConv(v[0], v[1], idx, v[2])));
      },
      inputs, &error))
      << error;
}

TEST(FusedOpsTest, GruBlendMatchesComposedChain) {
  utils::Rng rng(47);
  const Shape shape({2, 9, 5});
  Tensor z0 = Tensor::Uniform(shape, rng);
  Tensor h0 = Tensor::Normal(shape, rng);
  Tensor c0 = Tensor::Normal(shape, rng);

  auto run = [&](bool fused) {
    ag::Variable z(z0.Clone(), true);
    ag::Variable h(h0.Clone(), true);
    ag::Variable c(c0.Clone(), true);
    ag::Variable out =
        fused ? core::GruBlend(z, h, c)
              : ag::Add(ag::Mul(z, h),
                        ag::Mul(ag::RSubScalar(z, 1.0f), c));
    ag::MeanAll(ag::Mul(out, out)).Backward();
    return std::vector<Tensor>{out.value(), z.grad(), h.grad(), c.grad()};
  };
  const auto f = run(true);
  const auto r = run(false);
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_TRUE(tensor::AllClose(f[i], r[i], 1e-6f, 1e-5f)) << "tensor " << i;
  }
}

TEST(FusedOpsTest, GruBlendPassesGradCheck) {
  utils::Rng rng(48);
  const Shape shape({2, 3, 4});
  std::vector<Tensor> inputs = {Tensor::Uniform(shape, rng),
                                Tensor::Normal(shape, rng),
                                Tensor::Normal(shape, rng)};
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [](const std::vector<ag::Variable>& v) {
        return ag::MeanAll(
            ag::Mul(core::GruBlend(v[0], v[1], v[2]),
                    core::GruBlend(v[0], v[1], v[2])));
      },
      inputs, &error))
      << error;
}

TEST(SimdKernelTest, GruStepFusedKernelsMatchAcrossLevels) {
  if (SkipWithoutAvx2()) return;
  const auto& sc = simd::KernelsFor(simd::Level::kScalar);
  const auto& vx = simd::KernelsFor(simd::Level::kAvx2);
  for (int64_t n : kAwkwardLengths) {
    const auto a = RandomVec(n, 1600 + n);
    const auto b = RandomVec(n, 1700 + n);
    const auto h = RandomVec(n, 1800 + n);
    const auto g = RandomVec(n, 1900 + n);
    const auto z = RandomVec(n, 2000 + n, 0.02f, 0.98f);
    const auto t = RandomVec(n, 2100 + n, -0.98f, 0.98f);
    const auto xi = RandomVec(3 * n, 2200 + n);
    const auto hh = RandomVec(3 * n, 2300 + n);
    std::vector<float> o1(n), o2(n), r1(n), r2(n), z1(n), z2(n), t1(n),
        t2(n);

    // Forward kernels contain sigma / tanh: the AVX2 polynomials agree to
    // tolerance with libm, and the auxiliary activation outputs must too.
    sc.sigmoid_mul(a.data(), b.data(), o1.data(), r1.data(), n);
    vx.sigmoid_mul(a.data(), b.data(), o2.data(), r2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "sigmoid_mul");
    ExpectClose(r2.data(), r1.data(), n, 1e-6, 1e-6, "sigmoid_mul r_out");

    sc.gru_tail(a.data(), h.data(), b.data(), o1.data(), z1.data(),
                t1.data(), n);
    vx.gru_tail(a.data(), h.data(), b.data(), o2.data(), z2.data(),
                t2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "gru_tail");
    ExpectClose(z2.data(), z1.data(), n, 1e-6, 1e-6, "gru_tail z_out");
    ExpectClose(t2.data(), t1.data(), n, 1e-6, 1e-6, "gru_tail t_out");

    std::vector<float> s1(3 * n), s2(3 * n), w1(3 * n), w2(3 * n);
    sc.gru_step(xi.data(), hh.data(), h.data(), o1.data(), r1.data(),
                z1.data(), t1.data(), n);
    vx.gru_step(xi.data(), hh.data(), h.data(), o2.data(), r2.data(),
                z2.data(), t2.data(), n);
    ExpectClose(o2.data(), o1.data(), n, 1e-6, 1e-6, "gru_step");
    ExpectClose(r2.data(), r1.data(), n, 1e-6, 1e-6, "gru_step r_out");
    ExpectClose(z2.data(), z1.data(), n, 1e-6, 1e-6, "gru_step z_out");
    ExpectClose(t2.data(), t1.data(), n, 1e-6, 1e-6, "gru_step n_out");

    // Backward kernels are arithmetic-only; levels agree to tight
    // tolerance (the compiler may contract scalar `1 - t*t` into an fma,
    // so bitwise equality is only guaranteed WITHIN a level — see the
    // offset-independence test below).
    std::vector<float> dg1(n), dg2(n), dh1(n), dh2(n), dc1(n), dc2(n);
    sc.sigmoid_mul_grad(g.data(), z.data(), h.data(), dg1.data(),
                        dh1.data(), n);
    vx.sigmoid_mul_grad(g.data(), z.data(), h.data(), dg2.data(),
                        dh2.data(), n);
    ExpectClose(dg2.data(), dg1.data(), n, 1e-6, 1e-6, "sigmoid_mul_grad dg");
    ExpectClose(dh2.data(), dh1.data(), n, 1e-6, 1e-6, "sigmoid_mul_grad dh");

    sc.gru_tail_grad(g.data(), z.data(), t.data(), h.data(), dg1.data(),
                     dh1.data(), dc1.data(), n);
    vx.gru_tail_grad(g.data(), z.data(), t.data(), h.data(), dg2.data(),
                     dh2.data(), dc2.data(), n);
    ExpectClose(dg2.data(), dg1.data(), n, 1e-6, 1e-6, "gru_tail_grad dgz");
    ExpectClose(dh2.data(), dh1.data(), n, 1e-6, 1e-6, "gru_tail_grad dh");
    ExpectClose(dc2.data(), dc1.data(), n, 1e-6, 1e-6, "gru_tail_grad dc");

    const auto rr = RandomVec(n, 2400 + n, 0.02f, 0.98f);
    sc.gru_step_grad(g.data(), rr.data(), z.data(), t.data(), h.data(),
                     hh.data(), s1.data(), w1.data(), dh1.data(), n);
    vx.gru_step_grad(g.data(), rr.data(), z.data(), t.data(), h.data(),
                     hh.data(), s2.data(), w2.data(), dh2.data(), n);
    ExpectClose(s2.data(), s1.data(), 3 * n, 1e-6, 1e-6, "gru_step_grad dxi");
    ExpectClose(w2.data(), w1.data(), 3 * n, 1e-6, 1e-6, "gru_step_grad dhh");
    ExpectClose(dh2.data(), dh1.data(), n, 1e-6, 1e-6, "gru_step_grad dh");
  }
}

// The offset-independence contract (DESIGN.md §5f) for the fused GRU
// kernels: computing a buffer in two arbitrary chunks must be
// memcmp-identical to one whole-buffer call, at both dispatch levels.
// This is what lets the rollout plan's fused row segments partition rows
// freely while staying bit-identical to the eager path.
TEST(SimdKernelTest, GruFusedKernelsOffsetIndependent) {
  const int64_t n = 100;
  const auto a = RandomVec(n, 3100);
  const auto b = RandomVec(n, 3200);
  const auto h = RandomVec(n, 3300);
  const auto g = RandomVec(n, 3400);
  const auto z = RandomVec(n, 3500, 0.02f, 0.98f);
  const auto t = RandomVec(n, 3600, -0.98f, 0.98f);
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
    if (level == simd::Level::kAvx2 && !simd::Avx2Available()) continue;
    const auto& k = simd::KernelsFor(level);
    for (int64_t split : {1, 37, 64, 99}) {
      std::vector<float> whole(n), parts(n), whole2(n), parts2(n),
          whole3(n), parts3(n);

      k.sigmoid_mul(a.data(), b.data(), whole.data(), nullptr, n);
      k.sigmoid_mul(a.data(), b.data(), parts.data(), nullptr, split);
      k.sigmoid_mul(a.data() + split, b.data() + split,
                    parts.data() + split, nullptr, n - split);
      EXPECT_EQ(0,
                std::memcmp(whole.data(), parts.data(), sizeof(float) * n))
          << "sigmoid_mul split=" << split;

      k.gru_tail(a.data(), h.data(), b.data(), whole.data(), nullptr,
                 nullptr, n);
      k.gru_tail(a.data(), h.data(), b.data(), parts.data(), nullptr,
                 nullptr, split);
      k.gru_tail(a.data() + split, h.data() + split, b.data() + split,
                 parts.data() + split, nullptr, nullptr, n - split);
      EXPECT_EQ(0,
                std::memcmp(whole.data(), parts.data(), sizeof(float) * n))
          << "gru_tail split=" << split;

      k.sigmoid_mul_grad(g.data(), z.data(), h.data(), whole.data(),
                         whole2.data(), n);
      k.sigmoid_mul_grad(g.data(), z.data(), h.data(), parts.data(),
                         parts2.data(), split);
      k.sigmoid_mul_grad(g.data() + split, z.data() + split,
                         h.data() + split, parts.data() + split,
                         parts2.data() + split, n - split);
      EXPECT_EQ(0,
                std::memcmp(whole.data(), parts.data(), sizeof(float) * n));
      EXPECT_EQ(
          0, std::memcmp(whole2.data(), parts2.data(), sizeof(float) * n));

      k.gru_tail_grad(g.data(), z.data(), t.data(), h.data(), whole.data(),
                      whole2.data(), whole3.data(), n);
      k.gru_tail_grad(g.data(), z.data(), t.data(), h.data(), parts.data(),
                      parts2.data(), parts3.data(), split);
      k.gru_tail_grad(g.data() + split, z.data() + split, t.data() + split,
                      h.data() + split, parts.data() + split,
                      parts2.data() + split, parts3.data() + split,
                      n - split);
      EXPECT_EQ(0,
                std::memcmp(whole.data(), parts.data(), sizeof(float) * n));
      EXPECT_EQ(
          0, std::memcmp(whole2.data(), parts2.data(), sizeof(float) * n));
      EXPECT_EQ(
          0, std::memcmp(whole3.data(), parts3.data(), sizeof(float) * n));
    }
  }
}

TEST(FusedOpsTest, GruStepMatchesComposedChain) {
  utils::Rng rng(49);
  const int64_t batch = 6, hd = 5;
  Tensor xi0 = Tensor::Normal(Shape({batch, 3 * hd}), rng);
  Tensor hh0 = Tensor::Normal(Shape({batch, 3 * hd}), rng);
  Tensor h0 = Tensor::Normal(Shape({batch, hd}), rng);

  auto run = [&](bool fused) {
    ag::Variable xi(xi0.Clone(), true);
    ag::Variable hh(hh0.Clone(), true);
    ag::Variable h(h0.Clone(), true);
    ag::Variable out;
    if (fused) {
      out = ag::GruStep(xi, hh, h);
    } else {
      auto part = [&](const ag::Variable& v, int64_t j) {
        return ag::Slice(v, 1, j * hd, (j + 1) * hd);
      };
      ag::Variable r = ag::Sigmoid(ag::Add(part(xi, 0), part(hh, 0)));
      ag::Variable z = ag::Sigmoid(ag::Add(part(xi, 1), part(hh, 1)));
      ag::Variable nc =
          ag::Tanh(ag::Add(part(xi, 2), ag::Mul(r, part(hh, 2))));
      out = ag::Add(ag::Mul(z, h),
                    ag::Mul(ag::RSubScalar(z, 1.0f), nc));
    }
    ag::MeanAll(ag::Mul(out, out)).Backward();
    return std::vector<Tensor>{out.value(), xi.grad(), hh.grad(), h.grad()};
  };
  const auto f = run(true);
  const auto r = run(false);
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_TRUE(tensor::AllClose(f[i], r[i], 1e-5f, 1e-4f)) << "tensor " << i;
  }
}

TEST(FusedOpsTest, GruStepPassesGradCheck) {
  utils::Rng rng(50);
  const int64_t batch = 2, hd = 3;
  std::vector<Tensor> inputs = {
      Tensor::Normal(Shape({batch, 3 * hd}), rng),
      Tensor::Normal(Shape({batch, 3 * hd}), rng),
      Tensor::Normal(Shape({batch, hd}), rng),
  };
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [](const std::vector<ag::Variable>& v) {
        return ag::MeanAll(ag::Mul(ag::GruStep(v[0], v[1], v[2]),
                                   ag::GruStep(v[0], v[1], v[2])));
      },
      inputs, &error))
      << error;
}

// ---------------------------------------------------------------------------
// 6. ScratchArena semantics
// ---------------------------------------------------------------------------

TEST(ScratchArenaTest, ScopeReusesAndResets) {
  utils::ScratchArena arena;
  void* first = nullptr;
  {
    utils::ScratchArena::Scope scope(arena);
    first = arena.Alloc(1000);
    ASSERT_NE(first, nullptr);
    EXPECT_GE(arena.bytes_in_use(), 1000);
  }
  EXPECT_EQ(arena.bytes_in_use(), 0);
  {
    utils::ScratchArena::Scope scope(arena);
    // Same chunk, same cursor: the previous allocation's storage is
    // reused, not re-reserved.
    void* second = arena.Alloc(1000);
    EXPECT_EQ(first, second);
  }
}

TEST(ScratchArenaTest, NestedScopesRestoreLifo) {
  utils::ScratchArena arena;
  utils::ScratchArena::Scope outer(arena);
  arena.Alloc(100);
  const int64_t outer_use = arena.bytes_in_use();
  {
    utils::ScratchArena::Scope inner(arena);
    arena.Alloc(5000);
    EXPECT_GT(arena.bytes_in_use(), outer_use);
  }
  EXPECT_EQ(arena.bytes_in_use(), outer_use);
}

TEST(ScratchArenaTest, GrowsAcrossChunksAndTracksHighWater) {
  utils::ScratchArena arena;
  utils::ScratchArena::Scope scope(arena);
  // Force several chunk spills; every pointer must stay valid and
  // distinct inside the scope.
  float* a = arena.AllocArray<float>(20000);
  float* b = arena.AllocArray<float>(40000);
  float* c = arena.AllocArray<float>(80000);
  a[0] = 1.0f;
  b[0] = 2.0f;
  c[0] = 3.0f;
  a[19999] = 4.0f;
  b[39999] = 5.0f;
  c[79999] = 6.0f;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 2.0f);
  EXPECT_EQ(c[0], 3.0f);
  const int64_t total = (20000 + 40000 + 80000) * sizeof(float);
  EXPECT_GE(arena.high_water(), total);
  EXPECT_GE(utils::ScratchArena::ProcessHighWater(), arena.high_water());
}

TEST(ScratchArenaTest, AlignmentIsAtLeast64) {
  utils::ScratchArena arena;
  utils::ScratchArena::Scope scope(arena);
  for (int i = 0; i < 10; ++i) {
    arena.Alloc(1);  // odd-size churn
    auto p = reinterpret_cast<uintptr_t>(arena.AllocArray<float>(3));
    EXPECT_EQ(p % 64, 0u);
  }
}

TEST(ScratchArenaTest, ThreadLocalIsPerThread) {
  utils::ScratchArena* main_arena = &utils::ScratchArena::ThreadLocal();
  utils::ScratchArena* worker_arena = nullptr;
  std::thread t(
      [&] { worker_arena = &utils::ScratchArena::ThreadLocal(); });
  t.join();
  EXPECT_NE(main_arena, worker_arena);
}

// ---------------------------------------------------------------------------
// 7. DeterministicBlockReduce
// ---------------------------------------------------------------------------

TEST(BlockReduceTest, ReduceBlockSizeIsPinned) {
  // The block size IS the determinism contract: changing it changes every
  // reduction's grouping (SumAll, metrics, ClipGradNorm) and silently
  // shifts float results. Bump this test only with a changelog entry.
  EXPECT_EQ(utils::kReduceBlock, 16384);
}

TEST(BlockReduceTest, MatchesSequentialSum) {
  const auto v = RandomVec(100000, 51);
  const auto sum_k = simd::KernelsFor(simd::Level::kScalar).sum;
  auto reduce = [&] {
    return utils::DeterministicBlockReduce<double>(
        static_cast<int64_t>(v.size()), 0.0,
        [&](int64_t lo, int64_t hi) { return sum_k(v.data() + lo, hi - lo); },
        [](double& acc, double p) { acc += p; });
  };
  const double reference = reduce();
  double plain = 0.0;
  for (float x : v) plain += x;
  EXPECT_NEAR(reference, plain, 1e-6 * (1.0 + std::fabs(plain)));
  // Bit-identical across thread counts.
  for (int64_t threads : {1, 2, 4}) {
    ThreadScope scope(threads);
    const double again = reduce();
    EXPECT_EQ(std::memcmp(&reference, &again, sizeof(double)), 0)
        << "block reduce differs at " << threads << " threads";
  }
}

TEST(BlockReduceTest, EmptyAndSingleBlockRanges) {
  auto block = [](int64_t lo, int64_t hi) {
    return static_cast<double>(hi - lo);
  };
  auto merge = [](double& acc, double p) { acc += p; };
  EXPECT_EQ(utils::DeterministicBlockReduce<double>(0, 0.0, block, merge),
            0.0);
  EXPECT_EQ(utils::DeterministicBlockReduce<double>(100, 0.0, block, merge),
            100.0);
  EXPECT_EQ(utils::DeterministicBlockReduce<double>(
                utils::kReduceBlock * 3 + 7, 0.0, block, merge),
            static_cast<double>(utils::kReduceBlock * 3 + 7));
}

}  // namespace
}  // namespace sagdfn
