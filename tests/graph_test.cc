#include <gtest/gtest.h>

#include "graph/adjacency.h"
#include "graph/correlation.h"
#include "graph/generators.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(AdjacencyTest, RowDegreesAndNormalize) {
  Tensor a = Tensor::FromVector({0, 2, 2, 0, 0, 0}, Shape({2, 3}));
  Tensor deg = RowDegrees(a);
  EXPECT_FLOAT_EQ(deg[0], 4.0f);
  EXPECT_FLOAT_EQ(deg[1], 0.0f);
  Tensor norm = RowNormalize(a);
  EXPECT_FLOAT_EQ(norm.At({0, 1}), 0.5f);
  // Zero rows stay zero (no NaN).
  EXPECT_FLOAT_EQ(norm.At({1, 0}), 0.0f);
  EXPECT_FALSE(tensor::HasNonFinite(norm));
}

TEST(AdjacencyTest, SymmetricNormalizeEigenBound) {
  utils::Rng rng(1);
  SpatialGraph g = ErdosRenyi(20, 0.3, rng);
  Tensor sym = SymmetricNormalize(g.adjacency);
  // All entries finite and bounded by 1.
  EXPECT_FALSE(tensor::HasNonFinite(sym));
  EXPECT_LE(tensor::MaxAll(sym), 1.0f + 1e-5f);
}

TEST(AdjacencyTest, TopKPerRowKeepsLargest) {
  Tensor a = Tensor::FromVector({5, 1, 3, 2, 8, 4}, Shape({2, 3}));
  Tensor top = TopKPerRow(a, 2);
  EXPECT_FLOAT_EQ(top.At({0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(top.At({0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(top.At({0, 2}), 3.0f);
  EXPECT_FLOAT_EQ(top.At({1, 1}), 8.0f);
  EXPECT_FLOAT_EQ(top.At({1, 0}), 0.0f);
}

TEST(AdjacencyTest, ThresholdAndSparsity) {
  Tensor a = Tensor::FromVector({0.1f, 0.5f, 0.9f, 0.0f}, Shape({2, 2}));
  Tensor t = ThresholdSparsify(a, 0.4f);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 0.5f);
  EXPECT_DOUBLE_EQ(Sparsity(t), 0.5);
}

TEST(AdjacencyTest, TopKOverlapSelfIsOne) {
  utils::Rng rng(2);
  Tensor a = Tensor::Uniform(Shape({10, 10}), rng);
  EXPECT_DOUBLE_EQ(TopKOverlap(a, a, 3), 1.0);
}

TEST(GeneratorsTest, RandomGeometricSymmetricZeroDiag) {
  utils::Rng rng(3);
  SpatialGraph g = RandomGeometric(30, 0.3, 0.2, rng);
  EXPECT_EQ(g.num_nodes, 30);
  const Tensor& a = g.adjacency;
  for (int64_t i = 0; i < 30; ++i) {
    EXPECT_FLOAT_EQ(a.At({i, i}), 0.0f);
    for (int64_t j = 0; j < 30; ++j) {
      EXPECT_FLOAT_EQ(a.At({i, j}), a.At({j, i}));
      EXPECT_GE(a.At({i, j}), 0.0f);
      EXPECT_LE(a.At({i, j}), 1.0f);
    }
  }
  // Coordinates recorded.
  EXPECT_EQ(g.x.size(), 30u);
}

TEST(GeneratorsTest, GeometricRadiusControlsDensity) {
  utils::Rng rng1(4);
  utils::Rng rng2(4);
  SpatialGraph sparse = RandomGeometric(50, 0.05, 0.05, rng1);
  SpatialGraph dense = RandomGeometric(50, 0.5, 0.3, rng2);
  EXPECT_GT(Sparsity(sparse.adjacency), Sparsity(dense.adjacency));
}

TEST(GeneratorsTest, ErdosRenyiProbabilityExtremes) {
  utils::Rng rng(5);
  SpatialGraph none = ErdosRenyi(20, 0.0, rng);
  EXPECT_DOUBLE_EQ(Sparsity(none.adjacency), 1.0);
  SpatialGraph all = ErdosRenyi(20, 1.0, rng);
  // Only the diagonal is zero.
  EXPECT_NEAR(Sparsity(all.adjacency), 20.0 / 400.0, 1e-9);
}

TEST(GeneratorsTest, SbmDenserWithinBlocks) {
  utils::Rng rng(6);
  std::vector<int64_t> blocks;
  SpatialGraph g = StochasticBlockModel(60, 3, 0.8, 0.02, rng, &blocks);
  ASSERT_EQ(blocks.size(), 60u);
  int64_t in_edges = 0;
  int64_t in_pairs = 0;
  int64_t out_edges = 0;
  int64_t out_pairs = 0;
  for (int64_t i = 0; i < 60; ++i) {
    for (int64_t j = i + 1; j < 60; ++j) {
      const bool has_edge = g.adjacency.At({i, j}) > 0.0f;
      if (blocks[i] == blocks[j]) {
        ++in_pairs;
        in_edges += has_edge;
      } else {
        ++out_pairs;
        out_edges += has_edge;
      }
    }
  }
  const double in_rate = static_cast<double>(in_edges) / in_pairs;
  const double out_rate = static_cast<double>(out_edges) / out_pairs;
  EXPECT_GT(in_rate, 5 * out_rate);
}

TEST(GeneratorsTest, KnnDegreesAtLeastK) {
  std::vector<double> x;
  std::vector<double> y;
  utils::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    x.push_back(rng.Uniform());
    y.push_back(rng.Uniform());
  }
  SpatialGraph g = KnnFromPoints(x, y, 5, 0.2);
  // Every node has at least k neighbors (symmetrization can add more).
  for (int64_t i = 0; i < 40; ++i) {
    int64_t degree = 0;
    for (int64_t j = 0; j < 40; ++j) {
      if (g.adjacency.At({i, j}) > 0.0f) ++degree;
    }
    EXPECT_GE(degree, 5);
  }
}

TEST(CorrelationTest, RecoversCorrelatedPairs) {
  // Nodes 0/1 follow one latent signal, nodes 2/3 another.
  utils::Rng rng(8);
  const int64_t t_steps = 400;
  Tensor values = Tensor::Zeros(Shape({t_steps, 4}));
  double s1 = 0.0;
  double s2 = 0.0;
  for (int64_t t = 0; t < t_steps; ++t) {
    s1 = 0.9 * s1 + rng.Normal();
    s2 = 0.9 * s2 + rng.Normal();
    values.At({t, 0}) = static_cast<float>(s1 + 0.1 * rng.Normal());
    values.At({t, 1}) = static_cast<float>(s1 + 0.1 * rng.Normal());
    values.At({t, 2}) = static_cast<float>(s2 + 0.1 * rng.Normal());
    values.At({t, 3}) = static_cast<float>(s2 + 0.1 * rng.Normal());
  }
  Tensor adj = CorrelationKnnGraph(values, 1, 400);
  EXPECT_GT(adj.At({0, 1}), 0.5f);
  EXPECT_GT(adj.At({2, 3}), 0.5f);
  EXPECT_FLOAT_EQ(adj.At({0, 0}), 0.0f);
  // Top-1 keeps exactly one entry per row.
  for (int64_t i = 0; i < 4; ++i) {
    int64_t nonzero = 0;
    for (int64_t j = 0; j < 4; ++j) {
      if (adj.At({i, j}) > 0.0f) ++nonzero;
    }
    EXPECT_EQ(nonzero, 1);
  }
}

// Property: random geometric graphs over varying sizes stay symmetric
// with zero diagonal and weights in (0, 1].
class GeometricProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(GeometricProperty, Invariants) {
  utils::Rng rng(100 + GetParam());
  SpatialGraph g = RandomGeometric(GetParam(), 0.25, 0.15, rng);
  const Tensor& a = g.adjacency;
  for (int64_t i = 0; i < g.num_nodes; ++i) {
    EXPECT_FLOAT_EQ(a.At({i, i}), 0.0f);
    for (int64_t j = i + 1; j < g.num_nodes; ++j) {
      EXPECT_FLOAT_EQ(a.At({i, j}), a.At({j, i}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeometricProperty,
                         ::testing::Values(5, 17, 40, 64));

}  // namespace
}  // namespace sagdfn::graph
