#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace sagdfn::tensor {
namespace {

TEST(ShapeTest, BasicProperties) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, ScalarShape) {
  Shape s(std::vector<int64_t>{});
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(ShapeTest, ZeroDimension) {
  Shape s({0, 5});
  EXPECT_EQ(s.NumElements(), 0);
}

TEST(ShapeTest, Strides) {
  Shape s({2, 3, 4});
  auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, CanonicalAxisNegative) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.CanonicalAxis(-1), 2);
  EXPECT_EQ(s.CanonicalAxis(-3), 0);
  EXPECT_EQ(s.CanonicalAxis(1), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, BroadcastSameShape) {
  EXPECT_EQ(Shape::Broadcast(Shape({2, 3}), Shape({2, 3})), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastTrailingOnes) {
  EXPECT_EQ(Shape::Broadcast(Shape({2, 1}), Shape({2, 5})), Shape({2, 5}));
  EXPECT_EQ(Shape::Broadcast(Shape({1, 5}), Shape({4, 1})), Shape({4, 5}));
}

TEST(ShapeTest, BroadcastRankPromotion) {
  EXPECT_EQ(Shape::Broadcast(Shape({5}), Shape({3, 5})), Shape({3, 5}));
  EXPECT_EQ(Shape::Broadcast(Shape({4, 1, 2}), Shape({3, 1})),
            Shape({4, 3, 2}));
}

TEST(ShapeTest, BroadcastCompatibility) {
  EXPECT_TRUE(Shape::BroadcastCompatible(Shape({2, 3}), Shape({3})));
  EXPECT_FALSE(Shape::BroadcastCompatible(Shape({2, 3}), Shape({2, 4})));
  EXPECT_TRUE(Shape::BroadcastCompatible(Shape({1}), Shape({7, 7})));
}

// Property sweep: broadcasting with an all-ones shape of equal rank is
// identity.
class ShapeBroadcastProperty
    : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(ShapeBroadcastProperty, OnesIsIdentity) {
  Shape s(GetParam());
  std::vector<int64_t> ones(GetParam().size(), 1);
  EXPECT_EQ(Shape::Broadcast(s, Shape(ones)), s);
  EXPECT_EQ(Shape::Broadcast(Shape(ones), s), s);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeBroadcastProperty,
    ::testing::Values(std::vector<int64_t>{3},
                      std::vector<int64_t>{2, 5},
                      std::vector<int64_t>{4, 1, 6},
                      std::vector<int64_t>{2, 3, 4, 5}));

}  // namespace
}  // namespace sagdfn::tensor
