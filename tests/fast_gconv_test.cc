#include "core/fast_gconv.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::core {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

std::vector<int64_t> Iota(int64_t m) {
  std::vector<int64_t> v(m);
  for (int64_t i = 0; i < m; ++i) v[i] = i;
  return v;
}

TEST(FastGraphConvTest, OutputShape) {
  utils::Rng rng(1);
  FastGraphConv conv(3, 5, 3, rng);
  ag::Variable a_s(Tensor::Uniform(Shape({8, 4}), rng), false);
  ag::Variable x(Tensor::Normal(Shape({2, 8, 3}), rng), false);
  ag::Variable y = conv.Forward(a_s, Iota(4), x);
  EXPECT_EQ(y.shape(), Shape({2, 8, 5}));
}

TEST(FastGraphConvTest, SingleStepIsLinearMap) {
  // J = 1: no diffusion, so the adjacency must not matter.
  utils::Rng rng(2);
  FastGraphConv conv(2, 2, 1, rng);
  ag::Variable x(Tensor::Normal(Shape({1, 6, 2}), rng), false);
  ag::Variable a1(Tensor::Uniform(Shape({6, 3}), rng), false);
  ag::Variable a2(Tensor::Uniform(Shape({6, 3}), rng), false);
  Tensor y1 = conv.Forward(a1, Iota(3), x).value();
  Tensor y2 = conv.Forward(a2, Iota(3), x).value();
  EXPECT_TRUE(tensor::AllClose(y1, y2));
}

TEST(FastGraphConvTest, ZeroAdjacencyStillSeesSelf) {
  // With A_s = 0 the diffusion term reduces to X / 1 each step, so the
  // output is a pure per-node transform (no cross-node leakage).
  utils::Rng rng(3);
  FastGraphConv conv(2, 2, 3, rng);
  ag::Variable a_s(Tensor::Zeros(Shape({5, 2})), false);
  Tensor x = Tensor::Zeros(Shape({1, 5, 2}));
  x.At({0, 2, 0}) = 1.0f;  // only node 2 has signal
  Tensor y = conv.Forward(a_s, Iota(2), ag::Variable(x)).value();
  // Other nodes' outputs equal the bias-only response; node 2 differs.
  Tensor y_node0 = tensor::Slice(y, 1, 0, 1);
  Tensor y_node1 = tensor::Slice(y, 1, 1, 2);
  Tensor y_node2 = tensor::Slice(y, 1, 2, 3);
  EXPECT_TRUE(tensor::AllClose(y_node0, y_node1));
  EXPECT_FALSE(tensor::AllClose(y_node0, y_node2));
}

TEST(FastGraphConvTest, InformationDiffusesFromNeighbors) {
  // Node 0 attends to node 1 (index set {1}); signal at node 1 must reach
  // node 0's output when J >= 2.
  utils::Rng rng(4);
  FastGraphConv conv(1, 1, 2, rng);
  Tensor a = Tensor::Zeros(Shape({3, 1}));
  a.At({0, 0}) = 1.0f;  // only node 0 pulls from column 0 (= node 1)
  Tensor x = Tensor::Zeros(Shape({1, 3, 1}));
  x.At({0, 1, 0}) = 5.0f;
  std::vector<int64_t> index_set{1};

  Tensor y = conv.Forward(ag::Variable(a), index_set,
                          ag::Variable(x)).value();
  Tensor y_zero = conv.Forward(ag::Variable(Tensor::Zeros(Shape({3, 1}))),
                               index_set, ag::Variable(x)).value();
  // Node 0 output changes when the edge is present.
  EXPECT_NE(y.At({0, 0, 0}), y_zero.At({0, 0, 0}));
  // Node 2 is untouched by the edge.
  EXPECT_FLOAT_EQ(y.At({0, 2, 0}), y_zero.At({0, 2, 0}));
}

TEST(FastGraphConvTest, GradCheckThroughDiffusion) {
  utils::Rng rng(5);
  FastGraphConv conv(2, 2, 3, rng);
  Tensor a = Tensor::Uniform(Shape({4, 2}), rng, 0.1f, 1.0f);
  Tensor x = Tensor::Normal(Shape({2, 4, 2}), rng, 0.0f, 0.5f);
  Tensor w = Tensor::Normal(Shape({2, 4, 2}), rng);
  std::vector<int64_t> index_set{1, 3};
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        return ag::SumAll(
            ag::Mul(conv.Forward(v[0], index_set, v[1]), ag::Variable(w)));
      },
      {a, x}, &error))
      << error;
}

TEST(GConvGruCellTest, StateShapeAndBounds) {
  utils::Rng rng(6);
  GConvGruCell cell(2, 4, 2, rng);
  ag::Variable h = cell.InitialState(3, 7);
  EXPECT_EQ(h.shape(), Shape({3, 7, 4}));
  ag::Variable a_s(Tensor::Uniform(Shape({7, 3}), rng), false);
  ag::Variable x(Tensor::Normal(Shape({3, 7, 2}), rng), false);
  ag::Variable h1 = cell.Forward(a_s, Iota(3), x, h);
  EXPECT_EQ(h1.shape(), Shape({3, 7, 4}));
  EXPECT_LE(tensor::MaxAll(tensor::Abs(h1.value())), 1.0f);
}

TEST(GConvGruCellTest, HiddenStateEvolves) {
  utils::Rng rng(7);
  GConvGruCell cell(2, 4, 2, rng);
  ag::Variable a_s(Tensor::Uniform(Shape({5, 2}), rng), false);
  ag::Variable x(Tensor::Normal(Shape({1, 5, 2}), rng), false);
  ag::Variable h = cell.InitialState(1, 5);
  ag::Variable h1 = cell.Forward(a_s, Iota(2), x, h);
  ag::Variable h2 = cell.Forward(a_s, Iota(2), x, h1);
  EXPECT_FALSE(tensor::AllClose(h1.value(), h2.value()));
}

TEST(GConvGruCellTest, GradCheckOneStep) {
  utils::Rng rng(8);
  GConvGruCell cell(1, 2, 2, rng);
  Tensor a = Tensor::Uniform(Shape({3, 2}), rng, 0.1f, 1.0f);
  Tensor x = Tensor::Normal(Shape({1, 3, 1}), rng, 0.0f, 0.5f);
  Tensor h = Tensor::Uniform(Shape({1, 3, 2}), rng, -0.5f, 0.5f);
  std::vector<int64_t> index_set{0, 2};
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        return ag::MeanAll(cell.Forward(v[0], index_set, v[1], v[2]));
      },
      {a, x, h}, &error))
      << error;
}

TEST(GConvGruCellTest, GradientsReachAllParameters) {
  utils::Rng rng(9);
  GConvGruCell cell(2, 3, 3, rng);
  ag::Variable a_s(Tensor::Uniform(Shape({6, 3}), rng), false);
  ag::Variable x(Tensor::Normal(Shape({2, 6, 2}), rng), false);
  ag::Variable h = cell.InitialState(2, 6);
  ag::Variable h1 = cell.Forward(a_s, Iota(3), x, h);
  ag::MeanAll(h1).Backward();
  for (auto& [name, p] : cell.NamedParameters()) {
    EXPECT_GT(tensor::SumAll(tensor::Abs(p.grad())).Item(), 0.0f)
        << "no gradient for " << name;
  }
}

TEST(FastGraphConvTest, NegativeAdjacencyEntriesStayFinite) {
  // A_s out of the linear head combination can be negative; the |.|-degree
  // normalization must keep everything finite.
  utils::Rng rng(10);
  FastGraphConv conv(2, 2, 3, rng);
  ag::Variable a_s(Tensor::Normal(Shape({5, 3}), rng, 0.0f, 2.0f), false);
  ag::Variable x(Tensor::Normal(Shape({1, 5, 2}), rng), false);
  Tensor y = conv.Forward(a_s, Iota(3), x).value();
  EXPECT_FALSE(tensor::HasNonFinite(y));
}

}  // namespace
}  // namespace sagdfn::core
