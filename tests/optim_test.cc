#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/lr_scheduler.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::optim {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

// Minimizes f(w) = mean((w - target)^2) and returns the final w.
template <typename MakeOpt>
Tensor MinimizeQuadratic(MakeOpt make_opt, int64_t steps) {
  ag::Variable w(Tensor::Full(Shape({4}), 5.0f), true);
  ag::Variable target(Tensor::FromVector({1, -2, 0.5f, 3}, Shape({4})));
  auto opt = make_opt(std::vector<ag::Variable>{w});
  for (int64_t i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    ag::MseLoss(w, target).Backward();
    opt->Step();
  }
  return w.value();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<ag::Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.2);
      },
      200);
  EXPECT_TRUE(tensor::AllClose(
      w, Tensor::FromVector({1, -2, 0.5f, 3}, Shape({4})), 1e-2f, 1e-2f));
}

TEST(SgdTest, MomentumAccelerates) {
  // With momentum the same step budget gets at least as close.
  auto dist = [](const Tensor& w) {
    Tensor t = Tensor::FromVector({1, -2, 0.5f, 3}, Shape({4}));
    return tensor::SumAll(tensor::Abs(tensor::Sub(w, t))).Item();
  };
  Tensor plain = MinimizeQuadratic(
      [](std::vector<ag::Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05);
      },
      30);
  Tensor momentum = MinimizeQuadratic(
      [](std::vector<ag::Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05, 0.9);
      },
      30);
  EXPECT_LE(dist(momentum), dist(plain));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<ag::Variable> p) {
        return std::make_unique<Adam>(std::move(p), 0.1);
      },
      300);
  EXPECT_TRUE(tensor::AllClose(
      w, Tensor::FromVector({1, -2, 0.5f, 3}, Shape({4})), 2e-2f, 2e-2f));
}

TEST(AdamTest, StepCountAdvances) {
  ag::Variable w(Tensor::Ones(Shape({1})), true);
  Adam adam({w}, 0.01);
  EXPECT_EQ(adam.step_count(), 0);
  ag::MseLoss(w, ag::Variable(Tensor::Zeros(Shape({1})))).Backward();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(AdamTest, WeightDecayShrinks) {
  // With zero gradient signal, weight decay alone should shrink weights.
  ag::Variable w(Tensor::Full(Shape({2}), 1.0f), true);
  Adam adam({w}, 0.05, 0.9, 0.999, 1e-8, 0.5);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    // Loss that is constant in w: gradient is zero, only decay acts.
    ag::Variable loss(Tensor::Scalar(0.0f), true);
    w.ZeroGrad();
    adam.Step();
  }
  EXPECT_LT(std::fabs(w.value()[0]), 1.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  ag::Variable w(Tensor::Zeros(Shape({2})), true);
  ag::Variable target(Tensor::Full(Shape({2}), 100.0f));
  ag::MseLoss(w, target).Backward();
  const double pre = ClipGradNorm({w}, 1.0);
  EXPECT_GT(pre, 1.0);
  double post = 0.0;
  Tensor g = w.grad();
  for (int64_t i = 0; i < g.size(); ++i) post += g[i] * g[i];
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ag::Variable w(Tensor::Zeros(Shape({2})), true);
  ag::Variable target(Tensor::Full(Shape({2}), 0.01f));
  ag::MseLoss(w, target).Backward();
  Tensor before = w.grad().Clone();
  ClipGradNorm({w}, 10.0);
  EXPECT_TRUE(tensor::AllClose(w.grad(), before));
}

TEST(MultiStepLrTest, DecaysAtMilestones) {
  ag::Variable w(Tensor::Ones(Shape({1})), true);
  Sgd sgd({w}, 1.0);
  MultiStepLr scheduler(&sgd, {2, 5}, 0.1);
  scheduler.Step(0);
  EXPECT_DOUBLE_EQ(sgd.lr(), 1.0);
  scheduler.Step(2);
  EXPECT_NEAR(sgd.lr(), 0.1, 1e-12);
  scheduler.Step(3);
  EXPECT_NEAR(sgd.lr(), 0.1, 1e-12);
  scheduler.Step(5);
  EXPECT_NEAR(sgd.lr(), 0.01, 1e-12);
}

TEST(CosineLrTest, AnnealsToMin) {
  ag::Variable w(Tensor::Ones(Shape({1})), true);
  Sgd sgd({w}, 1.0);
  CosineLr scheduler(&sgd, 10, 0.1);
  scheduler.Step(0);
  EXPECT_NEAR(sgd.lr(), 1.0, 1e-9);
  scheduler.Step(5);
  EXPECT_NEAR(sgd.lr(), 0.55, 1e-9);
  scheduler.Step(10);
  EXPECT_NEAR(sgd.lr(), 0.1, 1e-9);
}

}  // namespace
}  // namespace sagdfn::optim
