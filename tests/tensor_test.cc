#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "utils/rng.h"

namespace sagdfn::tensor {
namespace {

TEST(TensorTest, ZerosAndOnes) {
  Tensor z = Tensor::Zeros(Shape({2, 3}));
  Tensor o = Tensor::Ones(Shape({2, 3}));
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(z[i], 0.0f);
    EXPECT_EQ(o[i], 1.0f);
  }
}

TEST(TensorTest, FullAndScalar) {
  Tensor f = Tensor::Full(Shape({4}), 2.5f);
  EXPECT_EQ(f[3], 2.5f);
  Tensor s = Tensor::Scalar(7.0f);
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.Item(), 7.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, Shape({2, 3}));
  EXPECT_EQ(t.At({0, 0}), 1.0f);
  EXPECT_EQ(t.At({1, 2}), 6.0f);
  t.At({1, 0}) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
}

TEST(TensorTest, ArangeAndEye) {
  Tensor a = Tensor::Arange(5);
  EXPECT_EQ(a[4], 4.0f);
  Tensor e = Tensor::Eye(3);
  EXPECT_EQ(e.At({1, 1}), 1.0f);
  EXPECT_EQ(e.At({1, 2}), 0.0f);
}

TEST(TensorTest, SharedStorageSemantics) {
  Tensor a = Tensor::Ones(Shape({4}));
  Tensor b = a;  // handle copy
  b[0] = 5.0f;
  EXPECT_EQ(a[0], 5.0f);
  EXPECT_TRUE(a.SharesStorageWith(b));

  Tensor c = a.Clone();
  c[1] = 9.0f;
  EXPECT_EQ(a[1], 1.0f);
  EXPECT_FALSE(a.SharesStorageWith(c));
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a = Tensor::Arange(6);
  Tensor b = a.Reshape({2, 3});
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(b.At({1, 0}), 3.0f);
}

TEST(TensorTest, ReshapeInferredDim) {
  Tensor a = Tensor::Arange(12);
  Tensor b = a.Reshape({3, -1});
  EXPECT_EQ(b.dim(1), 4);
  Tensor c = a.Reshape({-1, 6});
  EXPECT_EQ(c.dim(0), 2);
}

TEST(TensorTest, CopyFrom) {
  Tensor a = Tensor::Zeros(Shape({3}));
  Tensor b = Tensor::FromVector({1, 2, 3}, Shape({3}));
  a.CopyFrom(b);
  EXPECT_EQ(a[2], 3.0f);
  b[0] = 10.0f;  // CopyFrom is deep
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, UniformBounds) {
  utils::Rng rng(1);
  Tensor u = Tensor::Uniform(Shape({1000}), rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < u.size(); ++i) {
    EXPECT_GE(u[i], -2.0f);
    EXPECT_LT(u[i], 3.0f);
  }
}

TEST(TensorTest, NormalMoments) {
  utils::Rng rng(2);
  Tensor g = Tensor::Normal(Shape({20000}), rng, 1.0f, 2.0f);
  double sum = 0.0;
  double sq = 0.0;
  for (int64_t i = 0; i < g.size(); ++i) {
    sum += g[i];
    sq += g[i] * g[i];
  }
  const double mean = sum / g.size();
  const double var = sq / g.size() - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Arange(100);
  std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("Tensor[100]"), std::string::npos);
}

}  // namespace
}  // namespace sagdfn::tensor
