#include <cmath>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "nn/dropout.h"
#include "nn/init.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/rnn.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::nn {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

TEST(LinearTest, ShapesAndBias) {
  utils::Rng rng(1);
  Linear layer(3, 4, rng);
  ag::Variable x(Tensor::Ones(Shape({2, 3})));
  ag::Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 4}));
  EXPECT_EQ(layer.ParameterCount(), 3 * 4 + 4);
}

TEST(LinearTest, Rank3Input) {
  utils::Rng rng(2);
  Linear layer(3, 5, rng);
  ag::Variable x(Tensor::Ones(Shape({2, 7, 3})));
  EXPECT_EQ(layer.Forward(x).shape(), Shape({2, 7, 5}));
}

TEST(LinearTest, NoBias) {
  utils::Rng rng(3);
  Linear layer(3, 4, rng, false);
  EXPECT_EQ(layer.ParameterCount(), 12);
  // Zero input maps to zero without bias.
  ag::Variable y = layer.Forward(ag::Variable(Tensor::Zeros(Shape({1, 3}))));
  EXPECT_TRUE(tensor::AllClose(y.value(), Tensor::Zeros(Shape({1, 4}))));
}

TEST(LinearTest, GradientFlowsToParameters) {
  utils::Rng rng(4);
  Linear layer(2, 2, rng);
  ag::Variable x(Tensor::Ones(Shape({3, 2})));
  ag::SumAll(layer.Forward(x)).Backward();
  for (auto& p : layer.Parameters()) {
    EXPECT_GT(tensor::SumAll(tensor::Abs(p.grad())).Item(), 0.0f);
  }
}

TEST(MlpTest, ForwardAndParamCount) {
  utils::Rng rng(5);
  Mlp mlp({4, 8, 2}, Activation::kRelu, rng);
  EXPECT_EQ(mlp.num_layers(), 2);
  EXPECT_EQ(mlp.ParameterCount(), (4 * 8 + 8) + (8 * 2 + 2));
  ag::Variable y = mlp.Forward(ag::Variable(Tensor::Ones(Shape({3, 4}))));
  EXPECT_EQ(y.shape(), Shape({3, 2}));
}

TEST(MlpTest, GradCheckThroughTwoLayers) {
  utils::Rng rng(6);
  Mlp mlp({2, 3, 1}, Activation::kTanh, rng);
  Tensor x = Tensor::Uniform(Shape({4, 2}), rng, -1.0f, 1.0f);
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        return ag::MeanAll(mlp.Forward(v[0]));
      },
      {x}, &error))
      << error;
}

TEST(GruCellTest, StateShapeAndRange) {
  utils::Rng rng(7);
  GruCell cell(3, 5, rng);
  ag::Variable h = cell.InitialState(2);
  EXPECT_EQ(h.shape(), Shape({2, 5}));
  ag::Variable x(Tensor::Ones(Shape({2, 3})));
  ag::Variable h1 = cell.Forward(x, h);
  EXPECT_EQ(h1.shape(), Shape({2, 5}));
  // GRU state is a convex-ish combination through tanh: bounded by 1.
  EXPECT_LE(tensor::MaxAll(tensor::Abs(h1.value())), 1.0f);
}

TEST(GruCellTest, GradCheckOneStep) {
  utils::Rng rng(8);
  GruCell cell(2, 3, rng);
  Tensor x = Tensor::Uniform(Shape({2, 2}), rng, -1.0f, 1.0f);
  Tensor h = Tensor::Uniform(Shape({2, 3}), rng, -0.5f, 0.5f);
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        return ag::MeanAll(cell.Forward(v[0], v[1]));
      },
      {x, h}, &error))
      << error;
}

TEST(LstmCellTest, TwoStepRollout) {
  utils::Rng rng(9);
  LstmCell cell(2, 4, rng);
  auto [h, c] = cell.InitialState(3);
  ag::Variable x(Tensor::Ones(Shape({3, 2})));
  auto [h1, c1] = cell.Forward(x, h, c);
  auto [h2, c2] = cell.Forward(x, h1, c1);
  EXPECT_EQ(h2.shape(), Shape({3, 4}));
  // States evolve.
  EXPECT_FALSE(tensor::AllClose(h1.value(), h2.value()));
}

TEST(LstmCellTest, GradCheckOneStep) {
  utils::Rng rng(10);
  LstmCell cell(2, 2, rng);
  Tensor x = Tensor::Uniform(Shape({2, 2}), rng, -1.0f, 1.0f);
  Tensor h = Tensor::Uniform(Shape({2, 2}), rng, -0.5f, 0.5f);
  Tensor c = Tensor::Uniform(Shape({2, 2}), rng, -0.5f, 0.5f);
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        auto [hn, cn] = cell.Forward(v[0], v[1], v[2]);
        return ag::MeanAll(ag::Add(hn, cn));
      },
      {x, h, c}, &error))
      << error;
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout dropout(0.5);
  dropout.SetTraining(false);
  utils::Rng rng(11);
  Tensor x = Tensor::Uniform(Shape({10, 10}), rng);
  ag::Variable y = dropout.Forward(ag::Variable(x));
  EXPECT_TRUE(tensor::AllClose(y.value(), x));
}

TEST(DropoutTest, TrainingPreservesExpectation) {
  Dropout dropout(0.3, 12345);
  dropout.SetTraining(true);
  Tensor x = Tensor::Ones(Shape({10000}));
  ag::Variable y = dropout.Forward(ag::Variable(x));
  EXPECT_NEAR(tensor::MeanAll(y.value()).Item(), 1.0f, 0.05f);
  // Survivors are scaled by 1/(1-p).
  float max_v = tensor::MaxAll(y.value());
  EXPECT_NEAR(max_v, 1.0f / 0.7f, 1e-4f);
}

TEST(LayerNormTest, NormalizesLastDim) {
  LayerNorm norm(8);
  utils::Rng rng(12);
  Tensor x = Tensor::Normal(Shape({4, 8}), rng, 5.0f, 3.0f);
  ag::Variable y = norm.Forward(ag::Variable(x));
  // Per-row mean ~0, variance ~1 with default gamma/beta.
  Tensor row_mean = tensor::Mean(y.value(), 1);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(row_mean[i], 0.0f, 1e-4f);
  Tensor sq = tensor::Mean(tensor::Mul(y.value(), y.value()), 1);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(sq[i], 1.0f, 1e-2f);
}

TEST(LayerNormTest, GradCheck) {
  LayerNorm norm(4);
  utils::Rng rng(13);
  Tensor x = Tensor::Uniform(Shape({3, 4}), rng, -1.0f, 1.0f);
  Tensor w = Tensor::Uniform(Shape({3, 4}), rng, -1.0f, 1.0f);
  std::string error;
  EXPECT_TRUE(ag::CheckGradients(
      [&](const std::vector<ag::Variable>& v) {
        return ag::SumAll(ag::Mul(norm.Forward(v[0]), ag::Variable(w)));
      },
      {x}, &error))
      << error;
}

TEST(ModuleTest, NamedParametersQualified) {
  utils::Rng rng(14);
  Mlp mlp({2, 3, 1}, Activation::kRelu, rng);
  auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(named[3].first, "layer1.bias");
}

TEST(ModuleTest, ZeroGradResetsAll) {
  utils::Rng rng(15);
  Linear layer(2, 2, rng);
  ag::SumAll(layer.Forward(ag::Variable(Tensor::Ones(Shape({1, 2})))))
      .Backward();
  layer.ZeroGrad();
  for (auto& p : layer.Parameters()) {
    EXPECT_FLOAT_EQ(tensor::SumAll(tensor::Abs(p.grad())).Item(), 0.0f);
  }
}

TEST(InitTest, XavierUniformBounds) {
  utils::Rng rng(16);
  Tensor w = XavierUniform(Shape({100, 100}), rng);
  const float bound = std::sqrt(6.0f / 200.0f);
  EXPECT_LE(tensor::MaxAll(w), bound);
  EXPECT_GE(tensor::MinAll(w), -bound);
  EXPECT_NEAR(tensor::MeanAll(w).Item(), 0.0f, 0.01f);
}

TEST(InitTest, ActivationNames) {
  EXPECT_EQ(ActivationFromName("relu"), Activation::kRelu);
  EXPECT_EQ(ActivationFromName("tanh"), Activation::kTanh);
  EXPECT_STREQ(ActivationName(Activation::kSigmoid), "sigmoid");
}

}  // namespace
}  // namespace sagdfn::nn
