#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "utils/parallel.h"

namespace sagdfn::obs {
namespace {

/// Saves and restores the global collection flag so tests compose.
class CollectionScope {
 public:
  explicit CollectionScope(bool on)
      : previous_(Telemetry::CollectionEnabled()) {
    Telemetry::SetCollectionEnabled(on);
  }
  ~CollectionScope() { Telemetry::SetCollectionEnabled(previous_); }

 private:
  bool previous_;
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(EventTest, SerializesOrderedFields) {
  Event e("unit.test");
  e.Str("model", "SAGDFN").Int("epoch", 3).Double("loss", 0.5).Bool(
      "ok", true);
  const std::string json = e.ToJson();
  // ts is first and numeric; the rest follow in insertion order.
  EXPECT_EQ(json.find("{\"ts\":"), 0u);
  EXPECT_NE(json.find("\"event\":\"unit.test\""), std::string::npos);
  EXPECT_NE(json.find("\"model\":\"SAGDFN\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(json.find("\"loss\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(EventTest, EscapesStringsAndNonFiniteDoubles) {
  Event e("escape");
  e.Str("path", "a\"b\\c\nd\t");
  e.Double("nan", std::nan(""));
  e.Double("inf", HUGE_VAL);
  const std::string json = e.ToJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\t"), std::string::npos);
  // JSON has no NaN/Inf literal: both must become null.
  EXPECT_NE(json.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan,"), std::string::npos);
  EXPECT_EQ(json.find("inf,"), std::string::npos);
}

TEST(TimerStatsTest, MergeCombinesAggregates) {
  TimerStats a;
  a.count = 2;
  a.total_seconds = 3.0;
  a.min_seconds = 1.0;
  a.max_seconds = 2.0;
  a.buckets[3] = 2;
  TimerStats b;
  b.count = 1;
  b.total_seconds = 0.5;
  b.min_seconds = 0.5;
  b.max_seconds = 0.5;
  b.buckets[5] = 1;
  a.Merge(b);
  EXPECT_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.total_seconds, 3.5);
  EXPECT_DOUBLE_EQ(a.min_seconds, 0.5);
  EXPECT_DOUBLE_EQ(a.max_seconds, 2.0);
  EXPECT_DOUBLE_EQ(a.mean_seconds(), 3.5 / 3);
  EXPECT_EQ(a.buckets[3], 2);
  EXPECT_EQ(a.buckets[5], 1);
}

TEST(TelemetryTest, ScopedTimerRecordsWhenEnabled) {
  CollectionScope scope(true);
  const TimerStats before =
      Telemetry::Global().timer("obs_test.enabled_scope");
  for (int i = 0; i < 5; ++i) {
    SAGDFN_SCOPED_TIMER("obs_test.enabled_scope");
  }
  const TimerStats after =
      Telemetry::Global().timer("obs_test.enabled_scope");
#if defined(SAGDFN_DISABLE_TELEMETRY)
  EXPECT_EQ(after.count, before.count);
#else
  EXPECT_EQ(after.count, before.count + 5);
  EXPECT_GE(after.total_seconds, before.total_seconds);
  EXPECT_GE(after.max_seconds, after.min_seconds);
#endif
}

TEST(TelemetryTest, ScopedTimerIsSilentWhenDisabled) {
  CollectionScope scope(false);
  for (int i = 0; i < 5; ++i) {
    SAGDFN_SCOPED_TIMER("obs_test.disabled_scope");
  }
  EXPECT_EQ(Telemetry::Global().timer("obs_test.disabled_scope").count, 0);
}

TEST(TelemetryTest, CountersAndGauges) {
  CollectionScope scope(true);
  Telemetry& t = Telemetry::Global();
  const int64_t before = t.counter("obs_test.counter");
  t.AddCounter("obs_test.counter");
  t.AddCounter("obs_test.counter", 4);
  EXPECT_EQ(t.counter("obs_test.counter"), before + 5);
  t.SetGauge("obs_test.gauge", 2.5);
  EXPECT_DOUBLE_EQ(t.gauge("obs_test.gauge"), 2.5);
  t.SetGauge("obs_test.gauge", -1.0);
  EXPECT_DOUBLE_EQ(t.gauge("obs_test.gauge"), -1.0);
  // Unknown names read as zero rather than dying.
  EXPECT_EQ(t.counter("obs_test.never_written"), 0);
  EXPECT_DOUBLE_EQ(t.gauge("obs_test.never_written"), 0.0);
}

TEST(TelemetryTest, RecordDurationAggregates) {
  CollectionScope scope(true);
  Telemetry& t = Telemetry::Global();
  const TimerStats before = t.timer("obs_test.duration");
  t.RecordDuration("obs_test.duration", 0.25);
  t.RecordDuration("obs_test.duration", 0.75);
  const TimerStats after = t.timer("obs_test.duration");
  EXPECT_EQ(after.count, before.count + 2);
  EXPECT_NEAR(after.total_seconds - before.total_seconds, 1.0, 1e-9);
}

TEST(TelemetryTest, TimerRecordingIsThreadSafe) {
  CollectionScope scope(true);
  const int64_t previous = utils::GetNumThreads();
  utils::SetNumThreads(4);
  const TimerStats before =
      Telemetry::Global().timer("obs_test.parallel_scope");
  utils::ParallelFor(0, 64, 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      SAGDFN_SCOPED_TIMER("obs_test.parallel_scope");
    }
  });
  utils::SetNumThreads(previous);
  const TimerStats after =
      Telemetry::Global().timer("obs_test.parallel_scope");
#if !defined(SAGDFN_DISABLE_TELEMETRY)
  EXPECT_EQ(after.count, before.count + 64);
#endif
}

TEST(TelemetryTest, ConfigureWritesJsonlRecords) {
  const std::string path = TempPath("obs_test_sink.jsonl");
  std::remove(path.c_str());
  Telemetry& t = Telemetry::Global();
  ASSERT_TRUE(t.Configure(path).ok());
  EXPECT_TRUE(t.sink_open());
  EXPECT_EQ(t.sink_path(), path);
  t.Emit(Event("obs_test.record").Int("value", 42));
  t.EmitSnapshot("obs_test");
  ASSERT_TRUE(t.Configure("").ok());  // close the sink
  EXPECT_FALSE(t.sink_open());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  // run.start + our record + the snapshot.
  ASSERT_GE(lines.size(), 3u);
  bool saw_start = false, saw_record = false, saw_snapshot = false;
  for (const std::string& l : lines) {
    EXPECT_EQ(l.find("{\"ts\":"), 0u) << l;
    EXPECT_EQ(l.back(), '}') << l;
    if (l.find("\"event\":\"run.start\"") != std::string::npos) {
      saw_start = true;
    }
    if (l.find("\"event\":\"obs_test.record\"") != std::string::npos &&
        l.find("\"value\":42") != std::string::npos) {
      saw_record = true;
    }
    if (l.find("\"event\":\"timers.snapshot\"") != std::string::npos) {
      saw_snapshot = true;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_record);
  EXPECT_TRUE(saw_snapshot);
  std::remove(path.c_str());
}

TEST(TelemetryTest, ConfigureEnablesCollection) {
  CollectionScope scope(false);
  const std::string path = TempPath("obs_test_enable.jsonl");
  ASSERT_TRUE(Telemetry::Global().Configure(path).ok());
  EXPECT_TRUE(Telemetry::CollectionEnabled());
  ASSERT_TRUE(Telemetry::Global().Configure("").ok());
  std::remove(path.c_str());
}

TEST(TelemetryTest, ConfigureRejectsUnwritablePath) {
  EXPECT_FALSE(
      Telemetry::Global().Configure("/nonexistent-dir/x/y.jsonl").ok());
}

TEST(TelemetryTest, WriteRegistryJson) {
  CollectionScope scope(true);
  Telemetry& t = Telemetry::Global();
  t.AddCounter("obs_test.registry_counter", 7);
  t.SetGauge("obs_test.registry_gauge", 1.5);
  t.RecordDuration("obs_test.registry_timer", 0.125);
  const std::string path = TempPath("obs_test_registry.json");
  ASSERT_TRUE(t.WriteRegistryJson(path, "obs unit test").ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"title\":"), std::string::npos);
  EXPECT_NE(json.find("obs unit test"), std::string::npos);
  EXPECT_NE(json.find("obs_test.registry_counter"), std::string::npos);
  EXPECT_NE(json.find("obs_test.registry_gauge"), std::string::npos);
  EXPECT_NE(json.find("obs_test.registry_timer"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TelemetryTest, ResetRegistryClearsCountersAndGauges) {
  CollectionScope scope(true);
  Telemetry& t = Telemetry::Global();
  t.AddCounter("obs_test.reset_counter", 3);
  t.SetGauge("obs_test.reset_gauge", 9.0);
  t.RecordDuration("obs_test.reset_timer", 0.5);
  t.ResetRegistry();
  EXPECT_EQ(t.counter("obs_test.reset_counter"), 0);
  EXPECT_DOUBLE_EQ(t.gauge("obs_test.reset_gauge"), 0.0);
  EXPECT_EQ(t.timer("obs_test.reset_timer").count, 0);
}

TEST(TelemetryTest, NowSecondsIsMonotonic) {
  const double a = Telemetry::NowSeconds();
  const double b = Telemetry::NowSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace sagdfn::obs
