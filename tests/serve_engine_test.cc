// Concurrency tests for the batched inference engine (src/serve).
//
// The core claim under test is the determinism contract: a request's
// forecast is BYTE-identical (memcmp, not AllClose) whether it runs
// serially through the frozen model, through a 1-worker engine, or
// through an 8-worker engine under randomized arrival interleavings —
// micro-batch composition must never leak into the numbers.
#include "serve/engine.h"

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace sagdfn::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

core::SagdfnConfig TinyConfig() {
  core::SagdfnConfig config;
  config.num_nodes = 10;
  config.embedding_dim = 4;
  config.m = 5;
  config.k = 3;
  config.hidden_dim = 6;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.alpha = 1.5f;
  config.history = 4;
  config.horizon = 3;
  config.seed = 21;
  return config;
}

std::shared_ptr<const FrozenModel> MakeFrozen(
    const core::SagdfnConfig& config) {
  return std::shared_ptr<const FrozenModel>(
      FrozenModel::Freeze(std::make_unique<core::SagdfnModel>(config)));
}

struct RequestData {
  Tensor x;           // [h, N, C]
  Tensor future_tod;  // [f]
};

std::vector<RequestData> MakeRequests(const core::SagdfnConfig& config,
                                      int64_t count, uint64_t seed = 3) {
  utils::Rng rng(seed);
  std::vector<RequestData> requests;
  requests.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    RequestData r;
    r.x = Tensor::Normal(
        Shape({config.history, config.num_nodes, config.input_dim}), rng);
    r.future_tod = Tensor::Uniform(Shape({config.horizon}), rng, 0.0f, 1.0f);
    requests.push_back(std::move(r));
  }
  return requests;
}

// Serial ground truth: each request alone through the frozen model.
std::vector<Tensor> SerialReference(const FrozenModel& model,
                                    const std::vector<RequestData>& requests) {
  const core::SagdfnConfig& config = model.config();
  std::vector<Tensor> reference;
  reference.reserve(requests.size());
  for (const RequestData& r : requests) {
    Tensor x(Shape({1, config.history, config.num_nodes, config.input_dim}));
    std::memcpy(x.data(), r.x.data(), r.x.size() * sizeof(float));
    Tensor tod(Shape({1, config.horizon}));
    std::memcpy(tod.data(), r.future_tod.data(),
                r.future_tod.size() * sizeof(float));
    reference.push_back(model.Predict(x, tod));  // [1, f, N]
  }
  return reference;
}

bool BytesEqual(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Submits every request from `clients` threads with per-thread seeded
// random jitter (so arrival order interleaves differently per seed) and
// memcmp-checks every forecast against the serial reference.
void RunInterleaved(const EngineOptions& options, int64_t clients,
                    uint64_t jitter_seed) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const std::vector<RequestData> requests = MakeRequests(config, 24);
  const std::vector<Tensor> reference = SerialReference(*model, requests);

  InferenceEngine engine(model, options);
  std::vector<std::future<Forecast>> futures(requests.size());
  std::vector<std::thread> threads;
  for (int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      utils::Rng rng(jitter_seed + static_cast<uint64_t>(c));
      for (size_t i = c; i < requests.size(); i += clients) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int64_t>(rng.Uniform(0.0, 200.0))));
        futures[i] = engine.Submit(requests[i].x, requests[i].future_tod);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < futures.size(); ++i) {
    Forecast forecast = futures[i].get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
    EXPECT_TRUE(BytesEqual(forecast.prediction, reference[i]))
        << "request " << i << " differs from serial reference";
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(stats.rejected, 0);
}

TEST(ServeEngineTest, OneWorkerMatchesSerialBytes) {
  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.max_wait_us = 200;
  RunInterleaved(options, /*clients=*/2, /*jitter_seed=*/17);
}

TEST(ServeEngineTest, EightWorkersMatchSerialBytes) {
  EngineOptions options;
  options.num_workers = 8;
  options.max_batch = 4;
  options.max_wait_us = 200;
  for (uint64_t seed : {1u, 29u, 333u}) {
    RunInterleaved(options, /*clients=*/4, seed);
  }
}

TEST(ServeEngineTest, GreedyBatchingMatchesSerialBytes) {
  // max_wait_us = 0: workers grab whatever is queued, so batch
  // compositions vary run to run — the bytes must not.
  EngineOptions options;
  options.num_workers = 3;
  options.max_batch = 16;
  options.max_wait_us = 0;
  RunInterleaved(options, /*clients=*/3, /*jitter_seed=*/71);
}

TEST(ServeEngineTest, PlanReplayMatchesEagerBytes) {
  // FrozenModel::Predict serves from the precompiled rollout plan; its
  // bytes must match the eager autograd walk even when requests arrive
  // through a loaded multi-worker engine with varying batch composition.
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const std::vector<RequestData> requests = MakeRequests(config, 16, 11);
  std::vector<Tensor> eager;
  eager.reserve(requests.size());
  for (const RequestData& r : requests) {
    Tensor x(Shape({1, config.history, config.num_nodes, config.input_dim}));
    std::memcpy(x.data(), r.x.data(), r.x.size() * sizeof(float));
    Tensor tod(Shape({1, config.horizon}));
    std::memcpy(tod.data(), r.future_tod.data(),
                r.future_tod.size() * sizeof(float));
    eager.push_back(model->PredictEager(x, tod));
  }
  EngineOptions options;
  options.num_workers = 8;
  options.max_batch = 4;
  options.max_wait_us = 100;
  InferenceEngine engine(model, options);
  std::vector<std::future<Forecast>> futures;
  futures.reserve(requests.size());
  for (const RequestData& r : requests) {
    futures.push_back(engine.Submit(r.x, r.future_tod));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Forecast forecast = futures[i].get();
    ASSERT_TRUE(forecast.status.ok()) << forecast.status.ToString();
    EXPECT_TRUE(BytesEqual(forecast.prediction, eager[i]))
        << "request " << i << " differs from the eager reference";
  }
}

TEST(ServeEngineTest, BatchedEqualsUnbatchedBitForBit) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const std::vector<RequestData> requests = MakeRequests(config, 7);
  const std::vector<Tensor> reference = SerialReference(*model, requests);

  // All 7 requests in one batch.
  const int64_t sample =
      config.history * config.num_nodes * config.input_dim;
  Tensor x(Shape({7, config.history, config.num_nodes, config.input_dim}));
  Tensor tod(Shape({7, config.horizon}));
  for (int64_t i = 0; i < 7; ++i) {
    std::memcpy(x.data() + i * sample, requests[i].x.data(),
                sample * sizeof(float));
    std::memcpy(tod.data() + i * config.horizon,
                requests[i].future_tod.data(),
                config.horizon * sizeof(float));
  }
  Tensor batched = model->Predict(x, tod);  // [7, f, N]
  const int64_t per_request = config.horizon * config.num_nodes;
  for (int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(std::memcmp(batched.data() + i * per_request,
                          reference[i].data(),
                          per_request * sizeof(float)),
              0)
        << "batch row " << i;
  }
}

TEST(ServeEngineTest, ShutdownDrainsQueuedRequests) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const std::vector<RequestData> requests = MakeRequests(config, 16);

  EngineOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.max_wait_us = 50'000;  // without shutdown this would sit waiting
  options.drain_on_shutdown = true;
  InferenceEngine engine(model, options);
  std::vector<std::future<Forecast>> futures;
  for (const RequestData& r : requests) {
    futures.push_back(engine.Submit(r.x, r.future_tod));
  }
  engine.Shutdown();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "shutdown returned with a dangling future";
    Forecast forecast = future.get();
    EXPECT_TRUE(forecast.status.ok()) << forecast.status.ToString();
  }
  EXPECT_EQ(engine.stats().completed, 16);
}

TEST(ServeEngineTest, ShutdownRejectsQueuedRequestsWhenNotDraining) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const std::vector<RequestData> requests = MakeRequests(config, 16);

  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.max_wait_us = 50'000;
  options.drain_on_shutdown = false;
  InferenceEngine engine(model, options);
  std::vector<std::future<Forecast>> futures;
  for (const RequestData& r : requests) {
    futures.push_back(engine.Submit(r.x, r.future_tod));
  }
  engine.Shutdown();
  int64_t completed = 0;
  int64_t rejected = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "shutdown returned with a dangling future";
    Forecast forecast = future.get();
    if (forecast.status.ok()) {
      ++completed;
    } else {
      EXPECT_EQ(forecast.status.code(),
                utils::StatusCode::kFailedPrecondition)
          << forecast.status.ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, 16);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.rejected, rejected);
}

TEST(ServeEngineTest, DestructorUnderLoadSatisfiesEveryFuture) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const std::vector<RequestData> requests = MakeRequests(config, 32);

  std::vector<std::future<Forecast>> futures;
  {
    EngineOptions options;
    options.num_workers = 4;
    options.max_batch = 4;
    options.max_wait_us = 1'000;
    InferenceEngine engine(model, options);
    std::vector<std::thread> clients;
    std::mutex futures_mu;
    for (int64_t c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = c; i < requests.size(); i += 4) {
          std::future<Forecast> f =
              engine.Submit(requests[i].x, requests[i].future_tod);
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(f));
        }
      });
    }
    for (auto& client : clients) client.join();
    // Engine destroyed here with requests still queued / in flight.
  }
  ASSERT_EQ(futures.size(), requests.size());
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "destructor returned with a dangling future";
    Forecast forecast = future.get();  // ok (drained) — must not throw
    EXPECT_TRUE(forecast.status.ok()) << forecast.status.ToString();
  }
}

TEST(ServeEngineTest, SubmitAfterShutdownIsRejected) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  InferenceEngine engine(model, EngineOptions{});
  engine.Shutdown();
  const std::vector<RequestData> requests = MakeRequests(config, 1);
  Forecast forecast =
      engine.Submit(requests[0].x, requests[0].future_tod).get();
  EXPECT_EQ(forecast.status.code(), utils::StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.stats().rejected, 1);
}

TEST(ServeEngineTest, MalformedRequestsAreRejectedNotFatal) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  InferenceEngine engine(model, EngineOptions{});
  const Tensor good_tod = Tensor::Zeros(Shape({config.horizon}));

  // Wrong rank.
  Forecast f1 = engine.Submit(Tensor::Zeros(Shape({4, 10})), good_tod).get();
  EXPECT_EQ(f1.status.code(), utils::StatusCode::kInvalidArgument);
  // Wrong node count.
  Forecast f2 =
      engine.Submit(Tensor::Zeros(Shape({4, 11, 2})), good_tod).get();
  EXPECT_EQ(f2.status.code(), utils::StatusCode::kInvalidArgument);
  // Wrong horizon.
  Forecast f3 = engine
                    .Submit(Tensor::Zeros(Shape({4, 10, 2})),
                            Tensor::Zeros(Shape({config.horizon + 1})))
                    .get();
  EXPECT_EQ(f3.status.code(), utils::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.stats().rejected, 3);
  EXPECT_EQ(engine.stats().submitted, 0);
}

TEST(ServeEngineTest, FullQueueAppliesBackpressure) {
  const core::SagdfnConfig config = TinyConfig();
  auto model = MakeFrozen(config);
  const std::vector<RequestData> requests = MakeRequests(config, 4);

  // The worker waits for a full batch of 8 (deadline far away), so three
  // submissions sit in the queue and the fourth deterministically bounces.
  EngineOptions options;
  options.num_workers = 1;
  options.max_batch = 8;
  options.max_wait_us = 60'000'000;
  options.max_queue_depth = 3;
  options.drain_on_shutdown = true;
  InferenceEngine engine(model, options);
  std::vector<std::future<Forecast>> accepted;
  for (int64_t i = 0; i < 3; ++i) {
    accepted.push_back(
        engine.Submit(requests[i].x, requests[i].future_tod));
  }
  Forecast bounced =
      engine.Submit(requests[3].x, requests[3].future_tod).get();
  EXPECT_EQ(bounced.status.code(), utils::StatusCode::kResourceExhausted);
  engine.Shutdown();  // drains the three queued requests
  for (auto& future : accepted) {
    EXPECT_TRUE(future.get().status.ok());
  }
}

}  // namespace
}  // namespace sagdfn::serve
