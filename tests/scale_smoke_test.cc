// The N=10k end-to-end smoke: the `scale` CI job's PR-blocking proof
// that the 10k–100k regime is real. A 10,000-node sparse-latent traffic
// scenario is generated, a small SAGDFN trains one epoch on it, the
// trained model freezes and serves plan-replayed ticks, and the frozen
// weights round-trip through the mmap file with memcmp-identical
// forecasts. Sizes are trimmed so the whole file stays in tier-1 time
// budgets; the nightly leg covers N=100k via the graphsize bench.
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/sagdfn.h"
#include "core/trainer.h"
#include "data/registry.h"
#include "data/window_dataset.h"
#include "graph/csr.h"
#include "serve/frozen_model.h"
#include "tensor/tensor.h"
#include "utils/rng.h"

namespace sagdfn {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kNodes = 10000;

bool SameBytes(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

core::SagdfnConfig ScaleConfig(const data::ForecastDataset& dataset) {
  core::SagdfnConfig config;
  config.num_nodes = dataset.num_nodes();
  config.embedding_dim = 8;
  config.m = 16;
  config.k = 12;
  config.hidden_dim = 8;
  config.heads = 2;
  config.ffn_hidden = 4;
  config.diffusion_steps = 2;
  config.history = dataset.spec().history;
  config.horizon = dataset.spec().horizon;
  config.convergence_iters = 2;
  config.seed = 77;
  return config;
}

TEST(ScaleSmokeTest, TenThousandNodesTrainServeAndMmapRoundTrip) {
  // Generate: the sparse-latent scenario at its real node count.
  graph::SparseSpatialGraph latent;
  data::TimeSeries series = data::MakeScaleDataset(
      "traffic10k-sim", data::DatasetScale::kQuick, &latent);
  ASSERT_EQ(series.num_nodes(), kNodes);
  ASSERT_EQ(latent.adjacency.rows, kNodes);
  ASSERT_GT(latent.adjacency.nnz(), kNodes);  // mean degree ~20

  data::ForecastDataset dataset(std::move(series),
                                data::WindowSpec{6, 3});
  core::SagdfnConfig config = ScaleConfig(dataset);
  auto model = std::make_unique<core::SagdfnModel>(config);

  // Train: one epoch (subsampled) must run and produce finite losses.
  core::TrainOptions options;
  options.epochs = 1;
  options.batch_size = 2;
  options.learning_rate = 0.01;
  options.max_train_batches_per_epoch = 2;
  options.max_eval_batches = 1;
  options.seed = 5;
  core::Trainer trainer(model.get(), &dataset, options);
  core::TrainResult result = trainer.Train();
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.epochs_run, 1);
  EXPECT_TRUE(std::isfinite(result.epoch_train_loss.at(0)));
  EXPECT_TRUE(std::isfinite(result.best_val_mae));

  // Serve: freeze the trained model; plan-replayed ticks at N=10k.
  auto heap = serve::FrozenModel::Freeze(std::move(model),
                                         /*plan_cache_capacity=*/4);
  ASSERT_NE(heap->snapshot().csr, nullptr);

  // Graph recovery stays computable at this scale: the latent ground
  // truth is CSR, the learned side slim, and the overlap is a finite
  // fraction (2 training batches are not expected to recover the graph).
  const double overlap =
      graph::TopKOverlapCsr(latent.adjacency, heap->snapshot().a_s,
                            heap->snapshot().index_set, 5);
  EXPECT_GE(overlap, 0.0);
  EXPECT_LE(overlap, 1.0);

  // The mmap'd weight file reproduces the heap model's forecasts byte
  // for byte.
  const std::string path =
      ::testing::TempDir() + "/scale_smoke_10k.sagm";
  ASSERT_TRUE(heap->Save(path).ok());
  std::unique_ptr<serve::FrozenModel> mapped;
  ASSERT_TRUE(
      serve::FrozenModel::LoadMapped(config, path, &mapped).ok());
  EXPECT_TRUE(SameBytes(mapped->snapshot().a_s, heap->snapshot().a_s));

  utils::Rng rng(19);
  Tensor x = Tensor::Normal(
      Shape({1, config.history, kNodes, config.input_dim}), rng);
  Tensor tod = Tensor::Uniform(Shape({1, config.horizon}), rng);
  Tensor tick_heap = heap->Predict(x, tod);
  Tensor tick_mapped = mapped->Predict(x, tod);
  ASSERT_EQ(tick_heap.shape(), Shape({1, config.horizon, kNodes}));
  EXPECT_TRUE(SameBytes(tick_mapped, tick_heap));
  // Second tick replays the cached plan.
  EXPECT_TRUE(SameBytes(mapped->Predict(x, tod), heap->Predict(x, tod)));
}

}  // namespace
}  // namespace sagdfn
