// Differential coverage for the CSR diffusion path against the dense
// slim kernels: the scale-tier contract is byte equality, not closeness
// — forward outputs AND all gradients must memcmp-match the dense path
// at awkward node counts (odd, prime, shard-boundary-straddling), and
// the sparse generators must reproduce the dense generators bit for bit
// at any size where both fit.
#include "graph/csr.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autograd/ops.h"
#include "core/fused_ops.h"
#include "data/synthetic.h"
#include "graph/adjacency.h"
#include "graph/generators.h"
#include "tensor/tensor_ops.h"
#include "utils/rng.h"

namespace sagdfn::graph {
namespace {

namespace ag = ::sagdfn::autograd;
using tensor::Shape;
using tensor::Tensor;

bool SameBytes(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::vector<int64_t> Iota(int64_t m) {
  std::vector<int64_t> v(m);
  for (int64_t i = 0; i < m; ++i) v[i] = i;
  return v;
}

// A slim-style [n, k] adjacency with ~`density` nonzero entries (the
// rest exactly 0.0f, which is what the dense kernel skips).
Tensor SparseSlim(int64_t n, int64_t k, double density, utils::Rng& rng) {
  Tensor a = Tensor::Zeros(Shape({n, k}));
  float* p = a.data();
  for (int64_t i = 0; i < n * k; ++i) {
    if (rng.Uniform() < density) {
      p[i] = static_cast<float>(rng.Uniform(0.05, 1.0));
    }
  }
  return a;
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  utils::Rng rng(1);
  Tensor dense = SparseSlim(13, 7, 0.3, rng);
  CsrMatrix csr = CsrFromDense(dense);
  ValidateCsr(csr);
  EXPECT_TRUE(SameBytes(CsrToDense(csr), dense));
}

TEST(CsrMatrixTest, RowNormalizeMatchesDensePath) {
  utils::Rng rng(2);
  SpatialGraph g = RandomGeometric(60, 0.25, 0.18, rng);
  CsrMatrix a = RowNormalizeCsr(CsrFromDense(g.adjacency));
  CsrMatrix b = CsrFromDense(RowNormalize(g.adjacency));
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  EXPECT_EQ(a.col, b.col);
  EXPECT_EQ(a.val, b.val);  // exact float equality is the contract
}

TEST(NodeShardsTest, PartitionInvariants) {
  for (int64_t n : {1, 7, 8, 9, 57, 101, 1000}) {
    for (int64_t target : {64, 4096, 256 * 1024}) {
      NodeShards shards = ComputeNodeShards(n, 16, target);
      ASSERT_GE(shards.count(), 1);
      EXPECT_EQ(shards.begin(0), 0);
      EXPECT_EQ(shards.end(shards.count() - 1), n);
      for (int64_t s = 0; s < shards.count(); ++s) {
        EXPECT_LT(shards.begin(s), shards.end(s));
        if (s + 1 < shards.count()) {
          EXPECT_EQ(shards.end(s), shards.begin(s + 1));
          EXPECT_EQ((shards.end(s) - shards.begin(s)) % 8, 0)
              << "non-terminal shards are multiples of 8 rows";
        }
      }
    }
  }
}

TEST(CsrKernelTest, ForwardMatchesDenseAtAwkwardSizes) {
  utils::Rng rng(3);
  // Odd, prime, and shard-straddling node counts; k likewise awkward.
  const int64_t kCases[][2] = {{7, 3}, {13, 13}, {101, 5}, {130, 17}};
  for (const auto& c : kCases) {
    const int64_t n = c[0], k = c[1], batch = 2, ch = 3;
    Tensor a = SparseSlim(n, k, 0.4, rng);
    Tensor term = Tensor::Normal(Shape({batch, n, ch}), rng);
    Tensor inv = Tensor::Uniform(Shape({n, 1}), rng);
    std::vector<int64_t> index_set(k);
    for (int64_t j = 0; j < k; ++j) index_set[j] = (j * 7 + 1) % n;

    Tensor want = Tensor::Zeros(Shape({batch, n, ch}));
    core::OneStepFastGConvInto(a.data(), term.data(), inv.data(), index_set,
                               batch, n, ch, want.data());

    CsrMatrix csr = CsrFromDense(a);
    // A tiny shard target forces many 8-row shards (the last one short),
    // exercising boundary straddling; the full-size target gives one
    // shard. Both must be bit-identical to dense.
    for (int64_t target : {64, 256 * 1024}) {
      NodeShards shards = ComputeNodeShards(
          n, ch * static_cast<int64_t>(sizeof(float)), target);
      Tensor got = Tensor::Zeros(Shape({batch, n, ch}));
      core::OneStepFastGConvCsrInto(csr, term.data(), inv.data(), index_set,
                                    shards, batch, n, ch, got.data());
      EXPECT_TRUE(SameBytes(got, want))
          << "n=" << n << " k=" << k << " target=" << target;
    }
  }
}

TEST(CsrKernelTest, AutogradForwardAndGradientsMatchDense) {
  utils::Rng rng(4);
  const int64_t n = 29, k = 11, batch = 3, ch = 4;
  Tensor a0 = SparseSlim(n, k, 0.35, rng);
  Tensor t0 = Tensor::Normal(Shape({batch, n, ch}), rng);
  Tensor i0 = Tensor::Uniform(Shape({n, 1}), rng);
  std::vector<int64_t> index_set(k);
  for (int64_t j = 0; j < k; ++j) index_set[j] = (j * 5 + 2) % n;

  // Two independent graphs over identical values.
  ag::Variable ad(a0.Clone(), true), td(t0.Clone(), true),
      id(i0.Clone(), true);
  ag::Variable ac(a0.Clone(), true), tc(t0.Clone(), true),
      ic(i0.Clone(), true);

  ag::Variable yd = core::OneStepFastGConv(ad, td, index_set, id);
  auto csr = std::make_shared<const CsrMatrix>(CsrFromDense(a0));
  ag::Variable yc = core::OneStepFastGConvCsr(ac, csr, tc, index_set, ic);
  ASSERT_TRUE(SameBytes(yc.value(), yd.value()));

  ag::MeanAll(yd).Backward();
  ag::MeanAll(yc).Backward();
  EXPECT_TRUE(SameBytes(ac.grad(), ad.grad()));
  EXPECT_TRUE(SameBytes(tc.grad(), td.grad()));
  EXPECT_TRUE(SameBytes(ic.grad(), id.grad()));
}

TEST(SparseGeneratorTest, RandomGeometricSparseMatchesDense) {
  utils::Rng rng_dense(7), rng_sparse(7);
  SpatialGraph dense = RandomGeometric(200, 0.15, 0.1, rng_dense);
  SparseSpatialGraph sparse =
      RandomGeometricSparse(200, 0.15, 0.1, rng_sparse);
  EXPECT_EQ(sparse.x, dense.x);
  EXPECT_EQ(sparse.y, dense.y);
  CsrMatrix want = CsrFromDense(dense.adjacency);
  ValidateCsr(sparse.adjacency);
  EXPECT_EQ(sparse.adjacency.row_ptr, want.row_ptr);
  EXPECT_EQ(sparse.adjacency.col, want.col);
  EXPECT_EQ(sparse.adjacency.val, want.val);
  EXPECT_GT(sparse.adjacency.nnz(), 0);
  // The two rngs must also leave off at the same point.
  EXPECT_EQ(rng_sparse.Uniform(), rng_dense.Uniform());
}

TEST(SparseGeneratorTest, TrafficSparseMatchesDense) {
  data::TrafficOptions options;
  options.num_nodes = 80;
  options.num_days = 2;
  options.steps_per_day = 48;
  options.radius = 0.2;
  options.kernel_sigma = 0.14;
  options.seed = 9;

  SpatialGraph latent_dense;
  SparseSpatialGraph latent_sparse;
  data::TimeSeries dense = data::GenerateTraffic(options, &latent_dense);
  data::TimeSeries sparse =
      data::GenerateTrafficSparse(options, &latent_sparse);
  EXPECT_TRUE(SameBytes(sparse.values, dense.values));
  CsrMatrix want = CsrFromDense(latent_dense.adjacency);
  EXPECT_EQ(latent_sparse.adjacency.col, want.col);
  EXPECT_EQ(latent_sparse.adjacency.val, want.val);
}

TEST(TopKOverlapCsrTest, PerfectAndDisjointRecovery) {
  utils::Rng rng(11);
  SpatialGraph g = RandomGeometric(40, 0.3, 0.2, rng);
  CsrMatrix latent = CsrFromDense(g.adjacency);
  ASSERT_GT(latent.nnz(), 0);
  // The latent graph "learned" perfectly: overlap is exactly 1.
  EXPECT_DOUBLE_EQ(
      TopKOverlapCsr(latent, CsrToDense(latent), Iota(40), 5), 1.0);
  // An empty slim matrix recovers nothing on rows that have neighbors.
  const double none =
      TopKOverlapCsr(latent, Tensor::Zeros(Shape({40, 40})), Iota(40), 5);
  EXPECT_LT(none, 0.5);
}

}  // namespace
}  // namespace sagdfn::graph
