// Protocol conformance: every model in the registry (classical, STGNN
// family, temporal-only, SAGDFN) must honor the Forecaster contract on a
// tiny dataset — correct prediction shapes, finite outputs, reported fit
// time, and determinism under a fixed seed. Parameterized over the full
// registry so adding a baseline automatically extends coverage.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace sagdfn::baselines {
namespace {

data::ForecastDataset TinyDataset() {
  data::TrafficOptions options;
  options.num_nodes = 8;
  options.num_days = 4;
  options.steps_per_day = 48;
  options.seed = 12;
  return data::ForecastDataset(data::GenerateTraffic(options),
                               data::WindowSpec{4, 3});
}

FitOptions TinyFit() {
  FitOptions options;
  options.epochs = 1;
  options.batch_size = 4;
  options.max_train_batches_per_epoch = 2;
  options.max_eval_batches = 2;
  options.seed = 77;
  return options;
}

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> names = PaperBaselineNames();
  for (const auto& name : NonGnnBaselineNames()) names.push_back(name);
  names.push_back("SAGDFN");
  names.push_back("HistoricalAverage");
  return names;
}

class ForecasterProtocol : public ::testing::TestWithParam<std::string> {};

TEST_P(ForecasterProtocol, FitPredictContract) {
  data::ForecastDataset dataset = TinyDataset();
  auto model = MakeForecaster(GetParam(), ModelSizing{});
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());

  model->Fit(dataset, TinyFit());
  EXPECT_GE(model->LastFitSeconds(), 0.0);
  EXPECT_GE(model->ParameterCount(), 0);

  tensor::Tensor pred =
      model->Predict(dataset, data::Split::kTest, 8);
  ASSERT_EQ(pred.ndim(), 3);
  EXPECT_EQ(pred.dim(1), dataset.spec().horizon);
  EXPECT_EQ(pred.dim(2), dataset.num_nodes());
  EXPECT_GT(pred.dim(0), 0);
  EXPECT_FALSE(tensor::HasNonFinite(pred));

  // Predictions land in a sane band for speeds clipped to [3, 80].
  EXPECT_GT(tensor::MinAll(pred), -100.0f);
  EXPECT_LT(tensor::MaxAll(pred), 200.0f);
}

TEST_P(ForecasterProtocol, DeterministicUnderFixedSeed) {
  data::ForecastDataset dataset = TinyDataset();
  auto run = [&]() {
    auto model = MakeForecaster(GetParam(), ModelSizing{});
    model->Fit(dataset, TinyFit());
    return model->Predict(dataset, data::Split::kValidation, 4);
  };
  tensor::Tensor a = run();
  tensor::Tensor b = run();
  EXPECT_TRUE(tensor::AllClose(a, b)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ForecasterProtocol, ::testing::ValuesIn(AllRegistryNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sagdfn::baselines
